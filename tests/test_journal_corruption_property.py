"""Single-point corruption property of the v2 checkpoint journal.

The integrity contract: flip *any* single byte of a completed v2
journal, or truncate it at *any* offset, and resuming — with or without
``repro doctor --repair`` first — must produce the bit-identical
campaign estimate without ever raising.  Wrong-but-plausible BER is the
failure mode the layer exists to prevent, so equality is exact, not
approximate.

Tier-1 samples offsets across the file; the exhaustive every-offset ×
both-modes sweep is fuzz-marked and runs under ``REPRO_FUZZ=1``
(nightly CI).
"""

import os
import warnings

import pytest

from repro.perf import PerfCounters
from repro.rs import RSCode
from repro.runtime import (
    CheckpointJournal,
    RuntimeConfig,
    repair_journal,
)
from repro.simulator import simulate_fail_probability_batched

CODE = RSCode(18, 16, m=8)
LAM = 2e-3 / 24.0
TRIALS = 60
CHUNK = 20  # -> 3 chunk records


def batched(runtime=None, counters=None):
    return simulate_fail_probability_batched(
        "simplex",
        CODE,
        48.0,
        LAM,
        0.0,
        TRIALS,
        seed=13,
        chunk_size=CHUNK,
        runtime=runtime,
        counters=counters,
    )


@pytest.fixture(scope="module")
def reference():
    return batched()


def recorded_journal(tmp_path):
    path = tmp_path / "run.jsonl"
    with CheckpointJournal(path) as journal:
        batched(runtime=RuntimeConfig(journal=journal))
    return path


def corrupt_and_resume(path, offset, mode, reference, repair=False):
    """Apply one corruption, heal (optionally via repair), assert identity."""
    blob = path.read_bytes()
    pristine = blob
    if mode == "flip":
        mutated = bytearray(blob)
        mutated[offset] ^= 0x40
        path.write_bytes(bytes(mutated))
    else:
        path.write_bytes(blob[:offset])
    try:
        counters = PerfCounters()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            if repair:
                repair_journal(path)
            with CheckpointJournal(path) as journal:
                resumed = batched(
                    runtime=RuntimeConfig(journal=journal), counters=counters
                )
        assert resumed == reference, (
            f"{mode} at offset {offset} (repair={repair}) changed the "
            "estimate"
        )
    finally:
        path.write_bytes(pristine)  # restore for the next offset


def sample_offsets(size, count):
    """Evenly spread offsets covering the whole file, ends included."""
    if size <= count:
        return list(range(size))
    step = size / count
    return sorted({min(size - 1, int(i * step)) for i in range(count)})


class TestSampledCorruption:
    def test_flip_sampled_offsets_resume_identical(self, tmp_path, reference):
        path = recorded_journal(tmp_path)
        size = len(path.read_bytes())
        for offset in sample_offsets(size, 25):
            corrupt_and_resume(path, offset, "flip", reference)

    def test_truncate_sampled_offsets_resume_identical(
        self, tmp_path, reference
    ):
        path = recorded_journal(tmp_path)
        size = len(path.read_bytes())
        for offset in sample_offsets(size, 12):
            corrupt_and_resume(path, offset, "truncate", reference)

    def test_doctor_repair_then_resume_identical(self, tmp_path, reference):
        path = recorded_journal(tmp_path)
        size = len(path.read_bytes())
        for offset in sample_offsets(size, 8):
            corrupt_and_resume(path, offset, "flip", reference, repair=True)


@pytest.mark.fuzz
@pytest.mark.skipif(
    not os.environ.get("REPRO_FUZZ"),
    reason="exhaustive offset sweep runs only with REPRO_FUZZ=1 (nightly CI)",
)
class TestExhaustiveCorruption:
    def test_every_offset_every_mode(self, tmp_path, reference):
        path = recorded_journal(tmp_path)
        size = len(path.read_bytes())
        for offset in range(size):
            corrupt_and_resume(path, offset, "flip", reference)
        for offset in range(0, size, 7):
            corrupt_and_resume(path, offset, "truncate", reference)
