"""Determinism and reproducibility of the batched Monte-Carlo engine.

The contract under test: a batched campaign's estimate is a function of
``(seed, trials, chunk_size)`` and the physical parameters only — never
of the worker count or of scheduling — and the chunk RNG streams are
mutually non-overlapping by spawn-key construction.
"""

import numpy as np
import pytest

from repro.perf import PerfCounters
from repro.rs import RSCode
from repro.simulator import (
    CampaignCell,
    chunk_sizes,
    run_campaign,
    simulate_fail_probability_batched,
    spawn_chunk_seeds,
)

CODE = RSCode(18, 16, m=8)
LAM = 2e-3 / 24.0  # MC-visible SEU rate per hour
PERM = 1e-2 / 24.0


def batched(trials=600, seed=42, workers=1, **kw):
    kw.setdefault("chunk_size", 128)
    return simulate_fail_probability_batched(
        "simplex", CODE, 48.0, LAM, 0.0, trials, seed=seed, workers=workers, **kw
    )


class TestWorkerCountInvariance:
    def test_workers_1_vs_4_identical_estimate(self):
        est1 = batched(workers=1)
        est4 = batched(workers=4)
        assert est1 == est4  # full FailureEstimate, outcome counts included

    def test_workers_invariance_with_scrub_and_permanents(self):
        kw = dict(
            trials=400,
            seed=7,
            chunk_size=100,
            scrub_period=12.0,
            scrub_exponential=True,
        )
        est1 = simulate_fail_probability_batched(
            "duplex", CODE, 48.0, LAM, PERM, workers=1, **kw
        )
        est3 = simulate_fail_probability_batched(
            "duplex", CODE, 48.0, LAM, PERM, workers=3, **kw
        )
        assert est1 == est3

    def test_same_seed_reruns_identical(self):
        assert batched() == batched()

    def test_different_seeds_differ(self):
        # Probability-1 sanity check that the seed actually matters.
        assert batched(seed=1) != batched(seed=2)

    def test_chunk_size_is_part_of_the_contract(self):
        # Different chunking means different stream consumption; the
        # result may legitimately change, so chunk_size is documented as
        # part of the reproducibility key.  Both remain self-consistent.
        a = batched(chunk_size=128)
        b = batched(chunk_size=128)
        assert a == b

    def test_counters_aggregate_across_workers(self):
        c1, c4 = PerfCounters(), PerfCounters()
        batched(counters=c1, workers=1)
        batched(counters=c4, workers=4)
        assert c1.trials == c4.trials == 600
        assert c1.words_decoded == c4.words_decoded
        assert c1.clean_fast_path == c4.clean_fast_path
        assert c1.scalar_fallbacks == c4.scalar_fallbacks


class TestCampaignBatchEngine:
    CELLS = [
        CampaignCell("simplex", 2e-3, 0.0),
        CampaignCell("duplex", 2e-3, 1e-2),
    ]

    def test_campaign_workers_invariance(self):
        rows1 = run_campaign(
            self.CELLS, trials=300, base_seed=11, engine="batch", workers=1
        )
        rows4 = run_campaign(
            self.CELLS, trials=300, base_seed=11, engine="batch", workers=4
        )
        for r1, r4 in zip(rows1, rows4):
            assert r1.estimate == r4.estimate
            assert r1.model_fail_probability == r4.model_fail_probability

    def test_campaign_batch_engine_consistent_with_models(self):
        rows = run_campaign(
            self.CELLS, trials=400, base_seed=5, engine="batch", workers=2
        )
        assert all(row.consistent for row in rows)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            run_campaign(self.CELLS, trials=10, engine="gpu")


class TestEngineIdentity:
    """Every engine choice is an execution hint, never a result knob.

    A seeded ensemble run under ``auto``, ``compiled``, ``numpy``, and
    ``scalar`` must produce bit-identical campaign rows (estimates, BER,
    outcome splits) *and* bit-identical checkpoint journals — the same
    chunk results in the same order with the same seeds.  Only wall-time
    counters may differ.
    """

    CELLS = [
        CampaignCell("simplex", 2e-3, 0.0),
        CampaignCell("duplex", 2e-3, 1e-2),
    ]
    ENGINES = ("auto", "compiled", "numpy", "scalar")
    _TIMING = {"cpu_seconds", "elapsed_seconds", "kernel_seconds"}

    def _journal_fields(self, path):
        from repro.runtime import scan_journal

        out = []
        for _line, record in scan_journal(path).chunk_records:
            result = dict(record["result"])
            result["counters"] = {
                key: value
                for key, value in result["counters"].items()
                if key not in self._TIMING
            }
            out.append((record["chunk"], record["seed"], result))
        return out

    def _run(self, engine, tmp_path):
        from tests.backend_conformance import compiled_available

        from repro.runtime import CheckpointJournal, RuntimeConfig

        path = tmp_path / f"{engine}.jsonl"
        with compiled_available(), CheckpointJournal(path) as journal:
            rows = run_campaign(
                self.CELLS,
                trials=300,
                base_seed=19,
                engine=engine,
                chunk_size=100,
                runtime=RuntimeConfig(journal=journal),
            )
        return rows, self._journal_fields(path)

    def test_all_engines_bit_identical_rows_and_journals(self, tmp_path):
        reference_rows, reference_journal = self._run("numpy", tmp_path)
        assert reference_journal  # journaling actually happened
        for engine in self.ENGINES:
            if engine == "numpy":
                continue
            rows, journal = self._run(engine, tmp_path)
            for ours, ref in zip(rows, reference_rows):
                assert ours.estimate == ref.estimate, engine
                assert (
                    ours.model_fail_probability == ref.model_fail_probability
                ), engine
            assert journal == reference_journal, engine


class TestChunkSeeding:
    def test_chunk_sizes_partition_trials(self):
        assert chunk_sizes(1000, 256) == [256, 256, 256, 232]
        assert chunk_sizes(256, 256) == [256]
        assert chunk_sizes(10, 256) == [10]
        assert sum(chunk_sizes(99999, 512)) == 99999
        with pytest.raises(ValueError):
            chunk_sizes(0, 256)
        with pytest.raises(ValueError):
            chunk_sizes(10, 0)

    def test_spawn_keys_are_unique(self):
        seeds = spawn_chunk_seeds(2005, 64)
        keys = {s.spawn_key for s in seeds}
        assert len(keys) == 64
        assert all(s.entropy == seeds[0].entropy for s in seeds)

    def test_spawned_streams_never_overlap(self):
        """Distinct spawn keys give statistically independent streams.

        Compare the raw state words drawn from every pair of chunk
        generators: with non-overlapping streams a collision of a whole
        64-bit draw sequence is impossible in practice.
        """
        seeds = spawn_chunk_seeds(123, 16)
        draws = [
            tuple(np.random.default_rng(s).integers(0, 2**63, size=8).tolist())
            for s in seeds
        ]
        assert len(set(draws)) == 16

    def test_seed_sequence_accepted_as_seed(self):
        root = np.random.SeedSequence(77)
        est_a = batched(seed=np.random.SeedSequence(77))
        est_b = batched(seed=root)
        est_c = batched(seed=77)
        assert est_a == est_b == est_c

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            batched(workers=0)
