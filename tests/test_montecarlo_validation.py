"""Input validation and labelling fixes for the Monte-Carlo layer.

These used to surface as deep numpy or ``KeyError`` tracebacks (bad
trials/chunk/worker counts) or as silently ambiguous labels (falsy
fields dropped from ``CampaignCell.label()``).
"""

import pytest

from repro.rs import RSCode
from repro.simulator import (
    CampaignCell,
    run_campaign,
    simulate_fail_probability_batched,
)

CODE = RSCode(18, 16, m=8)
CELLS = [CampaignCell("simplex", 2e-3, 0.0)]


def batched(**kw):
    kw.setdefault("trials", 100)
    return simulate_fail_probability_batched(
        kw.pop("arrangement", "simplex"), CODE, 48.0, 1e-4, 0.0, **kw
    )


class TestBatchedValidation:
    @pytest.mark.parametrize("trials", [0, -1, -100])
    def test_nonpositive_trials(self, trials):
        with pytest.raises(ValueError, match="trials must be positive"):
            batched(trials=trials)

    @pytest.mark.parametrize("chunk_size", [0, -4])
    def test_nonpositive_chunk_size(self, chunk_size):
        with pytest.raises(ValueError, match="chunk_size must be positive"):
            batched(chunk_size=chunk_size)

    @pytest.mark.parametrize("workers", [0, -2])
    def test_nonpositive_workers(self, workers):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            batched(workers=workers)

    def test_unknown_arrangement(self):
        with pytest.raises(ValueError, match="unknown arrangement 'triplex'"):
            batched(arrangement="triplex")


class TestCampaignValidation:
    def test_nonpositive_trials(self):
        with pytest.raises(ValueError, match="trials must be positive"):
            run_campaign(CELLS, trials=0)

    def test_nonpositive_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size must be positive"):
            run_campaign(CELLS, trials=10, chunk_size=0)

    def test_nonpositive_workers(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            run_campaign(CELLS, trials=10, workers=0)

    def test_unknown_engine(self):
        with pytest.raises(ValueError, match="engine must be"):
            run_campaign(CELLS, trials=10, engine="quantum")

    def test_unknown_arrangement_checked_before_any_cell_runs(self):
        cells = [CampaignCell("simplex", 2e-3, 0.0), CampaignCell("nplex", 0, 0)]
        with pytest.raises(ValueError, match="unknown arrangement 'nplex'"):
            run_campaign(cells, trials=10)

    def test_checkpoint_requires_batch_family_engine(self, tmp_path):
        from repro.runtime import CheckpointJournal, RuntimeConfig

        runtime = RuntimeConfig(journal=CheckpointJournal(tmp_path / "j.jsonl"))
        with pytest.raises(ValueError, match="'reference' loop has"):
            run_campaign(CELLS, trials=10, engine="reference", runtime=runtime)

    def test_scalar_backend_engine_may_journal(self, tmp_path):
        # "scalar" now names the scalar *batch backend*: chunked, and
        # therefore journalable like every other batch-family engine.
        from repro.runtime import CheckpointJournal, RuntimeConfig

        runtime = RuntimeConfig(journal=CheckpointJournal(tmp_path / "j.jsonl"))
        rows = run_campaign(
            CELLS, trials=20, chunk_size=10, engine="scalar", runtime=runtime
        )
        assert len(rows) == 1


class TestCellLabels:
    def test_zero_rates_are_rendered(self):
        cell = CampaignCell("simplex", 0.0, 0.0)
        assert cell.label() == "simplex seu=0 perm=0"

    def test_zero_scrub_period_distinct_from_none(self):
        scrubbed_hard = CampaignCell("duplex", 1e-3, 0.0, 0.0)
        unscrubbed = CampaignCell("duplex", 1e-3, 0.0, None)
        assert scrubbed_hard.label() != unscrubbed.label()
        assert "tsc=0s" in scrubbed_hard.label()
        assert "tsc" not in unscrubbed.label()

    def test_labels_unique_across_default_zero_cells(self):
        cells = [
            CampaignCell("simplex", 0.0, 0.0),
            CampaignCell("simplex", 0.0, 1e-2),
            CampaignCell("simplex", 1e-3, 0.0),
            CampaignCell("simplex", 1e-3, 0.0, 0.0),
            CampaignCell("simplex", 1e-3, 0.0, 3600.0),
        ]
        labels = [cell.label() for cell in cells]
        assert len(set(labels)) == len(labels)
