"""Tests for the repro.verify case generators.

Determinism, stratification correctness (including the odd ``n - k``
at-capacity subtlety), and structural well-formedness of every case
family the fuzz targets consume.
"""

import numpy as np
import pytest

from repro.verify import (
    CAPACITY_STRATA,
    apply_corruption,
    build_codec,
    build_ctmc_from_case,
    case_rng,
    gen_codec_case,
    gen_ctmc_case,
    gen_memory_case,
    gen_mc_case,
)
from repro.verify.generators import _pick_mix


class TestCaseRng:
    def test_same_seed_trial_same_stream(self):
        a = case_rng(2005, 7).integers(0, 1 << 30, size=16)
        b = case_rng(2005, 7).integers(0, 1 << 30, size=16)
        assert np.array_equal(a, b)

    def test_distinct_trials_distinct_streams(self):
        a = case_rng(2005, 0).integers(0, 1 << 30, size=16)
        b = case_rng(2005, 1).integers(0, 1 << 30, size=16)
        assert not np.array_equal(a, b)

    def test_distinct_seeds_distinct_streams(self):
        a = case_rng(1, 0).integers(0, 1 << 30, size=16)
        b = case_rng(2, 0).integers(0, 1 << 30, size=16)
        assert not np.array_equal(a, b)


class TestCodecCases:
    def test_deterministic(self):
        a = gen_codec_case(case_rng(11, 3))
        b = gen_codec_case(case_rng(11, 3))
        assert a == b

    @pytest.mark.parametrize("trial", range(60))
    def test_stratum_budget_invariants(self, trial):
        case = gen_codec_case(case_rng(42, trial))
        assert case["stratum"] in CAPACITY_STRATA
        n, k = case["n"], case["k"]
        nsym = n - k
        re = len(case["error_positions"])
        er = len(case["erasure_positions"])
        budget = 2 * re + er
        if case["stratum"] == "clean":
            assert re == 0 and er == 0
        elif case["stratum"] == "below":
            assert 0 < budget < nsym
        elif case["stratum"] == "at":
            assert budget == nsym
        elif case["stratum"] == "beyond":
            assert budget > nsym
        elif case["stratum"] == "erasure-only":
            assert re == 0 and 0 < er <= nsym

    def test_odd_budget_at_capacity_forces_erasure(self):
        """2*re is even: an odd n-k spent exactly requires er >= 1."""
        seen = 0
        for trial in range(500):
            rng = case_rng(7, trial)
            case = gen_codec_case(rng)
            if case["stratum"] != "at":
                continue
            nsym = case["n"] - case["k"]
            if nsym % 2 == 1:
                seen += 1
                assert len(case["erasure_positions"]) >= 1
        assert seen > 0, "no odd-budget at-capacity case in 500 trials"

    @pytest.mark.parametrize("stratum", CAPACITY_STRATA)
    def test_pick_mix_covers_every_stratum(self, stratum):
        rng = case_rng(1, 0)
        for n, nsym in ((7, 4), (7, 3), (21, 5), (18, 2)):
            re, er = _pick_mix(rng, n, nsym, stratum)
            assert re >= 0 and er >= 0
            assert re + er <= n

    @pytest.mark.parametrize("trial", range(20))
    def test_positions_disjoint_and_in_range(self, trial):
        case = gen_codec_case(case_rng(3, trial))
        errs = case["error_positions"]
        eras = case["erasure_positions"]
        assert len(set(errs)) == len(errs)
        assert len(set(eras)) == len(eras)
        assert not set(errs) & set(eras)
        for p in errs + eras:
            assert 0 <= p < case["n"]
        for mag in case["error_magnitudes"]:
            assert 1 <= mag < (1 << case["m"])  # errors never benign
        for mag in case["erasure_magnitudes"]:
            assert 0 <= mag < (1 << case["m"])  # erasures may be benign

    def test_apply_corruption_matches_positions(self):
        case = gen_codec_case(case_rng(9, 4))
        code = build_codec(case)
        codeword, received = apply_corruption(code, case)
        diff = [i for i in range(case["n"]) if codeword[i] != received[i]]
        flipped = set(case["error_positions"]) | {
            p
            for p, mag in zip(
                case["erasure_positions"], case["erasure_magnitudes"]
            )
            if mag != 0
        }
        assert set(diff) == flipped


class TestCtmcCases:
    def test_deterministic(self):
        assert gen_ctmc_case(case_rng(5, 1)) == gen_ctmc_case(case_rng(5, 1))

    @pytest.mark.parametrize("trial", range(40))
    def test_structure(self, trial):
        case = gen_ctmc_case(case_rng(13, trial))
        n = case["num_states"]
        assert 2 <= n <= 8
        for src, dst, rate in case["transitions"]:
            assert 0 <= src < n and 0 <= dst < n and src != dst
            assert rate > 0
        assert all(t >= 0 for t in case["times"])
        assert 1 <= len(case["times"]) <= 3

    @pytest.mark.parametrize("trial", range(40))
    def test_buildable_and_stochastic(self, trial):
        case = gen_ctmc_case(case_rng(13, trial))
        chain = build_ctmc_from_case(case)
        assert chain.num_states == case["num_states"]
        assert chain.p0.min() >= 0
        assert chain.p0.sum() == pytest.approx(1.0, abs=1e-12)
        q = chain.generator(dense=True)
        assert np.allclose(q.sum(axis=1), 0.0, atol=1e-12)

    def test_zero_rate_rows_do_occur(self):
        saw_frozen_row = False
        for trial in range(80):
            case = gen_ctmc_case(case_rng(17, trial))
            sources = {src for src, _, _ in case["transitions"]}
            if len(sources) < case["num_states"]:
                saw_frozen_row = True
                break
        assert saw_frozen_row, "no zero-rate row in 80 trials"


class TestMemoryAndMcCases:
    def test_memory_case_deterministic(self):
        a = gen_memory_case(case_rng(19, 2))
        b = gen_memory_case(case_rng(19, 2))
        assert a == b

    @pytest.mark.parametrize("trial", range(15))
    def test_memory_case_structure(self, trial):
        case = gen_memory_case(case_rng(23, trial))
        assert case["arrangement"] in ("simplex", "duplex")
        assert case["n"] > case["k"]
        assert all(t > 0 for t in case["times_hours"])

    def test_mc_case_structure(self):
        case = gen_mc_case(case_rng(29, 0))
        assert case["trials"] >= 100
        assert case["seu_per_bit_day"] > 0
        assert isinstance(case["mc_seed"], int)
