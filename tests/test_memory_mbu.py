"""Tests for the multi-bit-upset model and layout analysis."""

import math

import numpy as np
import pytest

from repro.memory import simplex_model
from repro.memory.mbu import (
    ClusterDistribution,
    Layout,
    SimplexMBUModel,
    mbu_layout_comparison,
    symbol_multiplicity_rates,
)
from repro.memory.rates import FaultRates


class TestClusterDistribution:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum"):
            ClusterDistribution({1: 0.5, 2: 0.4})

    def test_sizes_positive(self):
        with pytest.raises(ValueError):
            ClusterDistribution({0: 1.0})

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            ClusterDistribution({1: 1.5, 2: -0.5})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ClusterDistribution({})

    def test_mean_and_max(self):
        d = ClusterDistribution({1: 0.5, 3: 0.5})
        assert d.mean_size == 2.0
        assert d.max_size == 3

    def test_presets(self):
        assert ClusterDistribution.single_bit().sizes == {1: 1.0}
        assert sum(ClusterDistribution.typical().sizes.values()) == pytest.approx(
            1.0
        )


class TestMultiplicityRates:
    """Exact anchor-counting on small, hand-checkable geometries."""

    def test_single_bit_any_layout_is_paper_rate(self):
        for layout in Layout:
            w = symbol_multiplicity_rates(
                18, 8, layout, ClusterDistribution.single_bit()
            )
            assert w == {1: pytest.approx(144.0)}  # n * m anchors

    def test_pair_cluster_contiguous(self):
        # 18 symbols of 8 bits: 7 within-symbol anchors per symbol + the 2
        # half-overlap edges hit one symbol; 17 boundaries hit two
        w = symbol_multiplicity_rates(
            18, 8, Layout.CONTIGUOUS, ClusterDistribution({2: 1.0})
        )
        assert w[1] == pytest.approx(7 * 18 + 2)
        assert w[2] == pytest.approx(17)

    def test_pair_cluster_bit_interleaved_hits_two_symbols(self):
        w = symbol_multiplicity_rates(
            18, 8, Layout.BIT_INTERLEAVED, ClusterDistribution({2: 1.0})
        )
        assert w[2] == pytest.approx(143.0)
        assert w[1] == pytest.approx(2.0)  # the two edge anchors

    def test_word_interleaving_confines_to_one_symbol(self):
        w = symbol_multiplicity_rates(
            18,
            8,
            Layout.WORD_INTERLEAVED,
            ClusterDistribution({2: 1.0, 3: 0.0}),
            depth=4,
        )
        assert set(w) == {1}

    def test_deep_cluster_beats_shallow_interleaving(self):
        # depth 2 cannot confine 3-cell clusters
        w = symbol_multiplicity_rates(
            18, 8, Layout.WORD_INTERLEAVED, ClusterDistribution({3: 1.0}), depth=2
        )
        assert 2 in w

    def test_big_cluster_contiguous_spans_at_most_two_symbols(self):
        w = symbol_multiplicity_rates(
            18, 8, Layout.CONTIGUOUS, ClusterDistribution({4: 1.0})
        )
        assert set(w) <= {1, 2}

    def test_invalid_depth(self):
        with pytest.raises(ValueError, match="depth"):
            symbol_multiplicity_rates(
                18,
                8,
                Layout.WORD_INTERLEAVED,
                ClusterDistribution.single_bit(),
                depth=0,
            )


class TestSimplexMBUModel:
    def test_single_bit_clusters_reproduce_paper_chain(self):
        """With 1-cell clusters the MBU chain IS the paper's simplex chain."""
        lam = 1e-4
        rates = FaultRates.from_paper_units(seu_per_bit_day=lam)
        mbu = SimplexMBUModel(
            18, 16, 8, rates, clusters=ClusterDistribution.single_bit()
        )
        paper = simplex_model(18, 16, seu_per_bit_day=lam)
        times = [10.0, 48.0]
        assert np.allclose(
            mbu.fail_probability(times),
            paper.fail_probability(times),
            rtol=1e-12,
        )

    def test_multi_symbol_arrival_rates(self):
        rates = FaultRates(seu_per_bit=2.0)
        model = SimplexMBUModel(
            18,
            16,
            8,
            rates,
            layout=Layout.BIT_INTERLEAVED,
            clusters=ClusterDistribution({2: 1.0}),
        )
        # from Good, the +2 arrival goes straight to FAIL (2 re > 2)
        w = symbol_multiplicity_rates(
            18, 8, Layout.BIT_INTERLEAVED, ClusterDistribution({2: 1.0})
        )
        assert model.chain.rate((0, 0), "FAIL") == pytest.approx(2.0 * w[2])
        assert model.chain.rate((0, 0), (0, 1)) == pytest.approx(2.0 * w[1])

    def test_thinning_reduces_to_paper_factor_at_j1(self):
        rates = FaultRates(seu_per_bit=1.0)
        model = SimplexMBUModel(
            36, 16, 8, rates, clusters=ClusterDistribution.single_bit()
        )
        # from (0, 1): rate to (0, 2) must be m * lam * (n - 1)
        assert model.chain.rate((0, 1), (0, 2)) == pytest.approx(8 * 35.0)

    def test_hypergeometric_thinning(self):
        rates = FaultRates(seu_per_bit=1.0)
        model = SimplexMBUModel(
            36,
            16,
            8,
            rates,
            layout=Layout.BIT_INTERLEAVED,
            clusters=ClusterDistribution({2: 1.0}),
        )
        w = symbol_multiplicity_rates(
            36, 8, Layout.BIT_INTERLEAVED, ClusterDistribution({2: 1.0})
        )
        clean = 35
        expected = w[2] * math.comb(clean, 2) / math.comb(36, 2)
        assert model.chain.rate((0, 1), (0, 3)) == pytest.approx(expected)

    def test_permanent_faults_still_modelled(self):
        rates = FaultRates.from_paper_units(erasure_per_symbol_day=1e-3)
        model = SimplexMBUModel(18, 16, 8, rates)
        paper = simplex_model(18, 16, erasure_per_symbol_day=1e-3)
        t = [730.0]
        assert model.fail_probability(t)[0] == pytest.approx(
            paper.fail_probability(t)[0], rel=1e-10
        )


class TestLayoutComparison:
    def test_rs_prefers_contiguous_over_bit_interleaving(self):
        """The chipkill insight: symbol-oriented codes want a symbol's
        bits physically together."""
        comp = mbu_layout_comparison(
            18, 16, strike_rate_per_cell_day=1.7e-5, times_hours=[48.0]
        )
        assert comp["contiguous"][0] < comp["bit_interleaved"][0] / 2

    def test_word_interleaving_wins_at_low_rates(self):
        comp = mbu_layout_comparison(
            18, 16, strike_rate_per_cell_day=1.7e-5, times_hours=[48.0]
        )
        assert comp["word_interleaved"][0] < comp["contiguous"][0]

    def test_single_bit_clusters_make_layout_irrelevant_in_cost(self):
        """With 1-cell strikes every layout sees identical damage (word
        interleaving just spreads the same 144 cells)."""
        comp = mbu_layout_comparison(
            18,
            16,
            strike_rate_per_cell_day=1e-4,
            times_hours=[48.0],
            clusters=ClusterDistribution.single_bit(),
        )
        values = list(v[0] for v in comp.values())
        assert max(values) / min(values) == pytest.approx(1.0, rel=1e-9)
