"""Tests for clustered-upset injection and its model agreement."""

import numpy as np
import pytest

from repro.memory.mbu import ClusterDistribution, Layout, SimplexMBUModel
from repro.memory.rates import FaultRates
from repro.rs import RSCode
from repro.simulator.mbu import (
    _cell_map,
    sample_mbu_strikes,
    simulate_mbu_read_unreliability,
)


@pytest.fixture(scope="module")
def code():
    return RSCode(18, 16, m=8)


class TestCellMap:
    def test_contiguous(self):
        mapping = _cell_map(18, 8, Layout.CONTIGUOUS, 4)
        assert mapping[0] == (0, 0)
        assert mapping[7] == (0, 7)
        assert mapping[8] == (1, 0)
        assert len(mapping) == 144

    def test_bit_interleaved(self):
        mapping = _cell_map(18, 8, Layout.BIT_INTERLEAVED, 4)
        assert mapping[0] == (0, 0)
        assert mapping[1] == (1, 0)
        assert mapping[18] == (0, 1)

    def test_word_interleaved_spacing(self):
        mapping = _cell_map(18, 8, Layout.WORD_INTERLEAVED, 4)
        assert set(mapping) == {4 * i for i in range(144)}
        assert mapping[0] == (0, 0)
        assert mapping[4] == (0, 1)


class TestStrikeSampling:
    def test_zero_rate_no_strikes(self):
        strikes = sample_mbu_strikes(
            np.random.default_rng(0),
            0.0,
            18,
            8,
            Layout.CONTIGUOUS,
            ClusterDistribution.typical(),
            100.0,
        )
        assert strikes == []

    def test_strikes_sorted_and_in_range(self):
        strikes = sample_mbu_strikes(
            np.random.default_rng(1),
            0.001,
            18,
            8,
            Layout.CONTIGUOUS,
            ClusterDistribution.typical(),
            50.0,
        )
        assert strikes
        times = [t for t, _ in strikes]
        assert times == sorted(times)
        for t, cells in strikes:
            assert 0.0 <= t < 50.0
            assert cells
            for symbol, bit in cells:
                assert 0 <= symbol < 18
                assert 0 <= bit < 8

    def test_cluster_confined_to_one_symbol_under_word_interleaving(self):
        strikes = sample_mbu_strikes(
            np.random.default_rng(2),
            0.001,
            18,
            8,
            Layout.WORD_INTERLEAVED,
            ClusterDistribution({3: 1.0}),
            50.0,
            depth=4,
        )
        for _t, cells in strikes:
            assert len(cells) == 1  # depth 4 > cluster 3

    def test_bit_interleaved_pair_hits_two_symbols(self):
        strikes = sample_mbu_strikes(
            np.random.default_rng(3),
            0.001,
            18,
            8,
            Layout.BIT_INTERLEAVED,
            ClusterDistribution({2: 1.0}),
            50.0,
        )
        multi = [cells for _t, cells in strikes if len(cells) == 2]
        assert multi  # almost every anchor spans two symbols
        for cells in multi:
            assert cells[0][0] != cells[1][0]

    def test_strike_count_matches_rate(self):
        rng = np.random.default_rng(4)
        rate, t = 0.0005, 40.0
        counts = [
            len(
                sample_mbu_strikes(
                    rng,
                    rate,
                    18,
                    8,
                    Layout.CONTIGUOUS,
                    ClusterDistribution.single_bit(),
                    t,
                )
            )
            for _ in range(200)
        ]
        assert np.mean(counts) == pytest.approx(rate * 144 * t, rel=0.1)


class TestModelAgreement:
    @pytest.mark.parametrize(
        "layout", [Layout.CONTIGUOUS, Layout.BIT_INTERLEAVED, Layout.WORD_INTERLEAVED]
    )
    def test_chain_tracks_simulation(self, code, layout):
        rate_day = 2e-3
        clusters = ClusterDistribution.typical()
        rates = FaultRates.from_paper_units(seu_per_bit_day=rate_day)
        model = SimplexMBUModel(
            18, 16, 8, rates, layout=layout, clusters=clusters
        )
        p = model.fail_probability([48.0])[0]
        est = simulate_mbu_read_unreliability(
            code,
            layout,
            clusters,
            rate_day / 24.0,
            48.0,
            trials=900,
            rng=np.random.default_rng(7),
        )
        # the chain thins multi-hits hypergeometrically; allow CI + 20%
        assert est.ci_low * 0.8 <= p <= est.ci_high * 1.2
