"""Unit tests for GF(2^m) field arithmetic."""

import pytest

from repro.gf import DEFAULT_PRIMITIVE_POLYNOMIALS, GF2m


class TestConstruction:
    def test_default_polynomial_gf256(self):
        gf = GF2m(8)
        assert gf.order == 256
        assert gf.prim_poly == 0b100011101

    @pytest.mark.parametrize("m", sorted(DEFAULT_PRIMITIVE_POLYNOMIALS))
    def test_all_default_polynomials_are_primitive(self, m):
        # table construction verifies primitivity internally
        gf = GF2m(m)
        assert gf.order == 1 << m

    def test_rejects_m_below_two(self):
        with pytest.raises(ValueError, match="m must be"):
            GF2m(1)

    def test_rejects_non_integer_m(self):
        with pytest.raises(ValueError):
            GF2m(2.5)  # type: ignore[arg-type]

    def test_rejects_wrong_degree_polynomial(self):
        with pytest.raises(ValueError, match="degree"):
            GF2m(8, primitive_polynomial=0b1011)

    def test_rejects_non_primitive_polynomial(self):
        # x^4 + x^3 + x^2 + x + 1 is irreducible but NOT primitive over GF(16)
        with pytest.raises(ValueError, match="not primitive"):
            GF2m(4, primitive_polynomial=0b11111)

    def test_rejects_reducible_polynomial(self):
        # x^4 + 1 = (x+1)^4 is reducible
        with pytest.raises(ValueError, match="not primitive"):
            GF2m(4, primitive_polynomial=0b10001)

    def test_missing_builtin_requires_explicit_polynomial(self):
        with pytest.raises(ValueError, match="no built-in"):
            GF2m(17)

    def test_equality_and_hash(self):
        assert GF2m(4) == GF2m(4)
        assert GF2m(4) != GF2m(5)
        assert hash(GF2m(8)) == hash(GF2m(8))

    def test_repr_mentions_parameters(self):
        assert "m=8" in repr(GF2m(8))


class TestArithmetic:
    @pytest.fixture(scope="class")
    def gf(self):
        return GF2m(8)

    def test_addition_is_xor(self, gf):
        assert gf.add(0x53, 0xCA) == 0x53 ^ 0xCA
        assert gf.add(7, 7) == 0

    def test_sub_equals_add(self, gf):
        assert gf.sub(0x53, 0xCA) == gf.add(0x53, 0xCA)

    def test_known_product_with_0x11d(self, gf):
        # 2 * 0x80 wraps once through the default polynomial 0x11D:
        # 0x100 XOR 0x11D = 0x1D
        assert gf.mul(2, 0x80) == 0x1D

    def test_mul_by_zero_and_one(self, gf):
        for a in (0, 1, 2, 0xFF):
            assert gf.mul(a, 0) == 0
            assert gf.mul(0, a) == 0
            assert gf.mul(a, 1) == a

    def test_mul_matches_carryless_reference(self, gf):
        def slow_mul(a, b):
            result = 0
            while b:
                if b & 1:
                    result ^= a
                b >>= 1
                a <<= 1
                if a & 0x100:
                    a ^= gf.prim_poly
            return result

        for a in (1, 2, 3, 0x80, 0xA5, 0xFF):
            for b in (1, 2, 0x1D, 0x80, 0xFF):
                assert gf.mul(a, b) == slow_mul(a, b)

    def test_division_inverts_multiplication(self, gf):
        for a in (1, 5, 0x80, 0xFE):
            for b in (1, 3, 0x1B, 0xFF):
                assert gf.div(gf.mul(a, b), b) == a

    def test_division_by_zero_raises(self, gf):
        with pytest.raises(ZeroDivisionError):
            gf.div(5, 0)

    def test_zero_divided_by_anything_is_zero(self, gf):
        assert gf.div(0, 7) == 0

    def test_inverse(self, gf):
        for a in (1, 2, 0x53, 0xFF):
            assert gf.mul(a, gf.inv(a)) == 1

    def test_inverse_of_zero_raises(self, gf):
        with pytest.raises(ZeroDivisionError):
            gf.inv(0)

    def test_pow_positive(self, gf):
        assert gf.pow(2, 0) == 1
        assert gf.pow(2, 1) == 2
        assert gf.pow(3, 4) == gf.mul(gf.mul(3, 3), gf.mul(3, 3))

    def test_pow_negative(self, gf):
        assert gf.pow(2, -1) == gf.inv(2)
        assert gf.mul(gf.pow(5, -3), gf.pow(5, 3)) == 1

    def test_pow_of_zero(self, gf):
        assert gf.pow(0, 3) == 0
        assert gf.pow(0, 0) == 1
        with pytest.raises(ZeroDivisionError):
            gf.pow(0, -1)

    def test_exp_log_roundtrip(self, gf):
        for a in gf.nonzero_elements():
            assert gf.exp(gf.log(a)) == a

    def test_exp_wraps_modulo_group_order(self, gf):
        assert gf.exp(255) == gf.exp(0) == 1
        assert gf.exp(-1) == gf.exp(254)

    def test_log_of_zero_raises(self, gf):
        with pytest.raises(ValueError):
            gf.log(0)

    def test_alpha_generates_whole_group(self, gf):
        seen = {gf.exp(i) for i in range(gf.order - 1)}
        assert seen == set(gf.nonzero_elements())

    def test_validate_element(self, gf):
        gf.validate_element(0)
        gf.validate_element(255)
        with pytest.raises(ValueError):
            gf.validate_element(256)
        with pytest.raises(ValueError):
            gf.validate_element(-1)

    def test_elements_iterators(self, gf):
        assert len(list(gf.elements())) == 256
        assert 0 not in gf.nonzero_elements()


class TestSmallField:
    """Exhaustive checks feasible on GF(8)."""

    @pytest.fixture(scope="class")
    def gf(self):
        return GF2m(3)

    def test_multiplication_table_is_a_group(self, gf):
        nonzero = list(gf.nonzero_elements())
        for a in nonzero:
            products = {gf.mul(a, b) for b in nonzero}
            assert products == set(nonzero)  # each row is a permutation

    def test_distributivity_exhaustive(self, gf):
        for a in gf.elements():
            for b in gf.elements():
                for c in gf.elements():
                    assert gf.mul(a, gf.add(b, c)) == gf.add(
                        gf.mul(a, b), gf.mul(a, c)
                    )
