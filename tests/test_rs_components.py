"""Unit tests for the decoder building blocks (syndromes, BM, Chien, Forney)."""

import random

import pytest

from repro.gf import GF2m, poly
from repro.rs import RSCode
from repro.rs.berlekamp import berlekamp_massey, locator_degree_ok
from repro.rs.forney import chien_search, error_evaluator, forney_magnitudes
from repro.rs.syndromes import (
    compute_syndromes,
    erasure_locator,
    forney_syndromes,
)


@pytest.fixture(scope="module")
def gf():
    return GF2m(8)


@pytest.fixture(scope="module")
def code():
    return RSCode(36, 16, m=8)


class TestSyndromes:
    def test_codeword_has_zero_syndromes(self, code):
        cw = code.encode([17] * 16)
        assert compute_syndromes(code.gf, cw, code.nsym) == [0] * code.nsym

    def test_single_error_syndromes_are_powers(self, code):
        cw = code.encode([0] * 16)
        pos, mag = 7, 0x2A
        received = list(cw)
        received[pos] ^= mag
        synd = compute_syndromes(code.gf, received, code.nsym, code.fcr)
        gf = code.gf
        for j, s in enumerate(synd):
            expected = gf.mul(mag, gf.pow(gf.exp(pos), code.fcr + j))
            assert s == expected

    def test_syndromes_linear_in_error(self, code):
        gf = code.gf
        cw = code.encode([random.randrange(256) for _ in range(16)])
        e1, e2 = list(cw), list(cw)
        e1[3] ^= 0x11
        e2[9] ^= 0x22
        both = list(cw)
        both[3] ^= 0x11
        both[9] ^= 0x22
        s1 = compute_syndromes(gf, e1, code.nsym)
        s2 = compute_syndromes(gf, e2, code.nsym)
        sb = compute_syndromes(gf, both, code.nsym)
        assert sb == [gf.add(a, b) for a, b in zip(s1, s2)]


class TestErasureLocator:
    def test_no_erasures_gives_unity(self, gf):
        assert erasure_locator(gf, []) == [1]

    def test_roots_at_inverse_positions(self, gf):
        positions = [0, 4, 11]
        gamma = erasure_locator(gf, positions)
        assert poly.degree(gamma) == len(positions)
        for p in positions:
            assert poly.eval_at(gf, gamma, gf.exp(-p)) == 0

    def test_constant_term_is_one(self, gf):
        assert erasure_locator(gf, [2, 5])[0] == 1


class TestForneySyndromes:
    def test_no_erasures_passthrough(self, gf):
        synd = [1, 2, 3, 4]
        assert forney_syndromes(gf, synd, []) == synd

    def test_length_shrinks_by_erasure_count(self, code):
        cw = code.encode([1] * 16)
        received = list(cw)
        received[2] ^= 0x10
        synd = compute_syndromes(code.gf, received, code.nsym)
        t = forney_syndromes(code.gf, synd, [2, 5, 6])
        assert len(t) == code.nsym - 3

    def test_erasure_only_pattern_yields_zero_forney_syndromes(self, code):
        # if all errata are at declared erasure positions, the remaining
        # unknown-error locator must be trivial
        cw = code.encode([5] * 16)
        received = list(cw)
        positions = [1, 8, 20]
        for p in positions:
            received[p] ^= 0x3C
        synd = compute_syndromes(code.gf, received, code.nsym)
        t = forney_syndromes(code.gf, synd, positions)
        assert berlekamp_massey(code.gf, t) == [1]

    def test_all_erasures_empty_forney_syndromes(self, gf):
        assert forney_syndromes(gf, [1, 2], [0, 1]) == []


class TestBerlekampMassey:
    def test_zero_sequence(self, gf):
        assert berlekamp_massey(gf, [0, 0, 0, 0]) == [1]

    def test_recovers_single_error_locator(self, code):
        cw = code.encode([0] * 16)
        received = list(cw)
        received[6] ^= 0x55
        synd = compute_syndromes(code.gf, received, code.nsym)
        lam = berlekamp_massey(code.gf, synd)
        assert poly.degree(lam) == 1
        assert poly.eval_at(code.gf, lam, code.gf.exp(-6)) == 0

    def test_recovers_multi_error_locator_roots(self, code):
        random.seed(5)
        cw = code.encode([random.randrange(256) for _ in range(16)])
        positions = [2, 13, 29]
        received = list(cw)
        for p in positions:
            received[p] ^= random.randrange(1, 256)
        synd = compute_syndromes(code.gf, received, code.nsym)
        lam = berlekamp_massey(code.gf, synd)
        assert poly.degree(lam) == 3
        for p in positions:
            assert poly.eval_at(code.gf, lam, code.gf.exp(-p)) == 0

    def test_locator_satisfies_lfsr_recurrence(self, code):
        random.seed(9)
        cw = code.encode([random.randrange(256) for _ in range(16)])
        received = list(cw)
        for p in (1, 7, 15, 33):
            received[p] ^= random.randrange(1, 256)
        synd = compute_syndromes(code.gf, received, code.nsym)
        lam = berlekamp_massey(code.gf, synd)
        gf = code.gf
        deg = poly.degree(lam)
        for n_i in range(deg, len(synd)):
            acc = 0
            for i in range(deg + 1):
                acc ^= gf.mul(lam[i], synd[n_i - i])
            assert acc == 0

    def test_locator_degree_ok(self):
        assert locator_degree_ok([1, 2], 1)
        assert not locator_degree_ok([1, 2, 3], 1)


class TestChienForney:
    def test_chien_matches_locator_roots(self, code):
        gf = code.gf
        positions = [0, 9, 35]
        locator = erasure_locator(gf, positions)
        assert chien_search(gf, locator, code.n) == sorted(positions)

    def test_chien_ignores_roots_outside_shortened_length(self):
        # position 20 exists in GF(32)'s full length 31 but not in n=18
        gf = GF2m(5)
        locator = erasure_locator(gf, [20])
        assert chien_search(gf, locator, 18) == []

    def test_error_evaluator_degree_bound(self, code):
        cw = code.encode([3] * 16)
        received = list(cw)
        received[4] ^= 0x77
        synd = compute_syndromes(code.gf, received, code.nsym)
        lam = berlekamp_massey(code.gf, synd)
        omega = error_evaluator(code.gf, synd, lam)
        assert poly.degree(omega) < code.nsym

    def test_forney_recovers_magnitudes(self, code):
        random.seed(21)
        cw = code.encode([random.randrange(256) for _ in range(16)])
        injected = {3: 0x5A, 17: 0x01, 30: 0xF0}
        received = list(cw)
        for p, mag in injected.items():
            received[p] ^= mag
        synd = compute_syndromes(code.gf, received, code.nsym)
        lam = berlekamp_massey(code.gf, synd)
        positions = chien_search(code.gf, lam, code.n)
        assert positions == sorted(injected)
        mags = forney_magnitudes(code.gf, synd, lam, positions, code.fcr)
        assert dict(zip(positions, mags)) == injected
