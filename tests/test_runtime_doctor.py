"""``repro doctor``: audit/repair CLI over journals, manifests, locks.

Exercised in-process through ``repro.cli.main`` — the JSON report is
the machine-readable contract, the exit code is the scriptable one
(0 healthy/repaired, 1 unrepaired damage, 2 usage).
"""

import json
import warnings

import pytest

from repro.cli import main
from repro.rs import RSCode
from repro.runtime import (
    CheckpointJournal,
    JournalLock,
    RuntimeConfig,
    write_manifest,
)
from repro.simulator import simulate_fail_probability_batched

CODE = RSCode(18, 16, m=8)
LAM = 2e-3 / 24.0


def batched(runtime=None):
    return simulate_fail_probability_batched(
        "simplex",
        CODE,
        48.0,
        LAM,
        0.0,
        60,
        seed=5,
        chunk_size=20,
        runtime=runtime,
    )


def record_journal(path):
    with CheckpointJournal(path) as journal:
        journal.ensure_header({"seed": 5})
        result = batched(runtime=RuntimeConfig(journal=journal))
    return result


def doctor(capsys, *argv):
    code = main(["doctor", *argv])
    return code, json.loads(capsys.readouterr().out)


class TestAudit:
    def test_healthy_journal_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        record_journal(path)
        code, report = doctor(capsys, str(path))
        assert code == 0
        assert report["healthy"] is True
        journal = report["journals"][0]
        assert journal["classification"] == "healthy"
        assert journal["version"] == 2
        assert journal["fingerprint_present"] is True
        assert journal["lock"]["held"] is False

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main(["doctor", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_corrupt_journal_exits_one(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        record_journal(path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x02
        path.write_bytes(bytes(blob))
        code, report = doctor(capsys, str(path))
        assert code == 1
        assert report["healthy"] is False
        assert report["journals"][0]["classification"] == "corrupt"
        assert report["journals"][0]["damage"]

    def test_held_lock_is_reported(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        record_journal(path)
        with JournalLock(path):
            code, report = doctor(capsys, str(path))
        assert code == 0  # a held lock is healthy, just reported
        assert report["journals"][0]["lock"]["held"] is True

    def test_directory_audit_covers_journals_and_manifests(
        self, tmp_path, capsys
    ):
        record_journal(tmp_path / "a.jsonl")
        record_journal(tmp_path / "b.jsonl")
        write_manifest(
            tmp_path / "run.json", {"manifest_version": 2, "results": []}
        )
        (tmp_path / "notes.json").write_text('{"unrelated": true}')
        code, report = doctor(capsys, str(tmp_path))
        assert code == 0
        assert len(report["journals"]) == 2
        assert len(report["manifests"]) == 1
        assert report["manifests"][0]["ok"] is True

    def test_truncated_manifest_fails_directory_audit(self, tmp_path, capsys):
        record_journal(tmp_path / "a.jsonl")
        (tmp_path / "run.json").write_text('{"manifest_version": 2, "resu')
        code, report = doctor(capsys, str(tmp_path))
        assert code == 1
        assert report["healthy"] is False


def _make_board(tmp_path, name="run.board"):
    board = tmp_path / name
    for sub in ("todo", "leases", "done", "workers"):
        (board / sub).mkdir(parents=True)
    return board


class TestBoardAudit:
    def test_damaged_board_exits_one_then_repairs_clean(
        self, tmp_path, capsys
    ):
        import os
        import time

        board = _make_board(tmp_path)
        hb = board / "workers" / "deadhost.hb"
        hb.write_text("{}")
        old = time.time() - 3600.0
        os.utime(hb, (old, old))
        (board / "leases" / "00000001.e0000.task.deadhost").write_bytes(b"x")
        (board / "done" / "00000000.e0000.tmp.w1").write_bytes(b"torn")
        (board / "STOP").write_text("")

        code, report = doctor(capsys, str(board))
        assert code == 1
        audit = report["boards"][0]
        assert audit["healthy"] is False
        assert audit["orphaned_leases"] and audit["torn_tmp"]
        assert audit["stop_flag"] is True

        code, report = doctor(capsys, str(board), "--repair")
        assert code == 0
        assert report["boards"][0]["healthy"] is True
        assert report["repairs"][0]["actions"]
        # the orphaned chunk is re-enqueued under a bumped (fencing)
        # epoch, never double-counted
        assert (board / "todo" / "00000001.e0001.task").exists()
        assert not (board / "STOP").exists()

    def test_state_directory_audit_includes_boards(self, tmp_path, capsys):
        record_journal(tmp_path / "ckpt.jsonl")
        _make_board(tmp_path, name="ckpt.jsonl.board")
        code, report = doctor(capsys, str(tmp_path))
        assert code == 0
        assert len(report["journals"]) == 1
        assert [b["kind"] for b in report["boards"]] == ["board"]
        assert report["boards"][0]["healthy"] is True


class TestRepair:
    @pytest.mark.parametrize("mode", ["flip", "truncate"])
    def test_repair_then_resume_bit_identical(self, tmp_path, capsys, mode):
        path = tmp_path / "run.jsonl"
        reference = record_journal(path)
        blob = path.read_bytes()
        if mode == "flip":
            mutated = bytearray(blob)
            mutated[len(blob) // 2] ^= 0x10
            path.write_bytes(bytes(mutated))
        else:
            path.write_bytes(blob[: len(blob) - 9])

        code, report = doctor(capsys, str(path), "--repair")
        assert code == 0
        assert report["healthy"] is True
        assert report["repairs"] and report["repairs"][0]["repaired"]
        assert report["journals"][0]["classification"] == "healthy"

        with CheckpointJournal(path) as journal:
            resumed = batched(runtime=RuntimeConfig(journal=journal))
        assert resumed == reference

    def test_repair_quarantines_not_deletes(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        record_journal(path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x10
        path.write_bytes(bytes(blob))
        code, report = doctor(capsys, str(path), "--repair")
        assert code == 0
        assert report["repairs"][0]["quarantined_lines"] >= 1
        sidecar = report["journals"][0]["quarantine"]
        assert sidecar["exists"] is True
        assert sidecar["entries"] >= 1

    def test_repair_upgrades_v1_to_v2(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        reference = record_journal(path)
        lines = path.read_text().splitlines()
        path.write_text(
            "\n".join(line.split("|", 3)[3] for line in lines) + "\n"
        )
        code, report = doctor(capsys, str(path), "--repair")
        assert code == 0
        assert report["repairs"][0]["upgraded_from_v1"] is True
        assert report["journals"][0]["version"] == 2
        with CheckpointJournal(path) as journal:
            assert not journal.readonly
            resumed = batched(runtime=RuntimeConfig(journal=journal))
        assert resumed == reference

    def test_repair_is_idempotent(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        record_journal(path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x10
        path.write_bytes(bytes(blob))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            code1, report1 = doctor(capsys, str(path), "--repair")
            code2, report2 = doctor(capsys, str(path), "--repair")
        assert code1 == code2 == 0
        assert report1["repairs"][0]["repaired"] is True
        assert report2["repairs"] == []  # nothing left to do
