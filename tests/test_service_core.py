"""Campaign service internals: protocol, cache, queue, scheduler.

The HTTP layer is tested separately (``test_service_http.py``); here the
components are exercised directly — spec validation, cache
self-verification and quarantine, queue durability and restart replay,
and scheduler coalescing/caching/tenant caps.
"""

import json

import pytest

from repro.obs.metrics import MetricsRegistry, set_registry
from repro.service import (
    CampaignScheduler,
    JobQueue,
    ResultCache,
    SpecError,
    parse_spec,
)
from repro.service.queue import QueueError
from repro.simulator import fingerprint_digest


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = set_registry(MetricsRegistry())
    yield
    set_registry(previous)


SPEC = {
    "cells": [{"arrangement": "simplex", "seu_per_bit_day": 1e-3}],
    "trials": 40,
    "chunk_size": 16,
    "engine": "batch",
}


# --------------------------------------------------------------------------
# protocol
# --------------------------------------------------------------------------


class TestParseSpec:
    def test_minimal_spec(self):
        tenant, spec = parse_spec(SPEC)
        assert tenant == "default"
        assert spec.trials == 40
        assert (spec.n, spec.k, spec.m) == (18, 16, 8)
        assert len(spec.digest()) == 64

    def test_execution_hints_do_not_change_digest(self):
        _, base = parse_spec(SPEC)
        _, hinted = parse_spec(
            {**SPEC, "workers": 4, "executor": "pool", "tenant": "team-a"}
        )
        assert base.digest() == hinted.digest()

    def test_fleet_executor_hint_accepted_and_digest_invariant(self):
        _, base = parse_spec(SPEC)
        _, fleet = parse_spec({**SPEC, "executor": "fleet"})
        assert fleet.executor == "fleet"
        assert fleet.digest() == base.digest()

    def test_engine_choice_does_not_change_digest(self):
        # engine is an execution hint (every batch backend is
        # bit-identical), so the cache key must be engine-invariant
        _, base = parse_spec(SPEC)
        _, pinned = parse_spec({**SPEC, "engine": "numpy"})
        assert pinned.digest() == base.digest()

    def test_identity_fields_change_digest(self):
        _, base = parse_spec(SPEC)
        for delta in (
            {"trials": 41},
            {"seed": 1},
            {"chunk_size": 32},
            {"t_end_hours": 24.0},
            {"stopping": {"rel_ci": 0.5}},
        ):
            _, other = parse_spec({**SPEC, **delta})
            assert other.digest() != base.digest(), delta

    def test_scenario_expands_to_same_digest_as_explicit_cells(self):
        from repro.simulator.scenarios import get_scenario

        scenario = get_scenario("iid-baseline")
        _, by_name = parse_spec({"scenario": "iid-baseline"})
        _, explicit = parse_spec(
            {
                "cells": [
                    {
                        "arrangement": c.arrangement,
                        "seu_per_bit_day": c.seu_per_bit_day,
                        "erasure_per_symbol_day": c.erasure_per_symbol_day,
                        "scrub_period_seconds": c.scrub_period_seconds,
                        "pattern": c.pattern,
                        "schedule": c.schedule,
                    }
                    for c in scenario.cells
                ],
                "n": scenario.n,
                "k": scenario.k,
                "m": scenario.m,
                "t_end_hours": scenario.t_end_hours,
                "trials": scenario.trials,
                "seed": scenario.seed,
            }
        )
        assert by_name.digest() == explicit.digest()

    @pytest.mark.parametrize(
        "bad",
        [
            {},  # no cells, no scenario
            {"cells": []},
            {"cells": "nope"},
            {**SPEC, "bogus": 1},
            {**SPEC, "cells": [{"arrangement": "triplex"}]},
            {**SPEC, "cells": [{"arrangement": "simplex", "nope": 1}]},
            {**SPEC, "scenario": "iid-baseline"},  # exclusive with cells
            {"scenario": "no-such-scenario"},
            {**SPEC, "trials": 0},
            {**SPEC, "trials": 10**9},
            {**SPEC, "trials": 1.5},
            {**SPEC, "seed": -1},
            {**SPEC, "n": 300},  # n > 2^m - 1
            {**SPEC, "k": 18},  # k >= n
            {**SPEC, "m": 17},
            {**SPEC, "engine": "gpu"},
            {**SPEC, "engine": "reference", "stopping": {"rel_ci": 0.5}},
            {**SPEC, "engine": "reference", "executor": "pool"},
            {**SPEC, "stopping": {"min_trials": 5}},  # rel_ci required
            {**SPEC, "stopping": {"rel_ci": 0.5, "method": "exact"}},
            {**SPEC, "stopping": {"rel_ci": 0.5, "confidence": 1.5}},
            {**SPEC, "workers": 0},
            {**SPEC, "executor": "quantum"},
            {**SPEC, "tenant": ""},
            {**SPEC, "tenant": "bad tenant!"},
            {**SPEC, "chunk_size": 0},
            "not-an-object",
        ],
    )
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(SpecError):
            parse_spec(bad)

    def test_spec_roundtrips_through_as_dict(self):
        _, spec = parse_spec(
            {**SPEC, "stopping": {"rel_ci": 0.5, "min_trials": 10}}
        )
        _, again = parse_spec(spec.as_dict())
        assert again.digest() == spec.digest()
        assert again == spec


# --------------------------------------------------------------------------
# cache
# --------------------------------------------------------------------------


class TestResultCache:
    FP = {"schema": 3, "trials": 10, "cells": []}

    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = fingerprint_digest(self.FP)
        assert cache.get(digest) is None
        cache.put(self.FP, {"rows": [1, 2]})
        entry = cache.get(digest)
        assert entry["result"] == {"rows": [1, 2]}
        assert entry["fingerprint"] == self.FP

    def test_bad_digest_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError):
            cache.path_for("../../etc/passwd")
        with pytest.raises(ValueError):
            cache.path_for("ab" * 31)

    def test_two_level_fanout(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(self.FP, {})
        digest = fingerprint_digest(self.FP)
        assert path.parent.name == digest[:2]

    def test_corrupt_entry_quarantined_not_served(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(self.FP, {"rows": [1]})
        digest = fingerprint_digest(self.FP)
        text = path.read_text().replace('"rows"', '"cows"')
        path.write_text(text)
        assert cache.get(digest) is None  # body hash mismatch -> miss
        assert not path.exists()
        assert path.with_suffix(".json.quarantine").exists()

    def test_audit_healthy_and_damaged(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(self.FP, {"rows": []})
        report = cache.audit()
        assert report["healthy"]
        assert [e["verdict"] for e in report["entries"]] == ["healthy"]

        path = cache.path_for(fingerprint_digest(self.FP))
        path.write_text("{broken")
        report = cache.audit()
        assert not report["healthy"]
        assert [e["verdict"] for e in report["entries"]] == ["unreadable"]
        assert path.exists()  # audit is read-only

    def test_audit_detects_misfiled_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(self.FP, {})
        wrong = tmp_path / "00" / ("0" * 64 + ".json")
        wrong.parent.mkdir(exist_ok=True)
        wrong.write_text(path.read_text())
        verdicts = {
            e["path"]: e["verdict"] for e in cache.audit()["entries"]
        }
        assert verdicts[str(wrong)] == "misfiled"
        assert verdicts[str(path)] == "healthy"


# --------------------------------------------------------------------------
# queue
# --------------------------------------------------------------------------


class TestJobQueue:
    def test_jobs_survive_reload(self, tmp_path):
        path = tmp_path / "queue.journal"
        with JobQueue(path) as queue:
            tenant, spec = parse_spec(SPEC)
            job = queue.add(tenant, spec, SPEC)
            queue.mark(job, "running")
            queue.mark(job, "done", result_digest=job.digest)
        with JobQueue(path) as queue:
            again = queue.jobs[job.id]
            assert again.state == "done"
            assert again.result_digest == job.digest
            assert again.digest == job.digest

    def test_running_reverts_to_queued_on_reload(self, tmp_path):
        path = tmp_path / "queue.journal"
        with JobQueue(path) as queue:
            tenant, spec = parse_spec(SPEC)
            job = queue.add(tenant, spec, SPEC)
            queue.mark(job, "running")
        with JobQueue(path) as queue:
            assert queue.jobs[job.id].state == "queued"
            assert queue.queued_jobs()[0].id == job.id

    def test_job_ids_stable_across_restarts(self, tmp_path):
        path = tmp_path / "queue.journal"
        with JobQueue(path) as queue:
            tenant, spec = parse_spec(SPEC)
            first = queue.add(tenant, spec, SPEC)
        with JobQueue(path) as queue:
            tenant, spec = parse_spec({**SPEC, "seed": 9})
            second = queue.add(tenant, spec, {**SPEC, "seed": 9})
        assert first.id == "j00000000"
        assert second.id == "j00000001"

    def test_corrupt_record_quarantined_on_load(self, tmp_path):
        path = tmp_path / "queue.journal"
        with JobQueue(path) as queue:
            tenant, spec = parse_spec(SPEC)
            queue.add(tenant, spec, SPEC)
            queue.add(tenant, parse_spec({**SPEC, "seed": 5})[1],
                      {**SPEC, "seed": 5})
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-4] + "beef"  # flip bytes mid-file
        path.write_text("\n".join(lines) + "\n")
        with JobQueue(path) as queue:
            assert queue.records_quarantined == 1
        assert path.with_suffix(".journal.quarantine").exists()

    def test_torn_tail_truncated_silently(self, tmp_path):
        path = tmp_path / "queue.journal"
        with JobQueue(path) as queue:
            tenant, spec = parse_spec(SPEC)
            queue.add(tenant, spec, SPEC)
        with open(path, "a") as fh:
            fh.write("2|deadbeef|torn")  # no newline: torn final write
        with JobQueue(path) as queue:
            assert queue.records_quarantined == 0
            assert len(queue.jobs) == 1

    def test_active_by_digest(self, tmp_path):
        with JobQueue(tmp_path / "q.journal") as queue:
            tenant, spec = parse_spec(SPEC)
            job = queue.add(tenant, spec, SPEC)
            assert queue.active_by_digest(spec.digest()) is job
            queue.mark(job, "done")
            assert queue.active_by_digest(spec.digest()) is None

    def test_unknown_state_rejected(self, tmp_path):
        with JobQueue(tmp_path / "q.journal") as queue:
            tenant, spec = parse_spec(SPEC)
            job = queue.add(tenant, spec, SPEC)
            with pytest.raises(ValueError):
                queue.mark(job, "paused")

    def test_v1_journal_refused(self, tmp_path):
        path = tmp_path / "queue.journal"
        path.write_text(json.dumps({"kind": "header"}) + "\n")
        with pytest.raises(QueueError):
            JobQueue(path)

    def test_second_queue_on_same_path_locked_out(self, tmp_path):
        from repro.runtime.integrity import JournalLockedError

        path = tmp_path / "queue.journal"
        with JobQueue(path):
            with pytest.raises(JournalLockedError):
                JobQueue(path)


# --------------------------------------------------------------------------
# scheduler
# --------------------------------------------------------------------------


def make_scheduler(tmp_path, **kw):
    return CampaignScheduler(tmp_path / "state", **kw)


class TestScheduler:
    def test_run_then_cache_hit_zero_new_trials(self, tmp_path):
        sched = make_scheduler(tmp_path).start()
        try:
            first = sched.submit(SPEC)
            assert not first.cached and not first.coalesced
            assert sched.wait(first.job.id, timeout=120) == "done"
            first_entry = sched.result_entry(first.job)

            # Fresh registry: the cache-hit submit must record zero
            # Monte-Carlo work (the "0 new trials" acceptance check).
            registry = MetricsRegistry()
            previous = set_registry(registry)
            try:
                second = sched.submit(dict(SPEC))
            finally:
                set_registry(previous)
            assert second.cached and second.job.state == "done"
            snapshot = registry.snapshot()
            assert not any(
                name.startswith(("repro.mc.", "repro.perf."))
                for name in snapshot
            )
            assert snapshot["repro.service.cache_hits"]["value"] == 1

            second_entry = sched.result_entry(second.job)
            assert second_entry["result"] == first_entry["result"]
            assert second_entry["body_sha256"] == first_entry["body_sha256"]
        finally:
            sched.stop()

    def test_job_reports_engine_and_per_chunk_kernel_seconds(self, tmp_path):
        from repro.obs.metrics import get_registry
        from repro.runtime.supervisor import CHUNK_KERNEL_METRIC

        sched = make_scheduler(tmp_path).start()
        try:
            out = sched.submit(SPEC)
            assert sched.wait(out.job.id, timeout=120) == "done"
            status = out.job.status_dict()
            assert status["engine"] == "batch"
            assert status["engine_resolved"] == "numpy"  # legacy alias
            rows = status["kernel_seconds"]
            # 40 trials / 16 per chunk -> 3 chunks for the single cell
            assert [r["chunk"] for r in rows] == [0, 1, 2]
            assert all(r["kernel_seconds"] >= 0.0 for r in rows)
            # /metrics: every chunk with kernel time observed exactly once
            busy = sum(1 for r in rows if r["kernel_seconds"] > 0.0)
            snapshot = get_registry().snapshot()
            if busy:
                assert snapshot[CHUNK_KERNEL_METRIC]["count"] == busy
        finally:
            sched.stop()

    def test_perturbed_spec_misses_cache(self, tmp_path):
        sched = make_scheduler(tmp_path).start()
        try:
            first = sched.submit(SPEC)
            sched.wait(first.job.id, timeout=120)
            second = sched.submit({**SPEC, "seed": 2006})
            assert not second.cached
            assert second.job.id != first.job.id
        finally:
            sched.stop()

    def test_identical_active_submissions_coalesce(self, tmp_path):
        # One worker, so the first job is still queued/running when the
        # duplicates arrive.
        sched = make_scheduler(tmp_path, max_jobs=1).start()
        try:
            first = sched.submit(SPEC)
            dupe = sched.submit(dict(SPEC))
            assert dupe.coalesced
            assert dupe.job.id == first.job.id
            assert sched.wait(first.job.id, timeout=120) == "done"
            assert len(sched.list_jobs()) == 1
        finally:
            sched.stop()

    def test_invalid_spec_raises_spec_error(self, tmp_path):
        sched = make_scheduler(tmp_path)
        try:
            with pytest.raises(SpecError):
                sched.submit({"cells": []})
        finally:
            sched.stop()

    def test_failed_job_reported_not_fatal(self, tmp_path):
        # n/k/m pass spec validation but RSCode construction can still
        # fail for configurations the codec refuses; force a failure by
        # monkeypatching is avoided — use a spec that fails in run:
        # scalar engine with a stopping rule is rejected at parse time,
        # so instead break the runtime via an unsatisfiable chunk size.
        sched = make_scheduler(tmp_path).start()
        try:
            import repro.service.scheduler as sched_mod

            original = sched_mod.run_campaign

            def boom(*a, **k):
                raise RuntimeError("injected failure")

            sched_mod.run_campaign = boom
            try:
                outcome = sched.submit(SPEC)
                assert sched.wait(outcome.job.id, timeout=60) == "failed"
                assert "injected failure" in outcome.job.error
            finally:
                sched_mod.run_campaign = original
        finally:
            sched.stop()

    def test_tenant_cap_limits_concurrency(self, tmp_path):
        sched = make_scheduler(tmp_path, max_jobs=2, tenant_cap=1)
        try:
            tenant, spec_a = parse_spec({**SPEC, "tenant": "acme"})
            job_a = sched.queue.add(tenant, spec_a, {**SPEC, "tenant": "acme"})
            sched.queue.mark(job_a, "running")
            with sched._cv:
                sched._running_by_tenant["acme"] = 1
                tenant_b, spec_b = parse_spec(
                    {**SPEC, "seed": 99, "tenant": "acme"}
                )
                job_b = sched.queue.add(
                    tenant_b, spec_b, {**SPEC, "seed": 99, "tenant": "acme"}
                )
                # acme is at cap: its queued job must not be claimable.
                assert sched._claimable() is None
                tenant_c, spec_c = parse_spec(
                    {**SPEC, "seed": 7, "tenant": "other"}
                )
                job_c = sched.queue.add(
                    tenant_c, spec_c, {**SPEC, "seed": 7, "tenant": "other"}
                )
                assert sched._claimable() is job_c
                assert job_b.state == "queued"
        finally:
            sched.stop()

    def test_restart_resumes_queued_job(self, tmp_path):
        # Submit without workers, "crash" (close without running), then
        # restart with workers: the job must complete from the journal.
        sched = make_scheduler(tmp_path)  # not started: no workers
        outcome = sched.submit(SPEC)
        job_id = outcome.job.id
        sched.queue.close()  # abandon without marking

        sched2 = make_scheduler(tmp_path).start()
        try:
            job = sched2.get_job(job_id)
            assert job is not None
            assert sched2.wait(job_id, timeout=120) == "done"
            assert sched2.result_entry(job)["result"]["rows"]
        finally:
            sched2.stop()
