"""Property-based tests of the RS codec round-trip guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rs import RSCode, RSDecodingError

_CODES = {
    (18, 16, 8): RSCode(18, 16, m=8),
    (36, 16, 8): RSCode(36, 16, m=8),
    (15, 9, 4): RSCode(15, 9, m=4),
    (7, 3, 3): RSCode(7, 3, m=3),
}


@st.composite
def code_data_and_errata(draw):
    """A code, a dataword, and an error/erasure pattern within capability."""
    params = draw(st.sampled_from(sorted(_CODES)))
    code = _CODES[params]
    data = draw(
        st.lists(
            st.integers(min_value=0, max_value=code.gf.order - 1),
            min_size=code.k,
            max_size=code.k,
        )
    )
    er = draw(st.integers(min_value=0, max_value=code.nsym))
    re = draw(st.integers(min_value=0, max_value=(code.nsym - er) // 2))
    positions = draw(
        st.permutations(range(code.n)).map(lambda p: list(p[: er + re]))
    )
    magnitudes = draw(
        st.lists(
            st.integers(min_value=1, max_value=code.gf.order - 1),
            min_size=er + re,
            max_size=er + re,
        )
    )
    return code, data, positions[:er], positions[er:], magnitudes


class TestRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(code_data_and_errata())
    def test_decode_recovers_any_pattern_within_capability(self, case):
        code, data, erasures, errors, magnitudes = case
        cw = code.encode(data)
        corrupted = list(cw)
        for pos, mag in zip(erasures + errors, magnitudes):
            corrupted[pos] ^= mag
        result = code.decode(corrupted, erasure_positions=erasures)
        assert result.codeword == cw
        assert result.data == data

    @settings(max_examples=60, deadline=None)
    @given(code_data_and_errata())
    def test_decode_reports_changed_positions(self, case):
        code, data, erasures, errors, magnitudes = case
        cw = code.encode(data)
        corrupted = list(cw)
        for pos, mag in zip(erasures + errors, magnitudes):
            corrupted[pos] ^= mag
        result = code.decode(corrupted, erasure_positions=erasures)
        assert sorted(result.error_positions) == sorted(
            set(erasures + errors)
        )
        assert result.corrected == bool(erasures + errors)

    @settings(max_examples=60, deadline=None)
    @given(code_data_and_errata())
    def test_encode_is_deterministic_and_systematic(self, case):
        code, data, _erasures, _errors, _magnitudes = case
        cw1 = code.encode(data)
        cw2 = code.encode(data)
        assert cw1 == cw2
        assert cw1[code.nsym :] == data


class TestBeyondCapability:
    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=16, max_size=16),
        st.sets(st.integers(min_value=0, max_value=17), min_size=3, max_size=6),
        st.randoms(use_true_random=False),
    )
    def test_never_returns_invalid_codeword(self, data, positions, rnd):
        """Whatever the decoder does past capability, its output is a codeword."""
        code = _CODES[(18, 16, 8)]
        cw = code.encode(data)
        corrupted = list(cw)
        for pos in positions:
            corrupted[pos] ^= rnd.randrange(1, 256)
        try:
            result = code.decode(corrupted)
        except RSDecodingError:
            return
        assert code.is_codeword(result.codeword)
