"""Unit tests for the bit-level memory word."""

import pytest

from repro.simulator import MemoryWord


@pytest.fixture
def word():
    return MemoryWord([0x00, 0xFF, 0x55, 0xAA], m=8)


class TestConstruction:
    def test_rejects_out_of_range_symbols(self):
        with pytest.raises(ValueError):
            MemoryWord([256], m=8)

    def test_initial_read_matches_write(self, word):
        assert word.read() == [0x00, 0xFF, 0x55, 0xAA]

    def test_repr(self, word):
        assert "n=4" in repr(word)


class TestSEU:
    def test_flip_inverts_single_bit(self, word):
        word.flip_bit(0, 3)
        assert word.read_symbol(0) == 0x08

    def test_double_flip_restores(self, word):
        word.flip_bit(2, 6)
        word.flip_bit(2, 6)
        assert word.read_symbol(2) == 0x55

    def test_flip_bounds_checked(self, word):
        with pytest.raises(IndexError):
            word.flip_bit(4, 0)
        with pytest.raises(IndexError):
            word.flip_bit(0, 8)


class TestStuckAt:
    def test_stuck_cell_overrides_stored_value(self, word):
        word.make_stuck(1, 0, 0)  # 0xFF loses bit 0
        assert word.read_symbol(1) == 0xFE

    def test_benign_stuck_at_matching_value(self, word):
        word.make_stuck(1, 0, 1)  # bit already 1
        assert word.read_symbol(1) == 0xFF
        # located even though currently benign
        assert word.is_erased(1)

    def test_stuck_survives_rewrite(self, word):
        word.make_stuck(0, 7, 1)
        word.write([0x00, 0x00, 0x00, 0x00])
        assert word.read_symbol(0) == 0x80

    def test_flip_against_stuck_bit_absorbed(self, word):
        word.make_stuck(3, 1, 1)
        word.flip_bit(3, 1)
        assert word.read_symbol(3) & 0x02 == 0x02

    def test_flip_on_other_bits_of_stuck_symbol_still_works(self, word):
        word.make_stuck(3, 1, 1)
        word.flip_bit(3, 0)
        assert word.read_symbol(3) & 0x01 == (0xAA ^ 0x01) & 0x01

    def test_located_positions_sorted_unique(self, word):
        word.make_stuck(2, 0, 0)
        word.make_stuck(0, 5, 1)
        word.make_stuck(2, 3, 1)  # second fault, same symbol
        assert word.located_positions == [0, 2]

    def test_stuck_value_validation(self, word):
        with pytest.raises(ValueError):
            word.make_stuck(0, 0, 2)


class TestWrite:
    def test_write_length_checked(self, word):
        with pytest.raises(ValueError):
            word.write([0, 1, 2])

    def test_write_then_read(self, word):
        word.write([1, 2, 3, 4])
        assert word.read() == [1, 2, 3, 4]
