"""Tests for absorbing-chain analysis (fundamental-matrix quantities)."""

import math

import numpy as np
import pytest

from repro.markov import (
    CTMC,
    absorption_probabilities,
    expected_time_in_states,
    mean_time_to_absorption,
)


@pytest.fixture
def fork():
    """A -> B (rate 1) or A -> C (rate 3); B, C absorbing."""
    return CTMC(["A", "B", "C"], [("A", "B", 1.0), ("A", "C", 3.0)], "A")


@pytest.fixture
def two_stage():
    """A -> B -> C, rates 2 and 4; C absorbing."""
    return CTMC(["A", "B", "C"], [("A", "B", 2.0), ("B", "C", 4.0)], "A")


class TestAbsorptionProbabilities:
    def test_fork_splits_by_rates(self, fork):
        probs = absorption_probabilities(fork)
        assert probs["B"] == pytest.approx(0.25)
        assert probs["C"] == pytest.approx(0.75)

    def test_single_absorber_gets_everything(self, two_stage):
        probs = absorption_probabilities(two_stage)
        assert probs["C"] == pytest.approx(1.0)

    def test_initial_mass_on_absorbing_state_counted(self):
        chain = CTMC(
            ["A", "B"], [("A", "B", 1.0)], {"A": 0.4, "B": 0.6}
        )
        probs = absorption_probabilities(chain)
        assert probs["B"] == pytest.approx(1.0)

    def test_no_absorbing_states_raises(self):
        chain = CTMC(["A", "B"], [("A", "B", 1.0), ("B", "A", 1.0)], "A")
        with pytest.raises(ValueError, match="no absorbing"):
            absorption_probabilities(chain)

    def test_matches_long_run_transient(self, fork):
        probs = absorption_probabilities(fork)
        limit = fork.transient([1000.0])[0]
        assert probs["B"] == pytest.approx(limit[fork.index["B"]], rel=1e-9)
        assert probs["C"] == pytest.approx(limit[fork.index["C"]], rel=1e-9)

    def test_duplex_model_failure_mass(self):
        """End-to-end: the duplex chain eventually always fails without
        scrubbing, and absorption mass says so."""
        from repro.memory import duplex_model

        model = duplex_model(18, 16, seu_per_bit_day=1e-3)
        probs = absorption_probabilities(model.chain)
        assert probs["FAIL"] == pytest.approx(1.0)


class TestExpectedTimeInStates:
    def test_two_stage_sojourns(self, two_stage):
        sojourn = expected_time_in_states(two_stage)
        assert sojourn["A"] == pytest.approx(0.5)
        assert sojourn["B"] == pytest.approx(0.25)
        assert "C" not in sojourn

    def test_sojourns_sum_to_mtta(self, two_stage):
        sojourn = expected_time_in_states(two_stage)
        assert sum(sojourn.values()) == pytest.approx(
            mean_time_to_absorption(two_stage)
        )

    def test_unreachable_absorber_gives_inf(self):
        chain = CTMC(
            ["A", "B", "C"],
            [("A", "B", 1.0), ("B", "A", 1.0), ("A", "C", 0.0)],
            "A",
        )
        # C unreachable: A and B cycle forever
        chain2 = CTMC(
            ["A", "B", "C"], [("A", "B", 1.0), ("B", "A", 1.0)], "A"
        )
        sojourn = expected_time_in_states(chain2)
        assert math.isinf(sojourn["A"]) or math.isinf(sojourn["B"])


class TestStationaryDistribution:
    def test_two_state_balance(self):
        chain = CTMC(["A", "B"], [("A", "B", 1.0), ("B", "A", 3.0)], "A")
        pi = chain.stationary_distribution()
        assert pi[chain.index["A"]] == pytest.approx(0.75)
        assert pi[chain.index["B"]] == pytest.approx(0.25)

    def test_matches_long_run_transient(self):
        chain = CTMC(
            ["A", "B", "C"],
            [
                ("A", "B", 1.0),
                ("B", "C", 2.0),
                ("C", "A", 0.5),
                ("B", "A", 1.0),
            ],
            "A",
        )
        pi = chain.stationary_distribution()
        limit = chain.transient([500.0])[0]
        assert np.allclose(pi, limit, atol=1e-8)

    def test_sums_to_one(self):
        chain = CTMC(["A", "B"], [("A", "B", 0.1), ("B", "A", 0.2)], "A")
        assert chain.stationary_distribution().sum() == pytest.approx(1.0)
