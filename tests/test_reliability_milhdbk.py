"""Unit tests for the MIL-HDBK-217-style parts-stress model."""

import pytest

from repro.reliability import (
    MemoryChip,
    die_complexity_factor,
    learning_factor,
    package_factor,
    temperature_factor,
)


class TestFactors:
    def test_temperature_reference_is_unity(self):
        assert temperature_factor(25.0) == pytest.approx(1.0)

    def test_temperature_increases_rate(self):
        assert temperature_factor(85.0) > temperature_factor(40.0) > 1.0

    def test_temperature_below_absolute_zero_rejected(self):
        with pytest.raises(ValueError):
            temperature_factor(-300.0)

    def test_die_complexity_steps(self):
        assert die_complexity_factor(16_384) == 0.0052
        assert die_complexity_factor(16_385) == 0.0104
        assert die_complexity_factor(1_048_576) == 0.0416

    def test_die_complexity_extends_beyond_table(self):
        beyond = die_complexity_factor(64 * 1024 * 1024)
        assert beyond > die_complexity_factor(16 * 1024 * 1024)

    def test_die_complexity_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            die_complexity_factor(0)

    def test_package_factor_grows_with_pins(self):
        assert package_factor(64) > package_factor(28)

    def test_learning_factor_settles(self):
        assert learning_factor(0.0) == 2.0
        assert learning_factor(2.0) == 1.0
        assert learning_factor(10.0) == 1.0
        assert 1.0 < learning_factor(1.0) < 2.0


class TestMemoryChip:
    def test_rate_positive(self):
        chip = MemoryChip(capacity_bits=4 * 1024 * 1024)
        assert chip.failure_rate_per_hour() > 0

    def test_commercial_parts_worse_than_class_s(self):
        """The paper's COTS-vs-space-certified tension, quantified."""
        cots = MemoryChip(capacity_bits=1 << 22, quality="commercial")
        space = MemoryChip(capacity_bits=1 << 22, quality="class_s")
        assert (
            cots.failure_rate_per_hour() / space.failure_rate_per_hour() == 40.0
        )

    def test_hot_parts_fail_faster(self):
        cool = MemoryChip(capacity_bits=1 << 20, junction_celsius=30.0)
        hot = MemoryChip(capacity_bits=1 << 20, junction_celsius=90.0)
        assert hot.failure_rate_per_hour() > cool.failure_rate_per_hour()

    def test_unknown_environment_rejected(self):
        with pytest.raises(ValueError, match="environment"):
            MemoryChip(capacity_bits=1024, environment="underwater").\
                failure_rate_per_1e6_hours()

    def test_unknown_quality_rejected(self):
        with pytest.raises(ValueError, match="quality"):
            MemoryChip(capacity_bits=1024, quality="artisanal").\
                failure_rate_per_1e6_hours()

    def test_symbol_rate_in_paper_sweep_range(self):
        """The derived per-symbol per-day rates land inside the paper's
        swept decade range (1e-10 .. 1e-4)."""
        chip = MemoryChip(capacity_bits=4 * 1024 * 1024, quality="commercial")
        rate = chip.symbol_erasure_rate_per_day(symbols_per_chip=512 * 1024)
        assert 1e-10 < rate < 1e-4

    def test_symbol_rate_validation(self):
        chip = MemoryChip(capacity_bits=1024)
        with pytest.raises(ValueError):
            chip.symbol_erasure_rate_per_day(0)
