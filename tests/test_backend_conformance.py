"""Run the shared RS-backend conformance suite over every backend.

The suite itself lives in :mod:`tests.backend_conformance` (a library
module, deliberately outside pytest's ``test_*``/``bench_*`` collection
patterns) so other drivers — future backends, out-of-tree engines — can
subclass it too.  Registering a new backend and subclassing the suite
here is the *entire* cost of proving it honors the contract.
"""

from tests.backend_conformance import BackendConformanceSuite


class TestBackendConformance(BackendConformanceSuite):
    pass
