"""Tests for block interleaving and burst protection."""

import random

import pytest

from repro.rs import (
    BlockInterleaver,
    RSCode,
    decode_interleaved,
    encode_interleaved,
    max_correctable_burst,
)


@pytest.fixture(scope="module")
def code():
    return RSCode(18, 16, m=8)


def random_datawords(code, depth, seed=0):
    rng = random.Random(seed)
    return [
        [rng.randrange(code.gf.order) for _ in range(code.k)]
        for _ in range(depth)
    ]


class TestInterleaver:
    def test_validation(self):
        with pytest.raises(ValueError):
            BlockInterleaver(0, 18)
        with pytest.raises(ValueError):
            BlockInterleaver(4, 0)

    def test_roundtrip(self):
        il = BlockInterleaver(3, 5)
        cws = [[i * 10 + j for j in range(5)] for i in range(3)]
        assert il.deinterleave(il.interleave(cws)) == cws

    def test_wrong_codeword_count_rejected(self):
        il = BlockInterleaver(3, 5)
        with pytest.raises(ValueError, match="expected 3"):
            il.interleave([[0] * 5] * 2)

    def test_wrong_stream_length_rejected(self):
        il = BlockInterleaver(3, 5)
        with pytest.raises(ValueError):
            il.deinterleave([0] * 14)

    def test_adjacent_stream_symbols_in_different_lanes(self):
        il = BlockInterleaver(4, 6)
        cws = [[lane] * 6 for lane in range(4)]
        stream = il.interleave(cws)
        for p in range(len(stream) - 1):
            assert stream[p] != stream[p + 1]

    def test_burst_spread_counts(self):
        il = BlockInterleaver(4, 6)
        touched = il.codewords_touched_by_burst(start=2, length=6)
        # 6 consecutive symbols over depth 4: two lanes get 2, two get 1
        assert sorted(touched.values()) == [1, 1, 2, 2]

    def test_burst_bounds_checked(self):
        il = BlockInterleaver(4, 6)
        with pytest.raises(ValueError):
            il.codewords_touched_by_burst(start=24, length=1)


class TestBurstCorrection:
    def test_max_correctable_burst_formula(self, code):
        assert max_correctable_burst(code, 1) == 1   # t = 1
        assert max_correctable_burst(code, 8) == 8
        strong = RSCode(36, 16, m=8)
        assert max_correctable_burst(strong, 4) == 40

    def test_burst_at_limit_decodes_every_position(self, code):
        depth = 5
        datas = random_datawords(code, depth, seed=1)
        stream = encode_interleaved(code, datas, depth)
        limit = max_correctable_burst(code, depth)
        rng = random.Random(2)
        for start in range(0, len(stream) - limit, 7):
            corrupted = list(stream)
            for p in range(start, start + limit):
                corrupted[p] ^= rng.randrange(1, 256)
            assert decode_interleaved(code, corrupted, depth) == datas

    def test_burst_beyond_limit_can_fail(self, code):
        """One symbol past the bound puts t+1 errors in some lane."""
        depth = 3
        datas = random_datawords(code, depth, seed=3)
        stream = encode_interleaved(code, datas, depth)
        limit = max_correctable_burst(code, depth)
        corrupted = list(stream)
        rng = random.Random(4)
        for p in range(0, limit + 1):
            corrupted[p] ^= rng.randrange(1, 256)
        # the lane hit twice now holds 2 > t errors
        from repro.rs import RSDecodingError

        with pytest.raises(RSDecodingError):
            decode_interleaved(code, corrupted, depth)

    def test_without_interleaving_same_burst_kills(self, code):
        """Contrast: a burst of length depth*t on ONE codeword is fatal,
        which is the entire point of interleaving."""
        data = random_datawords(code, 1, seed=5)[0]
        cw = code.encode(data)
        corrupted = list(cw)
        rng = random.Random(6)
        for p in range(5):  # burst of 5 >> t = 1
            corrupted[p] ^= rng.randrange(1, 256)
        from repro.rs import RSDecodingError

        try:
            result = code.decode(corrupted)
            assert result.data != data  # mis-correction at best
        except RSDecodingError:
            pass
