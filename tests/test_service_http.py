"""The campaign service over HTTP: endpoints, streaming, restart-resume.

In-process tests drive :func:`repro.service.start_in_thread` with
``urllib`` (no test client dependency); the chaos-marked restart test
SIGKILLs a real ``repro serve`` subprocess mid-campaign and requires the
resumed result to be bit-identical to an uninterrupted run.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

import repro
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.service import CampaignScheduler, start_in_thread

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

SPEC = {
    "cells": [{"arrangement": "simplex", "seu_per_bit_day": 1e-3}],
    "trials": 40,
    "chunk_size": 16,
    "engine": "batch",
}


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = set_registry(MetricsRegistry())
    yield
    set_registry(previous)


@pytest.fixture()
def service(tmp_path):
    scheduler = CampaignScheduler(tmp_path / "state", max_jobs=2).start()
    server = start_in_thread(scheduler)
    yield f"http://127.0.0.1:{server.port}", scheduler
    server.stop()
    scheduler.stop()


def _post(base, payload, path="/v1/jobs"):
    data = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
    request = urllib.request.Request(base + path, data=data, method="POST")
    with urllib.request.urlopen(request) as response:
        return json.load(response)


def _get(base, path):
    with urllib.request.urlopen(base + path) as response:
        return json.load(response)


def _get_raw(base, path):
    with urllib.request.urlopen(base + path) as response:
        return response.read().decode()


def _status(base, path, method="GET", data=None):
    request = urllib.request.Request(base + path, data=data, method=method)
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


class TestEndpoints:
    def test_submit_poll_result_roundtrip(self, service):
        base, scheduler = service
        out = _post(base, SPEC)
        assert out["state"] == "queued" and not out["cached"]
        job_id = out["job_id"]
        scheduler.wait(job_id, timeout=120)

        status = _get(base, f"/v1/jobs/{job_id}")
        assert status["state"] == "done"
        assert status["fingerprint_digest"] == out["fingerprint_digest"]

        result = _get(base, f"/v1/jobs/{job_id}/result")
        assert result["fingerprint_digest"] == out["fingerprint_digest"]
        rows = result["result"]["rows"]
        assert len(rows) == 1 and rows[0]["trials"] == 40

        listing = _get(base, "/v1/jobs")
        assert [j["id"] for j in listing["jobs"]] == [job_id]

    def test_resubmit_served_from_cache_bit_identical(self, service):
        base, scheduler = service
        first = _post(base, SPEC)
        scheduler.wait(first["job_id"], timeout=120)
        first_result = _get(base, f"/v1/jobs/{first['job_id']}/result")

        second = _post(base, SPEC)
        assert second["cached"] and second["state"] == "done"
        assert second["job_id"] != first["job_id"]
        second_result = _get(base, f"/v1/jobs/{second['job_id']}/result")
        assert second_result["result"] == first_result["result"]
        assert second_result["cached"] is True

    def test_concurrent_identical_submits_coalesce(self, tmp_path):
        scheduler = CampaignScheduler(tmp_path / "s", max_jobs=1).start()
        server = start_in_thread(scheduler)
        base = f"http://127.0.0.1:{server.port}"
        try:
            slow = {**SPEC, "trials": 4000, "chunk_size": 16}
            first = _post(base, slow)
            dupes = [_post(base, slow) for _ in range(3)]
            assert all(d["coalesced"] for d in dupes)
            assert {d["job_id"] for d in dupes} == {first["job_id"]}
            scheduler.wait(first["job_id"], timeout=300)
            assert len(_get(base, "/v1/jobs")["jobs"]) == 1
        finally:
            server.stop()
            scheduler.stop()

    def test_stream_ndjson_snapshots_then_status(self, service):
        base, scheduler = service
        out = _post(base, SPEC)
        body = _get_raw(base, f"/v1/jobs/{out['job_id']}/stream")
        lines = [json.loads(line) for line in body.splitlines()]
        assert lines, "stream produced no lines"
        assert lines[-1]["kind"] == "status"
        assert lines[-1]["state"] == "done"
        snapshots = [line for line in lines if line["kind"] == "snapshot"]
        # 40 trials / 16 chunk -> 3 chunks -> 3 snapshots, in order.
        assert [s["seq"] for s in snapshots] == list(range(len(snapshots)))
        assert snapshots[-1]["trials"] == 40

    def test_metrics_scrape(self, service):
        base, scheduler = service
        out = _post(base, SPEC)
        scheduler.wait(out["job_id"], timeout=120)
        text = _get_raw(base, "/metrics")
        assert "# TYPE repro_service_jobs_submitted counter" in text
        assert "repro_service_jobs_submitted 1" in text
        assert "repro_service_cache_misses 1" in text
        assert "# TYPE repro_mc_chunk_seconds histogram" in text
        assert 'repro_mc_chunk_seconds_bucket{le="+Inf"}' in text

    def test_trace_export(self, service):
        base, scheduler = service
        out = _post(base, SPEC)
        scheduler.wait(out["job_id"], timeout=120)
        body = _get_raw(base, f"/v1/jobs/{out['job_id']}/trace")
        records = [json.loads(line) for line in body.splitlines()]
        spans = [r for r in records if r.get("name") == "service_job"]
        assert spans and spans[0]["attrs"]["job"] == out["job_id"]

    def test_healthz(self, service):
        base, _ = service
        assert _get(base, "/healthz") == {"ok": True}


class TestErrorPaths:
    def test_invalid_spec_is_400(self, service):
        base, _ = service
        code, body = _status(
            base, "/v1/jobs", "POST", json.dumps({"cells": []}).encode()
        )
        assert code == 400
        assert "cells" in body["error"]

    def test_non_json_body_is_400(self, service):
        base, _ = service
        code, body = _status(base, "/v1/jobs", "POST", b"not json{")
        assert code == 400

    def test_unknown_job_is_404(self, service):
        base, _ = service
        assert _status(base, "/v1/jobs/j99999999")[0] == 404

    def test_unknown_route_is_404(self, service):
        base, _ = service
        assert _status(base, "/nope")[0] == 404

    def test_wrong_method_is_405(self, service):
        base, _ = service
        assert _status(base, "/metrics", "POST", b"{}")[0] == 405

    def test_result_before_done_is_409(self, tmp_path):
        scheduler = CampaignScheduler(tmp_path / "s")  # no workers
        server = start_in_thread(scheduler)
        base = f"http://127.0.0.1:{server.port}"
        try:
            out = _post(base, SPEC)
            code, body = _status(base, f"/v1/jobs/{out['job_id']}/result")
            assert code == 409
            assert body["state"] == "queued"
        finally:
            server.stop()
            scheduler.stop()

    def test_oversized_body_is_413(self, service):
        base, _ = service
        big = json.dumps({"cells": "x" * (1024 * 1024 + 10)}).encode()
        code, _body = _status(base, "/v1/jobs", "POST", big)
        assert code == 413

    def test_malformed_request_line_is_400(self, service):
        base, _ = service
        port = int(base.rsplit(":", 1)[1])
        with socket.create_connection(("127.0.0.1", port)) as sock:
            sock.sendall(b"BOGUS\r\n\r\n")
            reply = sock.recv(4096).decode()
        assert reply.startswith("HTTP/1.1 400")


# --------------------------------------------------------------------------
# the serve CLI
# --------------------------------------------------------------------------


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _serve_cmd(state_dir, *extra):
    return [
        sys.executable, "-m", "repro", "serve",
        "--state-dir", str(state_dir), "--port", "0", *extra,
    ]


class TestServeCli:
    @pytest.mark.parametrize(
        "extra",
        [
            ("--max-jobs", "0"),
            ("--tenant-cap", "0"),
            ("--port", "70000"),
        ],
    )
    def test_misuse_exits_2(self, tmp_path, extra):
        proc = subprocess.run(
            _serve_cmd(tmp_path / "state", *extra),
            env=_env(), capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 2
        assert proc.stderr.strip()

    def test_missing_state_dir_exits_2(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve"],
            env=_env(), capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 2  # argparse misuse


def _start_server(state_dir):
    """Start ``repro serve`` and return (process, base_url)."""
    proc = subprocess.Popen(
        _serve_cmd(state_dir),
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    line = proc.stdout.readline()  # "repro service on http://host:port ..."
    assert "http://" in line, f"unexpected banner: {line!r}"
    url = line.split()[3]
    return proc, url.rstrip("/")


def _poll_done(base, job_id, timeout=300.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = _get(base, f"/v1/jobs/{job_id}")
        if status["state"] in ("done", "failed"):
            return status
        time.sleep(0.2)
    raise AssertionError(f"job {job_id} did not finish in {timeout}s")


@pytest.mark.chaos
class TestRestartResume:
    SPEC = {
        "cells": [{"arrangement": "simplex", "seu_per_bit_day": 1e-3}],
        "trials": 6000,
        "chunk_size": 16,
        "engine": "batch",
    }

    def test_sigkill_restart_resumes_bit_identically(self, tmp_path):
        # Reference: uninterrupted run on its own state dir.
        ref_proc, ref_base = _start_server(tmp_path / "ref-state")
        try:
            out = _post(ref_base, self.SPEC)
            _poll_done(ref_base, out["job_id"])
            reference = _get(ref_base, f"/v1/jobs/{out['job_id']}/result")
        finally:
            ref_proc.send_signal(signal.SIGTERM)
            ref_proc.wait(timeout=30)

        # Victim: SIGKILL mid-campaign (no cleanup of any kind).
        state = tmp_path / "state"
        proc, base = _start_server(state)
        job_id = _post(base, self.SPEC)["job_id"]
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            chunk_journals = list((state / "chunks").glob("*.journal"))
            if chunk_journals and chunk_journals[0].stat().st_size > 0:
                break
            time.sleep(0.05)
        else:
            raise AssertionError("campaign never started journaling chunks")
        proc.kill()  # SIGKILL: no atexit, no journal close, nothing
        proc.wait(timeout=30)

        # Restart on the same state dir: the job must come back (same
        # id), finish, and match the uninterrupted reference exactly.
        proc2, base2 = _start_server(state)
        try:
            status = _get(base2, f"/v1/jobs/{job_id}")
            assert status["state"] in ("queued", "running", "done")
            final = _poll_done(base2, job_id)
            assert final["state"] == "done"
            resumed = _get(base2, f"/v1/jobs/{job_id}/result")
            assert resumed["result"] == reference["result"]
            assert (
                resumed["fingerprint_digest"]
                == reference["fingerprint_digest"]
            )
            # And some chunks were genuinely replayed from the journal.
            metrics = _get_raw(base2, "/metrics")
            resumed_line = [
                line for line in metrics.splitlines()
                if line.startswith("repro_perf_chunks_resumed ")
            ]
            assert resumed_line and float(resumed_line[0].split()[1]) > 0
        finally:
            proc2.send_signal(signal.SIGTERM)
            assert proc2.wait(timeout=30) == 130
