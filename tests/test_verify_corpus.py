"""Replay every committed regression artifact in tests/corpus/.

Corpus entries are ``verify-case`` artifacts: shrunk repros of fixed
bugs and hand-built boundary cases.  Each must replay exactly as
recorded (i.e. pass its target's differential check) — a failure here
means a pinned bug has come back or a capability-boundary behaviour has
drifted.
"""

import json
from pathlib import Path

import pytest

from repro.verify import load_artifact, replay_artifact

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_not_empty():
    assert len(CORPUS_FILES) >= 8


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
)
def test_corpus_entry_replays_as_recorded(path):
    result = replay_artifact(path)
    assert result.as_recorded, result.summary()


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
)
def test_corpus_entry_is_well_formed(path):
    payload = load_artifact(path)
    assert payload["kind"] == "verify-case"
    assert payload["note"].strip(), "corpus entries must say what they pin"
    # committed artifacts are normalized: sorted keys, trailing newline
    text = path.read_text()
    assert text.endswith("\n")
    assert text == json.dumps(payload, indent=2, sort_keys=True) + "\n"


def test_corpus_covers_multiple_layers():
    targets = {load_artifact(p)["target"] for p in CORPUS_FILES}
    assert len(targets) >= 4
