"""Tests for the independent reference oracles in repro.verify.oracles.

The oracles adjudicate differential disputes, so they get their own
ground-truth checks: the reference GF multiply against the production
tables over *entire* small fields, the exhaustive and syndrome-table
decoders against each other and against hand-built patterns, and the
Taylor matrix exponential against scipy.
"""

import numpy as np
import pytest
from scipy.linalg import expm as scipy_expm

from repro.gf.field import GF2m
from repro.rs.codec import RSCode
from repro.verify import (
    exhaustive_decode,
    expm_taylor,
    gf_mul_reference,
    gf_pow_reference,
    syndrome_table_decode,
)
from repro.verify.oracles import MAX_CODEBOOK, transient_taylor_oracle


class TestGfReference:
    @pytest.mark.parametrize("m", [3, 4])
    def test_full_field_against_tables(self, m):
        gf = GF2m(m)
        order = 1 << m
        for a in range(order):
            for b in range(order):
                assert gf_mul_reference(m, a, b) == gf.mul(a, b)

    def test_spot_check_gf256(self):
        gf = GF2m(8)
        rng = np.random.default_rng(2005)
        for a, b in rng.integers(0, 256, size=(200, 2)):
            assert gf_mul_reference(8, int(a), int(b)) == gf.mul(int(a), int(b))

    def test_pow_matches_tables(self):
        gf = GF2m(4)
        for a in range(1, 16):
            for e in range(0, 20):
                assert gf_pow_reference(4, a, e) == gf.pow(a, e)

    def test_operand_range_enforced(self):
        with pytest.raises(ValueError):
            gf_mul_reference(3, 8, 1)
        with pytest.raises(ValueError):
            gf_pow_reference(3, 2, -1)


class TestExhaustiveDecode:
    def test_clean_word_decodes_to_itself_with_zero_errors(self):
        code = RSCode(7, 3, m=3)
        cw = code.encode([1, 2, 3])
        decoded, e = exhaustive_decode(code, cw)
        assert decoded == cw and e == 0

    def test_corrects_up_to_t_errors(self):
        code = RSCode(7, 3, m=3)  # t = 2
        cw = code.encode([5, 0, 7])
        received = list(cw)
        received[1] ^= 3
        received[6] ^= 6
        decoded, e = exhaustive_decode(code, received)
        assert decoded == cw and e == 2

    def test_errors_and_erasures_at_capacity(self):
        code = RSCode(7, 4, m=3)  # nsym = 3 (odd)
        cw = code.encode([1, 0, 2, 7])
        received = list(cw)
        received[0] ^= 5  # one error (budget 2)
        received[4] ^= 1  # one erasure (budget 1) => total 3 == nsym
        decoded, e = exhaustive_decode(code, received, erasure_positions=[4])
        assert decoded == cw and e == 1

    def test_beyond_capacity_returns_none(self):
        code = RSCode(7, 4, m=3)  # t = 1
        cw = code.encode([3, 3, 3, 3])
        received = list(cw)
        received[0] ^= 1
        received[1] ^= 2  # two errors, t = 1: must NOT be surely decodable
        decoded, _ = exhaustive_decode(code, received)
        # Either no codeword within the bound (detectable failure), or a
        # miscorrection to some *other* word within distance t — but the
        # oracle can never claim the true word, which sits at distance 2.
        if decoded is not None:
            assert decoded != cw
            mism = sum(int(x != y) for x, y in zip(decoded, received))
            assert 2 * mism <= code.n - code.k

    def test_over_erased_rejected(self):
        code = RSCode(6, 3, m=3)
        cw = code.encode([1, 2, 3])
        received = list(cw)
        erased = [0, 1, 2, 4]  # nsym + 1 erasures
        decoded, _ = exhaustive_decode(code, received, erasure_positions=erased)
        assert decoded is None

    def test_codebook_size_cap(self):
        big = RSCode(31, 25, m=5)  # 32^25 codewords
        assert (1 << 5) ** 25 > MAX_CODEBOOK
        with pytest.raises(ValueError):
            exhaustive_decode(big, [0] * 31)


class TestSyndromeTableDecode:
    def test_agrees_with_exhaustive_on_error_only(self):
        code = RSCode(7, 3, m=3)
        rng = np.random.default_rng(7)
        for _ in range(100):
            data = [int(x) for x in rng.integers(0, 8, size=3)]
            cw = code.encode(data)
            received = list(cw)
            num_errors = int(rng.integers(0, 4))  # up to t+1
            for pos in rng.choice(7, size=num_errors, replace=False):
                received[pos] ^= int(rng.integers(1, 8))
            table_word = syndrome_table_decode(code, received)
            exhaustive_word, e = exhaustive_decode(code, received)
            if 2 * e <= code.n - code.k:
                assert table_word == exhaustive_word
            # beyond t the table returns None; exhaustive may miscorrect
            # to a different nearby codeword — both are valid behaviours
            elif table_word is not None:
                assert table_word == exhaustive_word

    def test_table_size_cap(self):
        code = RSCode(15, 3, m=4)  # t = 6: table would be astronomical
        with pytest.raises(ValueError):
            syndrome_table_decode(code, [0] * 15)


class TestExpmTaylor:
    def test_zero_generator_is_identity(self):
        q = np.zeros((4, 4))
        assert np.array_equal(expm_taylor(q, 3.0), np.eye(4))

    def test_matches_scipy_small(self):
        rng = np.random.default_rng(11)
        for _ in range(20):
            n = int(rng.integers(2, 7))
            rates = rng.random((n, n)) * (10.0 ** rng.uniform(-2, 2))
            np.fill_diagonal(rates, 0.0)
            q = rates - np.diag(rates.sum(axis=1))
            t = float(10.0 ** rng.uniform(-2, 1))
            ours = expm_taylor(q, t)
            ref = scipy_expm(q * t)
            assert np.allclose(ours, ref, atol=1e-12, rtol=1e-10)

    def test_stiff_matrix(self):
        q = np.array([[-150.0, 150.0], [0.003, -0.003]])
        ours = expm_taylor(q, 5.0)
        ref = scipy_expm(q * 5.0)
        assert np.allclose(ours, ref, atol=1e-12)
        assert np.allclose(ours.sum(axis=1), 1.0, atol=1e-12)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            expm_taylor(np.zeros((2, 3)), 1.0)

    def test_transient_oracle_shape(self):
        from repro.markov.chain import CTMC

        chain = CTMC(
            states=range(3),
            transitions=[(0, 1, 0.5), (1, 2, 0.25)],
            initial=0,
        )
        out = transient_taylor_oracle(chain, [0.0, 1.0, 4.0])
        assert out.shape == (3, 3)
        assert np.allclose(out.sum(axis=1), 1.0, atol=1e-12)
        assert np.allclose(out[0], chain.p0)
