"""Property tests: vectorized GF(2^m) agrees elementwise with the scalar field.

Exhaustive sweeps over every element pair for small m, plus
hypothesis-driven (falling back to seeded-random when hypothesis is not
installed) batches for GF(256), plus shape/broadcasting edge cases —
empty batches, B=1, scalars against vectors.
"""

import numpy as np
import pytest

from repro.gf import GF2m, batch_field
from repro.gf.batch import BatchGF

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is an optional extra
    HAVE_HYPOTHESIS = False


SMALL_MS = [2, 3, 4]
ALL_MS = [2, 3, 4, 8]


@pytest.fixture(params=ALL_MS, ids=lambda m: f"GF(2^{m})")
def fields(request):
    m = request.param
    return GF2m(m), batch_field(m)


def full_pair_grid(order):
    a, b = np.meshgrid(np.arange(order), np.arange(order), indexing="ij")
    return a.ravel(), b.ravel()


class TestExhaustiveAgreement:
    """Every (a, b) pair of the full field, for every m <= 8."""

    @pytest.mark.parametrize("m", ALL_MS)
    def test_mul_agrees_on_full_field(self, m):
        gf, bgf = GF2m(m), batch_field(m)
        a, b = full_pair_grid(gf.order)
        got = bgf.mul(a, b)
        expected = np.array(
            [gf.mul(int(x), int(y)) for x, y in zip(a, b)]
        )
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("m", ALL_MS)
    def test_div_agrees_on_full_field_nonzero_divisors(self, m):
        gf, bgf = GF2m(m), batch_field(m)
        a, b = full_pair_grid(gf.order)
        mask = b != 0
        a, b = a[mask], b[mask]
        got = bgf.div(a, b)
        expected = np.array(
            [gf.div(int(x), int(y)) for x, y in zip(a, b)]
        )
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("m", ALL_MS)
    def test_inv_agrees_on_full_multiplicative_group(self, m):
        gf, bgf = GF2m(m), batch_field(m)
        a = np.arange(1, gf.order)
        np.testing.assert_array_equal(
            bgf.inv(a), np.array([gf.inv(int(x)) for x in a])
        )

    @pytest.mark.parametrize("m", SMALL_MS)
    @pytest.mark.parametrize("e", [-3, -1, 0, 1, 2, 5, 255])
    def test_pow_agrees_on_full_field(self, m, e):
        gf, bgf = GF2m(m), batch_field(m)
        lo = 1 if e < 0 else 0
        a = np.arange(lo, gf.order)
        np.testing.assert_array_equal(
            bgf.pow(a, e), np.array([gf.pow(int(x), e) for x in a])
        )

    @pytest.mark.parametrize("m", SMALL_MS)
    def test_poly_eval_agrees_on_full_field(self, m):
        from repro.gf import poly

        gf, bgf = GF2m(m), batch_field(m)
        rng = np.random.default_rng(m)
        coeffs = [int(c) for c in rng.integers(0, gf.order, size=6)]
        x = np.arange(gf.order)
        np.testing.assert_array_equal(
            bgf.poly_eval(coeffs, x),
            np.array([poly.eval_at(gf, coeffs, int(v)) for v in x]),
        )


if HAVE_HYPOTHESIS:

    class TestHypothesisGF256:
        @settings(max_examples=50, deadline=None)
        @given(
            st.lists(
                st.tuples(
                    st.integers(0, 255), st.integers(0, 255)
                ),
                min_size=1,
                max_size=64,
            )
        )
        def test_mul_matches_scalar(self, pairs):
            gf, bgf = GF2m(8), batch_field(8)
            a = np.array([p[0] for p in pairs])
            b = np.array([p[1] for p in pairs])
            expected = [gf.mul(int(x), int(y)) for x, y in zip(a, b)]
            assert bgf.mul(a, b).tolist() == expected

        @settings(max_examples=50, deadline=None)
        @given(
            st.lists(
                st.tuples(
                    st.integers(0, 255), st.integers(1, 255)
                ),
                min_size=1,
                max_size=64,
            )
        )
        def test_div_mul_roundtrip(self, pairs):
            bgf = batch_field(8)
            a = np.array([p[0] for p in pairs])
            b = np.array([p[1] for p in pairs])
            assert bgf.mul(bgf.div(a, b), b).tolist() == a.tolist()

else:  # pragma: no cover - exercised only without hypothesis

    class TestSeededRandomGF256:
        def test_mul_matches_scalar(self):
            gf, bgf = GF2m(8), batch_field(8)
            rng = np.random.default_rng(2005)
            a = rng.integers(0, 256, size=4096)
            b = rng.integers(0, 256, size=4096)
            expected = [gf.mul(int(x), int(y)) for x, y in zip(a, b)]
            assert bgf.mul(a, b).tolist() == expected

        def test_div_mul_roundtrip(self):
            bgf = batch_field(8)
            rng = np.random.default_rng(2006)
            a = rng.integers(0, 256, size=4096)
            b = rng.integers(1, 256, size=4096)
            assert bgf.mul(bgf.div(a, b), b).tolist() == a.tolist()


class TestShapesAndBroadcasting:
    def test_empty_batch(self, fields):
        _, bgf = fields
        empty = np.zeros(0, dtype=int)
        assert bgf.mul(empty, empty).shape == (0,)
        assert bgf.add(empty, empty).shape == (0,)
        assert bgf.pow(empty, 3).shape == (0,)
        assert bgf.poly_eval([1, 2], empty).shape == (0,)
        assert bgf.poly_eval_batch(
            np.zeros((0, 4), dtype=int), [1, 2]
        ).shape == (0, 2)

    def test_single_element_batch(self, fields):
        gf, bgf = fields
        a = np.array([3 % gf.order])
        b = np.array([2])
        assert bgf.mul(a, b).tolist() == [gf.mul(int(a[0]), 2)]

    def test_broadcasting_column_against_row(self, fields):
        gf, bgf = fields
        col = np.arange(gf.order).reshape(-1, 1)
        row = np.arange(gf.order).reshape(1, -1)
        table = bgf.mul(col, row)
        assert table.shape == (gf.order, gf.order)
        assert table[3 % gf.order, 2] == gf.mul(3 % gf.order, 2)

    def test_python_scalars_accepted(self, fields):
        gf, bgf = fields
        assert int(bgf.mul(3 % gf.order, 2)) == gf.mul(3 % gf.order, 2)

    def test_poly_eval_batch_is_syndrome_shaped(self):
        bgf = batch_field(8)
        rows = np.random.default_rng(1).integers(0, 256, size=(5, 18))
        points = [bgf.gf.exp(1 + j) for j in range(2)]
        out = bgf.poly_eval_batch(rows, points)
        assert out.shape == (5, 2)

    def test_poly_eval_batch_rejects_non_2d(self):
        bgf = batch_field(8)
        with pytest.raises(ValueError, match="2-D"):
            bgf.poly_eval_batch(np.zeros(4, dtype=int), [1])


class TestErrorContract:
    def test_div_by_zero_raises(self, fields):
        _, bgf = fields
        with pytest.raises(ZeroDivisionError):
            bgf.div(np.array([1, 2]), np.array([1, 0]))

    def test_inv_of_zero_raises(self, fields):
        _, bgf = fields
        with pytest.raises(ZeroDivisionError):
            bgf.inv(np.array([0, 1]))

    def test_negative_power_of_zero_raises(self, fields):
        _, bgf = fields
        with pytest.raises(ZeroDivisionError):
            bgf.pow(np.array([0]), -1)

    def test_log_of_zero_raises(self, fields):
        _, bgf = fields
        with pytest.raises(ValueError):
            bgf.log(np.array([0]))

    def test_validate_elements_rejects_out_of_range(self, fields):
        gf, bgf = fields
        with pytest.raises(ValueError, match="outside"):
            bgf.validate_elements(np.array([gf.order]))
        with pytest.raises(ValueError, match="outside"):
            bgf.validate_elements(np.array([-1]))

    def test_mismatched_field_wrap_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            BatchGF(4, gf=GF2m(8))


class TestCaching:
    def test_batch_field_is_cached(self):
        assert batch_field(8) is batch_field(8)
        assert batch_field(4) is not batch_field(8)

    def test_cached_field_equals_fresh(self):
        assert batch_field(5) == BatchGF(5)
        assert hash(batch_field(5)) == hash(BatchGF(5))

    def test_tables_shared_with_scalar_field(self):
        gf = GF2m(6)
        bgf = BatchGF(6, gf=gf)
        assert bgf.gf is gf
        np.testing.assert_array_equal(bgf._exp, np.asarray(gf._exp))
