"""Metrics registry: counters, gauges, log-bucketed histograms."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    log_spaced_buckets,
    set_registry,
)


class TestBuckets:
    def test_log_spaced_are_ascending_and_cover_range(self):
        bounds = log_spaced_buckets(1e-3, 10.0)
        assert bounds == sorted(bounds)
        assert bounds[0] <= 1e-3
        assert bounds[-1] >= 10.0

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            log_spaced_buckets(0.0, 1.0)
        with pytest.raises(ValueError):
            log_spaced_buckets(1.0, 1.0)

    def test_default_latency_buckets_span_100us_to_1000s(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 1e-4
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 1e3


class TestCounter:
    def test_accumulates(self):
        c = Counter("n")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("n").inc(-1)


class TestGauge:
    def test_last_value_wins(self):
        g = Gauge("wall")
        assert g.value is None
        g.set(1.0)
        g.set(2.0)
        assert g.value == 2.0


class TestHistogram:
    def test_observations_land_in_fixed_buckets(self):
        h = Histogram("lat", bounds=[1.0, 10.0, 100.0])
        for v in (0.5, 5.0, 5.0, 50.0, 5000.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["bucket_counts"] == [1, 2, 1, 1]  # last = overflow
        assert snap["count"] == 5
        assert snap["min"] == 0.5
        assert snap["max"] == 5000.0
        assert h.mean == pytest.approx(snap["sum"] / 5)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=[2.0, 1.0])

    def test_snapshot_is_json_serializable(self):
        h = Histogram("lat")
        h.observe(0.123)
        json.dumps(h.snapshot())


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_type_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", bounds=[1.0]).observe(0.5)
        snap = registry.snapshot()
        assert snap["c"] == {"type": "counter", "value": 2.0}
        assert snap["g"] == {"type": "gauge", "value": 1.5}
        assert snap["h"]["type"] == "histogram"
        json.dumps(snap)

    def test_get_unknown_returns_none(self):
        assert MetricsRegistry().get("missing") is None

    def test_set_registry_swaps_process_default(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous
