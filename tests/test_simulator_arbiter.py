"""Unit tests for the Section 3 arbiter decision procedure.

Each decision branch of the paper's arbiter is constructed concretely:
clean reads, agreed corrections, flag discrimination of a mis-correction,
the undecidable both-flags case, single-decodable fallback, and the
erasure-recovery masking stage.
"""

import random

import pytest

from repro.rs import RSCode, RSDecodingError
from repro.simulator import ArbiterDecision, MemoryWord, arbitrate, recover_erasures


@pytest.fixture(scope="module")
def code():
    return RSCode(18, 16, m=8)


@pytest.fixture(scope="module")
def data(code):
    rng = random.Random(1234)
    return [rng.randrange(256) for _ in range(code.k)]


def fresh_pair(code, data):
    cw = code.encode(data)
    return MemoryWord(cw, code.m), MemoryWord(cw, code.m)


def find_miscorrecting_pattern(code, data):
    """A 2-error pattern on which the t=1 decoder mis-corrects."""
    cw = code.encode(data)
    rng = random.Random(99)
    for _ in range(5000):
        corrupted = list(cw)
        for pos in rng.sample(range(code.n), 2):
            corrupted[pos] ^= rng.randrange(1, 256)
        try:
            result = code.decode(corrupted)
        except RSDecodingError:
            continue
        if result.data != data:
            return corrupted
    raise AssertionError("no mis-correcting pattern found")


def find_detected_failure_pattern(code, data):
    """A 2-error pattern the decoder detects as uncorrectable."""
    cw = code.encode(data)
    rng = random.Random(7)
    for _ in range(5000):
        corrupted = list(cw)
        for pos in rng.sample(range(code.n), 2):
            corrupted[pos] ^= rng.randrange(1, 256)
        try:
            code.decode(corrupted)
        except RSDecodingError:
            return corrupted
    raise AssertionError("no detected-failure pattern found")


class TestDecisionBranches:
    def test_no_error(self, code, data):
        w1, w2 = fresh_pair(code, data)
        result = arbitrate(code, w1, w2)
        assert result.decision is ArbiterDecision.NO_ERROR
        assert result.data == data
        assert result.flags == (False, False)

    def test_agreed_correction_single_error_one_word(self, code, data):
        w1, w2 = fresh_pair(code, data)
        w1.flip_bit(4, 2)
        result = arbitrate(code, w1, w2)
        assert result.decision is ArbiterDecision.AGREED_CORRECTION
        assert result.data == data
        assert result.flags == (True, False)

    def test_agreed_correction_errors_in_both_words(self, code, data):
        w1, w2 = fresh_pair(code, data)
        w1.flip_bit(4, 2)
        w2.flip_bit(11, 7)
        result = arbitrate(code, w1, w2)
        assert result.decision is ArbiterDecision.AGREED_CORRECTION
        assert result.data == data
        assert result.flags == (True, True)

    def test_flag_discriminates_miscorrection(self, code, data):
        """Word 1 mis-corrects (flag set); clean word 2 wins."""
        w1, w2 = fresh_pair(code, data)
        w1.write(find_miscorrecting_pattern(code, data))
        result = arbitrate(code, w1, w2)
        assert result.decision is ArbiterDecision.FLAG_DISCRIMINATED
        assert result.data == data

    def test_both_flags_differ_no_output(self, code, data):
        """Word 1 mis-corrects, word 2 performs a genuine correction: the
        arbiter cannot discriminate and refuses an output (paper Sec. 3)."""
        w1, w2 = fresh_pair(code, data)
        w1.write(find_miscorrecting_pattern(code, data))
        w2.flip_bit(9, 1)
        result = arbitrate(code, w1, w2)
        assert result.decision is ArbiterDecision.NO_OUTPUT
        assert result.data is None
        assert result.flags == (True, True)

    def test_single_decodable(self, code, data):
        w1, w2 = fresh_pair(code, data)
        w1.write(find_detected_failure_pattern(code, data))
        result = arbitrate(code, w1, w2)
        assert result.decision is ArbiterDecision.SINGLE_DECODABLE
        assert result.data == data
        assert result.decoded == (False, True)

    def test_both_undecodable_no_output(self, code, data):
        pattern = find_detected_failure_pattern(code, data)
        w1, w2 = fresh_pair(code, data)
        w1.write(pattern)
        w2.write(pattern)
        result = arbitrate(code, w1, w2)
        assert result.decision is ArbiterDecision.NO_OUTPUT
        assert result.data is None


class TestErasureRecovery:
    def test_single_sided_erasure_masked(self, code, data):
        w1, w2 = fresh_pair(code, data)
        w1.make_stuck(3, 0, 1 - ((code.encode(data)[3] >> 0) & 1))  # corrupting
        s1, _s2, shared, masked = recover_erasures(w1, w2)
        assert shared == []
        assert masked == 1
        assert s1[3] == w2.read_symbol(3)  # healed from the replica

    def test_double_sided_erasure_passed_to_decoder(self, code, data):
        w1, w2 = fresh_pair(code, data)
        w1.make_stuck(5, 1, 0)
        w2.make_stuck(5, 4, 1)
        _s1, _s2, shared, masked = recover_erasures(w1, w2)
        assert shared == [5]
        assert masked == 0

    def test_masking_copies_partner_error(self, code, data):
        """A b pair: erasure in word 1, SEU in word 2 — masking imports
        word 2's error into word 1 (the model's b-counts-for-both rule)."""
        w1, w2 = fresh_pair(code, data)
        cw = code.encode(data)
        w1.make_stuck(7, 2, 1 - ((cw[7] >> 2) & 1))
        w2.flip_bit(7, 5)
        s1, s2, shared, _masked = recover_erasures(w1, w2)
        assert shared == []
        assert s1[7] == s2[7] == w2.read_symbol(7)
        assert s1[7] != cw[7]

    def test_mismatched_lengths_rejected(self, code, data):
        w1 = MemoryWord(code.encode(data), code.m)
        w2 = MemoryWord([0] * 10, code.m)
        with pytest.raises(ValueError, match="mismatch"):
            recover_erasures(w1, w2)

    def test_full_arbitration_with_masked_erasures(self, code, data):
        """Many single-sided erasures are free — the duplex advantage."""
        w1, w2 = fresh_pair(code, data)
        cw = code.encode(data)
        for pos in range(0, 12, 2):  # 6 erasures, all in word 1
            w1.make_stuck(pos, 0, 1 - ((cw[pos] >> 0) & 1))
        result = arbitrate(code, w1, w2)
        assert result.data == data
        assert result.masked_erasures == 6
        assert result.shared_erasures == 0
