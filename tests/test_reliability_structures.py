"""Unit tests for reliability block combinators."""

import math

import pytest

from repro.reliability import (
    cold_standby,
    k_of_n,
    parallel,
    series,
    whole_memory_data_integrity,
)


class TestSeriesParallel:
    def test_series_product(self):
        assert series([0.9, 0.8]) == pytest.approx(0.72)

    def test_series_empty_is_one(self):
        assert series([]) == 1.0

    def test_parallel_complement_product(self):
        assert parallel([0.9, 0.8]) == pytest.approx(0.98)

    def test_parallel_dominated_by_best(self):
        assert parallel([0.99, 0.5]) > 0.99

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            series([1.2])
        with pytest.raises(ValueError):
            parallel([-0.1])


class TestKofN:
    def test_one_of_n_is_parallel(self):
        r = 0.7
        assert k_of_n(1, 3, r) == pytest.approx(parallel([r, r, r]))

    def test_n_of_n_is_series(self):
        r = 0.7
        assert k_of_n(3, 3, r) == pytest.approx(series([r, r, r]))

    def test_two_of_three(self):
        r = 0.9
        expected = 3 * r * r * (1 - r) + r**3
        assert k_of_n(2, 3, r) == pytest.approx(expected)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            k_of_n(0, 3, 0.5)
        with pytest.raises(ValueError):
            k_of_n(4, 3, 0.5)


class TestColdStandby:
    def test_no_spares_is_exponential(self):
        assert cold_standby(0.01, 0, 100.0) == pytest.approx(math.exp(-1.0))

    def test_spares_are_erlang_survival(self):
        lt = 1.0
        expected = math.exp(-lt) * (1 + lt + lt * lt / 2)
        assert cold_standby(0.01, 2, 100.0) == pytest.approx(expected)

    def test_more_spares_always_better(self):
        assert cold_standby(0.01, 3, 100.0) > cold_standby(0.01, 1, 100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            cold_standby(0.01, -1, 100.0)
        with pytest.raises(ValueError):
            cold_standby(-0.01, 1, 100.0)


class TestWholeMemory:
    def test_single_word(self):
        assert whole_memory_data_integrity(0.1, 1) == pytest.approx(0.9)

    def test_many_words_compound(self):
        assert whole_memory_data_integrity(1e-6, 10**6) == pytest.approx(
            math.exp(-1.0), rel=1e-5
        )

    def test_stable_for_tiny_word_probability(self):
        # (1 - 1e-18)^1e6: naive power would round to 1.0 - this should too,
        # but via a numerically meaningful path
        r = whole_memory_data_integrity(1e-18, 10**6)
        assert r == pytest.approx(1.0 - 1e-12, rel=1e-6)

    def test_certain_word_failure(self):
        assert whole_memory_data_integrity(1.0, 5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            whole_memory_data_integrity(0.5, 0)
        with pytest.raises(ValueError):
            whole_memory_data_integrity(1.5, 10)
