"""Tests for the scrub-synchronized embedded-DTMC analysis."""

import pytest

from repro.memory import duplex_model, embedded_scrub_analysis, simplex_model
from repro.memory.scrubbing import deterministic_scrub_fail_probability


class TestEmbeddedAnalysis:
    def test_no_faults_zero_rate(self):
        result = embedded_scrub_analysis(simplex_model(18, 16), 1.0)
        assert result.per_period_loss == 0.0
        assert result.equivalent_rate_per_hour == 0.0

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            embedded_scrub_analysis(
                simplex_model(18, 16, seu_per_bit_day=1e-5), 0.0
            )

    def test_matches_deterministic_transient_slope(self):
        """The asymptotic per-hour hazard must equal the slope of the
        exact piecewise-deterministic solution once transients die out."""
        model = duplex_model(18, 16, seu_per_bit_day=1.7e-5)
        result = embedded_scrub_analysis(model, 1.0)
        pf = deterministic_scrub_fail_probability(model, [100.0, 200.0], 1.0)
        slope = (pf[1] - pf[0]) / 100.0
        assert result.equivalent_rate_per_hour == pytest.approx(
            slope, rel=1e-4
        )

    def test_shorter_period_lower_loss_rate(self):
        model = duplex_model(18, 16, seu_per_bit_day=1.7e-5)
        fast = embedded_scrub_analysis(model, 0.25)
        slow = embedded_scrub_analysis(model, 1.0)
        assert fast.equivalent_rate_per_hour < slow.equivalent_rate_per_hour

    def test_simplex_loss_rate_positive(self):
        model = simplex_model(18, 16, seu_per_bit_day=1.7e-5)
        result = embedded_scrub_analysis(model, 0.5)
        assert 0.0 < result.per_period_loss < 1.0

    def test_scrubbing_beats_no_scrub_hazard(self):
        """The per-hour hazard under hourly scrubbing must be far below
        the unscrubbed failure rate scale (two SEUs per word per 48 h)."""
        model = duplex_model(18, 16, seu_per_bit_day=1.7e-5)
        scrubbed = embedded_scrub_analysis(model, 1.0)
        unscrubbed_48h = model.fail_probability([48.0])[0]
        assert scrubbed.equivalent_rate_per_hour * 48.0 < unscrubbed_48h

    def test_mission_budgeting_consistency(self):
        """rate x horizon approximates the long-run failure probability."""
        model = duplex_model(18, 16, seu_per_bit_day=1.7e-5)
        result = embedded_scrub_analysis(model, 1.0)
        pf = deterministic_scrub_fail_probability(model, [500.0], 1.0)[0]
        assert pf == pytest.approx(
            result.equivalent_rate_per_hour * 500.0, rel=0.05
        )
