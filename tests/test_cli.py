"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_defaults(self):
        args = build_parser().parse_args(["figure", "fig5"])
        assert args.ids == ["fig5"]
        assert args.points == 13

    def test_ber_defaults(self):
        args = build_parser().parse_args(["ber"])
        assert args.arrangement == "simplex"
        assert args.n == 18

    def test_doctor_defaults(self):
        args = build_parser().parse_args(["doctor", "state/run.jsonl"])
        assert args.path == "state/run.jsonl"
        assert args.repair is False
        assert build_parser().parse_args(
            ["doctor", "state", "--repair"]
        ).repair is True


class TestFigureCommand:
    def test_single_figure(self, capsys):
        assert main(["figure", "fig5", "--points", "3"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "all hold" in out

    def test_unknown_figure_id(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_csv_export(self, tmp_path, capsys):
        assert (
            main(
                [
                    "figure",
                    "fig10",
                    "--points",
                    "3",
                    "--csv",
                    str(tmp_path),
                ]
            )
            == 0
        )
        assert (tmp_path / "fig10.csv").exists()
        # permanent-fault figures export in months
        assert "months" in (tmp_path / "fig10.csv").read_text().splitlines()[0]


class TestBerCommand:
    def test_simplex(self, capsys):
        assert main(["ber", "--seu", "1.7e-5", "--points", "3"]) == 0
        assert "BER(48 h)" in capsys.readouterr().out

    def test_duplex_with_scrub(self, capsys):
        code = main(
            [
                "ber",
                "--arrangement",
                "duplex",
                "--seu",
                "1.7e-5",
                "--tsc",
                "3600",
                "--points",
                "3",
                "--hours",
                "24",
            ]
        )
        assert code == 0
        assert "duplex" in capsys.readouterr().out


class TestOtherCommands:
    def test_complexity(self, capsys):
        assert main(["complexity"]) == 0
        out = capsys.readouterr().out
        assert "74" in out and "308" in out

    def test_validate_small(self, capsys):
        assert main(["validate", "--trials", "300", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "simplex" in out and "OK" in out

    def test_scrub_design(self, capsys):
        assert main(["scrub-design", "--budget", "1e-6"]) == 0
        out = capsys.readouterr().out
        assert "Tsc" in out and "availability" in out


class TestReportCommand:
    def test_writes_markdown(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["report", "-o", str(out), "--points", "3"]) == 0
        text = out.read_text()
        assert "# Reproduction report" in text
        assert "fig10" in text
        assert "all paper expectations hold" in text


class TestSensitivityCommand:
    def test_duplex_with_scrub(self, capsys):
        assert main(["sensitivity", "--tsc", "3600"]) == 0
        out = capsys.readouterr().out
        assert "elasticity" in out
        assert "seu_per_bit_day" in out

    def test_no_active_parameters(self, capsys):
        assert main(["sensitivity", "--seu", "0"]) == 1


@pytest.fixture
def fresh_metrics():
    """Isolate the process-global metrics registry per test."""
    from repro.obs.metrics import MetricsRegistry, set_registry

    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


class TestCampaignCommand:
    def test_default_campaign_consistent(self, capsys):
        assert main(["campaign", "--trials", "120", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "simplex: 4/4" in out
        assert "duplex: 4/4" in out

    def test_trace_writes_parseable_jsonl(self, tmp_path, capsys, fresh_metrics):
        import json

        path = tmp_path / "trace.jsonl"
        code = main(
            [
                "campaign",
                "--trials",
                "60",
                "--chunk-size",
                "30",
                "--seed",
                "3",
                "--trace",
                str(path),
            ]
        )
        assert code == 0
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        by_kind = {}
        for line in lines:
            by_kind.setdefault(line["kind"], []).append(line)
        # solver spans carry the truncation story
        solver = [
            s
            for s in by_kind["span"]
            if s["name"] == "uniformization_propagate"
        ]
        assert solver and all(
            "terms_used" in s["attrs"] and "tail_bound" in s["attrs"]
            for s in solver
        )
        # chunk heartbeats carry progress with an ETA estimate
        beats = [e for e in by_kind["event"] if e["name"] == "chunk_heartbeat"]
        assert beats
        assert beats[-1]["attrs"]["done"] == beats[-1]["attrs"]["total"]
        assert any(b["attrs"]["eta_seconds"] is not None for b in beats)
        # the metrics snapshot includes the chunk-latency histogram
        metric_names = {m["name"] for m in by_kind["metric"]}
        assert "repro.mc.chunk_seconds" in metric_names
        assert "repro.perf.trials" in metric_names

    def test_progress_prints_heartbeats(self, tmp_path, capsys):
        code = main(
            [
                "campaign",
                "--trials",
                "60",
                "--chunk-size",
                "30",
                "--seed",
                "3",
                "--progress",
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "480/480 trials" in err  # 8 cells x 60 trials
        assert "eta" in err

    def test_progress_requires_batch_family_engine(self, capsys):
        assert (
            main(
                [
                    "campaign",
                    "--trials",
                    "60",
                    "--engine",
                    "reference",
                    "--progress",
                ]
            )
            == 2
        )
        assert "batch-family engine" in capsys.readouterr().err

    def test_manifest_records_progress_and_metrics(
        self, tmp_path, capsys, fresh_metrics
    ):
        import json

        path = tmp_path / "manifest.json"
        code = main(
            [
                "campaign",
                "--trials",
                "60",
                "--chunk-size",
                "30",
                "--seed",
                "3",
                "--manifest",
                str(path),
            ]
        )
        assert code == 0
        manifest = json.loads(path.read_text())
        assert manifest["manifest_version"] == 3
        assert manifest["progress"]
        assert manifest["progress"][-1]["done"] == 480
        assert manifest["metrics"]["repro.mc.chunk_seconds"]["count"] == 16
        # wall-clock accounting: elapsed is coordinator wall, cpu additive
        perf = manifest["counters"]
        assert perf["cpu_seconds"] > 0.0
        assert perf["elapsed_seconds"] > 0.0


class TestCampaignScenarioFlags:
    def test_list_scenarios(self, capsys):
        from repro.simulator.scenarios import scenario_names

        assert main(["campaign", "--list-scenarios"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["campaign", "--scenario", "no-such-preset"]) == 2
        assert "iid-baseline" in capsys.readouterr().err

    def test_scenario_conflicts_with_pattern_flags(self, capsys):
        assert (
            main(
                [
                    "campaign",
                    "--scenario",
                    "iid-baseline",
                    "--pattern",
                    "1BIT",
                ]
            )
            == 2
        )
        assert "--scenario" in capsys.readouterr().err

    def test_bad_pattern_spec_exits_2(self, capsys):
        assert main(["campaign", "--pattern", "BOGUS"]) == 2
        assert "BOGUS" in capsys.readouterr().err

    def test_bad_schedule_spec_exits_2(self, capsys):
        assert main(["campaign", "--schedule", "5h"]) == 2
        assert "5h" in capsys.readouterr().err

    def test_scenario_smoke_with_manifest(self, tmp_path, capsys):
        import json

        path = tmp_path / "scenario.json"
        code = main(
            [
                "campaign",
                "--scenario",
                "mbu-cluster",
                "--trials",
                "20",
                "--chunk-size",
                "10",
                "--manifest",
                str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "miscorrect=" in out and "unreadable=" in out
        manifest = json.loads(path.read_text())
        assert manifest["scenario"] == "mbu-cluster"
        rows = manifest["results"]
        assert rows
        for row in rows:
            assert row["pattern"] == "0.9*1BIT+0.1*MBU:3"
            # out-of-model physics: graceful degradation, not a wrong model
            assert row["model_fail_probability"] is None
            assert row["consistent"] is True
            assert isinstance(row["silent_miscorrections"], int)
            assert isinstance(row["detected_uncorrectable"], int)

    def test_adhoc_pattern_on_default_matrix(self, capsys):
        code = main(
            [
                "campaign",
                "--trials",
                "20",
                "--chunk-size",
                "10",
                "--seed",
                "3",
                "--pattern",
                "0.9*1BIT+0.1*ROW:3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "simplex: 4/4" in out
        assert "duplex: 4/4" in out


class TestScenarioCommand:
    def test_runs_json_suite(self, tmp_path, capsys):
        import json

        path = tmp_path / "s.json"
        path.write_text(
            json.dumps(
                {
                    "arrangement": "simplex",
                    "n": 18,
                    "k": 16,
                    "seu_per_bit_day": 1.7e-5,
                    "horizon_hours": 48.0,
                    "points": 3,
                    "ber_budget": 1.0,
                }
            )
        )
        assert main(["scenario", str(path)]) == 0
        assert "MEETS" in capsys.readouterr().out

    def test_budget_miss_returns_nonzero(self, tmp_path, capsys):
        import json

        path = tmp_path / "s.json"
        path.write_text(
            json.dumps(
                {
                    "arrangement": "simplex",
                    "n": 18,
                    "k": 16,
                    "seu_per_bit_day": 1.7e-5,
                    "horizon_hours": 48.0,
                    "points": 3,
                    "ber_budget": 1e-12,
                }
            )
        )
        assert main(["scenario", str(path)]) == 1
