"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_defaults(self):
        args = build_parser().parse_args(["figure", "fig5"])
        assert args.ids == ["fig5"]
        assert args.points == 13

    def test_ber_defaults(self):
        args = build_parser().parse_args(["ber"])
        assert args.arrangement == "simplex"
        assert args.n == 18


class TestFigureCommand:
    def test_single_figure(self, capsys):
        assert main(["figure", "fig5", "--points", "3"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "all hold" in out

    def test_unknown_figure_id(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_csv_export(self, tmp_path, capsys):
        assert (
            main(
                [
                    "figure",
                    "fig10",
                    "--points",
                    "3",
                    "--csv",
                    str(tmp_path),
                ]
            )
            == 0
        )
        assert (tmp_path / "fig10.csv").exists()
        # permanent-fault figures export in months
        assert "months" in (tmp_path / "fig10.csv").read_text().splitlines()[0]


class TestBerCommand:
    def test_simplex(self, capsys):
        assert main(["ber", "--seu", "1.7e-5", "--points", "3"]) == 0
        assert "BER(48 h)" in capsys.readouterr().out

    def test_duplex_with_scrub(self, capsys):
        code = main(
            [
                "ber",
                "--arrangement",
                "duplex",
                "--seu",
                "1.7e-5",
                "--tsc",
                "3600",
                "--points",
                "3",
                "--hours",
                "24",
            ]
        )
        assert code == 0
        assert "duplex" in capsys.readouterr().out


class TestOtherCommands:
    def test_complexity(self, capsys):
        assert main(["complexity"]) == 0
        out = capsys.readouterr().out
        assert "74" in out and "308" in out

    def test_validate_small(self, capsys):
        assert main(["validate", "--trials", "300", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "simplex" in out and "OK" in out

    def test_scrub_design(self, capsys):
        assert main(["scrub-design", "--budget", "1e-6"]) == 0
        out = capsys.readouterr().out
        assert "Tsc" in out and "availability" in out


class TestReportCommand:
    def test_writes_markdown(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["report", "-o", str(out), "--points", "3"]) == 0
        text = out.read_text()
        assert "# Reproduction report" in text
        assert "fig10" in text
        assert "all paper expectations hold" in text


class TestSensitivityCommand:
    def test_duplex_with_scrub(self, capsys):
        assert main(["sensitivity", "--tsc", "3600"]) == 0
        out = capsys.readouterr().out
        assert "elasticity" in out
        assert "seu_per_bit_day" in out

    def test_no_active_parameters(self, capsys):
        assert main(["sensitivity", "--seu", "0"]) == 1


class TestCampaignCommand:
    def test_default_campaign_consistent(self, capsys):
        assert main(["campaign", "--trials", "120", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "simplex: 4/4" in out
        assert "duplex: 4/4" in out


class TestScenarioCommand:
    def test_runs_json_suite(self, tmp_path, capsys):
        import json

        path = tmp_path / "s.json"
        path.write_text(
            json.dumps(
                {
                    "arrangement": "simplex",
                    "n": 18,
                    "k": 16,
                    "seu_per_bit_day": 1.7e-5,
                    "horizon_hours": 48.0,
                    "points": 3,
                    "ber_budget": 1.0,
                }
            )
        )
        assert main(["scenario", str(path)]) == 0
        assert "MEETS" in capsys.readouterr().out

    def test_budget_miss_returns_nonzero(self, tmp_path, capsys):
        import json

        path = tmp_path / "s.json"
        path.write_text(
            json.dumps(
                {
                    "arrangement": "simplex",
                    "n": 18,
                    "k": 16,
                    "seu_per_bit_day": 1.7e-5,
                    "horizon_hours": 48.0,
                    "points": 3,
                    "ber_budget": 1e-12,
                }
            )
        )
        assert main(["scenario", str(path)]) == 1
