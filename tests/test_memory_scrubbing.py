"""Unit tests for the deterministic-period scrubbing extension."""

import numpy as np
import pytest

from repro.memory import duplex_model, simplex_model
from repro.memory.scrubbing import (
    deterministic_scrub_ber,
    deterministic_scrub_fail_probability,
    scrub_image,
)


class TestScrubImage:
    def test_simplex_clears_random_errors(self):
        m = simplex_model(18, 16, seu_per_bit_day=1.0)
        assert scrub_image(m, (1, 1)) == (1, 0)

    def test_duplex_merges_b_into_y(self):
        m = duplex_model(18, 16, seu_per_bit_day=1.0)
        assert scrub_image(m, (1, 2, 1, 1, 1, 1)) == (1, 3, 0, 0, 0, 0)

    def test_fail_stays_failed(self):
        m = simplex_model(18, 16, seu_per_bit_day=1.0)
        assert scrub_image(m, "FAIL") == "FAIL"


class TestDeterministicScrub:
    def test_rejects_nonpositive_period(self):
        m = simplex_model(18, 16, seu_per_bit_day=1e-3)
        with pytest.raises(ValueError):
            deterministic_scrub_fail_probability(m, [1.0], 0.0)

    def test_rejects_negative_times(self):
        m = simplex_model(18, 16, seu_per_bit_day=1e-3)
        with pytest.raises(ValueError):
            deterministic_scrub_fail_probability(m, [-1.0], 1.0)

    def test_no_faults_no_failures(self):
        m = simplex_model(18, 16)
        pf = deterministic_scrub_fail_probability(m, [0.0, 10.0, 48.0], 1.0)
        assert np.all(pf == 0.0)

    def test_before_first_scrub_matches_scrubless_model(self):
        scrubless = simplex_model(18, 16, seu_per_bit_day=1e-3)
        pf_det = deterministic_scrub_fail_probability(scrubless, [0.5], 1.0)
        pf_free = scrubless.fail_probability([0.5])
        assert pf_det[0] == pytest.approx(pf_free[0], rel=1e-10)

    def test_scrubbing_reduces_failure_probability(self):
        m = simplex_model(18, 16, seu_per_bit_day=1e-3)
        t = [48.0]
        scrubbed = deterministic_scrub_fail_probability(m, t, 1.0)
        free = m.fail_probability(t)
        assert scrubbed[0] < free[0]

    def test_shorter_period_scrubs_harder(self):
        m = duplex_model(18, 16, seu_per_bit_day=1e-3)
        t = [48.0]
        fast = deterministic_scrub_fail_probability(m, t, 0.25)
        slow = deterministic_scrub_fail_probability(m, t, 2.0)
        assert fast[0] < slow[0]

    def test_same_magnitude_as_exponential_scrubbing(self):
        """Deterministic and rate-1/Tsc scrubbing agree within ~2x."""
        period_h = 1.0
        det_model = duplex_model(18, 16, seu_per_bit_day=1.7e-5)
        exp_model = duplex_model(
            18, 16, seu_per_bit_day=1.7e-5, scrub_period_seconds=3600.0
        )
        t = [48.0]
        det = deterministic_scrub_fail_probability(det_model, t, period_h)[0]
        exp = exp_model.fail_probability(t)[0]
        assert 0.3 < det / exp < 3.0

    def test_ignores_models_own_scrub_rate(self):
        """The deterministic solver replaces, not stacks, rate scrubbing."""
        with_rate = duplex_model(
            18, 16, seu_per_bit_day=1e-3, scrub_period_seconds=3600.0
        )
        without = duplex_model(18, 16, seu_per_bit_day=1e-3)
        t = [10.0]
        a = deterministic_scrub_fail_probability(with_rate, t, 1.0)
        b = deterministic_scrub_fail_probability(without, t, 1.0)
        assert a[0] == pytest.approx(b[0], rel=1e-10)

    def test_unsorted_time_grid(self):
        m = simplex_model(18, 16, seu_per_bit_day=1e-3)
        times = [30.0, 5.0, 48.0]
        pf = deterministic_scrub_fail_probability(m, times, 1.0)
        resorted = deterministic_scrub_fail_probability(m, sorted(times), 1.0)
        lookup = dict(zip(sorted(times), resorted))
        for t, v in zip(times, pf):
            assert v == pytest.approx(lookup[t], rel=1e-10)

    def test_ber_applies_eq1_factor(self):
        m = simplex_model(36, 16, seu_per_bit_day=1e-3)
        t = [24.0]
        assert deterministic_scrub_ber(m, t, 1.0)[0] == pytest.approx(
            10.0 * deterministic_scrub_fail_probability(m, t, 1.0)[0]
        )

    def test_failure_monotone_across_scrub_boundary(self):
        """FAIL is absorbing: its probability never decreases, even right
        after a scrub."""
        m = simplex_model(18, 16, seu_per_bit_day=5e-3)
        times = np.linspace(0.0, 6.0, 25)
        pf = deterministic_scrub_fail_probability(m, times, 1.0)
        assert np.all(np.diff(pf) >= -1e-15)
