"""Tests for the scrubbing-overhead models."""

import pytest

from repro.memory import (
    min_scrub_period_for_availability,
    scrub_overhead,
)
from repro.rs import decoding_time_cycles


class TestScrubOverhead:
    def test_pass_time_uses_decoder_cycles(self):
        words, clock = 1000, 1e6
        overhead = scrub_overhead(
            18, 16, num_words=words, scrub_period_seconds=60.0, clock_hz=clock
        )
        expected = words * (decoding_time_cycles(18, 16) + 10) / clock
        assert overhead.pass_seconds == pytest.approx(expected)

    def test_availability_complements_duty(self):
        overhead = scrub_overhead(
            18, 16, num_words=1 << 20, scrub_period_seconds=3600.0
        )
        assert overhead.availability + overhead.duty_cycle == pytest.approx(1.0)
        assert 0.99 < overhead.availability < 1.0

    def test_faster_scrubbing_costs_availability(self):
        fast = scrub_overhead(18, 16, num_words=1 << 20, scrub_period_seconds=900.0)
        slow = scrub_overhead(18, 16, num_words=1 << 20, scrub_period_seconds=3600.0)
        assert fast.availability < slow.availability
        assert (
            fast.scrub_bandwidth_bits_per_s > slow.scrub_bandwidth_bits_per_s
        )

    def test_stronger_code_scrubs_slower(self):
        weak = scrub_overhead(18, 16, num_words=1000, scrub_period_seconds=60.0)
        strong = scrub_overhead(36, 16, num_words=1000, scrub_period_seconds=60.0)
        assert strong.pass_seconds > weak.pass_seconds

    def test_duplex_doubles_bandwidth(self):
        one = scrub_overhead(
            18, 16, num_words=1000, scrub_period_seconds=60.0, num_decoders=1
        )
        two = scrub_overhead(
            18, 16, num_words=1000, scrub_period_seconds=60.0, num_decoders=2
        )
        assert two.scrub_bandwidth_bits_per_s == pytest.approx(
            2 * one.scrub_bandwidth_bits_per_s
        )

    def test_infeasible_period_rejected(self):
        with pytest.raises(ValueError, match="cannot keep up"):
            scrub_overhead(
                36,
                16,
                num_words=1 << 24,
                scrub_period_seconds=0.05,
                clock_hz=1e6,
            )

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            scrub_overhead(18, 16, num_words=0, scrub_period_seconds=60.0)
        with pytest.raises(ValueError):
            scrub_overhead(18, 16, num_words=10, scrub_period_seconds=0.0)
        with pytest.raises(ValueError):
            scrub_overhead(
                18, 16, num_words=10, scrub_period_seconds=60.0, clock_hz=0.0
            )
        with pytest.raises(ValueError):
            scrub_overhead(
                18, 16, num_words=10, scrub_period_seconds=60.0, num_decoders=0
            )


class TestMinPeriodForAvailability:
    def test_matches_overhead_model(self):
        words = 1 << 20
        target = 0.999
        period = min_scrub_period_for_availability(
            18, 16, num_words=words, availability_target=target
        )
        overhead = scrub_overhead(
            18, 16, num_words=words, scrub_period_seconds=period
        )
        assert overhead.availability == pytest.approx(target)

    def test_higher_availability_needs_longer_period(self):
        words = 1 << 20
        relaxed = min_scrub_period_for_availability(
            18, 16, num_words=words, availability_target=0.99
        )
        strict = min_scrub_period_for_availability(
            18, 16, num_words=words, availability_target=0.9999
        )
        assert strict > relaxed

    def test_target_validation(self):
        with pytest.raises(ValueError):
            min_scrub_period_for_availability(
                18, 16, num_words=10, availability_target=1.0
            )
