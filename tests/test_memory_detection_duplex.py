"""Tests for the duplex detection-latency model."""

import numpy as np
import pytest

from repro.markov import build_chain
from repro.memory import FAIL, duplex_detection_model, duplex_model
from repro.memory.detection_duplex import DuplexDetectionModel
from repro.memory.rates import FaultRates

LAM = 2.0
LAME = 3.0
MU = 5.0


def model_with(n=36, k=16, lam=LAM, lam_e=LAME, mu=MU, scrub=0.0, rule="either"):
    return DuplexDetectionModel(
        n,
        k,
        8,
        FaultRates(seu_per_bit=lam, erasure_per_symbol=lam_e, scrub_rate=scrub),
        detection_rate=mu,
        fail_rule=rule,
    )


def state(**kwargs):
    fields = ("x", "y", "b", "e1", "e2", "ec", "u1", "u2", "m1", "m2", "w", "uu")
    return tuple(kwargs.get(f, 0) for f in fields)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError, match="detection rate"):
            model_with(mu=-1.0)
        with pytest.raises(ValueError, match="fail_rule"):
            model_with(rule="sometimes")
        with pytest.raises(ValueError, match="latency"):
            duplex_detection_model(18, 16, mean_detection_hours=-1.0)

    def test_initial_state(self):
        assert model_with().initial_state() == (0,) * 12


class TestCapability:
    def test_unlocated_faults_cost_both_word_specific_and_shared(self):
        m = model_with(n=18, k=16)
        assert m.is_valid(state(u1=1))          # 2 <= 2
        assert not m.is_valid(state(u1=1, x=1))  # 1 + 2 > 2
        assert not m.is_valid(state(uu=1, e1=1))
        assert m.is_valid(state(y=5, u2=1))      # y free, u2 only hits word2

    def test_both_rule(self):
        m = model_with(n=18, k=16, rule="both")
        assert m.is_valid(state(u1=2))           # word2 fine
        assert not m.is_valid(state(u1=2, u2=2))


def rate_to(model, src, dst):
    """Summed transition rate src -> dst from the local rule."""
    return sum(r for nxt, r in model.transitions(src) if nxt == dst)


class TestTransitionRates:
    """Rates checked on the local rule (the full n=36 chain is huge)."""

    @pytest.fixture(scope="class")
    def model(self):
        return model_with()

    def test_clean_pair_fault_split(self, model):
        # paper pair convention: total lam_e * n, split per side
        assert rate_to(model, state(), state(u1=1)) == pytest.approx(
            LAME * 36 / 2
        )
        assert rate_to(model, state(), state(u2=1)) == pytest.approx(
            LAME * 36 / 2
        )

    def test_clean_pair_flips(self, model):
        assert rate_to(model, state(), state(e1=1)) == pytest.approx(
            8 * LAM * 36
        )

    def test_error_pair_fault_on_either_side(self, model):
        src = state(e1=1)
        assert rate_to(model, src, state(u1=1)) == pytest.approx(LAME)
        assert rate_to(model, src, state(m2=1)) == pytest.approx(LAME)

    def test_detection_arcs(self, model):
        assert rate_to(model, state(u1=2), state(u1=1, y=1)) == pytest.approx(
            2 * MU
        )
        assert rate_to(model, state(m1=1), state(b=1)) == pytest.approx(MU)
        assert rate_to(model, state(w=1), state(x=1)) == pytest.approx(MU)
        assert rate_to(model, state(uu=1), state(w=1)) == pytest.approx(2 * MU)

    def test_located_partner_arcs_match_base_model(self, model):
        # y -> w on new fault; y -> b on flip (A and I analogues)
        assert rate_to(model, state(y=2), state(y=1, w=1)) == pytest.approx(
            LAME * 2
        )
        assert rate_to(model, state(y=2), state(y=1, b=1)) == pytest.approx(
            8 * LAM * 2
        )

    def test_scrub_map(self):
        m = model_with(scrub=7.0)
        src = state(x=1, y=1, b=1, e1=1, ec=1, u1=1, m2=1, w=1, uu=1)
        target = state(x=1, y=2, u1=1, u2=1, w=1, uu=1)
        assert rate_to(m, src, target) == 7.0


class TestFastDetectorLimit:
    def test_converges_to_paper_duplex_pure_permanent(self):
        """Instantaneous metric with a fast detector lands on the paper
        chain (whose pure-permanent first passage equals read-at-t)."""
        t = [17520.0]
        paper = duplex_model(18, 16, erasure_per_symbol_day=1e-4)
        fast = duplex_detection_model(
            18, 16, erasure_per_symbol_day=1e-4, mean_detection_hours=0.001
        )
        ratio = fast.read_unreliability(t)[0] / paper.fail_probability(t)[0]
        assert 0.99 < ratio < 1.05

    def test_slow_detector_erases_the_duplex_advantage(self):
        t = [17520.0]
        fast = duplex_detection_model(
            18, 16, erasure_per_symbol_day=1e-4, mean_detection_hours=0.1
        )
        slow = duplex_detection_model(
            18, 16, erasure_per_symbol_day=1e-4, mean_detection_hours=1000.0
        )
        assert (
            slow.read_unreliability(t)[0]
            > 50 * fast.read_unreliability(t)[0]
        )

    def test_instantaneous_below_first_passage(self):
        m = duplex_detection_model(
            18, 16, erasure_per_symbol_day=1e-4, mean_detection_hours=10.0
        )
        t = [730.0, 17520.0]
        inst = m.read_unreliability(t)
        fp = m.fail_probability(t)
        assert np.all(inst <= fp + 1e-15)


class TestPairDecompositionExactness:
    def test_matches_brute_force_count_chain(self):
        """For a tiny code the full non-absorbing count chain is
        enumerable; the per-pair DP must agree to machine precision."""
        mdl = DuplexDetectionModel(
            4,
            2,
            4,
            FaultRates(seu_per_bit=0.02, erasure_per_symbol=0.05),
            detection_rate=0.3,
        )
        chain = build_chain(mdl.initial_state(), mdl.open_transitions)
        times = np.array([0.7, 3.0])
        probs = chain.transient(times, method="expm")
        bad = np.array(
            [(s != FAIL) and (not mdl.is_valid(s)) for s in chain.states]
        )
        brute = probs[:, bad].sum(axis=1)
        pair = mdl.read_unreliability(times)
        assert np.allclose(pair, brute, rtol=1e-12)

    def test_both_rule_decomposition(self):
        mdl = DuplexDetectionModel(
            4,
            2,
            4,
            FaultRates(seu_per_bit=0.02, erasure_per_symbol=0.05),
            detection_rate=0.3,
            fail_rule="both",
        )
        chain = build_chain(mdl.initial_state(), mdl.open_transitions)
        times = np.array([1.5])
        probs = chain.transient(times, method="expm")
        bad = np.array(
            [(s != FAIL) and (not mdl.is_valid(s)) for s in chain.states]
        )
        brute = probs[:, bad].sum(axis=1)
        assert np.allclose(mdl.read_unreliability(times), brute, rtol=1e-12)


class TestInterfaces:
    def test_read_unreliability_rejects_scrubbing(self):
        m = duplex_detection_model(
            18, 16, seu_per_bit_day=1e-4, scrub_period_seconds=3600.0
        )
        with pytest.raises(ValueError, match="scrub"):
            m.read_unreliability([1.0])

    def test_read_ber_factor(self):
        m = duplex_detection_model(
            18, 16, erasure_per_symbol_day=1e-4, mean_detection_hours=1.0
        )
        t = [730.0]
        assert m.read_ber(t)[0] == pytest.approx(
            m.ber_factor * m.read_unreliability(t)[0]
        )

    def test_open_transitions_restores_validity_check(self):
        m = model_with(n=18, k=16)
        m.open_transitions(state(u1=1))
        # after the call the capability check must be active again
        assert not m.is_valid(state(u1=1, x=1))
