"""Tests for the N-modular-redundancy closed-form analysis."""

import math

import numpy as np
import pytest

from repro.memory import nmr_ber, nmr_read_unreliability, redundancy_sweep
from repro.memory.analytic import simplex_fail_probability
from repro.memory.nmr import replica_symbol_occupancies, symbol_damage_pmf
from repro.memory.rates import FaultRates
from repro.memory.simplex import simplex_model


def rates(seu_day=0.0, perm_day=0.0):
    return FaultRates.from_paper_units(
        seu_per_bit_day=seu_day, erasure_per_symbol_day=perm_day
    )


class TestReplicaOccupancies:
    def test_sum_to_one(self):
        r = rates(seu_day=1e-3, perm_day=1e-3)
        p_c, p_e, p_x = replica_symbol_occupancies(8, r, 100.0)
        assert p_c + p_e + p_x == pytest.approx(1.0)
        assert all(p >= 0 for p in (p_c, p_e, p_x))

    def test_time_zero_all_clean(self):
        p_c, p_e, p_x = replica_symbol_occupancies(8, rates(1e-3, 1e-3), 0.0)
        assert (p_c, p_e, p_x) == (1.0, 0.0, 0.0)

    def test_pure_permanent_has_no_errors(self):
        _p_c, p_e, p_x = replica_symbol_occupancies(8, rates(perm_day=1e-2), 50.0)
        assert p_e == 0.0
        assert p_x == pytest.approx(-math.expm1(-(1e-2 / 24) * 50.0))


class TestDamagePmf:
    def test_pmf_sums_to_one(self):
        for n_mod in (1, 2, 3, 5):
            pmf = symbol_damage_pmf(n_mod, 8, rates(1e-3, 1e-3), 20.0)
            assert sum(pmf) == pytest.approx(1.0)

    def test_single_module_semantics(self):
        """N=1: erased -> weight 1, errored -> weight 2 (no voting)."""
        r = rates(seu_day=1e-3, perm_day=2e-3)
        p_c, p_e, p_x = replica_symbol_occupancies(8, r, 30.0)
        pmf = symbol_damage_pmf(1, 8, r, 30.0)
        assert pmf[1] == pytest.approx(p_x)
        assert pmf[2] == pytest.approx(p_e)

    def test_tmr_masks_single_errors(self):
        """N=3: one errored replica out of three votes away cleanly."""
        r = rates(seu_day=1e-4)
        p_c, p_e, _ = replica_symbol_occupancies(8, r, 10.0)
        pmf = symbol_damage_pmf(3, 8, r, 10.0)
        # error needs >= 2 errored replicas: leading term 3 pe^2 pc
        assert pmf[2] == pytest.approx(
            3 * p_e**2 * p_c + p_e**3, rel=1e-9
        )

    def test_erasure_needs_all_replicas(self):
        r = rates(perm_day=1e-3)
        _, _, p_x = replica_symbol_occupancies(8, r, 100.0)
        pmf = symbol_damage_pmf(3, 8, r, 100.0)
        assert pmf[1] == pytest.approx(p_x**3)

    def test_invalid_module_count(self):
        with pytest.raises(ValueError):
            symbol_damage_pmf(0, 8, rates(), 1.0)


class TestReadUnreliability:
    def test_n1_matches_simplex_closed_form_pure_transient(self):
        """For pure regimes the simplex point-in-time == first-passage, so
        N=1 must reproduce the paper-model closed form exactly."""
        lam = 1e-3
        r = rates(seu_day=lam)
        times = [10.0, 48.0]
        nmr = nmr_read_unreliability(18, 16, 1, r, times)
        simplex = simplex_fail_probability(
            simplex_model(18, 16, seu_per_bit_day=lam), times
        )
        assert np.allclose(nmr, simplex, rtol=1e-12)

    def test_n1_matches_simplex_pure_permanent(self):
        r = rates(perm_day=1e-3)
        times = [100.0, 1000.0]
        nmr = nmr_read_unreliability(18, 16, 1, r, times)
        simplex = simplex_fail_probability(
            simplex_model(18, 16, erasure_per_symbol_day=1e-3), times
        )
        assert np.allclose(nmr, simplex, rtol=1e-12)

    def test_tmr_beats_simplex(self):
        r = rates(seu_day=1e-3, perm_day=1e-3)
        t = [48.0]
        assert (
            nmr_read_unreliability(18, 16, 3, r, t)[0]
            < nmr_read_unreliability(18, 16, 1, r, t)[0] / 10
        )

    def test_odd_n_monotone_improvement(self):
        """Adding a replica pair always helps: N=1 > N=3 > N=5."""
        r = rates(seu_day=2e-3, perm_day=2e-3)
        t = 48.0
        sweep = dict(redundancy_sweep(18, 16, r, t, max_modules=5))
        assert sweep[1] > sweep[3] > sweep[5]

    def test_even_n_tie_penalty(self):
        """N=2 is *worse* than N=1 under transients: a single-replica error
        ties the vote, which the conservative analysis counts as an error
        in the merged word - the quantitative reason the paper's duplex
        uses decoder flags instead of a bare voter."""
        r = rates(seu_day=1e-3)
        t = [48.0]
        assert (
            nmr_read_unreliability(18, 16, 2, r, t)[0]
            > nmr_read_unreliability(18, 16, 1, r, t)[0]
        )

    def test_pure_permanent_tracks_duplex_chain(self):
        """Under pure permanent faults voting has no ties and NMR-2 fails,
        like the paper's duplex, on n-k+1 double-sided erasures.  The two
        differ only in per-pair exposure convention: the paper's chain
        erases a clean pair at rate λe (Erlang-2 to X, leading a²/2)
        while independent replicas give (1-e^{-a})² (leading a²), i.e.
        up to 2³ = 8x on the three-pair failure tail."""
        from repro.memory import duplex_model
        from repro.memory.analytic import duplex_fail_probability

        r = rates(perm_day=1e-4)
        times = [730.0, 2000.0]
        nmr = nmr_read_unreliability(18, 16, 2, r, times)
        dup = duplex_fail_probability(
            duplex_model(18, 16, erasure_per_symbol_day=1e-4), times
        )
        assert np.all(nmr >= dup)
        assert np.all(nmr <= 9.0 * dup)

    def test_scrubbing_rejected(self):
        r = FaultRates(seu_per_bit=1e-5, scrub_rate=1.0)
        with pytest.raises(ValueError, match="scrubbing"):
            nmr_read_unreliability(18, 16, 3, r, [1.0])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            nmr_read_unreliability(16, 16, 3, rates(), [1.0])

    def test_ber_factor(self):
        r = rates(seu_day=1e-3)
        t = [48.0]
        assert nmr_ber(36, 16, 3, r, t)[0] == pytest.approx(
            10.0 * nmr_read_unreliability(36, 16, 3, r, t)[0]
        )

    def test_time_zero_is_reliable(self):
        r = rates(seu_day=1e-3, perm_day=1e-3)
        assert nmr_read_unreliability(18, 16, 3, r, [0.0])[0] == 0.0
