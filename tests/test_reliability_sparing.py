"""Tests for the repairable sparing models."""

import math

import pytest

from repro.reliability import (
    SparingConfig,
    cold_standby,
    spares_for_mission,
    sparing_availability,
    sparing_mttf_hours,
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SparingConfig(active=0, spares=1, fail_rate=1e-4)
        with pytest.raises(ValueError):
            SparingConfig(active=1, spares=-1, fail_rate=1e-4)
        with pytest.raises(ValueError):
            SparingConfig(active=1, spares=1, fail_rate=-1e-4)
        with pytest.raises(ValueError):
            SparingConfig(active=1, spares=1, fail_rate=1e-4, repair_crews=0)


class TestMTTF:
    def test_no_spares_no_repair_is_exponential(self):
        config = SparingConfig(active=4, spares=0, fail_rate=1e-3)
        assert sparing_mttf_hours(config) == pytest.approx(1.0 / (4 * 1e-3))

    def test_spares_add_erlang_stages(self):
        # with s spares and pooled rate R, MTTF = (s+1)/R
        config = SparingConfig(active=4, spares=2, fail_rate=1e-3)
        assert sparing_mttf_hours(config) == pytest.approx(3.0 / (4 * 1e-3))

    def test_repair_extends_mttf(self):
        without = SparingConfig(active=4, spares=2, fail_rate=1e-3)
        with_repair = SparingConfig(
            active=4, spares=2, fail_rate=1e-3, repair_rate=0.1
        )
        assert sparing_mttf_hours(with_repair) > 10 * sparing_mttf_hours(
            without
        )

    def test_zero_fail_rate_is_infinite(self):
        config = SparingConfig(active=4, spares=1, fail_rate=0.0)
        assert sparing_mttf_hours(config) == math.inf


class TestAvailability:
    def test_no_repair_availability_zero(self):
        config = SparingConfig(active=4, spares=2, fail_rate=1e-3)
        assert sparing_availability(config) == 0.0

    def test_fast_repair_high_availability(self):
        config = SparingConfig(
            active=4, spares=2, fail_rate=1e-4, repair_rate=1.0
        )
        assert sparing_availability(config) > 0.9999999

    def test_more_spares_raise_availability(self):
        base = dict(active=4, fail_rate=1e-2, repair_rate=0.05)
        low = sparing_availability(SparingConfig(spares=1, **base))
        high = sparing_availability(SparingConfig(spares=3, **base))
        assert high > low

    def test_matches_birth_death_closed_form(self):
        """One active, one spare, one crew: hand-checkable 3-state chain."""
        lam, mu = 0.01, 0.1
        config = SparingConfig(
            active=1, spares=1, fail_rate=lam, repair_rate=mu
        )
        # states 0,1 up; 2 down; balance: p1 = (lam/mu) p0, p2 = (lam/mu) p1
        r = lam / mu
        p0 = 1.0 / (1 + r + r * r)
        expected = p0 * (1 + r)
        assert sparing_availability(config) == pytest.approx(expected, rel=1e-9)


class TestSparesForMission:
    def test_matches_cold_standby_formula(self):
        active, lam, mission, target = 4, 1e-5, 17520.0, 0.999
        spares = spares_for_mission(active, lam, mission, target)
        pooled = active * lam
        # the chosen count meets the target, one fewer does not
        assert cold_standby(pooled, spares, mission) >= target
        if spares > 0:
            assert cold_standby(pooled, spares - 1, mission) < target

    def test_zero_rate_needs_no_spares(self):
        assert spares_for_mission(4, 0.0, 1e6, 0.999999) == 0

    def test_impossible_target_raises(self):
        with pytest.raises(ValueError, match="spares"):
            spares_for_mission(10, 1.0, 1e4, 0.999, max_spares=4)

    def test_target_validation(self):
        with pytest.raises(ValueError):
            spares_for_mission(4, 1e-5, 100.0, 1.5)
        with pytest.raises(ValueError):
            spares_for_mission(4, 1e-5, 0.0, 0.9)
