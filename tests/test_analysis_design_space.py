"""Tests for the design-space enumeration and Pareto analysis."""

import pytest

from repro.analysis import (
    cheapest_meeting_budget,
    enumerate_design_space,
    pareto_front,
)
from repro.analysis.design_space import DesignPoint


def sweep(**kwargs):
    defaults = dict(
        k=16,
        t_values=[1, 4, 10],
        horizon_hours=17520.0,
        erasure_per_symbol_day=1e-6,
    )
    defaults.update(kwargs)
    return enumerate_design_space(**defaults)


class TestEnumeration:
    def test_two_arrangements_per_t(self):
        points = sweep()
        assert len(points) == 6
        names = {p.name for p in points}
        assert "simplex RS(18,16)" in names
        assert "duplex RS(36,16)" in names

    def test_validation(self):
        with pytest.raises(ValueError):
            sweep(t_values=[])
        with pytest.raises(ValueError):
            sweep(t_values=[0])
        with pytest.raises(ValueError):
            sweep(t_values=[200])  # n > 2^m - 1

    def test_storage_overheads(self):
        by_name = {p.name: p for p in sweep()}
        assert by_name["simplex RS(18,16)"].storage_overhead == pytest.approx(
            2 / 16
        )
        assert by_name["duplex RS(18,16)"].storage_overhead == pytest.approx(
            20 / 16
        )

    def test_more_redundancy_better_ber(self):
        by_name = {p.name: p for p in sweep()}
        assert (
            by_name["simplex RS(36,16)"].ber
            < by_name["simplex RS(24,16)"].ber
            < by_name["simplex RS(18,16)"].ber
        )

    def test_duplex_beats_simplex_at_same_code_under_permanent_faults(self):
        by_name = {p.name: p for p in sweep()}
        assert (
            by_name["duplex RS(18,16)"].ber
            < by_name["simplex RS(18,16)"].ber
        )


class TestDominance:
    def make(self, ber, cycles, area, storage):
        return DesignPoint(
            name="x",
            arrangement="simplex",
            n=18,
            k=16,
            t=1,
            ber=ber,
            decode_cycles=cycles,
            area_gate_equivalents=area,
            storage_overhead=storage,
        )

    def test_dominates_strictly_better(self):
        good = self.make(1e-10, 74, 1000, 0.1)
        bad = self.make(1e-8, 100, 2000, 0.2)
        assert good.dominates(bad)
        assert not bad.dominates(good)

    def test_equal_points_do_not_dominate(self):
        a = self.make(1e-10, 74, 1000, 0.1)
        b = self.make(1e-10, 74, 1000, 0.1)
        assert not a.dominates(b)

    def test_tradeoff_points_incomparable(self):
        fast = self.make(1e-8, 74, 1000, 0.1)
        reliable = self.make(1e-12, 308, 3000, 0.3)
        assert not fast.dominates(reliable)
        assert not reliable.dominates(fast)


class TestParetoFront:
    def test_front_is_subset_sorted_by_ber(self):
        points = sweep()
        front = pareto_front(points)
        assert set(front) <= set(points)
        bers = [p.ber for p in front]
        assert bers == sorted(bers)

    def test_duplex_rs1816_on_the_front(self):
        """The paper's balanced design point survives Pareto pruning:
        nothing is simultaneously more reliable, faster, smaller and
        leaner on storage."""
        front = pareto_front(sweep())
        assert any(p.name == "duplex RS(18,16)" for p in front)

    def test_dominated_point_removed(self):
        points = sweep()
        worst = DesignPoint(
            name="strawman",
            arrangement="simplex",
            n=18,
            k=16,
            t=1,
            ber=1.0,
            decode_cycles=10_000,
            area_gate_equivalents=1e9,
            storage_overhead=10.0,
        )
        front = pareto_front(list(points) + [worst])
        assert all(p.name != "strawman" for p in front)


class TestBudgetSearch:
    def test_picks_minimal_area(self):
        points = sweep()
        chosen = cheapest_meeting_budget(points, 1e-15)
        for p in points:
            if p.ber <= 1e-15:
                assert chosen.area_gate_equivalents <= p.area_gate_equivalents

    def test_impossible_budget_raises(self):
        with pytest.raises(ValueError, match="budget"):
            cheapest_meeting_budget(sweep(), 1e-300)
