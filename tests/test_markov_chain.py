"""Unit tests for the CTMC representation."""

import math

import numpy as np
import pytest

from repro.markov import CTMC


@pytest.fixture
def two_state():
    """Simple decay: A -> B at rate 2.0."""
    return CTMC(["A", "B"], [("A", "B", 2.0)], "A")


@pytest.fixture
def cyclic():
    """A <-> B, both directions."""
    return CTMC(["A", "B"], [("A", "B", 1.0), ("B", "A", 3.0)], "A")


class TestConstruction:
    def test_duplicate_states_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            CTMC(["A", "A"], [], "A")

    def test_empty_state_space_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            CTMC([], [], "A")

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="negative rate"):
            CTMC(["A", "B"], [("A", "B", -1.0)], "A")

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            CTMC(["A"], [("A", "A", 1.0)], "A")

    def test_unknown_state_in_transition_rejected(self):
        with pytest.raises(KeyError):
            CTMC(["A"], [("A", "Z", 1.0)], "A")

    def test_parallel_transitions_summed(self):
        chain = CTMC(
            ["A", "B"], [("A", "B", 1.0), ("A", "B", 2.5)], "A"
        )
        assert chain.rate("A", "B") == 3.5

    def test_zero_rate_transitions_dropped(self):
        chain = CTMC(["A", "B"], [("A", "B", 0.0)], "A")
        assert chain.rate_matrix.nnz == 0

    def test_initial_distribution_mapping(self):
        chain = CTMC(["A", "B"], [], {"A": 0.25, "B": 0.75})
        assert chain.p0.tolist() == [0.25, 0.75]

    def test_initial_distribution_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sums to"):
            CTMC(["A", "B"], [], {"A": 0.4, "B": 0.4})

    def test_negative_initial_probability_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            CTMC(["A", "B"], [], {"A": -0.5, "B": 1.5})


class TestStructure:
    def test_generator_rows_sum_to_zero(self, cyclic):
        q = cyclic.generator(dense=True)
        assert np.allclose(q.sum(axis=1), 0.0)

    def test_generator_diagonal_is_negative_exit_rate(self, cyclic):
        q = cyclic.generator(dense=True)
        assert q[0, 0] == -1.0
        assert q[1, 1] == -3.0

    def test_absorbing_states(self, two_state):
        assert two_state.absorbing_states() == ["B"]

    def test_exit_rates(self, two_state):
        assert two_state.exit_rates().tolist() == [2.0, 0.0]

    def test_rate_lookup(self, cyclic):
        assert cyclic.rate("A", "B") == 1.0
        assert cyclic.rate("B", "A") == 3.0
        assert cyclic.rate("A", "A") == 0.0

    def test_repr(self, cyclic):
        assert "num_states=2" in repr(cyclic)


class TestTransient:
    def test_matches_exponential_decay(self, two_state):
        times = [0.0, 0.1, 0.5, 1.0, 3.0]
        probs = two_state.transient(times)
        for t, row in zip(times, probs):
            assert row[0] == pytest.approx(math.exp(-2.0 * t), rel=1e-10)
            assert row[1] == pytest.approx(-math.expm1(-2.0 * t), rel=1e-10)

    def test_t_zero_returns_initial(self, cyclic):
        probs = cyclic.transient([0.0])
        assert probs[0].tolist() == [1.0, 0.0]

    def test_two_state_equilibrium(self, cyclic):
        probs = cyclic.transient([100.0])[0]
        # stationary distribution of A<->B with rates 1, 3 is (3/4, 1/4)
        assert probs[0] == pytest.approx(0.75, rel=1e-9)
        assert probs[1] == pytest.approx(0.25, rel=1e-9)

    def test_probability_conserved(self, cyclic):
        probs = cyclic.transient(np.linspace(0, 10, 11))
        assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-12)

    def test_unsorted_time_grid(self, two_state):
        shuffled = [3.0, 0.5, 1.0, 0.0]
        probs = two_state.transient(shuffled)
        for t, row in zip(shuffled, probs):
            assert row[0] == pytest.approx(math.exp(-2.0 * t), rel=1e-9)

    def test_negative_time_rejected(self, two_state):
        with pytest.raises(ValueError, match="nonnegative"):
            two_state.transient([-1.0])

    def test_unknown_method_rejected(self, two_state):
        with pytest.raises(ValueError, match="unknown method"):
            two_state.transient([1.0], method="magic")

    def test_state_probability(self, two_state):
        p = two_state.state_probability("B", [1.0])
        assert p[0] == pytest.approx(-math.expm1(-2.0), rel=1e-10)

    def test_no_transitions_is_static(self):
        chain = CTMC(["A", "B"], [], "A")
        probs = chain.transient([0.0, 5.0, 50.0])
        assert np.allclose(probs[:, 0], 1.0)


class TestAbsorption:
    def test_mtta_exponential(self, two_state):
        assert two_state.mean_time_to_absorption(["B"]) == pytest.approx(0.5)

    def test_mtta_erlang_chain(self):
        # A -> B -> C with rates 1 and 2: MTTA = 1 + 0.5
        chain = CTMC(
            ["A", "B", "C"], [("A", "B", 1.0), ("B", "C", 2.0)], "A"
        )
        assert chain.mean_time_to_absorption(["C"]) == pytest.approx(1.5)

    def test_mtta_unreachable_is_infinite(self):
        chain = CTMC(["A", "B", "C"], [("A", "B", 1.0)], "A")
        assert chain.mean_time_to_absorption(["C"]) == math.inf

    def test_mtta_all_targets_is_zero(self, two_state):
        assert two_state.mean_time_to_absorption(["A", "B"]) == 0.0
