"""Tests for CSV export of experiment data."""

import numpy as np
import pytest

from repro.analysis import fig5_simplex_seu
from repro.analysis.export import curves_to_csv, experiment_to_csv, load_csv
from repro.memory.ber import BERCurve


def curve(label, times, values):
    return BERCurve(label, np.asarray(times, float), np.asarray(values, float))


class TestCurvesToCsv:
    def test_roundtrip_exact(self, tmp_path):
        curves = [
            curve("a", [0.0, 24.0], [0.0, 1.234e-8]),
            curve("b", [0.0, 24.0], [0.0, 7.5e-200]),
        ]
        path = curves_to_csv(curves, tmp_path / "out.csv")
        header, rows = load_csv(path)
        assert header == ["hours", "a", "b"]
        assert rows[1] == [24.0, 1.234e-8, 7.5e-200]

    def test_time_scaling(self, tmp_path):
        path = curves_to_csv(
            [curve("x", [0.0, 730.0], [0.0, 1e-3])],
            tmp_path / "out.csv",
            time_label="months",
            time_scale=730.0,
        )
        header, rows = load_csv(path)
        assert header[0] == "months"
        assert rows[1][0] == 1.0

    def test_creates_parent_directories(self, tmp_path):
        path = curves_to_csv(
            [curve("x", [0.0], [0.0])], tmp_path / "deep" / "dir" / "out.csv"
        )
        assert path.exists()

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="nothing"):
            curves_to_csv([], tmp_path / "out.csv")

    def test_mismatched_grids_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="time grid"):
            curves_to_csv(
                [curve("a", [0.0], [0.0]), curve("b", [0.0, 1.0], [0.0, 0.0])],
                tmp_path / "out.csv",
            )


class TestExperimentToCsv:
    def test_writes_named_after_experiment(self, tmp_path):
        result = fig5_simplex_seu(points=3)
        path = experiment_to_csv(result, tmp_path)
        assert path.name == "fig5.csv"
        header, rows = load_csv(path)
        assert len(header) == 1 + len(result.curves)
        assert len(rows) == 3
        # values must match the in-memory curves exactly
        assert rows[-1][1] == result.curves[0].final
