"""Tests for the gate-level decoder area derivation."""

import pytest

from repro.gf import GF2m
from repro.rs import decoder_area, linearity_check
from repro.rs.area import (
    constant_multiplier_xor_count,
    general_multiplier_gates,
)


class TestConstantMultiplier:
    def test_multiply_by_one_is_free(self):
        gf = GF2m(8)
        assert constant_multiplier_xor_count(gf, 1) == 0

    def test_multiply_by_zero_is_free(self):
        gf = GF2m(8)
        assert constant_multiplier_xor_count(gf, 0) == 0

    def test_multiply_by_alpha_small_field(self):
        """GF(8), poly x^3+x+1: x*alpha mixes via the feedback taps.

        The matrix columns are alpha*1=2, alpha*2=4, alpha*4=3, i.e. rows
        have (row0: from col2) 1 one, (row1: cols 0 and 2) 2 ones, (row2:
        col 1) 1 one — a single XOR total.
        """
        gf = GF2m(3)
        assert constant_multiplier_xor_count(gf, gf.alpha) == 1

    def test_counts_match_matrix_structure(self):
        """XOR count equals sum over output rows of (ones - 1)."""
        gf = GF2m(4)
        for constant in (1, 2, 7, 11):
            rows = [0] * gf.m
            for j in range(gf.m):
                col = gf.mul(constant, 1 << j)
                for i in range(gf.m):
                    if col >> i & 1:
                        rows[i] += 1
            expected = sum(max(0, r - 1) for r in rows)
            assert constant_multiplier_xor_count(gf, constant) == expected


class TestGeneralMultiplier:
    def test_and_count_is_m_squared(self):
        assert general_multiplier_gates(GF2m(8))["and"] == 64
        assert general_multiplier_gates(GF2m(4))["and"] == 16

    def test_xor_count_grows_with_m(self):
        assert (
            general_multiplier_gates(GF2m(8))["xor"]
            > general_multiplier_gates(GF2m(4))["xor"]
        )


class TestDecoderArea:
    def test_validation(self):
        with pytest.raises(ValueError):
            decoder_area(16, 16)

    def test_components_positive(self):
        area = decoder_area(18, 16)
        assert area.syndrome_gates > 0
        assert area.key_equation_gates > 0
        assert area.chien_forney_gates > 0
        assert area.flipflops > 0
        assert area.gate_equivalents > area.combinational_gates

    def test_area_grows_with_redundancy(self):
        assert (
            decoder_area(36, 16).gate_equivalents
            > decoder_area(18, 16).gate_equivalents
        )

    def test_paper_claim_one_rs3616_exceeds_two_rs1816(self):
        """Section 6, derived structurally instead of asserted."""
        one_big = decoder_area(36, 16).gate_equivalents
        two_small = 2 * decoder_area(18, 16).gate_equivalents
        assert one_big > two_small

    def test_area_roughly_linear_in_symbol_width(self):
        a8 = decoder_area(15, 11, m=8).gate_equivalents
        a4 = decoder_area(15, 11, m=4).gate_equivalents
        assert 1.5 < a8 / a4 < 4.0  # "almost linearly dependent on m"


class TestLinearity:
    def test_paper_linearity_claim(self):
        """Gate equivalents are linear in n-k to within a few percent."""
        assert linearity_check(m=8, k=16) < 0.05
