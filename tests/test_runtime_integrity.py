"""Durable-state integrity layer: framing, scanning, locks, healing.

Unit coverage for :mod:`repro.ioutil` and
:mod:`repro.runtime.integrity`, plus end-to-end quarantine/degradation
behaviour of the v2 :class:`~repro.runtime.checkpoint.CheckpointJournal`
driven through ``simulate_fail_probability_batched``.
"""

import errno
import json
import os
import warnings

import pytest

from repro.ioutil import atomic_write, crc32c, fsync_dir
from repro.perf import PerfCounters
from repro.rs import RSCode
from repro.runtime import (
    CheckpointError,
    CheckpointJournal,
    JournalLock,
    JournalLockedError,
    RuntimeConfig,
)
from repro.runtime.integrity import (
    CHAIN_SEED,
    FrameError,
    chain_hash,
    frame_record,
    parse_frame,
    probe_lock,
    quarantine_path,
    render_journal,
    repair_journal,
    scan_journal,
)
from repro.simulator import simulate_fail_probability_batched

CODE = RSCode(18, 16, m=8)
LAM = 2e-3 / 24.0


def batched(trials=150, chunk_size=50, seed=11, runtime=None, counters=None):
    return simulate_fail_probability_batched(
        "simplex",
        CODE,
        48.0,
        LAM,
        0.0,
        trials,
        seed=seed,
        chunk_size=chunk_size,
        runtime=runtime,
        counters=counters,
    )


def record_journal(path, **kwargs):
    with CheckpointJournal(path) as journal:
        result = batched(runtime=RuntimeConfig(journal=journal), **kwargs)
    return result


class TestCrc32c:
    def test_standard_check_value(self):
        # The canonical CRC-32C check value (RFC 3720 appendix B.4).
        assert crc32c(b"123456789") == 0xE3069283

    def test_empty_and_incremental(self):
        assert crc32c(b"") == 0
        whole = crc32c(b"hello world")
        split = crc32c(b" world", crc32c(b"hello"))
        assert whole == split

    def test_detects_any_single_byte_flip(self):
        data = b'{"kind": "chunk", "chunk": 3}'
        reference = crc32c(data)
        for i in range(len(data)):
            for mask in (0x01, 0x80, 0xFF):
                mutated = bytearray(data)
                mutated[i] ^= mask
                assert crc32c(bytes(mutated)) != reference


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write(target, "first")
        assert target.read_text() == "first"
        atomic_write(target, "second")
        assert target.read_text() == "second"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.json"
        atomic_write(target, "deep")
        assert target.read_text() == "deep"

    def test_accepts_bytes(self, tmp_path):
        target = tmp_path / "blob.bin"
        atomic_write(target, b"\x00\xff")
        assert target.read_bytes() == b"\x00\xff"

    def test_no_temp_litter_on_success(self, tmp_path):
        atomic_write(tmp_path / "x", "data")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["x"]

    def test_failure_leaves_old_file_and_no_litter(self, tmp_path, monkeypatch):
        target = tmp_path / "x"
        atomic_write(target, "old")

        def boom(src, dst):
            raise OSError(errno.EIO, "injected replace failure")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            atomic_write(target, "new")
        assert target.read_text() == "old"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["x"]

    def test_fsync_dir_tolerates_missing_path(self, tmp_path):
        fsync_dir(tmp_path / "nope")  # must not raise


class TestFraming:
    def test_roundtrip(self):
        payload = json.dumps({"kind": "chunk", "chunk": 0}).encode()
        line, chain = frame_record(payload, CHAIN_SEED)
        crc, chain_hex, parsed = parse_frame(line)
        assert parsed == payload
        assert crc == crc32c(payload)
        assert bytes.fromhex(chain_hex) == chain
        assert chain == chain_hash(CHAIN_SEED, payload)

    def test_chain_depends_on_predecessor(self):
        payload = b'{"a": 1}'
        _, c1 = frame_record(payload, CHAIN_SEED)
        _, c2 = frame_record(payload, c1)
        assert c1 != c2

    @pytest.mark.parametrize(
        "bad",
        [
            "not a frame",
            "3|00000000|0011223344556677|{}",
            "2|short|0011223344556677|{}",
            "2|00000000|tooshort|{}",
            "2|zzzzzzzz|0011223344556677|{}",
            "2|00000000",
        ],
    )
    def test_malformed_lines_rejected(self, bad):
        with pytest.raises(FrameError):
            parse_frame(bad)


class TestScanClassification:
    def journal_text(self, n=4):
        records = [{"kind": "header", "fingerprint": {"seed": 1}}]
        records += [
            {"kind": "chunk", "cell": "c", "chunk": i, "seed": "s", "result": {}}
            for i in range(n)
        ]
        return render_journal(records)

    def test_missing_empty_healthy(self, tmp_path):
        path = tmp_path / "j.jsonl"
        assert scan_journal(path).classification == "missing"
        path.write_text("")
        assert scan_journal(path).classification == "empty"
        path.write_text(self.journal_text())
        scan = scan_journal(path)
        assert scan.classification == "healthy"
        assert scan.version == 2
        assert len(scan.records) == 5

    def test_torn_tail_is_trailing_damage_only(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(self.journal_text() + "2|dead")
        scan = scan_journal(path)
        assert scan.classification == "torn-tail"
        assert len(scan.torn_tail) == 1
        assert len(scan.records) == 5  # all real records survive

    def test_mid_file_flip_is_corrupt_and_localized(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = self.journal_text().splitlines()
        mutated = bytearray(lines[2].encode())
        mutated[len(mutated) // 2] ^= 0x01
        lines[2] = mutated.decode("utf-8", errors="replace")
        path.write_text("\n".join(lines) + "\n")
        scan = scan_journal(path)
        assert scan.classification == "corrupt"
        # The resync rule confines the blast radius to ~the hit line.
        assert len(scan.mid_file) <= 2
        assert len(scan.records) >= 3

    def test_deleted_line_breaks_the_chain(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = self.journal_text().splitlines()
        del lines[2]  # splice a record out; CRCs all still pass
        path.write_text("\n".join(lines) + "\n")
        scan = scan_journal(path)
        assert any(d.reason == "chain-break" for d in scan.damage)

    def test_unframed_line_inside_v2_is_damage(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = self.journal_text().splitlines()
        lines.insert(2, '{"kind": "chunk", "chunk": 99}')
        path.write_text("\n".join(lines) + "\n")
        scan = scan_journal(path)
        assert any(d.reason == "unframed" for d in scan.damage)
        assert all(r.get("chunk") != 99 for _ln, r in scan.records)

    def test_legacy_v1_detected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"kind": "header", "fingerprint": {}}\n')
        scan = scan_journal(path)
        assert scan.version == 1
        assert scan.classification == "healthy"


class TestLocking:
    def test_second_acquirer_fails_fast(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        with JournalLock(journal):
            with pytest.raises(JournalLockedError):
                JournalLock(journal).acquire()
        JournalLock(journal).acquire().release()  # free after release

    def test_acquire_is_idempotent(self, tmp_path):
        lock = JournalLock(tmp_path / "j.jsonl")
        lock.acquire()
        lock.acquire()
        lock.release()

    def test_probe_does_not_steal(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        assert probe_lock(journal)["held"] is False
        with JournalLock(journal):
            assert probe_lock(journal)["held"] is True
        assert probe_lock(journal)["held"] is False

    def test_concurrent_journal_append_contends(self, tmp_path):
        path = tmp_path / "j.jsonl"
        first = CheckpointJournal(path)
        first.ensure_header({"seed": 1})
        second = CheckpointJournal(path)
        with pytest.raises(JournalLockedError):
            second.ensure_header({"seed": 1})
        first.close()
        second.close()


class TestJournalCreationDurability:
    def test_parent_dir_fsynced_on_creation(self, tmp_path, monkeypatch):
        synced = []
        monkeypatch.setattr(
            "repro.runtime.checkpoint.fsync_dir",
            lambda p: synced.append(os.fspath(p)),
        )
        path = tmp_path / "j.jsonl"
        with CheckpointJournal(path) as journal:
            journal.ensure_header({"seed": 1})
        assert os.fspath(tmp_path) in synced

    def test_no_dir_fsync_on_append_to_existing(self, tmp_path, monkeypatch):
        path = tmp_path / "j.jsonl"
        with CheckpointJournal(path) as journal:
            journal.ensure_header({"seed": 1})
        synced = []
        monkeypatch.setattr(
            "repro.runtime.checkpoint.fsync_dir",
            lambda p: synced.append(os.fspath(p)),
        )
        with CheckpointJournal(path) as journal:
            journal.ensure_header({"seed": 1})
            journal.record_chunk("c", 0, "s", {"x": 1})
        assert synced == []


class TestQuarantineResume:
    def test_flip_one_byte_resume_bit_identical(self, tmp_path):
        path = tmp_path / "run.jsonl"
        reference = record_journal(path)

        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x20
        path.write_bytes(bytes(blob))

        counters = PerfCounters()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with CheckpointJournal(path) as journal:
                quarantined = journal.records_quarantined
                resumed = batched(
                    runtime=RuntimeConfig(journal=journal), counters=counters
                )
        assert resumed == reference
        assert quarantined >= 1
        assert quarantine_path(path).exists()
        # The journal is clean again after the healing rewrite + rerun.
        assert scan_journal(path).classification == "healthy"

    def test_quarantine_sidecar_is_self_describing(self, tmp_path):
        path = tmp_path / "run.jsonl"
        record_journal(path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x20
        path.write_bytes(bytes(blob))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            CheckpointJournal(path).close()
        entries = [
            json.loads(line)
            for line in quarantine_path(path).read_text().splitlines()
        ]
        assert entries
        for entry in entries:
            assert entry["journal"] == str(path)
            assert entry["reason"] == "load"
            assert entry["damage"] in ("bad-crc", "chain-break", "bad-json")
            assert "raw" in entry

    def test_damaged_header_recomputes_everything(self, tmp_path):
        path = tmp_path / "run.jsonl"
        reference = record_journal(path)
        lines = path.read_text().splitlines()
        mutated = bytearray(lines[0].encode())
        mutated[30] ^= 0x08
        lines[0] = mutated.decode("utf-8", errors="replace")
        path.write_text("\n".join(lines) + "\n")

        counters = PerfCounters()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with CheckpointJournal(path) as journal:
                assert journal.header_fingerprint is None
                resumed = batched(
                    runtime=RuntimeConfig(journal=journal), counters=counters
                )
        assert resumed == reference
        assert counters.chunks_resumed == 0  # nothing could be trusted


class TestLegacyReadOnly:
    def to_v1(self, path):
        lines = path.read_text().splitlines()
        path.write_text(
            "\n".join(line.split("|", 3)[3] for line in lines) + "\n"
        )

    def test_v1_resumes_bit_identical_without_writing(self, tmp_path):
        path = tmp_path / "run.jsonl"
        reference = record_journal(path)
        self.to_v1(path)
        before = path.read_bytes()

        counters = PerfCounters()
        with CheckpointJournal(path) as journal:
            assert journal.readonly
            assert journal.version == 1
            resumed = batched(
                runtime=RuntimeConfig(journal=journal), counters=counters
            )
        assert resumed == reference
        assert counters.chunks_resumed == 3
        assert path.read_bytes() == before  # never appended to

    def test_v1_mid_file_corruption_still_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        record_journal(path)
        self.to_v1(path)
        lines = path.read_text().splitlines()
        lines.insert(2, "NOT JSON")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="doctor"):
            CheckpointJournal(path)
        # ... and doctor --repair's engine makes it loadable again.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            actions = repair_journal(path)
        assert actions["repaired"] and actions["upgraded_from_v1"]
        journal = CheckpointJournal(path)
        assert not journal.readonly and journal.version == 2
        journal.close()


class TestEnospcDegradation:
    def test_write_failure_degrades_not_raises(self, tmp_path):
        from repro.runtime import parse_chaos_spec

        path = tmp_path / "run.jsonl"
        chaos = parse_chaos_spec("enospc@1")
        counters = PerfCounters()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with CheckpointJournal(path, chaos=chaos) as journal:
                result = batched(
                    runtime=RuntimeConfig(journal=journal), counters=counters
                )
                assert journal.degraded
                assert journal.io_errors == 1
                assert journal.appends_lost >= 2  # failed + subsequent
                assert "ENOSPC" in journal.degraded_reason
        assert result == batched()  # estimates unharmed

    def test_degraded_journal_emits_trace_event(self, tmp_path):
        from repro.obs import trace as obs_trace
        from repro.runtime import parse_chaos_spec

        collector = obs_trace.TraceCollector()
        obs_trace.install_collector(collector)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                chaos = parse_chaos_spec("enospc@0")
                with CheckpointJournal(
                    tmp_path / "run.jsonl", chaos=chaos
                ) as journal:
                    batched(runtime=RuntimeConfig(journal=journal))
        finally:
            obs_trace.install_collector(None)
        events = collector.events("journal_io_error")
        assert len(events) == 1
        assert "ENOSPC" in events[0]["attrs"]["error"]

    def test_degradation_warns_resilience(self, tmp_path):
        from repro.runtime import ResilienceWarning, parse_chaos_spec

        chaos = parse_chaos_spec("enospc@0")
        with pytest.warns(ResilienceWarning, match="resumable state is lost"):
            with CheckpointJournal(
                tmp_path / "run.jsonl", chaos=chaos
            ) as journal:
                batched(runtime=RuntimeConfig(journal=journal))
