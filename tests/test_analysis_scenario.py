"""Tests for the JSON scenario runner."""

import json

import pytest

from repro.analysis import (
    run_scenario,
    run_scenario_file,
    run_scenario_suite,
    validate_scenario,
)

BASE = {
    "arrangement": "duplex",
    "n": 18,
    "k": 16,
    "seu_per_bit_day": 1.7e-5,
    "scrub_period_seconds": 3600,
    "horizon_hours": 48.0,
    "points": 5,
}


class TestValidation:
    def test_missing_required_key(self):
        with pytest.raises(ValueError, match="missing"):
            validate_scenario({"arrangement": "simplex"})

    def test_unknown_key_rejected(self):
        bad = dict(BASE, typo_field=1)
        with pytest.raises(ValueError, match="unknown"):
            validate_scenario(bad)

    def test_bad_arrangement(self):
        with pytest.raises(ValueError, match="arrangement"):
            validate_scenario(dict(BASE, arrangement="triplex"))

    def test_defaults_filled(self):
        cfg = validate_scenario(
            {"arrangement": "simplex", "n": 18, "k": 16, "horizon_hours": 1.0}
        )
        assert cfg["m"] == 8
        assert cfg["points"] == 13
        assert cfg["seu_per_bit_day"] == 0.0

    def test_nonpositive_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            validate_scenario(dict(BASE, horizon_hours=0.0))

    def test_original_config_untouched(self):
        config = dict(BASE)
        validate_scenario(config)
        assert "m" not in config


class TestRunScenario:
    def test_fig7_point_meets_budget(self):
        result = run_scenario(dict(BASE, ber_budget=1e-6, name="fig7"))
        assert result.name == "fig7"
        assert result.final_ber == pytest.approx(9.23e-7, rel=0.01)
        assert result.meets_budget is True

    def test_budget_miss(self):
        cfg = dict(BASE, ber_budget=1e-9)
        assert run_scenario(cfg).meets_budget is False

    def test_no_budget_verdict_is_none(self):
        assert run_scenario(dict(BASE)).meets_budget is None

    def test_simplex_arrangement(self):
        cfg = {
            "arrangement": "simplex",
            "n": 36,
            "k": 16,
            "erasure_per_symbol_day": 1e-6,
            "horizon_hours": 730.0,
            "points": 3,
        }
        result = run_scenario(cfg)
        assert result.final_ber > 0
        assert result.mttf_hours > 0

    def test_summary_mentions_budget(self):
        text = run_scenario(dict(BASE, ber_budget=1e-6)).summary()
        assert "MEETS" in text


class TestFileInterface:
    def test_single_scenario_file(self, tmp_path):
        path = tmp_path / "one.json"
        path.write_text(json.dumps(BASE))
        result = run_scenario_file(path)
        assert result.final_ber > 0

    def test_list_file_via_suite(self, tmp_path):
        path = tmp_path / "many.json"
        path.write_text(json.dumps([BASE, dict(BASE, name="b")]))
        results = run_scenario_suite(path)
        assert len(results) == 2
        assert results[1].name == "b"

    def test_single_file_rejected_by_run_scenario_file_for_lists(
        self, tmp_path
    ):
        path = tmp_path / "list.json"
        path.write_text(json.dumps([BASE]))
        with pytest.raises(ValueError, match="list"):
            run_scenario_file(path)

    def test_suite_accepts_single_object(self, tmp_path):
        path = tmp_path / "single.json"
        path.write_text(json.dumps(BASE))
        assert len(run_scenario_suite(path)) == 1
