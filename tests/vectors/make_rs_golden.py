"""Regenerate ``rs_golden.json`` — committed RS golden vectors.

Run from the repo root::

    PYTHONPATH=src python tests/vectors/make_rs_golden.py

The vectors pin the *word-level contract* of every RS backend for the
paper's codes: encode output, clean-word detection, at/below/beyond
capacity correction, erasure handling (including over-erasure refusal),
and the exact failure messages.  Expectations are produced by the
pure-python scalar codec — the trusted reference the whole repo
validates against the paper — so a backend that disagrees with this
file disagrees with the reference, not with a previous version of
itself.

The file is committed; this script exists so the vectors are
reproducible (fixed seed, deterministic strata) and extensible.  If you
change it, commit the regenerated JSON with it.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.rs import RSCode, RSDecodingError
from repro.rs.syndromes import compute_syndromes

SEED = 20050307
SCHEMA = 1

#: (n, k, m): the paper's shortened RS(18,16) data word, the deepened
#: RS(36,16) variant, and a textbook full-length RS(15,9) over GF(2^4)
#: (odd field width exercises non-byte symbol handling).
CODES = ((18, 16, 8), (36, 16, 8), (15, 9, 4))


def _corrupt(rng, codeword, positions, order):
    """Flip each listed symbol to a different random field element."""
    received = list(codeword)
    for pos in positions:
        old = received[pos]
        new = int(rng.integers(0, order))
        while new == old:
            new = int(rng.integers(0, order))
        received[pos] = new
    return received


def _expectation(code: RSCode, received, erasures):
    """The trusted scalar outcome for one case, as plain JSON."""
    syndromes = compute_syndromes(code.gf, received, code.nsym, code.fcr)
    clean = all(s == 0 for s in syndromes) and len(erasures) <= code.nsym
    try:
        result = code.decode(received, erasure_positions=erasures)
        return {
            "ok": True,
            "clean": clean,
            "data": result.data,
            "codeword": result.codeword,
            "num_errors": result.num_errors,
            "num_erasures": result.num_erasures,
            "corrected": result.corrected,
        }
    except RSDecodingError as exc:
        return {"ok": False, "clean": clean, "error": str(exc)}


def build_cases(code: RSCode, rng) -> list:
    n, k, t, nsym = code.n, code.k, code.t, code.nsym
    order = code.gf.order
    cases = []

    def add(label, data, received, erasures):
        cases.append(
            {
                "label": label,
                "data": list(map(int, data)),
                "codeword": code.encode(list(map(int, data))),
                "received": list(map(int, received)),
                "erasures": list(map(int, erasures)),
                "expect": _expectation(
                    code, list(map(int, received)), list(map(int, erasures))
                ),
            }
        )

    def word():
        return rng.integers(0, order, size=k)

    # Clean words: random and all-zero (the zero codeword).
    data = word()
    add("clean", data, code.encode(data.tolist()), [])
    add("clean-zero", [0] * k, code.encode([0] * k), [])

    # Error strata: one error, at capacity, beyond capacity.
    for num_errors in sorted({1, t, t + 1}):
        data = word()
        cw = code.encode(data.tolist())
        positions = rng.choice(n, size=num_errors, replace=False)
        label = (
            f"errors-{num_errors}-beyond"
            if num_errors > t
            else f"errors-{num_errors}"
        )
        add(label, data, _corrupt(rng, cw, positions, order), [])

    # Erasures at full capability (nsym located, corrupted symbols).
    data = word()
    cw = code.encode(data.tolist())
    positions = rng.choice(n, size=nsym, replace=False)
    add(
        "erasures-at-capacity",
        data,
        _corrupt(rng, cw, positions, order),
        sorted(map(int, positions)),
    )

    # Located-but-benign erasures: flagged positions, unchanged symbols.
    data = word()
    cw = code.encode(data.tolist())
    positions = rng.choice(n, size=min(nsym, 2), replace=False)
    add("erasures-benign", data, cw, sorted(map(int, positions)))

    # Mixed errors+erasures at the 2*re + er = nsym boundary.
    if nsym >= 3:
        data = word()
        cw = code.encode(data.tolist())
        er = nsym - 2
        positions = rng.choice(n, size=1 + er, replace=False)
        received = _corrupt(rng, cw, positions, order)
        add(
            "mixed-boundary",
            data,
            received,
            sorted(map(int, positions[1:])),
        )

    # Over-erased: nsym + 1 declared erasures must be refused.
    data = word()
    cw = code.encode(data.tolist())
    positions = rng.choice(n, size=nsym + 1, replace=False)
    add(
        "over-erased",
        data,
        _corrupt(rng, cw, positions, order),
        sorted(map(int, positions)),
    )

    return cases


def main() -> Path:
    rng = np.random.default_rng(SEED)
    doc = {
        "schema": SCHEMA,
        "seed": SEED,
        "generator": "tests/vectors/make_rs_golden.py",
        "reference": "repro.rs.codec.RSCode (pure-python scalar decoder)",
        "codes": [],
    }
    for n, k, m in CODES:
        code = RSCode(n, k, m=m)
        doc["codes"].append(
            {
                "n": n,
                "k": k,
                "m": m,
                "fcr": code.fcr,
                "nsym": code.nsym,
                "t": code.t,
                "cases": build_cases(code, rng),
            }
        )
    path = Path(__file__).resolve().parent / "rs_golden.json"
    path.write_text(json.dumps(doc, indent=1) + "\n")
    total = sum(len(c["cases"]) for c in doc["codes"])
    print(f"wrote {path} ({len(doc['codes'])} codes, {total} cases)")
    return path


if __name__ == "__main__":
    main()
