"""Unit tests for lifetime models and reliability metrics."""

import math

import pytest

from repro.reliability import (
    ExponentialLifetime,
    WeibullLifetime,
    fit_to_rate_per_hour,
    mission_reliability,
    rate_for_target_reliability,
    rate_per_hour_to_fit,
)


class TestFITConversion:
    def test_roundtrip(self):
        assert rate_per_hour_to_fit(fit_to_rate_per_hour(250.0)) == pytest.approx(
            250.0
        )

    def test_one_fit(self):
        assert fit_to_rate_per_hour(1.0) == 1e-9

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fit_to_rate_per_hour(-1.0)
        with pytest.raises(ValueError):
            rate_per_hour_to_fit(-1.0)


class TestExponential:
    def test_reliability_decay(self):
        life = ExponentialLifetime(0.01)
        assert life.reliability(100.0) == pytest.approx(math.exp(-1.0))

    def test_unreliability_complements(self):
        life = ExponentialLifetime(1e-7)
        t = 1000.0
        assert life.reliability(t) + life.unreliability(t) == pytest.approx(1.0)

    def test_unreliability_stable_for_tiny_rates(self):
        life = ExponentialLifetime(1e-15)
        # naive 1 - exp(-x) would lose precision here
        assert life.unreliability(1.0) == pytest.approx(1e-15, rel=1e-10)

    def test_mttf(self):
        assert ExponentialLifetime(0.5).mttf_hours() == 2.0
        assert ExponentialLifetime(0.0).mttf_hours() == math.inf

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ExponentialLifetime(-1.0)


class TestWeibull:
    def test_shape_one_is_exponential(self):
        w = WeibullLifetime(scale_hours=100.0, shape=1.0)
        e = ExponentialLifetime(0.01)
        assert w.reliability(50.0) == pytest.approx(e.reliability(50.0))
        assert w.mttf_hours() == pytest.approx(e.mttf_hours())

    def test_hazard_increases_for_wearout(self):
        w = WeibullLifetime(scale_hours=100.0, shape=2.0)
        assert w.hazard_rate(10.0) < w.hazard_rate(50.0)

    def test_hazard_decreases_for_infant_mortality(self):
        w = WeibullLifetime(scale_hours=100.0, shape=0.5)
        assert w.hazard_rate(10.0) > w.hazard_rate(50.0)

    def test_hazard_at_zero_edge_cases(self):
        assert WeibullLifetime(10.0, 0.5).hazard_rate(0.0) == math.inf
        assert WeibullLifetime(10.0, 1.0).hazard_rate(0.0) == 0.1
        assert WeibullLifetime(10.0, 2.0).hazard_rate(0.0) == 0.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            WeibullLifetime(0.0, 1.0)
        with pytest.raises(ValueError):
            WeibullLifetime(1.0, 0.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            WeibullLifetime(10.0, 1.0).reliability(-1.0)


class TestMissionSizing:
    def test_mission_reliability(self):
        assert mission_reliability(1e-6, 1e6) == pytest.approx(math.exp(-1.0))

    def test_rate_for_target_inverts(self):
        rate = rate_for_target_reliability(0.999, 24 * 730.0)
        assert mission_reliability(rate, 24 * 730.0) == pytest.approx(0.999)

    def test_target_validation(self):
        with pytest.raises(ValueError):
            rate_for_target_reliability(1.5, 100.0)
        with pytest.raises(ValueError):
            rate_for_target_reliability(0.9, 0.0)
