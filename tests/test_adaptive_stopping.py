"""Adaptive early stopping: determinism, floors, and statistical sanity.

``--stop-rel-ci`` promises three things:

1. an early-stopped estimate is still an honest estimate — the full-run
   reference lands inside the early stop's reported interval, and the
   early-stopped run is bit-identical to simply running the prefix;
2. the stopping point is a pure function of the seeded chunk results:
   the same estimate falls out for any worker count or schedule;
3. the ``min_trials`` floor is honored, and an all-zero prefix can
   *never* fire the rule (relative width is infinite at k = 0).
"""

import itertools

import pytest

from repro.rs import RSCode
from repro.runtime import RuntimeConfig, StoppingRule
from repro.simulator import simulate_fail_probability_batched
from repro.stats import AdaptiveStopper

CODE = RSCode(18, 16, m=8)
LAM = 2e-3 / 24.0


def run(trials=600, seed=17, workers=1, stop=None, executor=None, lam=LAM):
    runtime = RuntimeConfig(stop=stop, executor=executor)
    return simulate_fail_probability_batched(
        "simplex",
        CODE,
        48.0,
        lam,
        0.0,
        trials,
        seed=seed,
        chunk_size=50,
        workers=workers,
        runtime=runtime,
    )


RULE = StoppingRule(rel_ci=1.0, min_trials=100)


# --------------------------------------------------------------------------
# 1. statistical sanity of the early-stopped estimate
# --------------------------------------------------------------------------


def test_early_stop_fires_and_reports_honest_interval():
    reference = run()
    stopped = run(stop=RULE)
    assert stopped.stopped_early
    assert stopped.trials < reference.trials
    assert stopped.trials >= RULE.min_trials
    # the full-run point estimate lies inside the early stop's CI
    assert stopped.ci_low <= reference.probability <= stopped.ci_high
    assert not reference.stopped_early


def test_early_stop_equals_plain_run_of_the_prefix():
    """Stopping at N trials == having asked for N trials in the first
    place: chunk seeds depend only on the chunk index, so the stopped
    prefix is bit-identical to a fresh run with that exact budget."""
    stopped = run(stop=RULE)
    prefix = run(trials=stopped.trials)
    assert (prefix.failures, prefix.trials, prefix.probability) == (
        stopped.failures,
        stopped.trials,
        stopped.probability,
    )
    assert (prefix.ci_low, prefix.ci_high) == (stopped.ci_low, stopped.ci_high)
    assert prefix.outcome_counts == stopped.outcome_counts


# --------------------------------------------------------------------------
# 2. worker-count invariance
# --------------------------------------------------------------------------


def test_stop_point_invariant_across_worker_counts():
    results = [
        run(stop=RULE, workers=w, executor=None if w == 1 else "pool")
        for w in (1, 2, 4)
    ]
    first = results[0]
    assert first.stopped_early
    for other in results[1:]:
        assert (other.failures, other.trials, other.probability) == (
            first.failures,
            first.trials,
            first.probability,
        )
        assert other.outcome_counts == first.outcome_counts


# --------------------------------------------------------------------------
# 3. floors and all-zero prefixes
# --------------------------------------------------------------------------


def test_min_trials_floor_honored():
    eager = run(stop=StoppingRule(rel_ci=10.0))
    floored = run(stop=StoppingRule(rel_ci=10.0, min_trials=300))
    # the loose rule fires as soon as any failure lands...
    assert eager.stopped_early and eager.trials < 300
    # ...but the floor holds it to >= 300 trials regardless
    assert floored.trials >= 300


def test_all_zero_run_never_stops():
    """A rate so low the seeded run sees zero failures: the rule cannot
    fire at k = 0, so the full budget runs even under a loose rule."""
    quiet = run(lam=1e-7 / 24.0, trials=400)
    assert quiet.failures == 0  # precondition for the property
    stopped = run(
        lam=1e-7 / 24.0, trials=400, stop=StoppingRule(rel_ci=10.0)
    )
    assert not stopped.stopped_early
    assert stopped.trials == quiet.trials == 400


def test_stopping_rule_validation():
    with pytest.raises(ValueError, match="rel_ci"):
        StoppingRule(rel_ci=0.0)
    with pytest.raises(ValueError, match="min_trials"):
        StoppingRule(rel_ci=0.1, min_trials=-1)
    with pytest.raises(ValueError, match="method"):
        StoppingRule(rel_ci=0.1, method="clopper")
    rule = StoppingRule(rel_ci=0.5)
    assert not rule.satisfied(0, 10**6)  # k = 0 never satisfies
    assert not rule.satisfied(5, 0)


# --------------------------------------------------------------------------
# AdaptiveStopper unit properties: schedule invariance
# --------------------------------------------------------------------------

_CHUNKS = [(0, 50), (3, 50), (1, 50), (0, 50), (2, 50)]  # (failures, trials)


def _decide(order):
    stopper = AdaptiveStopper(StoppingRule(rel_ci=1.2, min_trials=100))
    for index in order:
        failures, trials = _CHUNKS[index]
        stopper.offer(index, failures, trials)
    return stopper.stop_index, stopper.prefix_failures, stopper.prefix_trials


def test_stopper_invariant_over_all_completion_orders():
    decisions = {
        _decide(order)
        for order in itertools.permutations(range(len(_CHUNKS)))
    }
    assert len(decisions) == 1
    stop_index, failures, trials = decisions.pop()
    # independently recompute: smallest contiguous prefix satisfying the rule
    rule = StoppingRule(rel_ci=1.2, min_trials=100)
    cum_f = cum_t = 0
    expected = None
    for j, (chunk_f, chunk_t) in enumerate(_CHUNKS):
        cum_f += chunk_f
        cum_t += chunk_t
        if expected is None and rule.satisfied(cum_f, cum_t):
            expected = (j, cum_f, cum_t)
    assert (stop_index, failures, trials) == expected


def test_stopper_drops_duplicates_and_post_stop_offers():
    stopper = AdaptiveStopper(StoppingRule(rel_ci=1.2, min_trials=100))
    stopper.offer(0, 0, 50)
    stopper.offer(0, 99, 50)  # duplicate: first result wins
    assert stopper.prefix_failures == 0
    for index in (1, 2, 3):
        stopper.offer(index, _CHUNKS[index][0], _CHUNKS[index][1])
    assert stopper.should_stop
    decided = stopper.stop_index
    stopper.offer(4, 99, 50)  # lands after the decision: ignored
    assert stopper.stop_index == decided
