"""Long fuzz campaigns — nightly depth, gated out of the default run.

These are the deep variants of the per-target differential checks in
``test_verify_diff.py``: minutes of budget instead of a fixed handful of
trials.  They are excluded from ``pytest -x -q`` twice over — by the
``fuzz`` marker and by an env-var guard — so the tier-1 wall-clock never
pays for them; the nightly workflow sets ``REPRO_FUZZ=1`` and runs
``-m fuzz``.
"""

import os

import pytest

from repro.verify import all_targets, fuzz_target

pytestmark = [
    pytest.mark.fuzz,
    pytest.mark.skipif(
        not os.environ.get("REPRO_FUZZ"),
        reason="long fuzz campaigns run only with REPRO_FUZZ=1 (nightly CI)",
    ),
]

#: Per-target budget; the whole module stays under ~4 minutes.
BUDGET_SECONDS = float(os.environ.get("REPRO_FUZZ_BUDGET", "30"))


@pytest.mark.parametrize(
    "name", [t.name for t in all_targets()], ids=lambda n: n
)
def test_target_survives_long_fuzz(name, tmp_path):
    report = fuzz_target(
        name,
        seed=int(os.environ.get("REPRO_FUZZ_SEED", "2005")),
        budget_seconds=BUDGET_SECONDS,
        artifact_dir=tmp_path,
    )
    assert not report.failed, (
        f"{report.summary()}\nartifact: {report.artifact_path}\n"
        f"replay with: PYTHONPATH=src python -m repro verify replay "
        f"{report.artifact_path}"
    )
    assert report.trials > 0
