"""Unit tests for polynomial algebra over GF(2^m)."""

import pytest

from repro.gf import GF2m, poly


@pytest.fixture(scope="module")
def gf():
    return GF2m(8)


class TestNormalizeDegree:
    def test_normalize_strips_trailing_zeros(self):
        assert poly.normalize([1, 2, 0, 0]) == [1, 2]

    def test_normalize_zero_polynomial(self):
        assert poly.normalize([0, 0, 0]) == [0]
        assert poly.normalize([]) == [0]

    def test_degree(self):
        assert poly.degree([0]) == -1
        assert poly.degree([5]) == 0
        assert poly.degree([0, 0, 3]) == 2
        assert poly.degree([1, 2, 0]) == 1  # ignores trailing zeros

    def test_is_zero(self):
        assert poly.is_zero([0, 0])
        assert not poly.is_zero([0, 1])


class TestAddMul:
    def test_add_is_coefficientwise_xor(self, gf):
        assert poly.add(gf, [1, 2, 3], [4, 5]) == [5, 7, 3]

    def test_add_cancels_equal_polynomials(self, gf):
        assert poly.add(gf, [1, 2, 3], [1, 2, 3]) == [0]

    def test_sub_is_add(self, gf):
        assert poly.sub is poly.add

    def test_scale(self, gf):
        p = [1, 2, 3]
        s = 7
        assert poly.scale(gf, p, s) == [gf.mul(c, s) for c in p]

    def test_scale_by_zero(self, gf):
        assert poly.scale(gf, [1, 2, 3], 0) == [0]

    def test_mul_by_zero_poly(self, gf):
        assert poly.mul(gf, [0], [1, 2]) == [0]

    def test_mul_by_one(self, gf):
        assert poly.mul(gf, [1], [9, 8, 7]) == [9, 8, 7]

    def test_mul_known_product(self, gf):
        # (1 + x)(1 + x) = 1 + x^2 in characteristic 2
        assert poly.mul(gf, [1, 1], [1, 1]) == [1, 0, 1]

    def test_mul_commutative(self, gf):
        a, b = [3, 0, 5], [7, 2]
        assert poly.mul(gf, a, b) == poly.mul(gf, b, a)

    def test_mul_by_xn(self):
        assert poly.mul_by_xn([1, 2], 3) == [0, 0, 0, 1, 2]
        assert poly.mul_by_xn([0], 4) == [0]


class TestDivision:
    def test_divmod_identity(self, gf):
        num = [3, 1, 4, 1, 5, 9, 2, 6]
        den = [5, 3, 1]
        q, r = poly.divmod_poly(gf, num, den)
        recombined = poly.add(gf, poly.mul(gf, q, den), r)
        assert recombined == poly.normalize(num)
        assert poly.degree(r) < poly.degree(den)

    def test_divmod_smaller_numerator(self, gf):
        q, r = poly.divmod_poly(gf, [1, 2], [1, 2, 3])
        assert q == [0]
        assert r == [1, 2]

    def test_division_by_zero_raises(self, gf):
        with pytest.raises(ZeroDivisionError):
            poly.divmod_poly(gf, [1, 2], [0])

    def test_mod(self, gf):
        num, den = [1, 2, 3, 4], [7, 1]
        assert poly.mod(gf, num, den) == poly.divmod_poly(gf, num, den)[1]

    def test_exact_division_leaves_zero_remainder(self, gf):
        a, b = [3, 5, 1], [2, 7]
        product = poly.mul(gf, a, b)
        q, r = poly.divmod_poly(gf, product, a)
        assert r == [0]
        assert q == b


class TestEvaluation:
    def test_eval_constant(self, gf):
        assert poly.eval_at(gf, [9], 123) == 9

    def test_eval_at_zero_gives_constant_term(self, gf):
        assert poly.eval_at(gf, [5, 6, 7], 0) == 5

    def test_eval_horner_matches_direct(self, gf):
        p = [3, 1, 4, 1, 5]
        x = 0x1D
        direct = 0
        for i, c in enumerate(p):
            direct ^= gf.mul(c, gf.pow(x, i))
        assert poly.eval_at(gf, p, x) == direct

    def test_from_roots_has_those_roots(self, gf):
        roots = [1, 2, 4, 8]
        p = poly.from_roots(gf, roots)
        assert poly.degree(p) == len(roots)
        for r in roots:
            assert poly.eval_at(gf, p, r) == 0

    def test_roots_finds_exactly_the_roots(self, gf):
        wanted = [3, 7, 200]
        p = poly.from_roots(gf, wanted)
        assert sorted(poly.roots(gf, p)) == sorted(wanted)

    def test_roots_of_rootless_polynomial(self, gf):
        # x^2 + x + irreducible-constant has no roots for suitable constant;
        # verify via exhaustive agreement instead of assuming one
        p = [0x1C, 1, 1]
        found = poly.roots(gf, p)
        for x in found:
            assert poly.eval_at(gf, p, x) == 0


class TestDerivative:
    def test_derivative_drops_even_powers(self, gf):
        # d/dx (a + bx + cx^2 + dx^3) = b + d x^2 over characteristic 2
        assert poly.derivative(gf, [9, 8, 7, 6]) == [8, 0, 6]

    def test_derivative_of_constant(self, gf):
        assert poly.derivative(gf, [5]) == [0]

    def test_derivative_of_squares_vanishes(self, gf):
        # (x^2)' = 2x = 0
        assert poly.derivative(gf, [0, 0, 1]) == [0]

    def test_monomial(self, gf):
        assert poly.monomial(gf, 5, 3) == [0, 0, 0, 5]
        assert poly.monomial(gf, 0, 3) == [0]
