"""Tests for whole-memory aggregation."""

import math

import numpy as np
import pytest

from repro.memory import WholeMemory, duplex_model, simplex_model


@pytest.fixture
def word_model():
    return simplex_model(18, 16, seu_per_bit_day=1e-3)


class TestConstruction:
    def test_rejects_nonpositive_word_count(self, word_model):
        with pytest.raises(ValueError):
            WholeMemory(word_model, 0)


class TestDataIntegrity:
    def test_single_word_is_complement(self, word_model):
        mem = WholeMemory(word_model, 1)
        t = [48.0]
        p = word_model.fail_probability(t)[0]
        assert mem.data_integrity(t)[0] == pytest.approx(1.0 - p)

    def test_integrity_decreases_with_size(self, word_model):
        t = [48.0]
        small = WholeMemory(word_model, 10).data_integrity(t)[0]
        large = WholeMemory(word_model, 10_000).data_integrity(t)[0]
        assert large < small

    def test_loss_complements_integrity(self, word_model):
        mem = WholeMemory(word_model, 1000)
        t = [24.0, 48.0]
        total = mem.data_integrity(t) + mem.loss_probability(t)
        assert np.allclose(total, 1.0)

    def test_loss_stable_for_tiny_word_probability(self):
        model = simplex_model(18, 16, seu_per_bit_day=1e-9)
        mem = WholeMemory(model, 1000)
        t = [1.0]
        p_word = model.fail_probability(t)[0]
        # union bound regime: loss ~ W * p_word
        assert mem.loss_probability(t)[0] == pytest.approx(
            1000 * p_word, rel=1e-5
        )

    def test_expected_unreadable_words(self, word_model):
        mem = WholeMemory(word_model, 500)
        t = [48.0]
        assert mem.expected_unreadable_words(t)[0] == pytest.approx(
            500 * word_model.fail_probability(t)[0]
        )

    def test_perfect_memory(self):
        mem = WholeMemory(simplex_model(18, 16), 1000)
        assert np.all(mem.data_integrity([100.0]) == 1.0)


class TestMTTDL:
    def test_infinite_without_faults(self):
        mem = WholeMemory(simplex_model(18, 16), 100)
        assert mem.mean_time_to_data_loss() == math.inf

    def test_scales_roughly_inverse_in_words(self, word_model):
        """For rare, independent word failures the first loss arrives
        ~W times sooner."""
        small = WholeMemory(word_model, 10).mean_time_to_data_loss()
        large = WholeMemory(word_model, 1000).mean_time_to_data_loss()
        assert large < small
        # word failure times here are Weibull-ish (shape 2: two SEUs), so
        # min of W scales like W^(-1/2); check the direction and order
        assert small / large > 5

    def test_duplex_array_outlasts_simplex_array(self):
        lam = 1e-3
        simplex_mem = WholeMemory(
            simplex_model(18, 16, seu_per_bit_day=lam), 1000
        )
        duplex_mem = WholeMemory(
            duplex_model(18, 16, seu_per_bit_day=lam, fail_rule="both"), 1000
        )
        assert (
            duplex_mem.mean_time_to_data_loss()
            > simplex_mem.mean_time_to_data_loss()
        )
