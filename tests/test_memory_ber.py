"""Tests for the BER curve evaluation layer (method dispatch)."""

import numpy as np
import pytest

from repro.memory import AnalyticScopeError, ber_curve, duplex_model, simplex_model
from repro.memory.ber import BERCurve


class TestMethodDispatch:
    def test_auto_uses_analytic_when_in_scope(self):
        model = simplex_model(18, 16, seu_per_bit_day=1e-4)
        auto = ber_curve(model, [48.0], method="auto")
        analytic = ber_curve(model, [48.0], method="analytic")
        assert auto.ber[0] == analytic.ber[0]

    def test_auto_falls_back_to_uniformization_with_scrubbing(self):
        model = simplex_model(
            18, 16, seu_per_bit_day=1e-4, scrub_period_seconds=900.0
        )
        curve = ber_curve(model, [48.0], method="auto")
        reference = model.ber([48.0], method="uniformization")[0]
        assert curve.ber[0] == pytest.approx(reference)

    def test_forced_analytic_out_of_scope_raises(self):
        model = simplex_model(
            18, 16, seu_per_bit_day=1e-4, erasure_per_symbol_day=1e-5
        )
        with pytest.raises(AnalyticScopeError):
            ber_curve(model, [48.0], method="analytic")

    def test_explicit_ctmc_methods(self):
        model = duplex_model(18, 16, seu_per_bit_day=1e-4)
        uni = ber_curve(model, [48.0], method="uniformization")
        exp = ber_curve(model, [48.0], method="expm")
        assert uni.ber[0] == pytest.approx(exp.ber[0], rel=1e-9)

    def test_default_label_is_model_repr(self):
        model = simplex_model(18, 16, seu_per_bit_day=1e-4)
        curve = ber_curve(model, [1.0])
        assert "SimplexMarkovModel" in curve.label

    def test_custom_label(self):
        model = simplex_model(18, 16, seu_per_bit_day=1e-4)
        assert ber_curve(model, [1.0], label="mine").label == "mine"


class TestBERCurve:
    def test_at_exact_and_nearest(self):
        curve = BERCurve(
            "x", np.array([0.0, 10.0, 20.0]), np.array([0.0, 1e-8, 4e-8])
        )
        assert curve.at(10.0) == 1e-8
        assert curve.at(13.0) == 1e-8
        assert curve.at(16.0) == 4e-8

    def test_at_within_one_step_of_span_still_snaps(self):
        curve = BERCurve(
            "x", np.array([0.0, 10.0, 20.0]), np.array([0.0, 1e-8, 4e-8])
        )
        assert curve.at(29.0) == 4e-8  # 20 + 9 < one 10 h step past hi
        assert curve.at(-5.0) == 0.0

    def test_at_far_outside_span_raises(self):
        """Silently snapping at(1e6) on a 20 h grid to the endpoint hid
        unit mistakes (hours vs. seconds) in callers."""
        curve = BERCurve(
            "x", np.array([0.0, 10.0, 20.0]), np.array([0.0, 1e-8, 4e-8])
        )
        for t in (31.0, 1e6, -11.0):
            with pytest.raises(ValueError, match="outside the curve's grid"):
                curve.at(t)

    def test_at_single_point_grid_keeps_nearest_behaviour(self):
        curve = BERCurve("x", np.array([24.0]), np.array([3e-9]))
        assert curve.at(1e6) == 3e-9  # no step defined -> legacy nearest

    def test_final(self):
        curve = BERCurve("x", np.array([0.0, 5.0]), np.array([0.0, 7e-9]))
        assert curve.final == 7e-9

    def test_frozen(self):
        curve = BERCurve("x", np.array([0.0]), np.array([0.0]))
        with pytest.raises(AttributeError):
            curve.label = "other"  # type: ignore[misc]
