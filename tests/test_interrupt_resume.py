"""Interrupt/resume determinism, end to end through the CLI.

A checkpointed campaign is SIGINT-ed mid-run in a real subprocess,
resumed with the same command, and the merged estimates are compared —
field by field — against an uninterrupted reference run with the same
seed.  The checkpoint contract requires them to be bit-identical.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

BASE_CMD = [
    sys.executable,
    "-m",
    "repro",
    "campaign",
    "--trials",
    "80",
    "--seed",
    "7",
    "--chunk-size",
    "20",
]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run(args, cwd, timeout=300):
    return subprocess.run(
        BASE_CMD + args,
        cwd=cwd,
        env=_env(),
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def _journal_chunks(path: Path) -> int:
    if not path.exists():
        return 0
    return sum(
        1 for line in path.read_text().splitlines() if '"kind": "chunk"' in line
    )


def _result_key(manifest_path: Path):
    doc = json.loads(manifest_path.read_text())
    return [
        (
            row["cell"],
            row["probability"],
            row["failures"],
            row["trials"],
            row["ci_low"],
            row["ci_high"],
            row["outcome_counts"],
        )
        for row in doc["results"]
    ]


@pytest.mark.chaos
class TestInterruptResume:
    def test_sigint_then_resume_is_bit_identical(self, tmp_path):
        journal = tmp_path / "run.jsonl"

        # Phase 1: start a checkpointed campaign slowed by benign chaos
        # (so the interrupt window is wide), SIGINT it mid-flight.
        proc = subprocess.Popen(
            BASE_CMD
            + ["--checkpoint", str(journal), "--chaos", "slow@*:0.2"],
            cwd=tmp_path,
            env=_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 60
            while _journal_chunks(journal) < 2:
                if time.monotonic() >= deadline:
                    raise AssertionError("campaign never journaled a chunk")
                if proc.poll() is not None:
                    raise AssertionError(
                        f"campaign exited early: {proc.communicate()}"
                    )
                time.sleep(0.05)
            proc.send_signal(signal.SIGINT)
            _stdout, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

        assert proc.returncode == 130
        assert "checkpointed" in stderr
        interrupted_chunks = _journal_chunks(journal)
        assert 2 <= interrupted_chunks < 32  # mid-run, not complete

        # Phase 2: resume (same command, no chaos) to completion.
        resumed = _run(
            ["--checkpoint", str(journal), "--manifest", "resumed.json"],
            cwd=tmp_path,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert f"{interrupted_chunks} chunk(s) already journaled" in resumed.stdout

        # Phase 3: uninterrupted reference with the same seed.
        reference = _run(["--manifest", "reference.json"], cwd=tmp_path)
        assert reference.returncode == 0, reference.stderr

        resumed_key = _result_key(tmp_path / "resumed.json")
        reference_key = _result_key(tmp_path / "reference.json")
        assert resumed_key == reference_key

        resumed_doc = json.loads((tmp_path / "resumed.json").read_text())
        assert resumed_doc["resumed"] is True
        assert resumed_doc["counters"]["chunks_resumed"] == interrupted_chunks

    def test_resume_with_changed_parameters_is_refused(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        first = _run(["--checkpoint", str(journal)], cwd=tmp_path)
        assert first.returncode == 0, first.stderr

        clashing = subprocess.run(
            BASE_CMD[:-2]  # drop "--chunk-size 20"
            + ["--chunk-size", "40", "--checkpoint", str(journal)],
            cwd=tmp_path,
            env=_env(),
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert clashing.returncode == 2
        assert "checkpoint refused" in clashing.stderr
        assert "different campaign" in clashing.stderr
