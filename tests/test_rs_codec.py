"""Unit tests for the Reed-Solomon encoder/decoder."""

import random

import pytest

from repro.gf import GF2m
from repro.rs import RSCode, RSDecodingError


@pytest.fixture(scope="module")
def rs1816():
    return RSCode(18, 16, m=8)


@pytest.fixture(scope="module")
def rs3616():
    return RSCode(36, 16, m=8)


@pytest.fixture(scope="module")
def rs1511():
    return RSCode(15, 11, m=4)


class TestConstruction:
    def test_parameters(self, rs1816):
        assert rs1816.nsym == 2
        assert rs1816.t == 1

    def test_rejects_k_not_less_than_n(self):
        with pytest.raises(ValueError):
            RSCode(10, 10)
        with pytest.raises(ValueError):
            RSCode(10, 12)

    def test_rejects_k_zero(self):
        with pytest.raises(ValueError):
            RSCode(10, 0)

    def test_rejects_n_exceeding_field(self):
        with pytest.raises(ValueError, match="exceeds"):
            RSCode(20, 10, m=4)  # 2^4 - 1 = 15 < 20

    def test_rejects_mismatched_shared_field(self):
        with pytest.raises(ValueError, match="does not match"):
            RSCode(18, 16, m=8, gf=GF2m(4))

    def test_shared_field_instance(self):
        gf = GF2m(8)
        code = RSCode(18, 16, m=8, gf=gf)
        assert code.gf is gf

    def test_generator_has_consecutive_roots(self, rs1816):
        from repro.gf import poly

        for i in range(rs1816.fcr, rs1816.fcr + rs1816.nsym):
            assert poly.eval_at(rs1816.gf, rs1816.generator, rs1816.gf.exp(i)) == 0

    def test_repr(self, rs1816):
        assert "n=18" in repr(rs1816)


class TestCapability:
    def test_within_capability(self, rs3616):
        assert rs3616.within_capability(20, 0)
        assert rs3616.within_capability(0, 10)
        assert rs3616.within_capability(4, 8)
        assert not rs3616.within_capability(21, 0)
        assert not rs3616.within_capability(0, 11)
        assert not rs3616.within_capability(5, 8)


class TestEncode:
    def test_systematic_data_placement(self, rs1816):
        data = list(range(16))
        cw = rs1816.encode(data)
        assert len(cw) == 18
        assert cw[2:] == data  # data occupies positions nsym..

    def test_encode_produces_codeword(self, rs1816):
        cw = rs1816.encode([7] * 16)
        assert rs1816.is_codeword(cw)

    def test_encode_zero_data(self, rs1816):
        assert rs1816.encode([0] * 16) == [0] * 18

    def test_encode_wrong_length_raises(self, rs1816):
        with pytest.raises(ValueError, match="expected 16"):
            rs1816.encode([1] * 15)

    def test_encode_out_of_range_symbol_raises(self, rs1816):
        with pytest.raises(ValueError):
            rs1816.encode([256] + [0] * 15)

    def test_extract_data_inverts_encode(self, rs1816):
        data = [random.randrange(256) for _ in range(16)]
        assert rs1816.extract_data(rs1816.encode(data)) == data

    def test_linearity(self, rs1816):
        gf = rs1816.gf
        d1 = [random.randrange(256) for _ in range(16)]
        d2 = [random.randrange(256) for _ in range(16)]
        summed = [gf.add(a, b) for a, b in zip(d1, d2)]
        cw_sum = [
            gf.add(a, b)
            for a, b in zip(rs1816.encode(d1), rs1816.encode(d2))
        ]
        assert rs1816.encode(summed) == cw_sum


class TestDecodeErrors:
    def test_no_error_passthrough(self, rs1816):
        data = [5] * 16
        cw = rs1816.encode(data)
        result = rs1816.decode(cw)
        assert result.data == data
        assert not result.corrected
        assert result.num_errors == 0

    def test_single_error_every_position(self, rs1816):
        data = [random.randrange(256) for _ in range(16)]
        cw = rs1816.encode(data)
        for pos in range(18):
            corrupted = list(cw)
            corrupted[pos] ^= 0xA5
            result = rs1816.decode(corrupted)
            assert result.codeword == cw
            assert result.corrected
            assert result.error_positions == [pos]
            assert result.num_errors == 1

    def test_t_errors_corrected(self, rs3616):
        random.seed(7)
        data = [random.randrange(256) for _ in range(16)]
        cw = rs3616.encode(data)
        corrupted = list(cw)
        for pos in random.sample(range(36), 10):  # t = 10
            corrupted[pos] ^= random.randrange(1, 256)
        assert rs3616.decode(corrupted).codeword == cw

    def test_beyond_capability_detected_or_valid_miscorrection(self, rs1816):
        random.seed(11)
        detected = 0
        for _ in range(200):
            cw = rs1816.encode([random.randrange(256) for _ in range(16)])
            corrupted = list(cw)
            for pos in random.sample(range(18), 2):
                corrupted[pos] ^= random.randrange(1, 256)
            try:
                result = rs1816.decode(corrupted)
            except RSDecodingError:
                detected += 1
            else:
                # a miscorrection must still land on a valid codeword
                assert rs1816.is_codeword(result.codeword)
        assert detected > 0

    def test_wrong_length_raises(self, rs1816):
        with pytest.raises(ValueError, match="expected 18"):
            rs1816.decode([0] * 17)


class TestDecodeErasures:
    def test_full_erasure_budget(self, rs1816):
        data = [9] * 16
        cw = rs1816.encode(data)
        corrupted = list(cw)
        corrupted[0] ^= 0xFF
        corrupted[5] ^= 0x01
        result = rs1816.decode(corrupted, erasure_positions=[0, 5])
        assert result.codeword == cw
        assert result.num_erasures == 2

    def test_erasure_with_correct_stored_value(self, rs1816):
        # a located fault whose stuck value happens to match: zero magnitude
        cw = rs1816.encode([3] * 16)
        result = rs1816.decode(cw, erasure_positions=[4])
        assert result.codeword == cw
        assert not result.corrected

    def test_too_many_erasures_raises(self, rs1816):
        cw = rs1816.encode([0] * 16)
        with pytest.raises(RSDecodingError, match="erasures exceed"):
            rs1816.decode(cw, erasure_positions=[0, 1, 2])

    def test_erasure_position_out_of_range(self, rs1816):
        cw = rs1816.encode([0] * 16)
        with pytest.raises(ValueError, match="out of range"):
            rs1816.decode(cw, erasure_positions=[18])

    def test_duplicate_erasure_positions_deduplicated(self, rs1816):
        cw = rs1816.encode([1] * 16)
        corrupted = list(cw)
        corrupted[3] ^= 0x42
        result = rs1816.decode(corrupted, erasure_positions=[3, 3])
        assert result.codeword == cw
        assert result.num_erasures == 1

    def test_mixed_errors_and_erasures_at_boundary(self, rs3616):
        # 2 re + er = n - k exactly: er = 4, re = 8
        random.seed(3)
        cw = rs3616.encode([random.randrange(256) for _ in range(16)])
        positions = random.sample(range(36), 12)
        erasures, errors = positions[:4], positions[4:]
        corrupted = list(cw)
        for pos in positions:
            corrupted[pos] ^= random.randrange(1, 256)
        result = rs3616.decode(corrupted, erasure_positions=erasures)
        assert result.codeword == cw
        assert result.num_erasures == 4
        assert result.num_errors == 8


class TestFcrVariants:
    @pytest.mark.parametrize("fcr", [0, 1, 2, 5])
    def test_roundtrip_with_fcr(self, fcr):
        random.seed(fcr)
        code = RSCode(15, 11, m=4, fcr=fcr)
        data = [random.randrange(16) for _ in range(11)]
        cw = code.encode(data)
        corrupted = list(cw)
        corrupted[2] ^= 0x7
        corrupted[9] ^= 0x3
        assert code.decode(corrupted).codeword == cw


class TestSmallSymbolWidths:
    @pytest.mark.parametrize("m,n,k", [(3, 7, 3), (4, 15, 9), (5, 18, 16)])
    def test_roundtrip(self, m, n, k):
        random.seed(m)
        code = RSCode(n, k, m=m)
        data = [random.randrange(1 << m) for _ in range(k)]
        cw = code.encode(data)
        t = (n - k) // 2
        corrupted = list(cw)
        for pos in random.sample(range(n), t):
            corrupted[pos] ^= random.randrange(1, 1 << m)
        assert code.decode(corrupted).codeword == cw
