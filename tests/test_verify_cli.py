"""Tests for the ``repro verify`` CLI surface.

Exercises ``list-targets``, ``fuzz`` (trial-budgeted, induced, and flag
validation) and ``replay`` through the real argument parser and command
dispatcher, asserting on exit codes and on what lands in stdout.
"""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(argv, capsys):
    code = main(argv)
    out = capsys.readouterr().out
    return code, out


class TestListTargets:
    def test_lists_all_targets(self, capsys):
        code, out = run_cli(["verify", "list-targets"], capsys)
        assert code == 0
        for name in (
            "gf-mul",
            "rs-decode",
            "rs-solver-parity",
            "rs-batch-scalar",
            "markov-transient",
            "memory-analytic",
            "memory-mc-ber",
        ):
            assert name in out


class TestFuzz:
    def test_single_target_trial_budget(self, capsys, tmp_path):
        code, out = run_cli(
            [
                "verify",
                "fuzz",
                "--target",
                "gf-mul",
                "--trials",
                "10",
                "--seed",
                "7",
                "--artifact-dir",
                str(tmp_path),
            ],
            capsys,
        )
        assert code == 0
        assert "gf-mul: OK" in out
        assert "10 trials" in out

    def test_multiple_targets(self, capsys, tmp_path):
        code, out = run_cli(
            [
                "verify",
                "fuzz",
                "-t",
                "gf-mul",
                "-t",
                "markov-transient",
                "--trials",
                "4",
                "--artifact-dir",
                str(tmp_path),
            ],
            capsys,
        )
        assert code == 0
        assert "gf-mul" in out and "markov-transient" in out

    def test_induced_bug_writes_artifact_and_fails(self, capsys, tmp_path):
        code, out = run_cli(
            [
                "verify",
                "fuzz",
                "--target",
                "rs-decode",
                "--trials",
                "50",
                "--seed",
                "2005",
                "--induce-bug",
                "--artifact-dir",
                str(tmp_path),
            ],
            capsys,
        )
        assert code == 1
        assert "FAIL" in out
        artifacts = list(tmp_path.glob("*.json"))
        assert len(artifacts) == 1
        payload = json.loads(artifacts[0].read_text())
        assert payload["kind"] == "verify-failure"
        assert payload["induced"] is True
        # the CLI tells the user how to replay
        assert "replay" in out

    def test_requires_target_selection(self, capsys):
        code, out = run_cli(["verify", "fuzz", "--trials", "1"], capsys)
        assert code == 2

    def test_requires_some_budget(self, capsys):
        code, out = run_cli(
            ["verify", "fuzz", "--target", "gf-mul"], capsys
        )
        assert code == 2

    def test_unknown_target_rejected(self, capsys):
        code, out = run_cli(
            ["verify", "fuzz", "--target", "nope", "--trials", "1"], capsys
        )
        assert code == 2

    def test_all_targets_flag(self, capsys, tmp_path):
        code, out = run_cli(
            [
                "verify",
                "fuzz",
                "--all-targets",
                "--trials",
                "2",
                "--artifact-dir",
                str(tmp_path),
            ],
            capsys,
        )
        assert code == 0
        assert out.count("OK") >= 6


class TestReplay:
    @pytest.fixture()
    def induced_artifact(self, tmp_path):
        from repro.verify import fuzz_target

        report = fuzz_target(
            "rs-decode",
            seed=2005,
            max_trials=50,
            artifact_dir=tmp_path,
            induce_bug=True,
        )
        assert report.artifact_path
        return report.artifact_path

    def test_replay_reproduces(self, capsys, induced_artifact):
        code, out = run_cli(["verify", "replay", induced_artifact], capsys)
        assert code == 0
        assert "reproduced" in out

    def test_replay_corpus_case(self, capsys, tmp_path):
        from repro.verify import case_rng, get_target, make_corpus_case

        target = get_target("gf-mul")
        payload = make_corpus_case(
            target, target.generate(case_rng(3, 0)), "cli replay test"
        )
        path = tmp_path / "case.json"
        path.write_text(json.dumps(payload))
        code, out = run_cli(["verify", "replay", str(path)], capsys)
        assert code == 0
        assert "passes" in out

    def test_replay_missing_file(self, capsys, tmp_path):
        code, _ = run_cli(
            ["verify", "replay", str(tmp_path / "absent.json")], capsys
        )
        assert code != 0


class TestParser:
    def test_verify_registered(self):
        parser = build_parser()
        args = parser.parse_args(
            ["verify", "fuzz", "--target", "gf-mul", "--budget", "5"]
        )
        assert args.command == "verify"
        assert args.budget == 5.0

    def test_seed_default(self):
        parser = build_parser()
        args = parser.parse_args(["verify", "fuzz", "--all-targets"])
        assert args.seed == 2005
