"""Regression tests for StreamingEstimator input validation and the
zero-trials snapshot.

Two historical bugs pinned here:

* ``snapshot()`` at ``trials == 0`` used to fabricate a snapshot with
  hardcoded ``chunks=0, failures=0`` — discarding the estimator's real
  counters when zero-trial chunks had been folded in;
* ``offer()`` accepted ``failures > trials`` (and negative counts),
  silently feeding impossible proportions into the interval math.
"""

import math

import pytest

from repro.stats import BerSnapshot, StreamingEstimator


class TestSnapshotZeroTrials:
    def test_fresh_estimator_degenerate_interval(self):
        snap = StreamingEstimator().snapshot()
        assert snap.chunks == 0
        assert snap.trials == 0
        assert snap.failures == 0
        assert snap.probability == 0.0
        assert (snap.ci_low, snap.ci_high) == (0.0, 1.0)
        assert math.isinf(snap.rel_halfwidth)

    def test_zero_trial_chunks_keep_counting(self):
        # The regression: folding in empty chunks must be visible in the
        # snapshot's chunk count, not reset to a hardcoded zero.
        est = StreamingEstimator()
        est.offer(0, 0, 0)
        est.offer(1, 0, 0)
        snap = est.snapshot()
        assert snap.chunks == 2
        assert snap.trials == 0
        assert snap.failures == 0
        assert (snap.ci_low, snap.ci_high) == (0.0, 1.0)
        assert math.isinf(snap.rel_halfwidth)

    def test_snapshot_counters_match_instance_state(self):
        est = StreamingEstimator()
        est.offer(3, 0, 0)
        snap = est.snapshot()
        assert snap.chunks == est.chunks
        assert snap.trials == est.trials
        assert snap.failures == est.failures

    def test_snapshot_method_preserved(self):
        snap = StreamingEstimator(method="jeffreys").snapshot()
        assert snap.method == "jeffreys"

    def test_as_dict_infinite_rel_halfwidth_is_null(self):
        d = StreamingEstimator().snapshot().as_dict()
        assert d["rel_halfwidth"] is None


class TestOfferValidation:
    def test_failures_exceeding_trials_rejected(self):
        est = StreamingEstimator()
        with pytest.raises(ValueError, match="cannot exceed"):
            est.offer(0, failures=5, trials=3)

    def test_negative_failures_rejected(self):
        with pytest.raises(ValueError, match="failures"):
            StreamingEstimator().offer(0, failures=-1, trials=10)

    def test_negative_trials_rejected(self):
        with pytest.raises(ValueError, match="trials"):
            StreamingEstimator().offer(0, failures=0, trials=-10)

    def test_rejected_offer_leaves_state_untouched(self):
        est = StreamingEstimator()
        est.offer(0, 1, 10)
        with pytest.raises(ValueError):
            est.offer(1, 9, 3)
        # Nothing from the bad offer leaked in — not even the index.
        assert (est.chunks, est.trials, est.failures) == (1, 10, 1)
        snap = est.offer(1, 2, 10)
        assert isinstance(snap, BerSnapshot)
        assert (est.chunks, est.trials, est.failures) == (2, 20, 3)

    def test_valid_offers_still_aggregate(self):
        est = StreamingEstimator()
        est.offer(0, 2, 50)
        snap = est.offer(1, 3, 50)
        assert snap.trials == 100
        assert snap.failures == 5
        assert snap.probability == pytest.approx(0.05)

    def test_duplicate_index_still_dropped(self):
        est = StreamingEstimator()
        est.offer(0, 2, 50)
        assert est.offer(0, 2, 50) is None
        assert est.trials == 50
