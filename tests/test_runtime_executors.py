"""Executor parity, straggler re-dispatch, and lease-board discipline.

The pluggable-executor contract: serial, pool, and lease backends move
*scheduling only*.  For the same seed they must produce bit-identical
estimates, bit-identical per-chunk journal records (timing fields
aside), and identical deterministic work counters.  Straggler
speculation may issue duplicate chunk copies, but first-result-wins
dedup keeps every derived number — including the chunk-latency
histogram — exactly what a speculation-free run would report.
"""

import tempfile
from pathlib import Path

import pytest

from repro.obs import metrics as obs_metrics
from repro.perf import PerfCounters
from repro.rs import RSCode
from repro.runtime import (
    CheckpointJournal,
    JournalLock,
    JournalLockedError,
    LeaseExecutor,
    RuntimeConfig,
    StragglerPolicy,
    make_executor,
    parse_chaos_spec,
    scan_journal,
)
from repro.runtime.supervisor import CHUNK_LATENCY_METRIC
from repro.simulator import simulate_fail_probability_batched

CODE = RSCode(18, 16, m=8)
LAM = 2e-3 / 24.0

#: Result-dict fields that must be identical across executors; the
#: "counters" entry carries cpu_seconds and is compared separately with
#: its timing fields masked.
_TIMING_FIELDS = {"cpu_seconds", "elapsed_seconds", "kernel_seconds"}


def run(executor=None, workers=1, journal=None, chaos=None, straggler=None,
        trials=300, seed=17):
    runtime = RuntimeConfig(
        executor=executor, journal=journal, chaos=chaos, straggler=straggler
    )
    return simulate_fail_probability_batched(
        "simplex",
        CODE,
        48.0,
        LAM,
        0.0,
        trials,
        seed=seed,
        chunk_size=50,
        workers=workers,
        runtime=runtime,
    )


def _chunk_fields(journal_path):
    """Deterministic per-chunk fields from a journal, keyed by index."""
    out = {}
    for _line, record in scan_journal(journal_path).chunk_records:
        result = record["result"]
        counters = {
            k: v
            for k, v in result["counters"].items()
            if k not in _TIMING_FIELDS
        }
        out[record["chunk"]] = (
            result["failures"],
            result["trials"],
            dict(result["counts"]),
            counters,
            record["seed"],
        )
    return out


# --------------------------------------------------------------------------
# three-way parity
# --------------------------------------------------------------------------


@pytest.mark.chaos
def test_serial_pool_lease_journals_bit_identical(tmp_path):
    estimates, journals = {}, {}
    for name, workers in (("serial", 1), ("pool", 2), ("lease", 2)):
        path = tmp_path / f"{name}.jsonl"
        with CheckpointJournal(path) as journal:
            estimates[name] = run(
                executor=name, workers=workers, journal=journal
            )
        journals[name] = _chunk_fields(path)
    ref = estimates["serial"]
    for name in ("pool", "lease"):
        est = estimates[name]
        assert (est.failures, est.trials, est.probability) == (
            ref.failures,
            ref.trials,
            ref.probability,
        ), name
        assert est.outcome_counts == ref.outcome_counts, name
        assert (est.ci_low, est.ci_high) == (ref.ci_low, ref.ci_high), name
    assert journals["serial"] == journals["pool"] == journals["lease"]
    assert len(journals["serial"]) == 6  # 300 trials / 50


@pytest.mark.chaos
def test_parity_holds_with_adaptive_stopping(tmp_path):
    from repro.runtime import StoppingRule

    stop = StoppingRule(rel_ci=1.0, min_trials=100)
    results = []
    for name, workers in (("serial", 1), ("pool", 2), ("lease", 4)):
        runtime = RuntimeConfig(executor=name, stop=stop)
        results.append(
            simulate_fail_probability_batched(
                "simplex", CODE, 48.0, LAM, 0.0, 600,
                seed=17, chunk_size=50, workers=workers, runtime=runtime,
            )
        )
    first = results[0]
    assert first.stopped_early
    for other in results[1:]:
        assert (other.failures, other.trials, other.probability) == (
            first.failures,
            first.trials,
            first.probability,
        )


def test_merged_counters_deterministic_across_executors():
    fields = []
    for name, workers in (("serial", 1), ("pool", 2)):
        counters = PerfCounters()
        runtime = RuntimeConfig(executor=name)
        simulate_fail_probability_batched(
            "simplex", CODE, 48.0, LAM, 0.0, 300,
            seed=17, chunk_size=50, workers=workers,
            counters=counters, runtime=runtime,
        )
        snap = counters.as_dict()
        fields.append(
            {k: v for k, v in snap.items() if k not in _TIMING_FIELDS}
        )
    assert fields[0] == fields[1]
    assert fields[0]["trials"] == 300
    assert fields[0]["chunks"] == 6


# --------------------------------------------------------------------------
# straggler re-dispatch
# --------------------------------------------------------------------------


@pytest.mark.chaos
def test_straggler_redispatched_without_double_counting():
    """``slow@1`` makes chunk 1 a straggler: a speculative copy must be
    issued, the estimate must not change, and the chunk-latency
    histogram must count each chunk exactly once (re-dispatch used to
    double-observe the winning chunk's latency)."""
    reference = run()
    previous = obs_metrics.set_registry(obs_metrics.MetricsRegistry())
    try:
        counters = PerfCounters()
        runtime = RuntimeConfig(
            executor="pool",
            chaos=parse_chaos_spec("slow@1:1.0"),
            straggler=StragglerPolicy(
                factor=1.0, min_seconds=0.25, min_samples=2, max_copies=2
            ),
        )
        estimate = simulate_fail_probability_batched(
            "simplex", CODE, 48.0, LAM, 0.0, 300,
            seed=17, chunk_size=50, workers=2,
            counters=counters, runtime=runtime,
        )
        histogram = (
            obs_metrics.get_registry()
            .histogram(CHUNK_LATENCY_METRIC)
            .snapshot()
        )
    finally:
        obs_metrics.set_registry(previous)
    assert counters.stragglers_redispatched >= 1
    assert (estimate.failures, estimate.trials, estimate.probability) == (
        reference.failures,
        reference.trials,
        reference.probability,
    )
    assert estimate.outcome_counts == reference.outcome_counts
    # one latency observation per chunk, no matter how many copies ran
    assert histogram["count"] == 6
    # dedup bookkeeping is consistent: every duplicate that landed was
    # counted, never folded into the estimate
    assert counters.trials == 300


def test_straggler_policy_threshold():
    policy = StragglerPolicy(
        factor=2.0, min_seconds=0.5, min_samples=3, max_copies=2
    )
    assert policy.threshold([0.1]) is None  # too few samples
    assert policy.threshold([0.1, 0.1, 0.1]) == 0.5  # floor dominates
    assert policy.threshold([1.0, 2.0, 3.0]) == 6.0  # 2 x p95


# --------------------------------------------------------------------------
# lease-board single-coordinator discipline
# --------------------------------------------------------------------------


def test_second_lease_coordinator_fails_fast(tmp_path):
    board = tmp_path / "board"
    first = LeaseExecutor(1, board_dir=board)
    try:
        with pytest.raises(JournalLockedError):
            LeaseExecutor(1, board_dir=board)
    finally:
        first.close()
    # a clean shutdown releases the board for the next coordinator
    second = LeaseExecutor(1, board_dir=board)
    second.close()


def test_contended_lease_board_surfaces_lock_error(tmp_path):
    """The campaign path raises JournalLockedError when the lease board
    is held — the exact exception ``repro campaign`` maps to exit 75."""
    journal_path = tmp_path / "ckpt.jsonl"
    board = Path(str(journal_path) + ".board")
    board.mkdir()
    holder = JournalLock(board / "board")
    holder.acquire()
    try:
        with CheckpointJournal(journal_path) as journal:
            with pytest.raises(JournalLockedError):
                run(executor="lease", workers=2, journal=journal)
    finally:
        holder.release()


def test_make_executor_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown executor"):
        make_executor("threads")


# --------------------------------------------------------------------------
# lease publish durability (done/ dir fsync before lease release)
# --------------------------------------------------------------------------


def _lease_board(tmp_path):
    board = tmp_path / "board"
    for sub in ("todo", "leases", "done"):
        (board / sub).mkdir(parents=True)
    return board


def _echo_result(args):
    return {"value": args[0]}


def _post_lease_task(board, token=0):
    import pickle

    with open(board / "todo" / f"{token:08d}.task", "wb") as fh:
        pickle.dump((_echo_result, token, 0, None, (7,)), fh)


def test_lease_publish_fsyncs_done_dir_before_lease_release(
    tmp_path, monkeypatch
):
    """The done/ directory entry must be durable *before* the lease (the
    only evidence the chunk was claimed) is removed."""
    from repro.runtime import executors

    board = _lease_board(tmp_path)
    _post_lease_task(board)
    real_fsync_dir = executors.fsync_dir
    observed = []

    def recording(path):
        observed.append(
            (
                (board / "done" / "00000000.done").exists(),
                any((board / "leases").iterdir()),
            )
        )
        (board / "STOP").touch()  # let the worker loop exit after this task
        return real_fsync_dir(path)

    monkeypatch.setattr(executors, "fsync_dir", recording)
    executors._lease_worker_main(str(board))
    # exactly one publish: at fsync time the rename had landed and the
    # lease had not yet been released
    assert observed == [(True, True)]
    assert (board / "done" / "00000000.done").exists()
    assert not any((board / "leases").iterdir())


def test_lease_publish_crash_window_never_loses_both(tmp_path, monkeypatch):
    """Regression: a crash between publishing the done-file and removing
    the lease must leave BOTH behind — before the fix, the lease could
    be gone while the done-file's directory entry was still volatile,
    silently losing a completed chunk."""
    from repro.runtime import executors

    board = _lease_board(tmp_path)
    _post_lease_task(board)

    def crash(path):
        raise RuntimeError("injected host crash during done/ fsync")

    monkeypatch.setattr(executors, "fsync_dir", crash)
    with pytest.raises(RuntimeError, match="injected host crash"):
        executors._lease_worker_main(str(board))
    assert (board / "done" / "00000000.done").exists()
    assert list((board / "leases").iterdir())  # claim evidence retained


def test_lease_board_defaults_to_private_tempdir():
    executor = make_executor("lease", workers=1)
    try:
        board = executor.board
        assert board.exists()
        assert tempfile.gettempdir() in str(board)
    finally:
        executor.close()
    assert not board.exists()  # private boards are cleaned up on close
