"""Shared RS-backend conformance suite (library, not collected directly).

One set of contract tests, parametrized over *every* registered backend
— ``tests/test_backend_conformance.py`` is the collected driver.  The
suite is the executable definition of the ``RSBackend`` contract:

* round-trip: ``encode_batch`` → ``decode_batch`` recovers every word
  through the clean fast path;
* correction: at-capacity errors, erasures up to ``nsym``, mixed
  errors+erasures at the ``2*re + er = nsym`` boundary;
* failure signaling: beyond-capacity and over-erased words record the
  *exact* scalar outcome (including error messages) — never raise out
  of the batch call, never silently succeed;
* golden vectors: committed word-level expectations for the paper's
  codes (``tests/vectors/rs_golden.json``, produced by the trusted
  scalar decoder via ``make_rs_golden.py``);
* dtype/shape contracts: int64 outputs, exact shapes, loud rejection
  of wrong widths and out-of-range symbols (including the signed-int8
  wraparound that once silently corrupted syndromes);
* counters: work accounting and kernel timing flow for every engine.

The ``compiled`` backend is exercised even where numba is missing: the
suite constructs it with ``REPRO_COMPILED_KERNELS=python``, which runs
the same bit-sliced plane kernels as vectorized numpy — identical
algorithm, identical results, no capability lies (the registry still
reports ``compiled`` unavailable in that environment).
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path

import numpy as np
import pytest

from repro.perf import PerfCounters
from repro.rs import RSDecodingError
from repro.rs.backends import BATCH_BACKENDS, create_backend
from repro.rs.backends.kernels import KERNELS_ENV, numba_status

GOLDEN_PATH = Path(__file__).resolve().parent / "vectors" / "rs_golden.json"


def load_golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


@contextmanager
def compiled_available():
    """Make the compiled backend constructible in this environment.

    No-op when numba imports; otherwise forces the python kernel forms
    for the duration (construction reads the knob once and pins the
    resolved implementation on the codec).
    """
    if numba_status()[0]:
        yield
        return
    previous = os.environ.get(KERNELS_ENV)
    os.environ[KERNELS_ENV] = "python"
    try:
        yield
    finally:
        if previous is None:
            del os.environ[KERNELS_ENV]
        else:
            os.environ[KERNELS_ENV] = previous


def build_backend(name: str, n: int, k: int, m: int = 8, counters=None):
    with compiled_available():
        return create_backend(name, n, k, m=m, counters=counters)


def _outcomes_equal(ours, reference) -> bool:
    """Word-outcome equality: same success/failure, same payload/message."""
    if isinstance(reference, RSDecodingError):
        return isinstance(ours, RSDecodingError) and str(ours) == str(
            reference
        )
    if isinstance(ours, RSDecodingError):
        return False
    return (
        ours.data == reference.data
        and ours.codeword == reference.codeword
        and ours.num_errors == reference.num_errors
        and ours.num_erasures == reference.num_erasures
        and ours.corrected == reference.corrected
    )


class BackendConformanceSuite:
    """Subclass in a collected ``test_*.py`` module to run the suite."""

    CODES = ((18, 16, 8), (36, 16, 8), (15, 9, 4))

    @pytest.fixture(params=BATCH_BACKENDS)
    def backend(self, request):
        return request.param

    @pytest.fixture
    def codec(self, backend):
        return build_backend(backend, 18, 16, m=8)

    # -- round-trip ---------------------------------------------------------

    @pytest.mark.parametrize("nkm", CODES)
    def test_roundtrip_clean_fast_path(self, backend, nkm):
        n, k, m = nkm
        codec = build_backend(backend, n, k, m=m)
        rng = np.random.default_rng(1)
        data = rng.integers(0, 1 << m, size=(32, k), dtype=np.int64)
        codewords = codec.encode_batch(data)
        report = codec.decode_batch(codewords)
        assert report.ok.all() and report.clean.all()
        assert report.data_rows() == data.tolist()

    @pytest.mark.parametrize("nkm", CODES)
    def test_encode_rows_match_scalar_reference(self, backend, nkm):
        n, k, m = nkm
        codec = build_backend(backend, n, k, m=m)
        rng = np.random.default_rng(2)
        data = rng.integers(0, 1 << m, size=(16, k), dtype=np.int64)
        batch = codec.encode_batch(data)
        for row, expected in zip(
            batch.tolist(),
            (codec.scalar.encode(w) for w in data.tolist()),
        ):
            assert row == expected

    @pytest.mark.parametrize("nkm", CODES)
    def test_syndromes_match_scalar_reference(self, backend, nkm):
        from repro.rs.syndromes import compute_syndromes

        n, k, m = nkm
        codec = build_backend(backend, n, k, m=m)
        rng = np.random.default_rng(3)
        rec = rng.integers(0, 1 << m, size=(16, n), dtype=np.int64)
        batch = codec.syndromes_batch(rec)
        for row, word in zip(batch.tolist(), rec.tolist()):
            assert row == compute_syndromes(
                codec.scalar.gf, word, codec.nsym, codec.fcr
            )

    # -- correction capability ---------------------------------------------

    @pytest.mark.parametrize("nkm", CODES)
    def test_at_capacity_errors_corrected(self, backend, nkm):
        n, k, m = nkm
        codec = build_backend(backend, n, k, m=m)
        rng = np.random.default_rng(4)
        data = rng.integers(0, 1 << m, size=(8, k), dtype=np.int64)
        rec = codec.encode_batch(data)
        for row in rec:
            positions = rng.choice(n, size=codec.t, replace=False)
            for pos in positions:
                row[pos] ^= int(rng.integers(1, 1 << m))
        report = codec.decode_batch(rec)
        assert report.ok.all()
        assert not report.clean.any()
        assert report.data_rows() == data.tolist()

    @pytest.mark.parametrize("nkm", CODES)
    def test_erasures_to_full_capability(self, backend, nkm):
        n, k, m = nkm
        codec = build_backend(backend, n, k, m=m)
        rng = np.random.default_rng(5)
        data = rng.integers(0, 1 << m, size=(8, k), dtype=np.int64)
        rec = codec.encode_batch(data)
        erasures = []
        for row in rec:
            positions = rng.choice(n, size=codec.nsym, replace=False)
            for pos in positions:
                row[pos] ^= int(rng.integers(1, 1 << m))
            erasures.append(sorted(int(p) for p in positions))
        report = codec.decode_batch(rec, erasures)
        assert report.ok.all()
        assert report.data_rows() == data.tolist()

    # -- failure signaling --------------------------------------------------

    @pytest.mark.parametrize("nkm", CODES)
    def test_beyond_capacity_matches_scalar_word_for_word(self, backend, nkm):
        """Beyond-capacity words fail *or* miscorrect exactly like the
        scalar reference — the batch call itself never raises."""
        n, k, m = nkm
        codec = build_backend(backend, n, k, m=m)
        rng = np.random.default_rng(6)
        data = rng.integers(0, 1 << m, size=(16, k), dtype=np.int64)
        rec = codec.encode_batch(data)
        for row in rec:
            positions = rng.choice(n, size=codec.t + 1, replace=False)
            for pos in positions:
                row[pos] ^= int(rng.integers(1, 1 << m))
        report = codec.decode_batch(rec)
        for i, word in enumerate(rec.tolist()):
            try:
                reference = codec.scalar.decode(word)
            except RSDecodingError as exc:
                reference = exc
            assert _outcomes_equal(report[i], reference), (
                f"{backend}: word {i} diverged from scalar reference"
            )

    def test_over_erased_word_records_error(self, codec):
        data = [1] * codec.k
        rec = codec.encode_batch([data])
        too_many = list(range(codec.nsym + 1))
        report = codec.decode_batch(rec, [too_many])
        assert not report.ok[0] and not report.clean[0]
        outcome = report[0]
        assert isinstance(outcome, RSDecodingError)
        assert "exceed" in str(outcome)
        with pytest.raises(RSDecodingError):
            report.result(0)

    # -- golden vectors -----------------------------------------------------

    def test_golden_vectors(self, backend):
        doc = load_golden()
        assert doc["schema"] == 1
        for code_doc in doc["codes"]:
            codec = build_backend(
                backend, code_doc["n"], code_doc["k"], m=code_doc["m"]
            )
            cases = code_doc["cases"]
            encoded = codec.encode_batch([c["data"] for c in cases])
            report = codec.decode_batch(
                [c["received"] for c in cases],
                [c["erasures"] for c in cases],
            )
            for i, case in enumerate(cases):
                where = f"{backend}: RS({code_doc['n']},{code_doc['k']}) {case['label']}"
                assert encoded[i].tolist() == case["codeword"], where
                expect = case["expect"]
                assert bool(report.clean[i]) == expect["clean"], where
                assert bool(report.ok[i]) == expect["ok"], where
                outcome = report[i]
                if expect["ok"]:
                    assert outcome.data == expect["data"], where
                    assert outcome.codeword == expect["codeword"], where
                    assert outcome.num_errors == expect["num_errors"], where
                    assert outcome.num_erasures == expect["num_erasures"], where
                    assert outcome.corrected == expect["corrected"], where
                else:
                    assert isinstance(outcome, RSDecodingError), where
                    assert str(outcome) == expect["error"], where

    # -- single-word passthrough -------------------------------------------

    def test_single_word_encode_decode(self, codec):
        rng = np.random.default_rng(7)
        data = rng.integers(0, 256, size=codec.k).tolist()
        cw = codec.encode(data)
        assert cw == codec.scalar.encode(data)
        cw[3] ^= 0x41
        result = codec.decode(cw)
        assert result.data == data

    # -- dtype / shape contracts -------------------------------------------

    def test_wrong_width_rejected(self, codec):
        with pytest.raises(ValueError, match="batch"):
            codec.encode_batch(np.zeros((4, codec.k + 1), dtype=np.int64))
        with pytest.raises(ValueError, match="batch"):
            codec.decode_batch(np.zeros((4, codec.n - 1), dtype=np.int64))
        with pytest.raises(ValueError, match="batch"):
            codec.syndromes_batch(np.zeros((4, codec.n + 3), dtype=np.int64))

    def test_out_of_range_symbols_rejected(self, codec):
        bad = np.zeros((2, codec.n), dtype=np.int64)
        bad[1, 0] = 1 << codec.m
        with pytest.raises(ValueError):
            codec.syndromes_batch(bad)
        bad[1, 0] = -3
        with pytest.raises(ValueError):
            codec.decode_batch(bad)

    def test_signed_int8_wraparound_rejected(self, codec):
        """Values >= 128 in an int8 batch wrap negative; they must raise,
        not negative-index the log tables into wrong syndromes."""
        if codec.m < 8:
            pytest.skip("wraparound needs m >= 8 symbols")
        word = np.asarray(codec.encode([200] * codec.k), dtype=np.int64)
        as_int8 = word.astype(np.int8).reshape(1, -1)
        assert (as_int8 < 0).any()  # the hazard is real for this word
        with pytest.raises(ValueError):
            codec.syndromes_batch(as_int8)

    def test_accepts_lists_and_unsigned_dtypes(self, codec):
        data = [[5] * codec.k, [250] * codec.k]
        from_list = codec.encode_batch(data)
        from_u8 = codec.encode_batch(np.asarray(data, dtype=np.uint8))
        assert np.array_equal(from_list, from_u8)
        assert from_list.dtype == np.int64
        assert from_list.shape == (2, codec.n)

    def test_empty_batch_contract(self, codec):
        enc = codec.encode_batch(np.zeros((0, codec.k), dtype=np.int64))
        assert enc.shape == (0, codec.n)
        report = codec.decode_batch(np.zeros((0, codec.n), dtype=np.int64))
        assert len(report) == 0 and report.results == []

    def test_output_dtype_and_shape(self, codec):
        rng = np.random.default_rng(8)
        data = rng.integers(0, 256, size=(5, codec.k), dtype=np.int64)
        enc = codec.encode_batch(data)
        assert enc.dtype == np.int64 and enc.shape == (5, codec.n)
        synd = codec.syndromes_batch(enc)
        assert synd.dtype == np.int64 and synd.shape == (5, codec.nsym)
        assert (synd == 0).all()

    # -- counters -----------------------------------------------------------

    def test_counters_flow(self, backend):
        counters = PerfCounters()
        codec = build_backend(backend, 18, 16, m=8, counters=counters)
        rng = np.random.default_rng(9)
        data = rng.integers(0, 256, size=(64, 16), dtype=np.int64)
        rec = codec.encode_batch(data)
        rec[0, 0] ^= 1
        codec.decode_batch(rec)
        assert counters.words_encoded == 64
        assert counters.words_decoded == 64
        assert counters.clean_fast_path == 63
        assert counters.scalar_fallbacks == 1
        assert counters.kernel_seconds > 0.0
