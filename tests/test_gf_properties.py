"""Property-based tests of the field and polynomial axioms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import GF2m, poly

_FIELDS = {m: GF2m(m) for m in (3, 4, 8)}


def field_and_elements(num_elements):
    """Strategy producing (field, elements...) with in-range elements."""

    @st.composite
    def build(draw):
        m = draw(st.sampled_from(sorted(_FIELDS)))
        gf = _FIELDS[m]
        elems = tuple(
            draw(st.integers(min_value=0, max_value=gf.order - 1))
            for _ in range(num_elements)
        )
        return (gf, *elems)

    return build()


@st.composite
def field_and_polys(draw, num_polys=2, max_len=8):
    m = draw(st.sampled_from(sorted(_FIELDS)))
    gf = _FIELDS[m]
    polys = tuple(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=gf.order - 1),
                min_size=1,
                max_size=max_len,
            )
        )
        for _ in range(num_polys)
    )
    return (gf, *polys)


class TestFieldAxioms:
    @given(field_and_elements(3))
    def test_multiplication_associative(self, args):
        gf, a, b, c = args
        assert gf.mul(gf.mul(a, b), c) == gf.mul(a, gf.mul(b, c))

    @given(field_and_elements(2))
    def test_multiplication_commutative(self, args):
        gf, a, b = args
        assert gf.mul(a, b) == gf.mul(b, a)

    @given(field_and_elements(3))
    def test_distributivity(self, args):
        gf, a, b, c = args
        assert gf.mul(a, gf.add(b, c)) == gf.add(gf.mul(a, b), gf.mul(a, c))

    @given(field_and_elements(1))
    def test_additive_self_inverse(self, args):
        gf, a = args
        assert gf.add(a, a) == 0

    @given(field_and_elements(1))
    def test_multiplicative_inverse(self, args):
        gf, a = args
        if a != 0:
            assert gf.mul(a, gf.inv(a)) == 1

    @given(field_and_elements(2))
    def test_div_mul_roundtrip(self, args):
        gf, a, b = args
        if b != 0:
            assert gf.mul(gf.div(a, b), b) == a

    @given(field_and_elements(1), st.integers(min_value=-20, max_value=20))
    def test_pow_adds_exponents(self, args, e):
        gf, a = args
        if a == 0:
            return
        assert gf.mul(gf.pow(a, e), gf.pow(a, 3)) == gf.pow(a, e + 3)


class TestPolynomialAxioms:
    @given(field_and_polys(num_polys=3))
    def test_mul_distributes_over_add(self, args):
        gf, a, b, c = args
        left = poly.mul(gf, a, poly.add(gf, b, c))
        right = poly.add(gf, poly.mul(gf, a, b), poly.mul(gf, a, c))
        assert left == right

    @given(field_and_polys(num_polys=2))
    def test_divmod_reconstruction(self, args):
        gf, num, den = args
        if poly.is_zero(den):
            return
        q, r = poly.divmod_poly(gf, num, den)
        assert poly.add(gf, poly.mul(gf, q, den), r) == poly.normalize(num)
        assert poly.degree(r) < poly.degree(den)

    @given(field_and_polys(num_polys=2))
    def test_eval_is_ring_homomorphism(self, args):
        gf, a, b = args
        x = 3 % gf.order
        product = poly.mul(gf, a, b)
        assert poly.eval_at(gf, product, x) == gf.mul(
            poly.eval_at(gf, a, x), poly.eval_at(gf, b, x)
        )

    @settings(max_examples=30)
    @given(field_and_polys(num_polys=1, max_len=5))
    def test_from_roots_roundtrip(self, args):
        gf, coeffs = args
        roots = sorted({c for c in coeffs})
        p = poly.from_roots(gf, roots)
        assert sorted(poly.roots(gf, p)) == roots
