"""Tests for fault-injection campaign orchestration."""

import pytest

from repro.simulator import (
    CampaignCell,
    campaign_summary,
    default_validation_campaign,
    run_campaign,
)


class TestCampaignSetup:
    def test_default_matrix_shape(self):
        cells = default_validation_campaign(
            seu_rates=(1e-3, 2e-3), perm_rates=(0.0, 1e-2)
        )
        assert len(cells) == 8  # 2 arrangements x 2 x 2

    def test_cell_labels(self):
        cell = CampaignCell("duplex", 1e-3, 1e-2, 3600.0)
        label = cell.label()
        assert "duplex" in label
        assert "seu=0.001" in label
        assert "tsc=3600" in label

    def test_empty_campaign_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            run_campaign([])

    def test_unknown_arrangement_rejected(self):
        with pytest.raises(ValueError, match="arrangement"):
            run_campaign([CampaignCell("triplex", 1e-3, 0.0)], trials=10)


class TestCampaignExecution:
    @pytest.fixture(scope="class")
    def rows(self):
        cells = [
            CampaignCell("simplex", 2e-3, 0.0),
            CampaignCell("duplex", 2e-3, 0.0),
            CampaignCell("simplex", 0.0, 1e-2),
        ]
        return run_campaign(cells, trials=300, base_seed=99)

    def test_one_row_per_cell(self, rows):
        assert len(rows) == 3

    def test_deterministic_reruns(self, rows):
        again = run_campaign(
            [CampaignCell("simplex", 2e-3, 0.0)], trials=300, base_seed=99
        )
        assert again[0].estimate.probability == rows[0].estimate.probability

    def test_all_cells_consistent(self, rows):
        assert all(row.consistent for row in rows)

    def test_duplex_conservatism_recorded(self, rows):
        duplex = rows[1]
        assert duplex.estimate.probability <= duplex.model_fail_probability

    def test_summary_counts(self, rows):
        summary = campaign_summary(rows)
        assert summary["simplex"] == (2, 2)
        assert summary["duplex"] == (1, 1)
