"""Unit tests for fault-rate units and conversions."""

import pytest

from repro.memory.rates import (
    HOURS_PER_DAY,
    HOURS_PER_MONTH,
    FaultRates,
    hours_to_months,
    months_to_hours,
    per_day_to_per_hour,
    per_hour_to_per_day,
    scrub_rate_from_period,
)


class TestConversions:
    def test_per_day_roundtrip(self):
        assert per_hour_to_per_day(per_day_to_per_hour(1.7e-5)) == pytest.approx(
            1.7e-5
        )

    def test_per_day_to_per_hour(self):
        assert per_day_to_per_hour(24.0) == 1.0

    def test_months_roundtrip(self):
        assert hours_to_months(months_to_hours(24.0)) == pytest.approx(24.0)

    def test_month_convention(self):
        assert HOURS_PER_MONTH == pytest.approx(730.0)
        assert HOURS_PER_DAY == 24.0

    def test_scrub_rate_one_hour_period(self):
        assert scrub_rate_from_period(3600.0) == 1.0

    def test_scrub_rate_fifteen_minutes(self):
        assert scrub_rate_from_period(900.0) == 4.0

    def test_scrub_rate_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scrub_rate_from_period(0.0)
        with pytest.raises(ValueError):
            scrub_rate_from_period(-10.0)


class TestFaultRates:
    def test_defaults_are_zero(self):
        rates = FaultRates()
        assert rates.seu_per_bit == 0.0
        assert rates.erasure_per_symbol == 0.0
        assert not rates.has_scrubbing

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            FaultRates(seu_per_bit=-1.0)
        with pytest.raises(ValueError):
            FaultRates(erasure_per_symbol=-1.0)
        with pytest.raises(ValueError):
            FaultRates(scrub_rate=-1.0)

    def test_from_paper_units(self):
        rates = FaultRates.from_paper_units(
            seu_per_bit_day=1.7e-5,
            erasure_per_symbol_day=2.4e-5,
            scrub_period_seconds=1800.0,
        )
        assert rates.seu_per_bit == pytest.approx(1.7e-5 / 24)
        assert rates.erasure_per_symbol == pytest.approx(1e-6)
        assert rates.scrub_rate == 2.0

    def test_from_paper_units_no_scrub(self):
        rates = FaultRates.from_paper_units(seu_per_bit_day=1e-6)
        assert not rates.has_scrubbing

    def test_with_scrub_period(self):
        base = FaultRates(seu_per_bit=1.0)
        scrubbed = base.with_scrub_period(3600.0)
        assert scrubbed.scrub_rate == 1.0
        assert scrubbed.seu_per_bit == 1.0
        assert base.scrub_rate == 0.0  # original untouched (frozen)

    def test_with_scrub_period_none_disables(self):
        rates = FaultRates(scrub_rate=2.0).with_scrub_period(None)
        assert not rates.has_scrubbing

    def test_frozen(self):
        with pytest.raises(AttributeError):
            FaultRates().seu_per_bit = 1.0  # type: ignore[misc]
