"""Unit tests for the simplex memory Markov model (paper Fig. 2)."""

import numpy as np
import pytest

from repro.memory import FAIL, FaultRates, SimplexMarkovModel, simplex_model


def rates_per_hour(lam_bit=0.0, lam_sym=0.0, scrub=0.0):
    return FaultRates(
        seu_per_bit=lam_bit, erasure_per_symbol=lam_sym, scrub_rate=scrub
    )


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SimplexMarkovModel(16, 16, 8, rates_per_hour())
        with pytest.raises(ValueError):
            SimplexMarkovModel(300, 16, 8, rates_per_hour())  # n > 2^m - 1

    def test_ber_factor(self):
        model = simplex_model(18, 16, m=8)
        # m (n - k) / k = 8 * 2 / 16 = 1
        assert model.ber_factor == 1.0

    def test_ber_factor_rs3616(self):
        model = simplex_model(36, 16, m=8)
        assert model.ber_factor == 10.0

    def test_convenience_constructor_units(self):
        model = simplex_model(18, 16, seu_per_bit_day=24.0)
        assert model.rates.seu_per_bit == 1.0


class TestStateSpace:
    def test_enumerate_valid_states_rs1816(self):
        model = simplex_model(18, 16)
        # er + 2 re <= 2: (0,0), (0,1), (1,0), (2,0)
        assert set(model.enumerate_valid_states()) == {
            (0, 0),
            (0, 1),
            (1, 0),
            (2, 0),
        }

    def test_chain_reaches_all_valid_states_plus_fail(self):
        model = simplex_model(18, 16, seu_per_bit_day=1.0, erasure_per_symbol_day=1.0)
        states = set(model.chain.states)
        assert states == set(model.enumerate_valid_states()) | {FAIL}

    def test_transient_only_chain_excludes_erasure_states(self):
        model = simplex_model(18, 16, seu_per_bit_day=1.0)
        assert (1, 0) not in model.chain.states

    def test_fail_is_absorbing(self):
        model = simplex_model(18, 16, seu_per_bit_day=1.0)
        assert FAIL in model.chain.absorbing_states()

    def test_is_valid(self):
        model = simplex_model(18, 16)
        assert model.is_valid(2, 0)
        assert model.is_valid(0, 1)
        assert not model.is_valid(1, 1)
        assert not model.is_valid(3, 0)


class TestTransitionRates:
    def test_seu_rate_from_good_state(self):
        model = SimplexMarkovModel(18, 16, 8, rates_per_hour(lam_bit=2.0))
        # m * lambda * n = 8 * 2 * 18
        assert model.chain.rate((0, 0), (0, 1)) == pytest.approx(8 * 2.0 * 18)

    def test_seu_rate_excludes_touched_symbols(self):
        model = SimplexMarkovModel(36, 16, 8, rates_per_hour(lam_bit=1.0))
        # from (0, 1): m * lambda * (n - 1)
        assert model.chain.rate((0, 1), (0, 2)) == pytest.approx(8 * 35)

    def test_erasure_rates(self):
        model = SimplexMarkovModel(
            36, 16, 8, rates_per_hour(lam_bit=1.0, lam_sym=3.0)
        )
        assert model.chain.rate((0, 0), (1, 0)) == pytest.approx(3.0 * 36)
        # erasure subsuming a random error: rate lam_sym * re
        assert model.chain.rate((0, 2), (1, 1)) == pytest.approx(3.0 * 2)

    def test_fail_transition_rate(self):
        model = SimplexMarkovModel(18, 16, 8, rates_per_hour(lam_bit=1.0))
        # (0,1) + another SEU violates 2 re <= 2 -> FAIL at m lam (n-1)
        assert model.chain.rate((0, 1), FAIL) == pytest.approx(8 * 17)

    def test_scrub_transition(self):
        model = SimplexMarkovModel(
            18, 16, 8, rates_per_hour(lam_bit=1.0, scrub=5.0)
        )
        assert model.chain.rate((0, 1), (0, 0)) == 5.0

    def test_no_scrub_self_transition_from_clean_erasures(self):
        model = SimplexMarkovModel(
            18, 16, 8, rates_per_hour(lam_sym=1.0, scrub=5.0)
        )
        # (1, 0) scrubs to itself: must not appear as a transition
        assert model.chain.rate((1, 0), (1, 0)) == 0.0


class TestBehaviour:
    def test_no_faults_zero_ber(self):
        model = simplex_model(18, 16)
        ber = model.ber([0.0, 24.0, 48.0])
        assert np.all(ber == 0.0)

    def test_ber_monotone_without_scrubbing(self):
        model = simplex_model(18, 16, seu_per_bit_day=1e-4)
        ber = model.ber(np.linspace(0, 48, 9))
        assert np.all(np.diff(ber) >= 0)

    def test_ber_is_factor_times_fail_probability(self):
        model = simplex_model(36, 16, seu_per_bit_day=1e-3)
        times = [10.0, 40.0]
        assert np.allclose(
            model.ber(times), 10.0 * model.fail_probability(times)
        )

    def test_scrubbing_reduces_ber(self):
        base = simplex_model(18, 16, seu_per_bit_day=1e-3)
        scrubbed = simplex_model(
            18, 16, seu_per_bit_day=1e-3, scrub_period_seconds=900.0
        )
        t = [48.0]
        assert scrubbed.ber(t)[0] < base.ber(t)[0]

    def test_mttf_finite_with_faults(self):
        model = simplex_model(18, 16, seu_per_bit_day=1e-3)
        mttf = model.mean_time_to_failure()
        assert 0 < mttf < float("inf")

    def test_mttf_infinite_without_faults(self):
        model = simplex_model(18, 16)
        assert model.mean_time_to_failure() == float("inf")

    def test_scrubbing_extends_mttf(self):
        base = simplex_model(18, 16, seu_per_bit_day=1e-3)
        scrubbed = simplex_model(
            18, 16, seu_per_bit_day=1e-3, scrub_period_seconds=900.0
        )
        assert scrubbed.mean_time_to_failure() > base.mean_time_to_failure()

    def test_stronger_code_lowers_ber(self):
        weak = simplex_model(18, 16, seu_per_bit_day=1e-3)
        strong = simplex_model(36, 16, seu_per_bit_day=1e-3)
        t = [48.0]
        assert strong.fail_probability(t)[0] < weak.fail_probability(t)[0]
