"""Tests for quasi-stationary analysis."""

import math

import numpy as np
import pytest

from repro.markov import CTMC, quasi_stationary


class TestQuasiStationary:
    def test_pure_decay_two_state(self):
        """A -> FAIL at rate r: QSD is all on A, decay rate r."""
        chain = CTMC(["A", "FAIL"], [("A", "FAIL", 0.3)], "A")
        qs = quasi_stationary(chain)
        assert qs.distribution == {"A": 1.0}
        assert qs.decay_rate == pytest.approx(0.3)
        assert qs.mean_residual_life() == pytest.approx(1 / 0.3)

    def test_no_absorbing_states_rejected(self):
        chain = CTMC(["A", "B"], [("A", "B", 1.0), ("B", "A", 1.0)], "A")
        with pytest.raises(ValueError, match="no absorbing"):
            quasi_stationary(chain)

    def test_all_absorbing_rejected(self):
        chain = CTMC(["A"], [], "A")
        with pytest.raises(ValueError, match="transient"):
            quasi_stationary(chain)

    def test_distribution_normalized_nonnegative(self):
        chain = CTMC(
            ["A", "B", "F"],
            [("A", "B", 1.0), ("B", "A", 0.5), ("B", "F", 0.2)],
            "A",
        )
        qs = quasi_stationary(chain)
        assert sum(qs.distribution.values()) == pytest.approx(1.0)
        assert all(v >= 0 for v in qs.distribution.values())

    def test_decay_rate_matches_long_run_survival(self):
        """log-survival slope converges to the QSD decay rate."""
        chain = CTMC(
            ["A", "B", "F"],
            [("A", "B", 0.8), ("B", "A", 0.3), ("B", "F", 0.4)],
            "A",
        )
        qs = quasi_stationary(chain)
        t1, t2 = 40.0, 60.0
        probs = chain.transient([t1, t2])
        f_idx = chain.index["F"]
        s1 = 1.0 - probs[0, f_idx]
        s2 = 1.0 - probs[1, f_idx]
        measured = -(math.log(s2) - math.log(s1)) / (t2 - t1)
        assert measured == pytest.approx(qs.decay_rate, rel=1e-6)

    def test_conditional_distribution_converges_to_qsd(self):
        chain = CTMC(
            ["A", "B", "F"],
            [("A", "B", 1.0), ("B", "A", 0.7), ("B", "F", 0.5)],
            "A",
        )
        qs = quasi_stationary(chain)
        probs = chain.transient([80.0])[0]
        surv = probs[chain.index["A"]] + probs[chain.index["B"]]
        conditional = {
            "A": probs[chain.index["A"]] / surv,
            "B": probs[chain.index["B"]] / surv,
        }
        for state, value in conditional.items():
            assert value == pytest.approx(qs.distribution[state], rel=1e-6)

    def test_memory_model_qsd(self):
        """On the simplex paper chain, late survivors carry damage: the
        QSD puts nonzero weight on the single-error state."""
        from repro.memory import simplex_model

        model = simplex_model(18, 16, seu_per_bit_day=1e-3)
        qs = quasi_stationary(model.chain)
        assert qs.distribution[(0, 1)] > 0.5
        assert qs.decay_rate > 0

    def test_scrubbing_shrinks_decay_rate(self):
        from repro.memory import simplex_model

        base = simplex_model(18, 16, seu_per_bit_day=1e-3)
        scrubbed = simplex_model(
            18, 16, seu_per_bit_day=1e-3, scrub_period_seconds=900.0
        )
        assert (
            quasi_stationary(scrubbed.chain).decay_rate
            < quasi_stationary(base.chain).decay_rate
        )
