"""Tests of the Section 6 decoder complexity/area models."""

import pytest

from repro.rs import (
    arrangement_cost,
    decoder_area_gates,
    decoding_time_cycles,
    paper_comparison,
)


class TestDecodingTime:
    def test_paper_value_rs1816(self):
        # Td = 3*18 + 10*2 = 74 (paper Section 6)
        assert decoding_time_cycles(18, 16) == 74

    def test_paper_value_rs3616(self):
        # Td = 3*36 + 10*20 = 308 (paper Section 6)
        assert decoding_time_cycles(36, 16) == 308

    def test_paper_latency_ratio_exceeds_four(self):
        assert decoding_time_cycles(36, 16) / decoding_time_cycles(18, 16) > 4

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            decoding_time_cycles(16, 16)
        with pytest.raises(ValueError):
            decoding_time_cycles(10, 0)


class TestArea:
    def test_linear_in_check_symbols(self):
        a1 = decoder_area_gates(8, 18, 16)
        a2 = decoder_area_gates(8, 20, 16)
        assert a2 / a1 == pytest.approx((20 - 16) / (18 - 16))

    def test_linear_in_symbol_width(self):
        assert decoder_area_gates(16, 18, 16) == pytest.approx(
            2 * decoder_area_gates(8, 18, 16)
        )

    def test_calibration_factor(self):
        assert decoder_area_gates(8, 18, 16, gates_per_unit=1.0) == 16.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            decoder_area_gates(8, 16, 16)
        with pytest.raises(ValueError):
            decoder_area_gates(1, 18, 16)


class TestArrangementComparison:
    def test_duplex_area_doubles(self):
        simplex = arrangement_cost("s", 18, 16, num_decoders=1)
        duplex = arrangement_cost("d", 18, 16, num_decoders=2)
        assert duplex.area_gates == 2 * simplex.area_gates
        assert duplex.decode_cycles == simplex.decode_cycles

    def test_paper_area_claim(self):
        """One RS(36,16) decoder outweighs two RS(18,16) decoders."""
        costs = {c.name: c for c in paper_comparison()}
        assert (
            costs["simplex RS(36,16)"].area_gates
            > costs["duplex RS(18,16)"].area_gates
        )

    def test_paper_comparison_entries(self):
        names = [c.name for c in paper_comparison()]
        assert names == [
            "simplex RS(18,16)",
            "duplex RS(18,16)",
            "simplex RS(36,16)",
        ]
