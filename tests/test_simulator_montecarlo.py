"""Unit and statistical tests for the Monte-Carlo estimators."""

import numpy as np
import pytest

from repro.memory import duplex_model, simplex_model
from repro.rs import RSCode
from repro.simulator import (
    gillespie_fail_probability,
    simulate_fail_probability,
    simulate_read_outcome,
    wilson_interval,
)


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(20, 100)
        assert low < 0.2 < high

    def test_zero_failures(self):
        low, high = wilson_interval(0, 50)
        assert low == 0.0
        assert 0.0 < high < 0.15

    def test_all_failures(self):
        low, high = wilson_interval(50, 50)
        assert high == 1.0
        assert 0.85 < low < 1.0

    def test_narrows_with_trials(self):
        narrow = wilson_interval(100, 1000)
        wide = wilson_interval(10, 100)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            wilson_interval(0, 0)


class TestGillespie:
    def test_simplex_matches_transient_solution(self):
        model = simplex_model(18, 16, seu_per_bit_day=2e-3)
        p = model.fail_probability([48.0])[0]
        est = gillespie_fail_probability(
            model, 48.0, trials=2500, rng=np.random.default_rng(11)
        )
        assert est.consistent_with(p)

    def test_duplex_matches_transient_solution(self):
        model = duplex_model(18, 16, seu_per_bit_day=2e-3)
        p = model.fail_probability([48.0])[0]
        est = gillespie_fail_probability(
            model, 48.0, trials=2500, rng=np.random.default_rng(12)
        )
        assert est.consistent_with(p)

    def test_scrubbed_model(self):
        model = duplex_model(
            18, 16, seu_per_bit_day=2e-3, scrub_period_seconds=6 * 3600
        )
        p = model.fail_probability([48.0])[0]
        est = gillespie_fail_probability(
            model, 48.0, trials=2500, rng=np.random.default_rng(13)
        )
        assert est.consistent_with(p)

    def test_zero_rate_never_fails(self):
        model = simplex_model(18, 16)
        est = gillespie_fail_probability(
            model, 48.0, trials=50, rng=np.random.default_rng(1)
        )
        assert est.failures == 0


class TestCodecLevelSimulation:
    @pytest.fixture(scope="class")
    def code(self):
        return RSCode(18, 16, m=8)

    def test_outcome_counts_sum_to_trials(self, code):
        est = simulate_fail_probability(
            "simplex",
            code,
            48.0,
            seu_per_bit=2e-3 / 24,
            erasure_per_symbol=0.0,
            trials=200,
            rng=np.random.default_rng(5),
        )
        assert sum(est.outcome_counts.values()) == 200

    def test_simplex_transients_match_markov_model(self, code):
        """The paper's simplex chain tracks physical behaviour closely."""
        model = simplex_model(18, 16, seu_per_bit_day=2e-3)
        p = model.fail_probability([48.0])[0]
        est = simulate_fail_probability(
            "simplex",
            code,
            48.0,
            seu_per_bit=2e-3 / 24,
            erasure_per_symbol=0.0,
            trials=1200,
            rng=np.random.default_rng(21),
        )
        assert est.consistent_with(p)

    def test_simplex_permanent_match(self, code):
        model = simplex_model(18, 16, erasure_per_symbol_day=2e-2)
        p = model.fail_probability([48.0])[0]
        est = simulate_fail_probability(
            "simplex",
            code,
            48.0,
            seu_per_bit=0.0,
            erasure_per_symbol=2e-2 / 24,
            trials=1200,
            rng=np.random.default_rng(22),
        )
        # benign stuck-ats (matching cell value) make the physical system
        # slightly different from the located-erasure abstraction; require
        # agreement within a factor of 2 at these probabilities
        assert 0.5 * p < est.probability < 2.0 * p

    def test_duplex_model_is_conservative_for_transients(self, code):
        """Reproduction finding: the paper's either-word fail rule upper-
        bounds what the real arbiter loses — the physical duplex fails far
        less often than its chain predicts."""
        model = duplex_model(18, 16, seu_per_bit_day=2e-3)
        p_model = model.fail_probability([48.0])[0]
        est = simulate_fail_probability(
            "duplex",
            code,
            48.0,
            seu_per_bit=2e-3 / 24,
            erasure_per_symbol=0.0,
            trials=600,
            rng=np.random.default_rng(23),
        )
        assert est.probability < p_model

    def test_scrub_reduces_failures(self, code):
        kwargs = dict(
            code=code,
            t_end=48.0,
            seu_per_bit=5e-3 / 24,
            erasure_per_symbol=0.0,
            trials=500,
        )
        base = simulate_fail_probability(
            "simplex", rng=np.random.default_rng(31), **kwargs
        )
        scrubbed = simulate_fail_probability(
            "simplex", rng=np.random.default_rng(31), scrub_period=2.0, **kwargs
        )
        assert scrubbed.failures < base.failures

    def test_unknown_arrangement_rejected(self, code):
        with pytest.raises(ValueError, match="arrangement"):
            simulate_read_outcome(
                "triplex", code, 1.0, 0.0, 0.0, np.random.default_rng(0)
            )
