"""Tests for the numerical-confidence utilities."""

import pytest

from repro.analysis.convergence import (
    scrub_grid_refinement,
    solver_agreement,
    trials_for_relative_width,
    uniformization_tolerance_sweep,
)
from repro.memory import duplex_model, simplex_model


class TestSolverAgreement:
    def test_paper_configuration_agrees(self):
        model = duplex_model(
            18, 16, seu_per_bit_day=1.7e-5, scrub_period_seconds=1800.0
        )
        deviations = solver_agreement(model, [12.0, 48.0])
        assert set(deviations) == {"uniformization", "expm", "ode"}
        assert deviations["uniformization"] < 1e-10
        assert deviations["expm"] < 1e-10
        assert deviations["ode"] < 1e-6


class TestToleranceSweep:
    def test_values_converge_monotonically_in_tolerance(self):
        model = simplex_model(18, 16, seu_per_bit_day=1e-4)
        sweep = uniformization_tolerance_sweep(model, 48.0)
        values = list(sweep.values())
        reference = values[-1]  # tightest tolerance
        assert reference > 0
        for value in values:
            assert value == pytest.approx(reference, rel=1e-5)


class TestTrialPlanning:
    def test_known_value(self):
        # p=0.5, w=0.1: n = 1.96^2 * 0.5 / (0.5 * 0.01) = 384.16 -> 385
        assert trials_for_relative_width(0.5, 0.1) == 385

    def test_one_over_p_scaling(self):
        n_small = trials_for_relative_width(1e-2, 0.1)
        n_tiny = trials_for_relative_width(1e-4, 0.1)
        assert n_tiny / n_small == pytest.approx(100.0, rel=0.02)

    def test_rare_event_needs_astronomical_trials(self):
        """Why the package solves chains: the paper's 1e-6 BER scale
        would need ~4e8 trials for 10% resolution."""
        assert trials_for_relative_width(1e-6, 0.1) > 1e8

    def test_validation(self):
        with pytest.raises(ValueError):
            trials_for_relative_width(0.0, 0.1)
        with pytest.raises(ValueError):
            trials_for_relative_width(0.5, 0.0)


class TestScrubGridRefinement:
    def test_grid_independence(self):
        model = simplex_model(18, 16, seu_per_bit_day=1e-3)
        results = scrub_grid_refinement(model, 10.0, 1.0)
        values = list(results.values())
        for value in values[1:]:
            assert value == pytest.approx(values[0], rel=1e-9)
