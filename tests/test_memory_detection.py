"""Tests for the permanent-fault detection-latency extension."""

import numpy as np
import pytest

from repro.memory import FAIL, simplex_detection_model, simplex_model
from repro.memory.detection import SimplexDetectionModel
from repro.memory.rates import FaultRates


class TestConstruction:
    def test_negative_detection_rate_rejected(self):
        with pytest.raises(ValueError, match="detection rate"):
            SimplexDetectionModel(18, 16, 8, FaultRates(), -1.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match="latency"):
            simplex_detection_model(18, 16, mean_detection_hours=-1.0)

    def test_zero_latency_maps_to_fast_detector(self):
        model = simplex_detection_model(18, 16, mean_detection_hours=0.0)
        assert model.detection_rate == 1e9

    def test_initial_state(self):
        model = simplex_detection_model(18, 16)
        assert model.initial_state() == (0, 0, 0)


class TestCapability:
    def test_unlocated_faults_cost_double(self):
        model = simplex_detection_model(18, 16)
        assert model.is_valid(2, 0, 0)       # two located erasures fine
        assert not model.is_valid(0, 2, 0)   # two unlocated: 4 > 2
        assert model.is_valid(0, 1, 0)
        assert not model.is_valid(1, 1, 0)   # 1 + 2 = 3 > 2


class TestTransitions:
    @pytest.fixture(scope="class")
    def chain(self):
        rates = FaultRates(seu_per_bit=1.0, erasure_per_symbol=2.0, scrub_rate=3.0)
        return SimplexDetectionModel(36, 16, 8, rates, detection_rate=5.0).chain

    def test_permanent_fault_arrives_unlocated(self, chain):
        assert chain.rate((0, 0, 0), (0, 1, 0)) == pytest.approx(2.0 * 36)

    def test_detection_locates_at_rate_times_count(self, chain):
        assert chain.rate((0, 2, 0), (1, 1, 0)) == pytest.approx(5.0 * 2)

    def test_seu_on_clean_symbols(self, chain):
        assert chain.rate((1, 1, 1), (1, 1, 2)) == pytest.approx(8 * 1.0 * 33)

    def test_permanent_dominates_random_error(self, chain):
        assert chain.rate((0, 0, 2), (0, 1, 1)) == pytest.approx(2.0 * 2)

    def test_scrub_keeps_unlocated_faults(self, chain):
        assert chain.rate((1, 1, 2), (1, 1, 0)) == 3.0

    def test_fail_reachable(self, chain):
        assert FAIL in chain.index


class TestFirstPassageMetric:
    def test_slow_detector_worse_on_roomy_code(self):
        fast = simplex_detection_model(
            36, 16, erasure_per_symbol_day=1e-3, mean_detection_hours=0.01
        )
        slow = simplex_detection_model(
            36, 16, erasure_per_symbol_day=1e-3, mean_detection_hours=1000.0
        )
        t = [730.0]
        assert slow.fail_probability(t)[0] > 10 * fast.fail_probability(t)[0]

    def test_fast_detector_bounded_by_one_lost_check_symbol(self):
        """Under first-passage semantics even an instantaneous-in-the-limit
        detector loses one erasure of margin: the (n-k)-th fault transits
        an over-capability window (er + 2 > n - k) before location.  So
        the fast-detector chain sits between the paper model and the
        paper model with one fewer check symbol."""
        from repro.memory.analytic import _binomial_tail

        lam_e_day = 1e-3
        t = 730.0
        paper = simplex_model(36, 16, erasure_per_symbol_day=lam_e_day)
        fast = simplex_detection_model(
            36, 16, erasure_per_symbol_day=lam_e_day, mean_detection_hours=0.001
        )
        p_fast = fast.fail_probability([t])[0]
        p_paper = paper.fail_probability([t])[0]
        import math

        q = -math.expm1(-(lam_e_day / 24) * t)
        p_one_less = _binomial_tail(36, q, 19)  # budget n-k-1
        assert p_paper < p_fast < p_one_less * 1.05


class TestInstantaneousMetric:
    def test_fast_detector_converges_to_paper_model(self):
        paper = simplex_model(18, 16, erasure_per_symbol_day=1e-3)
        fast = simplex_detection_model(
            18, 16, erasure_per_symbol_day=1e-3, mean_detection_hours=0.001
        )
        t = [48.0, 730.0]
        assert np.allclose(
            fast.read_unreliability(t), paper.fail_probability(t), rtol=0.01
        )

    def test_slow_detector_dominates_fast(self):
        kwargs = dict(erasure_per_symbol_day=1e-3)
        fast = simplex_detection_model(18, 16, mean_detection_hours=0.1, **kwargs)
        slow = simplex_detection_model(18, 16, mean_detection_hours=100.0, **kwargs)
        t = [48.0]
        assert slow.read_unreliability(t)[0] > 5 * fast.read_unreliability(t)[0]

    def test_instantaneous_below_first_passage(self):
        """Occupancy of bad states can never exceed 'ever visited one'."""
        model = simplex_detection_model(
            36, 16, erasure_per_symbol_day=1e-3, mean_detection_hours=10.0
        )
        t = [100.0, 730.0]
        inst = model.read_unreliability(t)
        fp = model.fail_probability(t)
        assert np.all(inst <= fp + 1e-15)

    def test_location_heals_the_word(self):
        """With permanent faults only and a detector, instantaneous
        unreliability is *not* monotone-equivalent to absorption: the
        located state (2,0,0) is readable again."""
        model = simplex_detection_model(
            18, 16, erasure_per_symbol_day=1e-2, mean_detection_hours=1.0
        )
        t = [200.0]
        assert model.read_unreliability(t)[0] < model.fail_probability(t)[0]

    def test_read_ber_applies_factor(self):
        model = simplex_detection_model(
            36, 16, erasure_per_symbol_day=1e-3, mean_detection_hours=1.0
        )
        t = [100.0]
        assert model.read_ber(t)[0] == pytest.approx(
            10.0 * model.read_unreliability(t)[0]
        )

    def test_no_faults_always_readable(self):
        model = simplex_detection_model(18, 16, mean_detection_hours=1.0)
        assert np.all(model.read_unreliability([0.0, 100.0]) == 0.0)
