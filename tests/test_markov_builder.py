"""Unit tests for BFS state-space exploration."""

import pytest

from repro.markov import build_chain


class TestExploration:
    def test_linear_chain(self):
        def transitions(state):
            if state < 3:
                return [(state + 1, 1.0)]
            return []

        chain = build_chain(0, transitions)
        assert chain.states == [0, 1, 2, 3]
        assert chain.absorbing_states() == [3]

    def test_unreachable_states_not_included(self):
        def transitions(state):
            return [(1, 2.0)] if state == 0 else []

        chain = build_chain(0, transitions)
        assert set(chain.states) == {0, 1}

    def test_branching_exploration(self):
        def transitions(state):
            if state == "root":
                return [("left", 1.0), ("right", 2.0)]
            if state == "left":
                return [("leaf", 0.5)]
            return []

        chain = build_chain("root", transitions)
        assert set(chain.states) == {"root", "left", "right", "leaf"}
        assert chain.rate("root", "right") == 2.0

    def test_cycles_terminate(self):
        def transitions(state):
            return [((state + 1) % 4, 1.0)]

        chain = build_chain(0, transitions)
        assert chain.num_states == 4

    def test_zero_rate_edges_not_explored(self):
        def transitions(state):
            if state == 0:
                return [(1, 0.0), (2, 1.0)]
            return []

        chain = build_chain(0, transitions)
        assert 1 not in chain.states

    def test_self_transition_ignored(self):
        def transitions(state):
            if state == 0:
                return [(0, 5.0), (1, 1.0)]
            return []

        chain = build_chain(0, transitions)
        assert chain.rate(0, 1) == 1.0
        assert chain.rate_matrix.diagonal().sum() == 0.0

    def test_parallel_moves_summed(self):
        def transitions(state):
            if state == "a":
                return [("b", 1.0), ("b", 2.0)]
            return []

        chain = build_chain("a", transitions)
        assert chain.rate("a", "b") == 3.0

    def test_max_states_guard(self):
        def transitions(state):
            return [(state + 1, 1.0)]

        with pytest.raises(RuntimeError, match="max_states"):
            build_chain(0, transitions, max_states=100)

    def test_negative_rate_rejected(self):
        def transitions(state):
            return [(1, -1.0)] if state == 0 else []

        with pytest.raises(ValueError, match="negative rate"):
            build_chain(0, transitions)

    def test_initial_state_gets_full_mass(self):
        chain = build_chain("only", lambda s: [])
        assert chain.p0.tolist() == [1.0]
