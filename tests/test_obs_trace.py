"""Span tracing: nesting, collectors, JSONL export."""

import json

import pytest

from repro.obs import trace


@pytest.fixture
def collector():
    col = trace.TraceCollector()
    with trace.use_collector(col):
        yield col


class TestSpans:
    def test_records_name_attrs_duration(self, collector):
        with trace.span("work", size=3) as sp:
            sp.set_attr("extra", "yes")
        [record] = collector.spans("work")
        assert record["attrs"] == {"size": 3, "extra": "yes"}
        assert record["duration_s"] >= 0.0
        assert record["parent_id"] is None
        assert record["depth"] == 0

    def test_nesting_links_parent_and_depth(self, collector):
        with trace.span("outer") as outer:
            with trace.span("inner"):
                pass
        [inner] = collector.spans("inner")
        [outer_rec] = collector.spans("outer")
        assert inner["parent_id"] == outer_rec["span_id"] == outer.span_id
        assert inner["depth"] == 1

    def test_inner_span_recorded_before_outer(self, collector):
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        names = [s["name"] for s in collector.spans()]
        assert names == ["inner", "outer"]

    def test_set_attrs_bulk(self, collector):
        with trace.span("s") as sp:
            sp.set_attrs(a=1, b=2.5)
        assert collector.spans("s")[0]["attrs"] == {"a": 1, "b": 2.5}

    def test_span_recorded_even_on_exception(self, collector):
        with pytest.raises(RuntimeError):
            with trace.span("doomed"):
                raise RuntimeError("boom")
        assert len(collector.spans("doomed")) == 1

    def test_current_span(self, collector):
        assert trace.current_span() is None
        with trace.span("live") as sp:
            assert trace.current_span() is sp
        assert trace.current_span() is None

    def test_numpy_attrs_become_json_builtins(self, collector):
        import numpy as np

        with trace.span("np", count=np.int64(7), value=np.float64(0.5)):
            pass
        attrs = collector.spans("np")[0]["attrs"]
        assert attrs == {"count": 7, "value": 0.5}
        json.dumps(attrs)  # must be serializable


class TestDisabledTracing:
    def test_span_is_noop_without_collector(self):
        assert trace.current_collector() is None
        with trace.span("unrecorded") as sp:
            sp.set_attr("still", "works")  # attrs accepted, just dropped
        trace.event("also_unrecorded", x=1)

    def test_use_collector_restores_previous(self):
        outer = trace.TraceCollector()
        inner = trace.TraceCollector()
        with trace.use_collector(outer):
            with trace.use_collector(inner):
                trace.event("deep")
            trace.event("shallow")
        assert trace.current_collector() is None
        assert [e["name"] for e in inner.events()] == ["deep"]
        assert [e["name"] for e in outer.events()] == ["shallow"]


class TestEvents:
    def test_event_records_attrs_and_parent(self, collector):
        with trace.span("ctx") as sp:
            trace.event("ping", n=1)
        [event] = collector.events("ping")
        assert event["attrs"] == {"n": 1}
        assert event["parent_id"] == sp.span_id


class TestExport:
    def test_jsonl_roundtrip(self, collector, tmp_path):
        with trace.span("a", k="v"):
            trace.event("beat", chunk=0)
        path = collector.export_jsonl(tmp_path / "t" / "trace.jsonl")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = {line["kind"] for line in lines}
        assert kinds == {"span", "event"}
        assert all(line["schema"] == trace.TRACE_SCHEMA for line in lines)

    def test_export_appends_metrics_lines(self, collector, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("jobs").inc(3)
        with trace.span("a"):
            pass
        path = collector.export_jsonl(
            tmp_path / "trace.jsonl", metrics=registry.snapshot()
        )
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        metric_lines = [line for line in lines if line["kind"] == "metric"]
        assert metric_lines == [
            {
                "kind": "metric",
                "schema": trace.TRACE_SCHEMA,
                "name": "jobs",
                "type": "counter",
                "value": 3.0,
            }
        ]
