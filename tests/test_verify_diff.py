"""Tests for the differential-target registry in repro.verify.diff.

Every registered target runs a batch of seeded trials and must report no
mismatch (the implementations genuinely agree), while its induced-bug
check must fire on generated cases (the detector detects).  Registry
plumbing and mismatch serialization get direct unit tests.
"""

import json

import pytest

from repro.verify import (
    Mismatch,
    Target,
    all_targets,
    case_rng,
    get_target,
    register_target,
)
from repro.verify.diff import _REGISTRY

EXPECTED_TARGETS = {
    "gf-mul",
    "rs-decode",
    "rs-solver-parity",
    "rs-batch-scalar",
    "rs-compiled-scalar",
    "rs-compiled-batch",
    "markov-transient",
    "memory-analytic",
    "memory-mc-ber",
    "journal-roundtrip",
    "mc-streaming-vs-final",
    "scenario-analytic-parity",
}

# Trial counts tuned so the whole module stays in the seconds range:
# the expensive targets (exhaustive-oracle decode, Monte-Carlo) get
# fewer trials here; the nightly fuzz job gives them depth.
TRIALS = {
    "gf-mul": 40,
    "rs-decode": 12,
    "rs-solver-parity": 30,
    "rs-batch-scalar": 10,
    "rs-compiled-scalar": 10,
    "rs-compiled-batch": 10,
    "markov-transient": 20,
    "memory-analytic": 8,
    "memory-mc-ber": 3,
    "journal-roundtrip": 3,
    "mc-streaming-vs-final": 3,
    "scenario-analytic-parity": 3,
}


class TestRegistry:
    def test_expected_targets_registered(self):
        assert {t.name for t in all_targets()} == EXPECTED_TARGETS

    def test_at_least_six_targets_spanning_layers(self):
        targets = all_targets()
        assert len(targets) >= 6
        layers = {layer for t in targets for layer in t.layers}
        assert {"gf", "rs", "markov", "memory"} <= layers

    def test_all_targets_sorted(self):
        names = [t.name for t in all_targets()]
        assert names == sorted(names)

    def test_get_target_unknown_name(self):
        with pytest.raises(KeyError):
            get_target("no-such-target")

    def test_duplicate_registration_rejected(self):
        existing = all_targets()[0]
        with pytest.raises(ValueError):
            register_target(existing)
        assert _REGISTRY[existing.name] is existing

    def test_targets_have_descriptions(self):
        for t in all_targets():
            assert t.description.strip()
            assert t.layers


class TestMismatch:
    def test_as_dict_json_serializable(self):
        import numpy as np

        m = Mismatch(
            "demo", {"arr": np.arange(3), "x": np.float64(1.5), "s": "ok"}
        )
        payload = m.as_dict()
        text = json.dumps(payload)  # must not raise
        assert "demo" in text

    def test_target_dataclass_frozen(self):
        t = all_targets()[0]
        assert isinstance(t, Target)
        with pytest.raises(AttributeError):
            t.name = "other"


@pytest.mark.parametrize("name", sorted(EXPECTED_TARGETS))
def test_target_agrees_on_seeded_trials(name):
    """The differential pair genuinely agrees on a seeded trial batch."""
    target = get_target(name)
    for trial in range(TRIALS[name]):
        rng = case_rng(1234, trial)
        case = target.generate(rng)
        mismatch = target.check(case)
        assert mismatch is None, (
            f"{name} trial {trial}: {mismatch.description} "
            f"{json.dumps(mismatch.as_dict())[:400]}"
        )


@pytest.mark.parametrize("name", sorted(EXPECTED_TARGETS))
def test_induced_check_fires(name):
    """Each target's deliberately buggy self-test check detects something.

    The induced predicates are monotone, so among a handful of generated
    cases at least one must trip (most trip immediately).
    """
    target = get_target(name)
    fired = False
    for trial in range(20):
        case = target.generate(case_rng(99, trial))
        if target.induced_check(case) is not None:
            fired = True
            break
    assert fired, f"{name}: induced bug never detected in 20 cases"


@pytest.mark.parametrize("name", sorted(EXPECTED_TARGETS))
def test_shrink_candidates_stay_checkable(name):
    """Shrink candidates are structurally valid cases for the checker.

    (The harness tolerates exceptions from invalid candidates, but the
    built-in shrinkers should not produce any on well-formed input.)
    """
    target = get_target(name)
    case = target.generate(case_rng(55, 0))
    for i, candidate in enumerate(target.shrink(case)):
        if i >= 10:
            break
        target.check(candidate)  # must not raise
