"""Checkpoint journal: atomic append, torn-line tolerance, resume identity."""

import json

import pytest

from repro.perf import PerfCounters
from repro.rs import RSCode
from repro.runtime import (
    CheckpointError,
    CheckpointJournal,
    CheckpointMismatchError,
    RuntimeConfig,
    seed_key,
)
from repro.simulator import simulate_fail_probability_batched, spawn_chunk_seeds

CODE = RSCode(18, 16, m=8)
LAM = 2e-3 / 24.0


def batched(runtime=None, counters=None, **kw):
    kw.setdefault("trials", 300)
    kw.setdefault("seed", 11)
    kw.setdefault("chunk_size", 75)
    return simulate_fail_probability_batched(
        "simplex", CODE, 48.0, LAM, 0.0, runtime=runtime, counters=counters,
        cell_key="cell", **kw
    )


class TestJournalBasics:
    def test_records_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CheckpointJournal(path) as journal:
            journal.ensure_header({"x": 1})
            journal.record_chunk("c", 0, "sk", {"failures": 2, "trials": 10})
        again = CheckpointJournal(path)
        assert again.header_fingerprint == {"x": 1}
        assert again.completed("c", 0, "sk") == {"failures": 2, "trials": 10}
        assert again.n_chunks == 1

    def test_missing_chunk_and_wrong_seed_identity(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl")
        journal.record_chunk("c", 0, "sk", {"failures": 0})
        assert journal.completed("c", 1, "sk") is None
        assert journal.completed("c", 0, "other-seed") is None

    def test_torn_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CheckpointJournal(path) as journal:
            journal.ensure_header({"x": 1})
            journal.record_chunk("c", 0, "sk", {"failures": 1})
        with open(path, "a") as fh:  # simulate a write cut mid-record
            fh.write('{"kind": "chunk", "cell": "c", "chu')
        recovered = CheckpointJournal(path)
        assert recovered.n_chunks == 1
        assert recovered.torn_lines == 1

    def test_corruption_in_the_middle_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        records = [
            {"kind": "header", "version": 1, "fingerprint": {}},
            {"kind": "chunk", "cell": "c", "chunk": 0, "seed": "s", "result": {}},
        ]
        lines = [json.dumps(r) for r in records]
        lines.insert(1, "NOT JSON")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="corrupt"):
            CheckpointJournal(path)

    def test_fingerprint_mismatch_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CheckpointJournal(path) as journal:
            assert journal.ensure_header({"trials": 100, "seed": 1}) is False
        resumed = CheckpointJournal(path)
        assert resumed.ensure_header({"trials": 100, "seed": 1}) is True
        with pytest.raises(CheckpointMismatchError, match="trials"):
            resumed.ensure_header({"trials": 200, "seed": 1})

    def test_seed_key_distinguishes_spawned_children(self):
        seeds = spawn_chunk_seeds(7, 3)
        keys = {seed_key(s) for s in seeds}
        assert len(keys) == 3
        assert keys == {seed_key(s) for s in spawn_chunk_seeds(7, 3)}


class TestResumeDeterminism:
    def test_full_resume_is_bit_identical_and_free(self, tmp_path):
        reference = batched()
        path = tmp_path / "run.jsonl"
        with CheckpointJournal(path) as journal:
            first = batched(runtime=RuntimeConfig(journal=journal))
        assert first == reference

        counters = PerfCounters()
        with CheckpointJournal(path) as journal:
            resumed = batched(
                runtime=RuntimeConfig(journal=journal), counters=counters
            )
        assert resumed == reference
        assert counters.chunks_resumed == 4  # 300 trials / 75 = all replayed

    def test_partial_journal_resumes_bit_identical(self, tmp_path):
        reference = batched()
        path = tmp_path / "run.jsonl"
        with CheckpointJournal(path) as journal:
            batched(runtime=RuntimeConfig(journal=journal))

        # Drop the last two chunk records: an interrupt after chunk 1.
        # v2 lines are framed (version|crc|chain|payload); dropping a
        # suffix keeps the surviving prefix's hash chain intact.
        lines = path.read_text().strip().split("\n")
        kept = [
            line
            for line in lines
            if json.loads(line.split("|", 3)[3]).get("chunk") not in (2, 3)
        ]
        path.write_text("\n".join(kept) + "\n")

        counters = PerfCounters()
        with CheckpointJournal(path) as journal:
            resumed = batched(
                runtime=RuntimeConfig(journal=journal), counters=counters
            )
        assert resumed == reference
        assert counters.chunks_resumed == 2

    def test_journal_chunks_are_keyed_by_cell(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with CheckpointJournal(path) as journal:
            runtime = RuntimeConfig(journal=journal)
            a = simulate_fail_probability_batched(
                "simplex", CODE, 48.0, LAM, 0.0, 150, seed=1, chunk_size=75,
                runtime=runtime, cell_key="0:first",
            )
            b = simulate_fail_probability_batched(
                "simplex", CODE, 48.0, LAM, 0.0, 150, seed=2, chunk_size=75,
                runtime=runtime, cell_key="1:second",
            )
        journal = CheckpointJournal(path)
        assert journal.n_chunks == 4
        assert a != b  # different seeds landed in different namespaces
