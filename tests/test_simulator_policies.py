"""Tests for alternative duplex arbiter policies."""

import random

import numpy as np
import pytest

from repro.rs import RSCode, RSDecodingError
from repro.simulator import ARBITER_POLICIES, MemoryWord, compare_policies
from repro.simulator.policies import (
    policy_compare_no_flags,
    policy_first_decodable,
    policy_flag_compare,
    policy_module1_only,
)


@pytest.fixture(scope="module")
def code():
    return RSCode(18, 16, m=8)


@pytest.fixture(scope="module")
def data(code):
    rng = random.Random(5)
    return [rng.randrange(256) for _ in range(code.k)]


def fresh_pair(code, data):
    cw = code.encode(data)
    return MemoryWord(cw, code.m), MemoryWord(cw, code.m)


def miscorrecting_word(code, data):
    cw = code.encode(data)
    rng = random.Random(31)
    for _ in range(5000):
        corrupted = list(cw)
        for pos in rng.sample(range(code.n), 2):
            corrupted[pos] ^= rng.randrange(1, 256)
        try:
            result = code.decode(corrupted)
        except RSDecodingError:
            continue
        if result.data != data:
            return corrupted
    raise AssertionError("no mis-correcting pattern found")


class TestPolicyBehaviour:
    def test_registry_contains_four_policies(self):
        assert set(ARBITER_POLICIES) == {
            "flag_compare",
            "first_decodable",
            "compare_no_flags",
            "module1_only",
        }

    def test_all_policies_agree_on_clean_words(self, code, data):
        w1, w2 = fresh_pair(code, data)
        for policy in ARBITER_POLICIES.values():
            out, _detail = policy(code, w1, w2)
            assert out == data

    def test_flag_compare_catches_miscorrection(self, code, data):
        w1, w2 = fresh_pair(code, data)
        w1.write(miscorrecting_word(code, data))
        out, _ = policy_flag_compare(code, w1, w2)
        assert out == data

    def test_first_decodable_is_fooled_by_miscorrection(self, code, data):
        """Module 1 mis-corrects; the flagless policy trusts it — silent
        data corruption, the event the paper's flags exist to stop."""
        w1, w2 = fresh_pair(code, data)
        w1.write(miscorrecting_word(code, data))
        out, detail = policy_first_decodable(code, w1, w2)
        assert detail == "module1"
        assert out != data

    def test_compare_no_flags_detects_but_cannot_resolve(self, code, data):
        w1, w2 = fresh_pair(code, data)
        w1.write(miscorrecting_word(code, data))
        out, detail = policy_compare_no_flags(code, w1, w2)
        assert detail == "disagree"
        assert out is None

    def test_module1_only_ignores_replica_damage(self, code, data):
        w1, w2 = fresh_pair(code, data)
        w2.flip_bit(3, 1)
        w2.flip_bit(9, 6)  # module 2 is wrecked
        out, _ = policy_module1_only(code, w1, w2)
        assert out == data


class TestPolicyComparison:
    @pytest.fixture(scope="class")
    def results(self, code):
        return compare_policies(
            code,
            t_end=48.0,
            seu_per_bit=2e-3 / 24,
            erasure_per_symbol=0.0,
            trials=500,
            rng=np.random.default_rng(17),
        )

    def test_flag_compare_cleanest_on_silent_corruption(self, results):
        """The flag arbiter's silent paths are corner cases (paper Sec. 3
        neglects them); every cheaper policy is at least as dirty."""
        assert (
            results["flag_compare"]["silent"]
            <= results["first_decodable"]["silent"]
        )
        assert (
            results["flag_compare"]["silent"]
            <= results["module1_only"]["silent"]
        )

    def test_flag_compare_beats_flagless_comparison(self, results):
        assert (
            results["flag_compare"]["failure"]
            <= results["compare_no_flags"]["failure"]
        )

    def test_module1_only_is_worst(self, results):
        assert results["module1_only"]["failure"] >= max(
            results["flag_compare"]["failure"],
            results["first_decodable"]["failure"],
        )

    def test_silent_bounded_by_failure(self, results):
        for counts in results.values():
            assert counts["silent"] <= counts["failure"]
