"""Unit tests for the executable simplex/duplex systems."""

import numpy as np
import pytest

from repro.rs import RSCode
from repro.simulator import (
    DuplexSystem,
    FaultEvent,
    FaultKind,
    ReadOutcome,
    SimplexSystem,
)


@pytest.fixture(scope="module")
def code():
    return RSCode(18, 16, m=8)


def seu(module, symbol, bit, t=1.0):
    return FaultEvent(t, FaultKind.SEU, module, symbol, bit)


def stuck(module, symbol, bit, value, t=1.0):
    return FaultEvent(t, FaultKind.PERMANENT, module, symbol, bit, value)


class TestSimplexSystem:
    def test_clean_read_correct(self, code):
        system = SimplexSystem(code, data=[7] * 16)
        assert system.read() is ReadOutcome.CORRECT

    def test_random_data_generated(self, code):
        system = SimplexSystem(code, rng=np.random.default_rng(3))
        assert len(system.data) == 16
        assert system.read() is ReadOutcome.CORRECT

    def test_single_seu_corrected(self, code):
        system = SimplexSystem(code, data=[7] * 16)
        system.apply_event(seu(0, 9, 4))
        assert system.read() is ReadOutcome.CORRECT

    def test_two_erasures_corrected(self, code):
        system = SimplexSystem(code, data=[1] * 16)
        cw = code.encode(system.data)
        system.apply_event(stuck(0, 2, 0, 1 - (cw[2] & 1)))
        system.apply_event(stuck(0, 8, 3, 1 - ((cw[8] >> 3) & 1)))
        assert system.read() is ReadOutcome.CORRECT

    def test_two_seus_fail(self, code):
        system = SimplexSystem(code, data=[1] * 16)
        system.apply_event(seu(0, 2, 0))
        system.apply_event(seu(0, 9, 5))
        assert system.read().is_failure

    def test_scrub_clears_accumulated_seu(self, code):
        system = SimplexSystem(code, data=[1] * 16)
        system.apply_event(seu(0, 2, 0))
        assert system.scrub()
        system.apply_event(seu(0, 9, 5))
        # without the scrub this would be two errors and a failure
        assert system.read() is ReadOutcome.CORRECT

    def test_scrub_fails_beyond_capability(self, code):
        system = SimplexSystem(code, data=[1] * 16)
        system.apply_event(seu(0, 2, 0))
        system.apply_event(seu(0, 9, 5))
        ok = system.scrub()
        if not ok:  # detected: contents untouched, read still fails
            assert system.read().is_failure

    def test_scrub_event_routing(self, code):
        system = SimplexSystem(code, data=[1] * 16)
        system.apply_event(seu(0, 2, 0))
        system.apply_event(FaultEvent(2.0, FaultKind.SCRUB))
        system.apply_event(seu(0, 9, 5))
        assert system.read() is ReadOutcome.CORRECT

    def test_permanent_fault_survives_scrub(self, code):
        system = SimplexSystem(code, data=[1] * 16)
        cw = code.encode(system.data)
        system.apply_event(stuck(0, 4, 0, 1 - (cw[4] & 1)))
        system.scrub()
        assert system.word.located_positions == [4]
        assert system.read() is ReadOutcome.CORRECT


class TestDuplexSystem:
    def test_clean_read(self, code):
        system = DuplexSystem(code, data=[9] * 16)
        assert system.read() is ReadOutcome.CORRECT

    def test_events_are_module_addressed(self, code):
        system = DuplexSystem(code, data=[9] * 16)
        system.apply_event(seu(0, 3, 1))
        assert system.modules[0].read_symbol(3) != system.modules[1].read_symbol(3)

    def test_single_sided_erasures_masked(self, code):
        system = DuplexSystem(code, data=[9] * 16)
        cw = code.encode(system.data)
        for pos in (0, 4, 8, 12):
            system.apply_event(stuck(0, pos, 0, 1 - (cw[pos] & 1)))
        assert system.read() is ReadOutcome.CORRECT

    def test_errors_in_both_modules_tolerated(self, code):
        system = DuplexSystem(code, data=[9] * 16)
        system.apply_event(seu(0, 2, 0))
        system.apply_event(seu(1, 11, 6))
        assert system.read() is ReadOutcome.CORRECT

    def test_duplex_scrub_resynchronizes(self, code):
        system = DuplexSystem(code, data=[9] * 16)
        system.apply_event(seu(0, 2, 0))
        system.apply_event(seu(1, 11, 6))
        assert system.scrub()
        # all random errors gone from both modules
        cw = code.encode(system.data)
        assert system.modules[0].read() == cw
        assert system.modules[1].read() == cw

    def test_scrub_preserves_stuck_cells(self, code):
        system = DuplexSystem(code, data=[9] * 16)
        cw = code.encode(system.data)
        system.apply_event(stuck(0, 5, 0, 1 - (cw[5] & 1)))
        system.scrub()
        assert system.modules[0].is_erased(5)
        assert system.modules[0].read_symbol(5) != cw[5]

    def test_duplex_outlasts_simplex_on_split_errors(self, code):
        """Two SEUs split across modules: simplex dies, duplex survives."""
        simplex = SimplexSystem(code, data=[9] * 16)
        simplex.apply_event(seu(0, 2, 0))
        simplex.apply_event(seu(0, 11, 6))
        duplex = DuplexSystem(code, data=[9] * 16)
        duplex.apply_event(seu(0, 2, 0))
        duplex.apply_event(seu(1, 11, 6))
        assert simplex.read().is_failure
        assert duplex.read() is ReadOutcome.CORRECT
