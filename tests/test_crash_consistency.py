"""SIGKILL crash consistency: a killed campaign must resume exactly.

Harder than the SIGINT test (``test_interrupt_resume.py``): SIGKILL
gives the process no chance to flush, close, or release anything — the
journal is whatever the kernel had durably accepted, possibly ending in
a torn line, with a stale ``.lock`` file left behind.  Resume must
truncate the tear, ignore the dead owner's lock, and still converge to
the bit-identical uninterrupted estimates.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

BASE_CMD = [
    sys.executable,
    "-m",
    "repro",
    "campaign",
    "--trials",
    "80",
    "--seed",
    "7",
    "--chunk-size",
    "20",
]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run(args, cwd, timeout=300):
    return subprocess.run(
        BASE_CMD + args,
        cwd=cwd,
        env=_env(),
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def _journal_chunks(path: Path) -> int:
    if not path.exists():
        return 0
    return sum(
        1 for line in path.read_text().splitlines() if '"kind": "chunk"' in line
    )


def _result_key(manifest_path: Path):
    doc = json.loads(manifest_path.read_text())
    return [
        (
            row["cell"],
            row["probability"],
            row["failures"],
            row["trials"],
            row["ci_low"],
            row["ci_high"],
            row["outcome_counts"],
        )
        for row in doc["results"]
    ]


@pytest.mark.chaos
class TestSigkillResume:
    def test_sigkill_mid_append_then_resume_is_bit_identical(self, tmp_path):
        journal = tmp_path / "run.jsonl"

        # Phase 1: campaign slowed so chunk appends are spread out;
        # SIGKILL it the instant a few chunks have landed — with luck
        # mid-append, which is exactly the torn-tail case the v2 format
        # must absorb.
        proc = subprocess.Popen(
            BASE_CMD
            + ["--checkpoint", str(journal), "--chaos", "slow@*:0.1"],
            cwd=tmp_path,
            env=_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60
            while _journal_chunks(journal) < 2:
                if time.monotonic() >= deadline:
                    raise AssertionError("campaign never journaled a chunk")
                if proc.poll() is not None:
                    raise AssertionError("campaign exited early")
                time.sleep(0.02)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        assert proc.returncode == -signal.SIGKILL
        killed_chunks = _journal_chunks(journal)
        assert 2 <= killed_chunks < 32  # mid-run, not complete
        # The dead process never released its lock file; resume must
        # not be blocked by it (flock dies with the holder).
        assert (tmp_path / "run.jsonl.lock").exists()

        # Phase 2: resume to completion over the possibly-torn journal.
        resumed = _run(
            ["--checkpoint", str(journal), "--manifest", "resumed.json"],
            cwd=tmp_path,
        )
        assert resumed.returncode == 0, resumed.stderr

        # Phase 3: uninterrupted reference with the same seed.
        reference = _run(["--manifest", "reference.json"], cwd=tmp_path)
        assert reference.returncode == 0, reference.stderr

        assert _result_key(tmp_path / "resumed.json") == _result_key(
            tmp_path / "reference.json"
        )
        resumed_doc = json.loads((tmp_path / "resumed.json").read_text())
        assert resumed_doc["resumed"] is True


@pytest.mark.chaos
class TestLockContentionCli:
    def test_second_campaign_exits_with_contention_code(self, tmp_path):
        from repro.runtime import LOCK_CONTENTION_EXIT_CODE, JournalLock

        journal = tmp_path / "run.jsonl"
        with JournalLock(journal):
            loser = _run(["--checkpoint", str(journal)], cwd=tmp_path)
        assert loser.returncode == LOCK_CONTENTION_EXIT_CODE
        assert "checkpoint locked" in loser.stderr
        # Once the lock is free the same command proceeds normally.
        winner = _run(["--checkpoint", str(journal)], cwd=tmp_path)
        assert winner.returncode == 0, winner.stderr


@pytest.mark.chaos
class TestJournalChaosCli:
    def test_enospc_exits_state_lost_with_results(self, tmp_path):
        from repro.runtime import STATE_LOST_EXIT_CODE

        out = _run(
            [
                "--checkpoint",
                str(tmp_path / "run.jsonl"),
                "--chaos",
                "enospc@2",
            ],
            cwd=tmp_path,
        )
        assert out.returncode == STATE_LOST_EXIT_CODE
        assert "journal degraded" in out.stderr
        assert "ENOSPC" in out.stderr
        # The campaign still completed and printed its verdicts.
        assert "cells consistent" in out.stdout
        assert "journal io errors" in out.stdout

    def test_bitrot_then_clean_resume_matches_reference(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        first = _run(
            ["--checkpoint", str(journal), "--chaos", "bitrot@3"],
            cwd=tmp_path,
        )
        assert first.returncode == 0, first.stderr

        resumed = _run(
            ["--checkpoint", str(journal), "--manifest", "resumed.json"],
            cwd=tmp_path,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "quarantined" in resumed.stderr

        reference = _run(["--manifest", "reference.json"], cwd=tmp_path)
        assert reference.returncode == 0, reference.stderr
        assert _result_key(tmp_path / "resumed.json") == _result_key(
            tmp_path / "reference.json"
        )
        resumed_doc = json.loads((tmp_path / "resumed.json").read_text())
        assert resumed_doc["counters"]["records_quarantined"] >= 1
