"""Property and golden tests for :mod:`repro.stats.intervals`.

The statistical claims the streaming/adaptive machinery leans on:

* both interval families produce bounds in [0, 1] that bracket the
  point estimate, with the documented edge conventions at k=0 and k=n;
* empirical coverage over seeded binomial ensembles is at least nominal
  on grid cells where the (oscillating) exact coverage clears nominal —
  including the degenerate p=0 and the extreme p~1e-9 regimes;
* interval width is monotone decreasing in n at fixed k/n;
* the from-scratch regularized incomplete beta matches scipy to near
  machine precision, including the log-domain a=0.5, b~1e6 regime;
* a golden table pins exact Wilson (z = 1.96, the repo's historical
  constant) and Jeffreys values so silent numeric drift fails loudly.

Coverage note: both Wilson and Jeffreys coverage *oscillates* around
nominal in (p, n) — guaranteed-above-nominal everywhere is a property
neither family has (Brown, Cai & DasGupta 2001).  The coverage grids
below were selected by computing the exact coverage sum over the
binomial pmf and keeping cells where it is >= 0.95, so the seeded
empirical check is testing a true property, not sampling luck.
"""

import math

import numpy as np
import pytest

from repro.stats import (
    binomial_interval,
    jeffreys_interval,
    regularized_incomplete_beta,
    regularized_incomplete_beta_inv,
    relative_halfwidth,
    wilson_interval,
    z_for_confidence,
)
from repro.stats.intervals import DEFAULT_Z, INTERVAL_METHODS

# --------------------------------------------------------------------------
# shape properties: bounds, bracketing, edge conventions
# --------------------------------------------------------------------------


def _cases(rng, count=300):
    for _ in range(count):
        n = int(rng.integers(1, 10_000))
        k = int(rng.integers(0, n + 1))
        yield k, n


@pytest.mark.parametrize("method", INTERVAL_METHODS)
def test_bounds_bracket_estimate(method):
    rng = np.random.default_rng(20260809)
    for k, n in _cases(rng):
        lo, hi = binomial_interval(k, n, method=method)
        assert 0.0 <= lo <= hi <= 1.0
        assert lo <= k / n <= hi


@pytest.mark.parametrize("method", INTERVAL_METHODS)
def test_edge_conventions(method):
    for n in (1, 7, 100, 10**6):
        lo0, hi0 = binomial_interval(0, n, method=method)
        assert lo0 == 0.0 and hi0 > 0.0
        lon, hin = binomial_interval(n, n, method=method)
        # Wilson's k=n upper limit is 1 only algebraically (the clamp
        # meets centre+half == 1 up to rounding); Jeffreys pins it.
        assert hin >= 1.0 - 1e-12 and lon < 1.0
    # Jeffreys pins the k=0 lower / k=n upper limits *exactly*; Wilson's
    # clamp happens to agree at k=0.
    assert jeffreys_interval(0, 50)[0] == 0.0
    assert jeffreys_interval(50, 50)[1] == 1.0


@pytest.mark.parametrize("method", INTERVAL_METHODS)
def test_rejects_degenerate_inputs(method):
    with pytest.raises(ValueError):
        binomial_interval(0, 0, method=method)
    with pytest.raises(ValueError):
        binomial_interval(0, -3, method=method)


def test_unknown_method_rejected():
    with pytest.raises(ValueError, match="unknown interval method"):
        binomial_interval(1, 10, method="clopper")


# --------------------------------------------------------------------------
# empirical coverage over seeded ensembles
# --------------------------------------------------------------------------

#: (p, n) cells whose *exact* coverage (pmf-weighted) is >= 0.95 for the
#: given family; the seeded empirical run must then land >= nominal too
#: (up to a 0.005 resampling slack at 4000 reps).
_COVERAGE_GRID = {
    "wilson": [(0.1, 200), (0.02, 500), (0.01, 1000), (0.3, 75), (0.9, 120)],
    "jeffreys": [(0.1, 100), (0.3, 75), (0.9, 120), (1e-3, 2000)],
}


def _empirical_coverage(method, p, n, reps=4000, seed=0, confidence=0.95):
    rng = np.random.default_rng(seed)
    ks, counts = np.unique(rng.binomial(n, p, size=reps), return_counts=True)
    covered = 0
    for k, c in zip(ks, counts):
        lo, hi = binomial_interval(
            int(k), n, method=method, confidence=confidence
        )
        if lo <= p <= hi:
            covered += int(c)
    return covered / reps


@pytest.mark.parametrize("method", INTERVAL_METHODS)
def test_empirical_coverage_at_least_nominal(method):
    for p, n in _COVERAGE_GRID[method]:
        cov = _empirical_coverage(method, p, n, seed=42)
        assert cov >= 0.95 - 0.005, (method, p, n, cov)


@pytest.mark.parametrize("method", INTERVAL_METHODS)
def test_coverage_degenerate_and_extreme_p(method):
    # p = 0: k is always 0, the lower limit is pinned to 0 -> coverage 1.
    assert _empirical_coverage(method, 0.0, 100, seed=1) == 1.0
    # p ~ 1e-9 with n = 1000: k = 0 in every rep, and the k=0 upper limit
    # (~1e-3) easily covers the true p -> coverage 1.  This is the BER
    # regime the paper's memories live in.
    assert _empirical_coverage(method, 1e-9, 1000, seed=2) == 1.0


def test_exact_coverage_cross_check_scipy():
    """The grid's exact (pmf-weighted) coverage really is >= nominal."""
    scipy_stats = pytest.importorskip("scipy.stats")
    for method, grid in _COVERAGE_GRID.items():
        for p, n in grid:
            ks = np.arange(n + 1)
            pmf = scipy_stats.binom.pmf(ks, n, p)
            cov = sum(
                pmf[k]
                for k in ks
                if (lambda b: b[0] <= p <= b[1])(
                    binomial_interval(int(k), n, method=method)
                )
            )
            assert cov >= 0.95, (method, p, n, cov)


# --------------------------------------------------------------------------
# monotonicity in n
# --------------------------------------------------------------------------


@pytest.mark.parametrize("method", INTERVAL_METHODS)
@pytest.mark.parametrize("rate", [0.5, 0.1, 0.01])
def test_width_monotone_decreasing_in_n(method, rate):
    widths = []
    for n in (100, 400, 1600, 6400, 25600):
        k = int(round(rate * n))
        lo, hi = binomial_interval(k, n, method=method)
        widths.append(hi - lo)
    assert all(a > b for a, b in zip(widths, widths[1:])), widths


@pytest.mark.parametrize("method", INTERVAL_METHODS)
def test_zero_failure_upper_limit_shrinks_with_n(method):
    uppers = [
        binomial_interval(0, n, method=method)[1]
        for n in (10, 100, 1000, 10**6, 10**9)
    ]
    assert all(a > b for a, b in zip(uppers, uppers[1:])), uppers
    # and stays strictly positive even at n = 1e9 (no underflow to a
    # degenerate [0, 0] interval)
    assert uppers[-1] > 0.0


# --------------------------------------------------------------------------
# regularized incomplete beta vs scipy
# --------------------------------------------------------------------------


def test_betainc_matches_scipy():
    scipy_special = pytest.importorskip("scipy.special")
    rng = np.random.default_rng(7)
    worst = 0.0
    for _ in range(400):
        a = float(10.0 ** rng.uniform(-1, 5))
        b = float(10.0 ** rng.uniform(-1, 5))
        x = float(rng.uniform(0.0, 1.0))
        ours = regularized_incomplete_beta(a, b, x)
        ref = float(scipy_special.betainc(a, b, x))
        worst = max(worst, abs(ours - ref))
    assert worst < 1e-10, worst


def test_betainc_log_domain_extreme_regime():
    """a = 0.5, b ~ 1e6: the Jeffreys-at-tiny-BER parameterisation."""
    scipy_special = pytest.importorskip("scipy.special")
    a, b = 0.5, 1e6 + 0.5
    for x in (1e-12, 1e-9, 1e-7, 1e-6):
        ours = regularized_incomplete_beta(a, b, x)
        ref = float(scipy_special.betainc(a, b, x))
        assert ours == pytest.approx(ref, rel=1e-9), (x, ours, ref)
        assert ours > 0.0  # no premature underflow


def test_betainc_inverse_round_trip():
    rng = np.random.default_rng(11)
    for _ in range(200):
        a = float(10.0 ** rng.uniform(-1, 4))
        b = float(10.0 ** rng.uniform(-1, 4))
        q = float(rng.uniform(1e-6, 1.0 - 1e-6))
        x = regularized_incomplete_beta_inv(a, b, q)
        # x is resolved to the last double, but dq/dx grows like sqrt(n)
        # for sharp posteriors, so the round-trip tolerance is in q-space
        assert regularized_incomplete_beta(a, b, x) == pytest.approx(
            q, abs=1e-6
        )


def test_betainc_inverse_matches_scipy_quantiles():
    scipy_special = pytest.importorskip("scipy.special")
    # Moderate parameters: near machine-precision agreement.  (At
    # pathological scales like b ~ 1e12 scipy's own betaincinv drifts to
    # ~1e-4 relative of this implementation — both are at the precision
    # frontier there, so that regime is pinned by the round-trip test
    # above rather than by cross-checking two frontier approximations.)
    for a, b, q in [
        (0.5, 99.5, 0.025),
        (0.5, 99.5, 0.975),
        (3.5, 996.5, 0.025),
        (10.5, 10.5, 0.5),
        (0.5, 1e6 + 0.5, 0.975),
    ]:
        ours = regularized_incomplete_beta_inv(a, b, q)
        ref = float(scipy_special.betaincinv(a, b, q))
        assert ours == pytest.approx(ref, rel=1e-8), (a, b, q, ours, ref)


# --------------------------------------------------------------------------
# golden table + helpers
# --------------------------------------------------------------------------

#: Pinned outputs.  Wilson values are exact closed-form evaluations at
#: the repo's historical z = 1.96; Jeffreys values were computed by this
#: implementation and cross-validated against scipy.stats.beta.ppf to
#: < 1e-10 relative before pinning.
_GOLDEN = [
    ("wilson", 0, 100, 0.0, 0.03699480747600191),
    ("wilson", 5, 100, 0.02154336145631356, 0.11175196527208817),
    ("wilson", 50, 100, 0.40382982859014716, 0.5961701714098528),
    ("wilson", 3, 10**6, 1.0202527766968218e-06, 8.82130941595786e-06),
    ("jeffreys", 0, 100, 0.0, 0.024745270015269452),
    ("jeffreys", 5, 100, 0.019331811985866844, 0.10610007388310266),
    ("jeffreys", 50, 100, 0.40317395089641783, 0.5968260491035822),
    ("jeffreys", 3, 10**6, 8.449352892800974e-07, 8.006360095479223e-06),
]


@pytest.mark.parametrize("method,k,n,lo,hi", _GOLDEN)
def test_golden_table(method, k, n, lo, hi):
    got_lo, got_hi = binomial_interval(k, n, method=method)
    assert got_lo == pytest.approx(lo, rel=1e-12, abs=1e-15)
    assert got_hi == pytest.approx(hi, rel=1e-12, abs=1e-15)


def test_wilson_moved_not_changed():
    """The repo-pinned z stays the rounded 1.96 used since the seed."""
    assert DEFAULT_Z == 1.96
    # and z_for_confidence gives the *unrounded* quantile, distinct
    # from the pinned constant
    assert z_for_confidence(0.95) == pytest.approx(1.959963984540054)
    assert z_for_confidence(0.95) != DEFAULT_Z


def test_relative_halfwidth_conventions():
    lo, hi = wilson_interval(10, 1000)
    rel = relative_halfwidth(10, 1000, lo, hi)
    assert rel == (hi - lo) / (2 * 0.01)
    assert math.isinf(relative_halfwidth(0, 1000, 0.0, 0.004))
    with pytest.raises(ValueError):
        relative_halfwidth(0, 0, 0.0, 1.0)
