"""Tests for the fuzz loop, shrinker, and artifact replay machinery.

The acceptance-critical behaviours live here: same seed produces the
same trial sequence; an induced-bug run detects, shrinks to a minimal
repro, writes a JSON artifact, and replay reproduces the mismatch; the
artifact loader rejects malformed payloads.
"""

import json

import pytest

from repro.verify import (
    ARTIFACT_SCHEMA,
    fuzz_all_targets,
    fuzz_target,
    get_target,
    load_artifact,
    make_corpus_case,
    replay_artifact,
    shrink_case,
    write_artifact,
)
from repro.verify.harness import artifact_from_report


class TestDeterminism:
    def test_same_seed_same_trial_sequence(self):
        """Same seed => identical generated cases, trial by trial."""
        target = get_target("gf-mul")
        from repro.verify import case_rng

        first = [target.generate(case_rng(777, i)) for i in range(25)]
        second = [target.generate(case_rng(777, i)) for i in range(25)]
        assert first == second

    def test_trial_budget_run_is_reproducible(self):
        a = fuzz_target("gf-mul", seed=31, max_trials=30)
        b = fuzz_target("gf-mul", seed=31, max_trials=30)
        assert a.trials == b.trials == 30
        assert not a.failed and not b.failed

    def test_induced_failure_is_deterministic(self):
        a = fuzz_target("rs-decode", seed=5, max_trials=50, induce_bug=True)
        b = fuzz_target("rs-decode", seed=5, max_trials=50, induce_bug=True)
        assert a.failed and b.failed
        assert a.failing_trial == b.failing_trial
        assert a.case == b.case
        assert a.shrunk_case == b.shrunk_case

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            fuzz_target("gf-mul", seed=1)


class TestInducedPipeline:
    """detect -> shrink -> artifact -> replay, end to end."""

    def test_full_pipeline(self, tmp_path):
        report = fuzz_target(
            "rs-decode",
            seed=2005,
            max_trials=50,
            artifact_dir=tmp_path,
            induce_bug=True,
        )
        assert report.failed
        assert report.induced
        assert report.shrunk_case is not None
        assert report.artifact_path is not None
        # the shrunk case is no larger than the original
        orig = json.dumps(report.case)
        shrunk = json.dumps(report.shrunk_case)
        assert len(shrunk) <= len(orig)

        result = replay_artifact(report.artifact_path)
        assert result.expected_failure
        assert result.reproduced
        assert result.as_recorded
        assert "reproduced" in result.summary()

    def test_shrunk_case_is_minimal_for_induced_bug(self):
        """The induced rs-decode bug depends only on one odd magnitude,
        so greedy shrinking must strip the case to a single fault."""
        report = fuzz_target(
            "rs-decode", seed=2005, max_trials=50, induce_bug=True
        )
        shrunk = report.shrunk_case
        faults = len(shrunk["error_positions"]) + len(
            shrunk["erasure_positions"]
        )
        assert faults == 1
        assert all(s == 0 for s in shrunk["data"])

    def test_replay_original_case_too(self, tmp_path):
        report = fuzz_target(
            "rs-decode",
            seed=11,
            max_trials=50,
            artifact_dir=tmp_path,
            induce_bug=True,
        )
        result = replay_artifact(report.artifact_path, use_shrunk=False)
        assert result.as_recorded

    def test_shrink_requires_failing_case(self):
        target = get_target("gf-mul")
        from repro.verify import case_rng

        healthy = target.generate(case_rng(1, 0))
        with pytest.raises(ValueError):
            shrink_case(target, healthy)


class TestFuzzAllTargets:
    def test_covers_every_target_once(self):
        reports = fuzz_all_targets(seed=3, budget_seconds=0.35)
        names = [r.target for r in reports]
        assert names == sorted(names)
        assert len(names) == len(set(names)) >= 6


class TestArtifacts:
    def test_artifact_roundtrip_schema(self, tmp_path):
        report = fuzz_target(
            "markov-transient", seed=2, max_trials=30, induce_bug=True
        )
        assert report.failed
        path = write_artifact(report, tmp_path)
        payload = load_artifact(path)
        assert payload["schema"] == ARTIFACT_SCHEMA
        assert payload["kind"] == "verify-failure"
        assert payload["target"] == "markov-transient"
        assert payload["induced"] is True
        assert "case" in payload and "shrunk_case" in payload
        # the file itself is deterministic-friendly: sorted keys
        text = path.read_text()
        assert json.loads(text) == payload

    def test_artifact_requires_failure(self):
        report = fuzz_target("gf-mul", seed=1, max_trials=3)
        assert not report.failed
        with pytest.raises(ValueError):
            artifact_from_report(report)

    @pytest.mark.parametrize(
        "breakage",
        [
            {"kind": "something-else"},
            {"schema": 999},
            {"target": None},
            {"case": None},
        ],
    )
    def test_load_rejects_malformed(self, tmp_path, breakage):
        report = fuzz_target(
            "gf-mul", seed=4, max_trials=20, induce_bug=True
        )
        payload = artifact_from_report(report)
        for key, value in breakage.items():
            if value is None:
                del payload[key]
            else:
                payload[key] = value
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_artifact(bad)

    def test_load_rejects_non_object(self, tmp_path):
        bad = tmp_path / "list.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            load_artifact(bad)

    def test_corpus_case_roundtrip(self, tmp_path):
        target = get_target("gf-mul")
        from repro.verify import case_rng

        case = target.generate(case_rng(8, 0))
        payload = make_corpus_case(target, case, "round-trip test")
        path = tmp_path / "case.json"
        path.write_text(json.dumps(payload))
        result = replay_artifact(path)
        assert not result.expected_failure
        assert not result.reproduced
        assert result.as_recorded

    def test_corpus_case_rejects_failing_case(self):
        target = get_target("rs-decode")
        from repro.verify import case_rng

        case = None
        for trial in range(20):
            candidate = target.generate(case_rng(6, trial))
            if target.induced_check(candidate) is not None:
                case = candidate
                break
        assert case is not None
        import dataclasses

        broken = dataclasses.replace(target, check=target.induced_check)
        with pytest.raises(ValueError):
            make_corpus_case(broken, case, "should not be committable")


class TestObservability:
    def test_metrics_counters_bump(self):
        from repro.obs import metrics

        registry = metrics.get_registry()
        before = registry.counter("repro.verify.trials").value
        fuzz_target("gf-mul", seed=21, max_trials=7)
        after = registry.counter("repro.verify.trials").value
        assert after - before == 7
