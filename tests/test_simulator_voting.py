"""Tests for the NMR voter system and its Monte-Carlo estimator."""

import numpy as np
import pytest

from repro.memory import nmr_read_unreliability
from repro.memory.rates import FaultRates
from repro.rs import RSCode
from repro.simulator import (
    FaultEvent,
    FaultKind,
    NMRSystem,
    ReadOutcome,
    simulate_nmr_read_unreliability,
)


@pytest.fixture(scope="module")
def code():
    return RSCode(18, 16, m=8)


def seu(module, symbol, bit):
    return FaultEvent(1.0, FaultKind.SEU, module, symbol, bit)


def stuck(module, symbol, bit, value):
    return FaultEvent(1.0, FaultKind.PERMANENT, module, symbol, bit, value)


class TestNMRSystem:
    def test_needs_at_least_one_module(self, code):
        with pytest.raises(ValueError):
            NMRSystem(code, 0)

    def test_clean_read(self, code):
        system = NMRSystem(code, 3, data=[5] * 16)
        assert system.read() is ReadOutcome.CORRECT

    def test_tmr_outvotes_single_replica_error(self, code):
        system = NMRSystem(code, 3, data=[5] * 16)
        # one symbol corrupted in ONE replica: plurality heals it before
        # the decoder even sees it
        system.apply_event(seu(0, 4, 2))
        voted, erasures = system.vote()
        assert voted == code.encode(system.data)
        assert erasures == []

    def test_tmr_survives_many_spread_errors(self, code):
        """Errors on distinct symbols across replicas all vote away -
        far beyond the bare code's t = 1."""
        system = NMRSystem(code, 3, data=[5] * 16)
        for module, symbol in [(0, 1), (1, 5), (2, 9), (0, 13), (1, 17)]:
            system.apply_event(seu(module, symbol, 3))
        assert system.read() is ReadOutcome.CORRECT

    def test_two_replica_agreeing_error_position_overwhelms_vote(self, code):
        system = NMRSystem(code, 3, data=[5] * 16)
        # same symbol errored in 2/3 replicas with DIFFERENT wrong values:
        # correct multiplicity 1 <= 1 -> tie among three distinct values
        system.apply_event(seu(0, 4, 2))
        system.apply_event(seu(1, 4, 6))
        voted, _ = system.vote()
        # tie-break picks min value; whatever it picks, the decoder sees at
        # most one error and still corrects the word
        assert system.read() is ReadOutcome.CORRECT

    def test_all_replicas_erased_becomes_decoder_erasure(self, code):
        system = NMRSystem(code, 3, data=[5] * 16)
        cw = code.encode(system.data)
        for module in range(3):
            system.apply_event(stuck(module, 7, 0, 1 - (cw[7] & 1)))
        _voted, erasures = system.vote()
        assert erasures == [7]
        assert system.read() is ReadOutcome.CORRECT  # 1 erasure <= n-k

    def test_erased_replicas_excluded_from_vote(self, code):
        system = NMRSystem(code, 3, data=[5] * 16)
        cw = code.encode(system.data)
        system.apply_event(stuck(0, 2, 0, 1 - (cw[2] & 1)))
        system.apply_event(stuck(1, 2, 3, 1 - ((cw[2] >> 3) & 1)))
        voted, erasures = system.vote()
        assert erasures == []
        assert voted[2] == cw[2]  # the surviving replica wins alone

    def test_scrub_rewrites_all_replicas(self, code):
        system = NMRSystem(code, 3, data=[5] * 16)
        system.apply_event(seu(0, 3, 1))
        system.apply_event(seu(1, 8, 7))
        assert system.scrub()
        cw = code.encode(system.data)
        for module in system.modules:
            assert module.read() == cw

    def test_scrub_event_routing(self, code):
        system = NMRSystem(code, 2, data=[5] * 16)
        system.apply_event(seu(0, 3, 1))
        system.apply_event(FaultEvent(2.0, FaultKind.SCRUB))
        assert system.modules[0].read() == code.encode(system.data)


class TestMonteCarloAgreement:
    def test_tmr_matches_closed_form(self, code):
        rates = FaultRates.from_paper_units(
            seu_per_bit_day=2e-3, erasure_per_symbol_day=5e-3
        )
        closed = nmr_read_unreliability(18, 16, 3, rates, [48.0])[0]
        est = simulate_nmr_read_unreliability(
            code,
            3,
            48.0,
            seu_per_bit=rates.seu_per_bit,
            erasure_per_symbol=rates.erasure_per_symbol,
            trials=1500,
            rng=np.random.default_rng(9),
        )
        assert est.consistent_with(closed) or abs(
            est.probability - closed
        ) < 0.01

    def test_single_module_matches_closed_form(self, code):
        rates = FaultRates.from_paper_units(seu_per_bit_day=3e-3)
        closed = nmr_read_unreliability(18, 16, 1, rates, [48.0])[0]
        est = simulate_nmr_read_unreliability(
            code,
            1,
            48.0,
            seu_per_bit=rates.seu_per_bit,
            erasure_per_symbol=0.0,
            trials=1200,
            rng=np.random.default_rng(10),
        )
        assert est.consistent_with(closed)

    def test_even_n_closed_form_is_conservative(self, code):
        """Ties: the analysis counts every tie as an error; the physical
        tie-break rescues about half, so closed >= measured for N=2."""
        rates = FaultRates.from_paper_units(seu_per_bit_day=2e-3)
        closed = nmr_read_unreliability(18, 16, 2, rates, [48.0])[0]
        est = simulate_nmr_read_unreliability(
            code,
            2,
            48.0,
            seu_per_bit=rates.seu_per_bit,
            erasure_per_symbol=0.0,
            trials=800,
            rng=np.random.default_rng(11),
        )
        assert est.probability <= closed
