"""Supervisor behaviour under injected crashes, hangs, and poison.

The resilience contract: any campaign that completes — with retries,
pool restarts, or engine fallbacks along the way — yields exactly the
result an undisturbed run would have produced, except for chunks that
were *persistently* un-runnable on the batch engine, which degrade to
the deterministic scalar reference executor.
"""

import warnings

import pytest

from repro.perf import PerfCounters
from repro.rs import RSCode
from repro.runtime import (
    ChunkFailedError,
    ChunkSupervisor,
    ResilienceWarning,
    RetryPolicy,
    RuntimeConfig,
    parse_chaos_spec,
)
from repro.simulator import (
    chunk_sizes,
    simulate_fail_probability_batched,
    spawn_chunk_seeds,
)
from repro.simulator.montecarlo import _run_scalar_chunk, wilson_interval
from repro.simulator.systems import ReadOutcome

CODE = RSCode(18, 16, m=8)
LAM = 2e-3 / 24.0

FAST_RETRY = RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05)


def batched(runtime=None, counters=None, workers=1, **kw):
    kw.setdefault("trials", 300)
    kw.setdefault("seed", 17)
    kw.setdefault("chunk_size", 75)
    return simulate_fail_probability_batched(
        "simplex", CODE, 48.0, LAM, 0.0,
        runtime=runtime, counters=counters, workers=workers, **kw
    )


def scalar_reference(trials=300, seed=17, chunk_size=75):
    """The estimate a fully scalar-degraded run must produce."""
    sizes = chunk_sizes(trials, chunk_size)
    seeds = spawn_chunk_seeds(seed, len(sizes))
    failures = 0
    counts = {outcome.value: 0 for outcome in ReadOutcome}
    for size, seed_seq in zip(sizes, seeds):
        res = _run_scalar_chunk(
            ("simplex", 18, 16, 8, 1, 48.0, LAM, 0.0, None, False, size, seed_seq,
             None, None)
        )
        failures += res["failures"]
        for key, value in res["counts"].items():
            counts[key] += value
    return failures, counts


REFERENCE = batched()


class TestSerialResilience:
    def test_transient_crash_retries_to_identical_result(self):
        counters = PerfCounters()
        runtime = RuntimeConfig(
            retry=FAST_RETRY, chaos=parse_chaos_spec("crash@1")
        )
        estimate = batched(runtime=runtime, counters=counters)
        assert estimate == REFERENCE
        assert counters.retries == 1
        assert counters.chunk_failures == 1
        assert counters.engine_fallbacks == 0

    def test_poisoned_chunk_degrades_to_scalar_engine(self):
        counters = PerfCounters()
        runtime = RuntimeConfig(
            retry=FAST_RETRY, chaos=parse_chaos_spec("poison@2")
        )
        with pytest.warns(ResilienceWarning, match="scalar"):
            estimate = batched(runtime=runtime, counters=counters)
        assert counters.engine_fallbacks == 1
        assert counters.chunk_failures == FAST_RETRY.max_attempts
        # The degraded chunk ran the deterministic scalar executor with
        # the same spawned seed: reconstruct the expected estimate.
        sizes = chunk_sizes(300, 75)
        seeds = spawn_chunk_seeds(17, len(sizes))
        scalar_res = _run_scalar_chunk(
            ("simplex", 18, 16, 8, 1, 48.0, LAM, 0.0, None, False,
             sizes[2], seeds[2], None, None)
        )
        expected_failures = (
            REFERENCE.failures - _chunk_failures(2) + scalar_res["failures"]
        )
        assert estimate.failures == expected_failures
        assert estimate.trials == 300
        low, high = wilson_interval(expected_failures, 300)
        assert (estimate.ci_low, estimate.ci_high) == (low, high)

    def test_poison_everywhere_matches_full_scalar_reference(self):
        counters = PerfCounters()
        runtime = RuntimeConfig(
            retry=FAST_RETRY, chaos=parse_chaos_spec("poison@*")
        )
        with pytest.warns(ResilienceWarning):
            estimate = batched(runtime=runtime, counters=counters)
        failures, counts = scalar_reference()
        assert estimate.failures == failures
        assert estimate.outcome_counts == counts
        assert counters.engine_fallbacks == 4

    def test_fallbackless_chunk_failure_raises(self):
        supervisor = ChunkSupervisor(retry=FAST_RETRY)
        with pytest.raises(ChunkFailedError, match="no fallback"):
            supervisor.run([(0, ())], primary=_always_fails, fallback=None)

    def test_failing_fallback_raises_chunk_failed(self):
        supervisor = ChunkSupervisor(retry=FAST_RETRY)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ResilienceWarning)
            with pytest.raises(ChunkFailedError, match="fallback engine too"):
                supervisor.run(
                    [(0, ())], primary=_always_fails, fallback=_always_fails
                )

    def test_events_are_recorded(self):
        runtime = RuntimeConfig(
            retry=FAST_RETRY, chaos=parse_chaos_spec("crash@0")
        )
        batched(runtime=runtime)
        kinds = [event.kind for event in runtime.events]
        assert "retry" in kinds


def _chunk_failures(index, trials=300, seed=17, chunk_size=75):
    """Failures chunk ``index`` contributes to the undisturbed batch run."""
    from repro.simulator.montecarlo import _run_injection_chunk

    sizes = chunk_sizes(trials, chunk_size)
    seeds = spawn_chunk_seeds(seed, len(sizes))
    res = _run_injection_chunk(
        ("simplex", 18, 16, 8, 1, 48.0, LAM, 0.0, None, False,
         sizes[index], seeds[index], None, None)
    )
    return res["failures"]


def _always_fails(_args):
    raise RuntimeError("boom")


@pytest.mark.chaos
class TestPooledResilience:
    def test_worker_crash_is_retried_to_identical_result(self):
        counters = PerfCounters()
        runtime = RuntimeConfig(
            retry=RetryPolicy(max_attempts=3, base_delay=0.01),
            chaos=parse_chaos_spec("crash@1"),
        )
        estimate = batched(runtime=runtime, counters=counters, workers=2)
        assert estimate == REFERENCE
        assert counters.worker_crashes >= 1
        assert counters.pool_restarts >= 1
        assert counters.retries >= 1
        assert counters.engine_fallbacks == 0

    def test_hung_worker_is_timed_out_and_retried(self):
        counters = PerfCounters()
        runtime = RuntimeConfig(
            retry=RetryPolicy(max_attempts=3, base_delay=0.01),
            chunk_timeout=2.0,
            chaos=parse_chaos_spec("hang@2:60"),
        )
        estimate = batched(runtime=runtime, counters=counters, workers=2)
        assert estimate == REFERENCE
        assert counters.chunk_timeouts == 1
        assert counters.pool_restarts >= 1
        assert counters.engine_fallbacks == 0

    def test_dying_pool_degrades_to_serial_and_completes(self):
        counters = PerfCounters()
        runtime = RuntimeConfig(
            retry=RetryPolicy(
                max_attempts=2, base_delay=0.01, max_pool_restarts=2
            ),
            chaos=parse_chaos_spec("crash@*:-1"),
        )
        with pytest.warns(ResilienceWarning, match="serial"):
            estimate = batched(runtime=runtime, counters=counters, workers=2)
        # Crashes persist in-process too (as ChaosCrashError), so every
        # remaining chunk must have ended on the scalar fallback — and
        # the run still completes with the full trial count.
        assert counters.serial_fallbacks == 1
        assert counters.pool_restarts == 2
        assert counters.engine_fallbacks >= 1
        assert estimate.trials == 300
        assert sum(estimate.outcome_counts.values()) == 300

    def test_poisoned_chunk_in_pool_degrades_only_that_chunk(self):
        counters = PerfCounters()
        runtime = RuntimeConfig(
            retry=FAST_RETRY, chaos=parse_chaos_spec("poison@0")
        )
        with pytest.warns(ResilienceWarning, match="scalar"):
            estimate = batched(runtime=runtime, counters=counters, workers=2)
        assert counters.engine_fallbacks == 1
        sizes = chunk_sizes(300, 75)
        seeds = spawn_chunk_seeds(17, len(sizes))
        scalar_res = _run_scalar_chunk(
            ("simplex", 18, 16, 8, 1, 48.0, LAM, 0.0, None, False,
             sizes[0], seeds[0], None, None)
        )
        expected = REFERENCE.failures - _chunk_failures(0) + scalar_res["failures"]
        assert estimate.failures == expected
