"""Property tests for the per-field GF table codegen (`rs.backends.gf_tables`).

The compiled backend's correctness rests on two generated artifacts:
exp/log gather tables and bit-sliced multiplication planes.  Both are
checked here against :func:`repro.verify.oracles.gf_mul_reference` — the
table-free carry-less multiplier that shares no code with the production
field — exhaustively for GF(2^4) and on a seeded sample for GF(2^8).

The bit-sliced product is linear in each argument *by construction*
(XOR of one plane per set bit; planes are the constant times fixed basis
elements).  The linearity tests pin that structure directly, because it
is the exact property the jitted kernels' branch-free masked-XOR inner
loop relies on.
"""

import numpy as np
import pytest

from repro.gf.field import DEFAULT_PRIMITIVE_POLYNOMIALS
from repro.rs.backends.gf_tables import (
    TABLE_DTYPE,
    bitsliced_mul,
    field_tables,
    mul_planes,
)
from repro.verify.oracles import gf_mul_reference

SEED = 20050309


def _sampled_pairs(m, count, seed=SEED):
    rng = np.random.default_rng(seed)
    order = 1 << m
    return zip(
        rng.integers(0, order, size=count).tolist(),
        rng.integers(0, order, size=count).tolist(),
    )


class TestFieldTables:
    def test_m4_exhaustive_against_reference(self):
        exp, log = field_tables(4)
        for a in range(1, 16):
            for b in range(1, 16):
                assert exp[log[a] + log[b]] == gf_mul_reference(4, a, b)

    def test_m8_sampled_against_reference(self):
        exp, log = field_tables(8)
        for a, b in _sampled_pairs(8, 2000):
            if a and b:
                assert exp[log[a] + log[b]] == gf_mul_reference(8, a, b)

    def test_tables_shapes_and_dtype(self):
        for m in (4, 8):
            exp, log = field_tables(m)
            order = 1 << m
            assert exp.shape == (2 * order,) and exp.dtype == TABLE_DTYPE
            assert log.shape == (order,) and log.dtype == TABLE_DTYPE

    def test_tables_are_read_only_and_cached(self):
        exp, log = field_tables(8)
        assert field_tables(8)[0] is exp  # lru_cache: same object
        with pytest.raises(ValueError):
            exp[0] = 1
        with pytest.raises(ValueError):
            log[0] = 1

    def test_doubled_exp_table_wraps(self):
        """The doubled table makes ``log[a] + log[b]`` gather-safe."""
        exp, _log = field_tables(4)
        period = (1 << 4) - 1
        assert np.array_equal(exp[:period], exp[period : 2 * period])


class TestMulPlanes:
    def test_plane_values_match_reference_m4(self):
        """Exhaustive: planes[j, i] must equal c_j * x^i."""
        constants = list(range(16))
        planes = mul_planes(constants, 4)
        assert planes.shape == (16, 4)
        for j, c in enumerate(constants):
            for i in range(4):
                assert planes[j, i] == gf_mul_reference(4, c, 1 << i)

    def test_plane_values_match_reference_m8_sampled(self):
        rng = np.random.default_rng(SEED)
        constants = rng.integers(0, 256, size=64).tolist()
        planes = mul_planes(constants, 8)
        for j, c in enumerate(constants):
            for i in range(8):
                assert planes[j, i] == gf_mul_reference(8, c, 1 << i)

    def test_planes_linear_in_the_constant(self):
        """mul_planes(c1 ^ c2) == mul_planes(c1) ^ mul_planes(c2)."""
        for m in (4, 8):
            rng = np.random.default_rng(SEED + m)
            order = 1 << m
            c1 = rng.integers(0, order, size=32)
            c2 = rng.integers(0, order, size=32)
            assert np.array_equal(
                mul_planes(c1 ^ c2, m),
                mul_planes(c1, m) ^ mul_planes(c2, m),
            )

    def test_rejects_out_of_field_constants(self):
        with pytest.raises(ValueError):
            mul_planes([16], 4)
        with pytest.raises(ValueError):
            mul_planes([-1], 8)

    def test_custom_primitive_polynomial(self):
        """Codegen honors a non-default modulus for the same field width."""
        prim = 0x12B  # primitive for GF(2^8), unlike the 0x11D default
        assert prim != DEFAULT_PRIMITIVE_POLYNOMIALS[8]
        planes = mul_planes([7], 8, prim)
        for i in range(8):
            assert planes[0, i] == gf_mul_reference(8, 7, 1 << i, prim)


class TestBitslicedMul:
    def test_m4_exhaustive_against_reference(self):
        """Every (a, c) pair in GF(2^4) through the masked-XOR walk."""
        all_a = np.arange(16)
        planes = mul_planes(np.arange(16), 4)
        for c in range(16):
            got = bitsliced_mul(all_a, planes[c])
            want = [gf_mul_reference(4, int(a), c) for a in all_a]
            assert got.tolist() == want

    def test_m8_sampled_against_reference(self):
        rng = np.random.default_rng(SEED)
        constants = rng.integers(0, 256, size=48).tolist()
        planes = mul_planes(constants, 8)
        a = rng.integers(0, 256, size=256)
        for j, c in enumerate(constants):
            got = bitsliced_mul(a, planes[j])
            want = [gf_mul_reference(8, int(x), c) for x in a]
            assert got.tolist() == want

    def test_linear_in_the_variable_argument(self):
        """bitsliced_mul(a ^ b, c) == bitsliced_mul(a, c) ^ bitsliced_mul(b, c)."""
        for m in (4, 8):
            rng = np.random.default_rng(SEED + m)
            order = 1 << m
            planes = mul_planes(rng.integers(0, order, size=8), m)
            a = rng.integers(0, order, size=128)
            b = rng.integers(0, order, size=128)
            for row in planes:
                assert np.array_equal(
                    bitsliced_mul(a ^ b, row),
                    bitsliced_mul(a, row) ^ bitsliced_mul(b, row),
                )

    def test_linear_in_the_constant_argument(self):
        """Products by c1 ^ c2 equal the XOR of products by c1 and c2."""
        for m in (4, 8):
            rng = np.random.default_rng(SEED - m)
            order = 1 << m
            c1 = int(rng.integers(1, order))
            c2 = int(rng.integers(1, order))
            a = rng.integers(0, order, size=256)
            combined = bitsliced_mul(a, mul_planes([c1 ^ c2], m)[0])
            split = bitsliced_mul(a, mul_planes([c1], m)[0]) ^ bitsliced_mul(
                a, mul_planes([c2], m)[0]
            )
            assert np.array_equal(combined, split)

    def test_zero_and_one_are_absorbing_and_neutral(self):
        for m in (4, 8):
            order = 1 << m
            a = np.arange(order)
            assert not bitsliced_mul(a, mul_planes([0], m)[0]).any()
            assert np.array_equal(
                bitsliced_mul(a, mul_planes([1], m)[0]), a
            )

    def test_matches_table_gather_product_m8(self):
        """Bit-sliced and exp/log-gather multiplies are bit-identical."""
        exp, log = field_tables(8)
        rng = np.random.default_rng(SEED)
        a = rng.integers(1, 256, size=512)
        c = int(rng.integers(1, 256))
        gathered = exp[log[a] + log[c]]
        assert np.array_equal(
            bitsliced_mul(a, mul_planes([c], 8)[0]), gathered
        )
