"""Unit tests for the closed-form no-scrub solvers."""

import math

import numpy as np
import pytest

from repro.memory import duplex_model, simplex_model
from repro.memory.analytic import (
    AnalyticScopeError,
    _binomial_tail,
    duplex_ber,
    duplex_fail_probability,
    simplex_ber,
    simplex_fail_probability,
)


class TestBinomialTail:
    def test_trivial_cases(self):
        assert _binomial_tail(10, 0.5, 10) == 0.0
        assert _binomial_tail(10, 0.5, -1) == 1.0
        assert _binomial_tail(10, 0.0, 3) == 0.0
        assert _binomial_tail(10, 1.0, 3) == 1.0

    def test_matches_direct_sum(self):
        n, p, k = 12, 0.3, 4
        direct = sum(
            math.comb(n, j) * p**j * (1 - p) ** (n - j) for j in range(k + 1, n + 1)
        )
        assert _binomial_tail(n, p, k) == pytest.approx(direct, rel=1e-12)

    def test_deep_tail_positive(self):
        value = _binomial_tail(18, 1e-12, 2)
        # ~ C(18,3) * 1e-36
        assert value == pytest.approx(math.comb(18, 3) * 1e-36, rel=1e-6)


class TestScope:
    def test_scrubbing_out_of_scope(self):
        m = simplex_model(18, 16, seu_per_bit_day=1e-5, scrub_period_seconds=900)
        with pytest.raises(AnalyticScopeError, match="scrubbing"):
            simplex_fail_probability(m, [1.0])

    def test_mixed_faults_out_of_scope(self):
        m = simplex_model(
            18, 16, seu_per_bit_day=1e-5, erasure_per_symbol_day=1e-6
        )
        with pytest.raises(AnalyticScopeError, match="pure"):
            simplex_fail_probability(m, [1.0])

    def test_duplex_scope_enforced(self):
        m = duplex_model(
            18, 16, seu_per_bit_day=1e-5, erasure_per_symbol_day=1e-6
        )
        with pytest.raises(AnalyticScopeError):
            duplex_fail_probability(m, [1.0])


class TestSimplexClosedForm:
    def test_zero_rates_zero_probability(self):
        m = simplex_model(18, 16)
        assert np.all(simplex_fail_probability(m, [0.0, 48.0]) == 0.0)

    def test_transient_case_matches_binomial(self):
        m = simplex_model(18, 16, seu_per_bit_day=1e-3)
        t = 48.0
        p = -math.expm1(-8 * (1e-3 / 24) * t)
        expected = _binomial_tail(18, p, 1)  # 2 re > 2 means re >= 2
        assert simplex_fail_probability(m, [t])[0] == pytest.approx(expected)

    def test_permanent_case_matches_binomial(self):
        m = simplex_model(18, 16, erasure_per_symbol_day=1e-2)
        t = 100.0
        q = -math.expm1(-(1e-2 / 24) * t)
        expected = _binomial_tail(18, q, 2)
        assert simplex_fail_probability(m, [t])[0] == pytest.approx(expected)

    def test_agreement_with_uniformization_transient(self):
        m = simplex_model(36, 16, seu_per_bit_day=1e-4)
        times = np.linspace(0.0, 48.0, 5)
        an = simplex_fail_probability(m, times)
        uni = m.fail_probability(times)
        assert np.allclose(an, uni, rtol=1e-10)

    def test_agreement_with_uniformization_permanent_deep_tail(self):
        m = simplex_model(36, 16, erasure_per_symbol_day=1e-9)
        t = [24 * 730.0]
        an = simplex_fail_probability(m, t)[0]
        uni = m.fail_probability(t)[0]
        assert an < 1e-100  # genuinely deep
        assert uni == pytest.approx(an, rel=1e-10)

    def test_ber_uses_eq1_factor(self):
        m = simplex_model(36, 16, erasure_per_symbol_day=1e-5)
        t = [1000.0]
        assert simplex_ber(m, t)[0] == pytest.approx(
            10.0 * simplex_fail_probability(m, t)[0]
        )


class TestDuplexClosedForm:
    def test_permanent_agreement_with_uniformization(self):
        m = duplex_model(18, 16, erasure_per_symbol_day=1e-6)
        times = [730.0, 24 * 730.0]
        an = duplex_fail_probability(m, times)
        uni = m.fail_probability(times)
        assert np.allclose(an, uni, rtol=1e-10)

    def test_transient_agreement_with_uniformization(self):
        m = duplex_model(18, 16, seu_per_bit_day=1.7e-5)
        times = [12.0, 48.0]
        an = duplex_fail_probability(m, times)
        uni = m.fail_probability(times)
        assert np.allclose(an, uni, rtol=1e-10)

    def test_transient_both_rule_agreement(self):
        m = duplex_model(18, 16, seu_per_bit_day=1e-3, fail_rule="both")
        times = [24.0, 48.0]
        an = duplex_fail_probability(m, times)
        uni = m.fail_probability(times)
        assert np.allclose(an, uni, rtol=1e-9)

    def test_both_rule_below_either_rule(self):
        either = duplex_model(18, 16, seu_per_bit_day=1e-4)
        both = duplex_model(18, 16, seu_per_bit_day=1e-4, fail_rule="both")
        t = [48.0]
        assert (
            duplex_fail_probability(both, t)[0]
            < duplex_fail_probability(either, t)[0]
        )

    def test_permanent_deep_tail_positive_and_monotone(self):
        m = duplex_model(18, 16, erasure_per_symbol_day=1e-9)
        times = np.linspace(730.0, 25 * 730.0, 6)
        pf = duplex_fail_probability(m, times)
        assert np.all(pf > 0)
        assert np.all(np.diff(pf) > 0)

    def test_duplex_permanent_is_roughly_squared_single(self):
        """The masking argument: duplex needs double-sided erasures, so its
        fail probability scales like the square of the per-symbol erasure
        probability relative to simplex."""
        rate = 1e-6
        t = [24 * 730.0]
        dup = duplex_fail_probability(
            duplex_model(18, 16, erasure_per_symbol_day=rate), t
        )[0]
        simp = simplex_fail_probability(
            simplex_model(18, 16, erasure_per_symbol_day=rate), t
        )[0]
        assert dup < simp**1.5  # far below; exact exponent ~2 in the rate

    def test_zero_rate_returns_zeros(self):
        m = duplex_model(18, 16)
        assert np.all(duplex_fail_probability(m, [10.0]) == 0.0)

    def test_duplex_ber_factor(self):
        m = duplex_model(18, 16, erasure_per_symbol_day=1e-4)
        t = [1000.0]
        assert duplex_ber(m, t)[0] == pytest.approx(
            m.ber_factor * duplex_fail_probability(m, t)[0]
        )
