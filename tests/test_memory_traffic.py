"""Tests for read-traffic integration over the BER trajectory."""

import math

import pytest

from repro.memory import (
    expected_failed_reads,
    simplex_model,
    time_of_first_expected_failure,
    workload_averaged_ber,
)


@pytest.fixture
def model():
    return simplex_model(18, 16, seu_per_bit_day=1.7e-5)


class TestExpectedFailedReads:
    def test_validation(self, model):
        with pytest.raises(ValueError):
            expected_failed_reads(model, -1.0, 48.0)
        with pytest.raises(ValueError):
            expected_failed_reads(model, 1.0, 0.0)

    def test_zero_read_rate(self, model):
        assert expected_failed_reads(model, 0.0, 48.0) == 0.0

    def test_linear_in_read_rate(self, model):
        one = expected_failed_reads(model, 100.0, 48.0)
        ten = expected_failed_reads(model, 1000.0, 48.0)
        assert ten == pytest.approx(10 * one)

    def test_quadratic_failure_growth_integrates_to_third(self, model):
        """P_fail ~ c t^2 in the t=1 transient regime, so the integral
        over [0, T] is ~ c T^3 / 3 = P_fail(T) * T / 3."""
        t = 48.0
        pf_end = model.fail_probability([t])[0]
        expected = 1000.0 * pf_end * t / 3.0
        assert expected_failed_reads(model, 1000.0, t) == pytest.approx(
            expected, rel=0.02
        )

    def test_no_faults_no_failures(self):
        clean = simplex_model(18, 16)
        assert expected_failed_reads(clean, 1000.0, 48.0) == 0.0


class TestWorkloadAveragedBer:
    def test_below_final_ber(self, model):
        avg = workload_averaged_ber(model, 48.0)
        final = model.ber([48.0])[0]
        assert 0 < avg < final

    def test_quadratic_regime_ratio_is_one_third(self, model):
        avg = workload_averaged_ber(model, 48.0)
        final = model.ber([48.0])[0]
        assert avg / final == pytest.approx(1 / 3, rel=0.02)

    def test_validation(self, model):
        with pytest.raises(ValueError):
            workload_averaged_ber(model, -1.0)


class TestFirstExpectedFailure:
    def test_bisection_hits_unity(self, model):
        rate = 1000.0
        t_star = time_of_first_expected_failure(model, rate)
        assert expected_failed_reads(model, rate, t_star) == pytest.approx(
            1.0, rel=1e-3
        )

    def test_monotone_in_read_rate(self, model):
        slow = time_of_first_expected_failure(model, 10.0)
        fast = time_of_first_expected_failure(model, 10_000.0)
        assert fast < slow

    def test_infinite_for_clean_memory(self):
        clean = simplex_model(18, 16)
        assert time_of_first_expected_failure(clean, 1000.0) == math.inf

    def test_rate_validation(self, model):
        with pytest.raises(ValueError):
            time_of_first_expected_failure(model, 0.0)
