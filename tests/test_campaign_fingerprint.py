"""Campaign fingerprint schema 3: stopping-rule identity and migration.

The schema-2 fingerprint omitted the adaptive-stopping parameters even
though ``--stop-rel-ci``/``min_trials``/``method`` change the produced
estimates — so a journal written under one stopping rule would happily
resume under another.  Schema 3 folds the rule into the identity; these
tests pin the canonicalization, the digest, the legacy-journal
migration, and the end-to-end readback path.
"""

import json

import pytest

from repro.runtime import CheckpointJournal, CheckpointMismatchError, RuntimeConfig
from repro.simulator import (
    FINGERPRINT_SCHEMA,
    CampaignCell,
    campaign_fingerprint,
    canonical_fingerprint_json,
    fingerprint_digest,
    run_campaign,
    stopping_fingerprint,
    upgrade_fingerprint,
)
from repro.stats import StoppingRule

CELLS = [CampaignCell("simplex", 1e-3, 0.0)]
ARGS = dict(n=18, k=16, m=8, t_end_hours=48.0, trials=100,
            base_seed=7, engine="batch", chunk_size=50)


def fp(stop=None):
    return campaign_fingerprint(
        CELLS, ARGS["n"], ARGS["k"], ARGS["m"], ARGS["t_end_hours"],
        ARGS["trials"], ARGS["base_seed"], ARGS["engine"],
        ARGS["chunk_size"], stop=stop,
    )


class TestSchema3Identity:
    def test_schema_number(self):
        assert FINGERPRINT_SCHEMA == 3
        assert fp()["schema"] == 3

    def test_stopping_in_fingerprint(self):
        rule = StoppingRule(rel_ci=0.1, min_trials=50, method="jeffreys",
                            confidence=0.99)
        assert fp()["stopping"] is None
        assert fp(rule)["stopping"] == {
            "rel_ci": 0.1, "min_trials": 50, "method": "jeffreys",
            "confidence": 0.99,
        }

    @pytest.mark.parametrize("a,b", [
        (None, StoppingRule(rel_ci=0.1)),
        (StoppingRule(rel_ci=0.1), StoppingRule(rel_ci=0.2)),
        (StoppingRule(rel_ci=0.1), StoppingRule(rel_ci=0.1, min_trials=10)),
        (StoppingRule(rel_ci=0.1), StoppingRule(rel_ci=0.1, method="jeffreys")),
        (StoppingRule(rel_ci=0.1),
         StoppingRule(rel_ci=0.1, confidence=0.99)),
    ])
    def test_every_stopping_field_changes_the_digest(self, a, b):
        assert fingerprint_digest(fp(a)) != fingerprint_digest(fp(b))

    def test_stopping_fingerprint_none_passthrough(self):
        assert stopping_fingerprint(None) is None

    def test_canonical_json_is_sorted_and_compact(self):
        text = canonical_fingerprint_json(fp())
        assert " " not in text
        assert json.loads(text) == fp()
        assert text == canonical_fingerprint_json(json.loads(text))

    def test_digest_is_sha256_hex(self):
        digest = fingerprint_digest(fp())
        assert len(digest) == 64
        assert all(c in "0123456789abcdef" for c in digest)

    def test_digest_stable_across_key_order(self):
        scrambled = dict(reversed(list(fp().items())))
        assert fingerprint_digest(scrambled) == fingerprint_digest(fp())


class TestUpgrade:
    def test_schema2_gains_null_stopping(self):
        legacy = dict(fp())
        legacy["schema"] = 2
        del legacy["stopping"]
        upgraded = upgrade_fingerprint(legacy)
        assert upgraded["schema"] == 3
        assert upgraded["stopping"] is None
        assert upgraded == fp()

    def test_schema1_gains_iid_cells_and_null_stopping(self):
        legacy = dict(fp())
        legacy["schema"] = 1
        del legacy["stopping"]
        legacy["cells"] = [
            {k: v for k, v in cell.items()
             if k not in ("pattern", "schedule")}
            for cell in legacy["cells"]
        ]
        upgraded = upgrade_fingerprint(legacy)
        assert upgraded == fp()

    def test_current_schema_unchanged(self):
        current = fp(StoppingRule(rel_ci=0.5))
        assert upgrade_fingerprint(current) == current

    def test_unknown_schema_passthrough(self):
        weird = {"schema": 99, "x": 1}
        assert upgrade_fingerprint(weird) == weird

    def test_upgrade_does_not_mutate_input(self):
        legacy = {"schema": 2, "cells": [{"arrangement": "simplex"}]}
        upgrade_fingerprint(legacy)
        assert legacy == {"schema": 2, "cells": [{"arrangement": "simplex"}]}


class TestJournalReadback:
    """End-to-end: journals written under older schemas still resume."""

    def _run(self, journal_path, stop=None, trials=100):
        journal = CheckpointJournal(journal_path)
        try:
            return run_campaign(
                CELLS, trials=trials, base_seed=7, engine="batch",
                chunk_size=50,
                runtime=RuntimeConfig(journal=journal, stop=stop),
            )
        finally:
            journal.close()

    @staticmethod
    def _downgrade_header_to_schema2(path):
        """Rewrite the on-disk journal header to the legacy schema-2 form."""
        from repro.runtime.integrity import rewrite_journal, scan_journal

        records = [record for _line, record in scan_journal(path).records]
        legacy_header = dict(records[0])
        legacy_fp = dict(legacy_header["fingerprint"])
        legacy_fp["schema"] = 2
        del legacy_fp["stopping"]
        legacy_header["fingerprint"] = legacy_fp
        rewrite_journal(path, [legacy_header] + records[1:])

    def test_schema2_journal_resumes_as_full_budget(self, tmp_path):
        path = tmp_path / "c.journal"
        rows = self._run(path)
        self._downgrade_header_to_schema2(path)

        resumed = self._run(path)
        assert [r.estimate.probability for r in resumed] == [
            r.estimate.probability for r in rows
        ]

    def test_schema2_journal_rejected_under_stopping_rule(self, tmp_path):
        # The bug this PR closes: a legacy journal must NOT silently
        # resume into a run whose stopping rule changes the estimate.
        path = tmp_path / "c.journal"
        self._run(path)
        self._downgrade_header_to_schema2(path)

        with pytest.raises(CheckpointMismatchError):
            self._run(path, stop=StoppingRule(rel_ci=0.5, min_trials=10))

    def test_different_stop_rule_rejected_same_schema(self, tmp_path):
        path = tmp_path / "c.journal"
        self._run(path, stop=StoppingRule(rel_ci=0.5))
        with pytest.raises(CheckpointMismatchError):
            self._run(path, stop=StoppingRule(rel_ci=0.25))

    def test_same_stop_rule_resumes(self, tmp_path):
        path = tmp_path / "c.journal"
        rule = StoppingRule(rel_ci=0.5, min_trials=50)
        rows = self._run(path, stop=rule)
        resumed = self._run(path, stop=rule)
        assert [r.estimate.probability for r in resumed] == [
            r.estimate.probability for r in rows
        ]
