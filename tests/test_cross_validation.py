"""Integration tests: independent derivations must agree.

Three computational paths exist for the paper's models — the CTMC
transient solvers (uniformization / expm / ODE), the closed-form
per-symbol decompositions, and stochastic simulation (Gillespie on the
chain, bit-level fault injection through the codec).  These tests pin the
agreements that make the reproduction trustworthy.
"""

import numpy as np
import pytest

from repro.analysis import SEU_RATES_PER_BIT_DAY
from repro.memory import duplex_model, simplex_model
from repro.memory.analytic import (
    duplex_fail_probability,
    simplex_fail_probability,
)
from repro.simulator import gillespie_fail_probability

TIMES_48H = np.linspace(0.0, 48.0, 5)
MONTHS_24 = np.linspace(0.0, 24 * 730.0, 5)


class TestAnalyticVsCTMC:
    @pytest.mark.parametrize("lam", SEU_RATES_PER_BIT_DAY)
    def test_simplex_transient_all_paper_rates(self, lam):
        model = simplex_model(18, 16, seu_per_bit_day=lam)
        an = simplex_fail_probability(model, TIMES_48H)
        uni = model.fail_probability(TIMES_48H)
        assert np.allclose(an, uni, rtol=1e-10)

    @pytest.mark.parametrize("lam", SEU_RATES_PER_BIT_DAY)
    def test_duplex_transient_all_paper_rates(self, lam):
        model = duplex_model(18, 16, seu_per_bit_day=lam)
        an = duplex_fail_probability(model, TIMES_48H)
        uni = model.fail_probability(TIMES_48H)
        assert np.allclose(an, uni, rtol=1e-10)

    @pytest.mark.parametrize("rate", [1e-4, 1e-6, 1e-8, 1e-10])
    def test_simplex_permanent_deep_tails(self, rate):
        model = simplex_model(18, 16, erasure_per_symbol_day=rate)
        an = simplex_fail_probability(model, MONTHS_24)
        uni = model.fail_probability(MONTHS_24)
        mask = an > 1e-290  # above the double-precision floor
        assert np.allclose(an[mask], uni[mask], rtol=1e-9)

    @pytest.mark.parametrize("rate", [1e-4, 1e-6, 1e-8])
    def test_duplex_permanent_deep_tails(self, rate):
        model = duplex_model(18, 16, erasure_per_symbol_day=rate)
        an = duplex_fail_probability(model, MONTHS_24)
        uni = model.fail_probability(MONTHS_24)
        mask = an > 1e-290
        assert np.allclose(an[mask], uni[mask], rtol=1e-9)

    def test_rs3616_permanent_deep_tail(self):
        model = simplex_model(36, 16, erasure_per_symbol_day=1e-6)
        an = simplex_fail_probability(model, MONTHS_24)
        uni = model.fail_probability(MONTHS_24)
        mask = an > 1e-290
        assert np.allclose(an[mask], uni[mask], rtol=1e-9)


class TestSolverTriangle:
    """uniformization / expm / ODE agree where all are in range."""

    def test_simplex_with_scrubbing(self):
        model = simplex_model(
            18, 16, seu_per_bit_day=1e-3, scrub_period_seconds=1800.0
        )
        uni = model.fail_probability(TIMES_48H, method="uniformization")
        exp = model.fail_probability(TIMES_48H, method="expm")
        ode = model.fail_probability(TIMES_48H, method="ode")
        assert np.allclose(uni, exp, rtol=1e-8, atol=1e-13)
        assert np.allclose(uni, ode, rtol=1e-5, atol=1e-10)

    def test_duplex_with_scrubbing(self):
        model = duplex_model(
            18, 16, seu_per_bit_day=1e-3, scrub_period_seconds=1800.0
        )
        uni = model.fail_probability(TIMES_48H, method="uniformization")
        exp = model.fail_probability(TIMES_48H, method="expm")
        assert np.allclose(uni, exp, rtol=1e-8, atol=1e-13)

    def test_mixed_fault_environment(self):
        """Both fault classes active (outside the analytic scope): the
        general solvers still agree with each other."""
        model = duplex_model(
            18, 16, seu_per_bit_day=1e-3, erasure_per_symbol_day=1e-4
        )
        uni = model.fail_probability(TIMES_48H)
        exp = model.fail_probability(TIMES_48H, method="expm")
        assert np.allclose(uni, exp, rtol=1e-8, atol=1e-13)


class TestStochasticAgreement:
    def test_gillespie_simplex_mixed_environment(self):
        model = simplex_model(
            18, 16, seu_per_bit_day=1e-3, erasure_per_symbol_day=5e-3
        )
        p = model.fail_probability([48.0])[0]
        est = gillespie_fail_probability(
            model, 48.0, trials=2000, rng=np.random.default_rng(77)
        )
        assert est.consistent_with(p)

    def test_gillespie_duplex_mixed_environment(self):
        model = duplex_model(
            18, 16, seu_per_bit_day=1e-3, erasure_per_symbol_day=5e-3
        )
        p = model.fail_probability([48.0])[0]
        est = gillespie_fail_probability(
            model, 48.0, trials=2000, rng=np.random.default_rng(78)
        )
        assert est.consistent_with(p)
