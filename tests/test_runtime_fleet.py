"""Fleet runtime: heartbeat leases, epoch fencing, zombie rejection.

Cross-host semantics proven without a second machine: worker agents run
as detached subprocesses (``python -m repro worker``) against a shared
board directory, and the coordinator's only liveness signal is the
heartbeat file each worker renews — ``_pid_alive`` is monkeypatched to
explode if anything consults a local pid during a run.  The acceptance
invariant throughout: no matter how workers die, hang, partition, or
zombie-publish, the journal and estimate are bit-identical to an
uninterrupted serial run.
"""

import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.obs import metrics as obs_metrics
from repro.rs import RSCode
from repro.runtime import (
    CheckpointJournal,
    ResilienceWarning,
    RuntimeConfig,
    make_executor,
    parse_chaos_spec,
    scan_journal,
)
from repro.runtime.fleet import (
    DEFAULT_WORKER_TTL,
    FleetExecutor,
    _bench_until,
    audit_board,
    default_worker_id,
    repair_board,
)
from repro.simulator import simulate_fail_probability_batched

CODE = RSCode(18, 16, m=8)
LAM = 2e-3 / 24.0
SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

_TIMING_FIELDS = {"cpu_seconds", "elapsed_seconds", "kernel_seconds"}

#: Short heartbeat TTL for chaos tests: expiry must be detected within
#: the test's patience, and the worker heartbeats at ttl/4.
FAST_TTL = 0.75


def run(executor=None, workers=1, journal=None, chaos=None, trials=100,
        seed=23, board_dir=None, worker_ttl=None):
    runtime = RuntimeConfig(
        executor=executor,
        journal=journal,
        chaos=chaos,
        board_dir=board_dir,
        worker_ttl=worker_ttl,
    )
    return simulate_fail_probability_batched(
        "simplex",
        CODE,
        48.0,
        LAM,
        0.0,
        trials,
        seed=seed,
        chunk_size=50,
        workers=workers,
        runtime=runtime,
    )


def _chunk_fields(journal_path):
    out = {}
    for _line, record in scan_journal(journal_path).chunk_records:
        result = record["result"]
        counters = {
            k: v
            for k, v in result["counters"].items()
            if k not in _TIMING_FIELDS
        }
        out[record["chunk"]] = (
            result["failures"],
            result["trials"],
            dict(result["counts"]),
            counters,
            record["seed"],
        )
    return out


def _worker_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _spawn_worker(board, *, ttl, worker_id, extra=()):
    """A detached ``repro worker`` agent, as a real host would run it."""
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--board", str(board),
            "--ttl", str(ttl),
            "--worker-id", worker_id,
            *extra,
        ],
        env=_worker_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,
    )


def _make_board(tmp_path, name="board"):
    board = tmp_path / name
    for sub in ("todo", "leases", "done", "workers"):
        (board / sub).mkdir(parents=True)
    return board


def _wait_for_heartbeats(board, count, timeout=30.0):
    deadline = time.monotonic() + timeout
    workers = board / "workers"
    while time.monotonic() < deadline:
        if sum(1 for p in workers.iterdir() if p.suffix == ".hb") >= count:
            return
        time.sleep(0.05)
    raise AssertionError(f"fewer than {count} worker heartbeats appeared")


def _no_pid_liveness(monkeypatch):
    """Fail loudly if the coordinator falls back to local-pid liveness."""

    def _boom(pid):  # pragma: no cover - the point is it never runs
        raise AssertionError(
            "fleet coordinator consulted local pid liveness"
        )

    monkeypatch.setattr("repro.runtime.fleet._pid_alive", _boom)


# --------------------------------------------------------------------------
# parity with external detached workers (1 / 2 / 4 agents)
# --------------------------------------------------------------------------


@pytest.mark.chaos
@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_fleet_external_workers_journal_bit_identical(
    tmp_path, monkeypatch, n_workers
):
    _no_pid_liveness(monkeypatch)
    serial_path = tmp_path / "serial.jsonl"
    with CheckpointJournal(serial_path) as journal:
        reference = run(executor="serial", journal=journal, trials=300)

    board = _make_board(tmp_path)
    procs = [
        _spawn_worker(board, ttl=5.0, worker_id=f"host{i}")
        for i in range(n_workers)
    ]
    fleet_path = tmp_path / "fleet.jsonl"
    try:
        _wait_for_heartbeats(board, n_workers)
        with CheckpointJournal(fleet_path) as journal:
            estimate = run(
                executor="fleet",
                workers=n_workers,
                journal=journal,
                trials=300,
                board_dir=board,
                worker_ttl=5.0,
            )
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.wait(timeout=15)
    assert (estimate.failures, estimate.trials, estimate.probability) == (
        reference.failures,
        reference.trials,
        reference.probability,
    )
    assert estimate.outcome_counts == reference.outcome_counts
    assert _chunk_fields(fleet_path) == _chunk_fields(serial_path)
    # graceful SIGTERM drain: every agent deregistered and exited 0
    assert [proc.returncode for proc in procs] == [0] * n_workers
    assert not any(
        p.suffix == ".hb" for p in (board / "workers").iterdir()
    )


# --------------------------------------------------------------------------
# TTL expiry -> epoch bump -> re-dispatch -> zombie rejection
# --------------------------------------------------------------------------


@pytest.mark.chaos
def test_worker_kill_and_zombie_recovered_bit_identical(
    tmp_path, monkeypatch
):
    """SIGKILL-equivalent worker death on chunk 1 plus a zombie publish
    on chunk 0: the lease must expire by heartbeat staleness, the chunks
    re-dispatch under a bumped epoch, the stale epoch-0 result must be
    rejected and counted, and the journal must match serial exactly."""
    _no_pid_liveness(monkeypatch)
    serial_path = tmp_path / "serial.jsonl"
    with CheckpointJournal(serial_path) as journal:
        reference = run(executor="serial", journal=journal)

    previous = obs_metrics.set_registry(obs_metrics.MetricsRegistry())
    fleet_path = tmp_path / "fleet.jsonl"
    try:
        with CheckpointJournal(fleet_path) as journal:
            estimate = run(
                executor="fleet",
                workers=2,
                journal=journal,
                chaos=parse_chaos_spec("worker-kill@1;zombie@0"),
                worker_ttl=FAST_TTL,
            )
        snapshot = obs_metrics.get_registry().snapshot()
    finally:
        obs_metrics.set_registry(previous)
    assert (estimate.failures, estimate.trials, estimate.probability) == (
        reference.failures,
        reference.trials,
        reference.probability,
    )
    assert _chunk_fields(fleet_path) == _chunk_fields(serial_path)
    assert snapshot["repro.fleet.lease_expiries"]["value"] >= 2
    assert snapshot["repro.fleet.redispatch_epochs"]["value"] >= 2
    assert snapshot["repro.fleet.zombie_results_rejected"]["value"] >= 1


@pytest.mark.chaos
def test_partition_recovered_bit_identical(tmp_path, monkeypatch):
    """A full board partition (frozen heartbeat + withheld publication)
    on chunk 0: re-dispatched under epoch 1, the delayed stale result is
    fenced off, and the journal matches serial."""
    _no_pid_liveness(monkeypatch)
    serial_path = tmp_path / "serial.jsonl"
    with CheckpointJournal(serial_path) as journal:
        reference = run(executor="serial", journal=journal)

    previous = obs_metrics.set_registry(obs_metrics.MetricsRegistry())
    fleet_path = tmp_path / "fleet.jsonl"
    try:
        with CheckpointJournal(fleet_path) as journal:
            estimate = run(
                executor="fleet",
                workers=2,
                journal=journal,
                chaos=parse_chaos_spec("partition@0:2.5"),
                worker_ttl=FAST_TTL,
            )
        snapshot = obs_metrics.get_registry().snapshot()
    finally:
        obs_metrics.set_registry(previous)
    assert (estimate.failures, estimate.trials, estimate.probability) == (
        reference.failures,
        reference.trials,
        reference.probability,
    )
    assert _chunk_fields(fleet_path) == _chunk_fields(serial_path)
    assert snapshot["repro.fleet.lease_expiries"]["value"] >= 1


# --------------------------------------------------------------------------
# worker agent lifecycle
# --------------------------------------------------------------------------


@pytest.mark.chaos
def test_idle_worker_drains_on_sigterm(tmp_path):
    board = _make_board(tmp_path)
    proc = _spawn_worker(board, ttl=5.0, worker_id="drainer")
    try:
        _wait_for_heartbeats(board, 1)
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=15) == 0
    finally:
        if proc.poll() is None:  # pragma: no cover - assertion failed path
            proc.kill()
            proc.wait(timeout=15)
    # drain deregisters: the heartbeat file must be gone
    assert not any(
        p.suffix == ".hb" for p in (board / "workers").iterdir()
    )


def test_worker_cli_rejects_bad_usage(tmp_path):
    from repro.cli import main

    assert main(["worker", "--board", str(tmp_path / "missing")]) == 2
    board = _make_board(tmp_path)
    assert main(["worker", "--board", str(board), "--ttl", "0"]) == 2
    assert (
        main(["worker", "--board", str(board), "--max-chunks", "-1"]) == 2
    )


def test_worker_max_chunks_zero_exits_immediately(tmp_path):
    from repro.runtime.fleet import worker_main

    board = _make_board(tmp_path)
    assert worker_main(board, max_chunks=0, install_signals=False) == 0


# --------------------------------------------------------------------------
# empty-fleet degradation
# --------------------------------------------------------------------------


def _echo_chunk(args):
    index, value = args
    return {"trials": 1, "value": value}


@pytest.mark.chaos
def test_empty_fleet_degrades_loudly_and_completes(tmp_path):
    board = _make_board(tmp_path)
    previous = obs_metrics.set_registry(obs_metrics.MetricsRegistry())
    executor = FleetExecutor(
        1,
        board_dir=board,
        ttl=0.5,
        spawn_workers=0,
        empty_fleet_deadline=0.4,
    )
    try:
        token = executor.submit((_echo_chunk, 0, 0, None, (0, 42)))
        completions = []
        deadline = time.monotonic() + 30.0
        with pytest.warns(ResilienceWarning, match="no fleet worker"):
            while not completions and time.monotonic() < deadline:
                completions = executor.poll(timeout=0.5)
        snapshot = obs_metrics.get_registry().snapshot()
    finally:
        executor.close()
        obs_metrics.set_registry(previous)
    assert [c.token for c in completions] == [token]
    assert completions[0].result == {"trials": 1, "value": 42}
    assert snapshot["repro.fleet.empty_fleet_fallbacks"]["value"] == 1
    assert snapshot["repro.fleet.workers_alive"]["value"] == 0


# --------------------------------------------------------------------------
# failure-domain quarantine (bench)
# --------------------------------------------------------------------------


def test_worker_benched_after_consecutive_failures(tmp_path):
    board = _make_board(tmp_path)
    previous = obs_metrics.set_registry(obs_metrics.MetricsRegistry())
    executor = FleetExecutor(
        1,
        board_dir=board,
        spawn_workers=0,
        bench_threshold=2,
        bench_base_s=30.0,
    )
    try:
        executor._charge_worker_failure("flaky")
        assert not (board / "workers" / "flaky.bench").exists()
        executor._charge_worker_failure("flaky")
        assert (board / "workers" / "flaky.bench").exists()
        assert _bench_until(board / "workers", "flaky") > time.time()
        snapshot = obs_metrics.get_registry().snapshot()
    finally:
        executor.close()
        obs_metrics.set_registry(previous)
    assert snapshot["repro.fleet.workers_benched"]["value"] == 1


def test_bench_backoff_is_bounded(tmp_path):
    board = _make_board(tmp_path)
    executor = FleetExecutor(
        1,
        board_dir=board,
        spawn_workers=0,
        bench_threshold=1,
        bench_base_s=1.0,
        bench_max_s=4.0,
    )
    try:
        backoffs = []
        for _ in range(5):
            executor._charge_worker_failure("flaky")
            with open(board / "workers" / "flaky.bench", "rb") as fh:
                import json

                backoffs.append(json.load(fh)["backoff_s"])
        assert backoffs == [1.0, 2.0, 4.0, 4.0, 4.0]
    finally:
        executor.close()


# --------------------------------------------------------------------------
# coordinator discipline
# --------------------------------------------------------------------------


def test_second_fleet_coordinator_fails_fast(tmp_path):
    from repro.runtime import JournalLockedError

    board = tmp_path / "board"
    first = FleetExecutor(1, board_dir=board, spawn_workers=0)
    try:
        with pytest.raises(JournalLockedError):
            FleetExecutor(1, board_dir=board, spawn_workers=0)
    finally:
        first.close()
    second = FleetExecutor(1, board_dir=board, spawn_workers=0)
    second.close()


def test_fleet_board_defaults_to_private_tempdir():
    import tempfile

    executor = make_executor("fleet", workers=1, spawn_workers=0)
    try:
        board = executor.board
        assert board.exists()
        assert tempfile.gettempdir() in str(board)
    finally:
        executor.close()
    assert not board.exists()


def test_abandon_fences_pending_task(tmp_path):
    board = _make_board(tmp_path)
    executor = FleetExecutor(1, board_dir=board, spawn_workers=0)
    try:
        token = executor.submit((_echo_chunk, 0, 0, None, (0, 1)))
        assert executor.abandon(token) is True
        assert not any((board / "todo").iterdir())
        assert executor.abandon(token) is False  # unknown once fenced
    finally:
        executor.close()


def test_default_worker_id_is_host_scoped():
    wid = default_worker_id()
    assert str(os.getpid()) in wid
    assert "/" not in wid and " " not in wid


# --------------------------------------------------------------------------
# board audit / repair (doctor integration points)
# --------------------------------------------------------------------------


def test_audit_flags_orphans_torn_and_epoch_mismatch(tmp_path):
    board = _make_board(tmp_path)
    # stale-heartbeat holder with a lease
    hb = board / "workers" / "deadhost.hb"
    hb.write_text("{}")
    old = time.time() - 3600.0
    os.utime(hb, (old, old))
    (board / "leases" / "00000003.e0000.task.deadhost").write_bytes(b"x")
    # torn staging file and a stale-epoch zombie result
    (board / "done" / "00000002.e0000.tmp.w9").write_bytes(b"torn")
    (board / "done" / "00000001.e0000.done").write_bytes(b"stale")
    (board / "todo" / "00000001.e0001.task").write_bytes(b"current")
    (board / "STOP").write_text("")

    report = audit_board(board, ttl=DEFAULT_WORKER_TTL)
    assert report["healthy"] is False
    assert report["stop_flag"] is True
    assert report["coordinator_attached"] is False
    assert [w["fresh"] for w in report["workers"]] == [False]
    assert [o["worker"] for o in report["orphaned_leases"]] == ["deadhost"]
    assert report["torn_tmp"] == ["done/00000002.e0000.tmp.w9"]
    assert [m["entry"] for m in report["epoch_mismatches"]] == [
        "done/00000001.e0000.done"
    ]


def test_repair_reenqueues_orphan_under_bumped_epoch(tmp_path):
    board = _make_board(tmp_path)
    hb = board / "workers" / "deadhost.hb"
    hb.write_text("{}")
    old = time.time() - 3600.0
    os.utime(hb, (old, old))
    payload = pickle.dumps((_echo_chunk, 3, 0, None, (3, 7)))
    (board / "leases" / "00000003.e0000.task.deadhost").write_bytes(payload)
    (board / "done" / "00000002.e0000.tmp.w9").write_bytes(b"torn")
    (board / "STOP").write_text("")

    result = repair_board(board, ttl=DEFAULT_WORKER_TTL)
    assert result["actions"]
    # the orphaned chunk is back in todo/ under the NEXT epoch: a
    # not-actually-dead holder that publishes later is a fenced zombie
    assert (board / "todo" / "00000003.e0001.task").read_bytes() == payload
    assert not any((board / "leases").iterdir())
    assert not (board / "done" / "00000002.e0000.tmp.w9").exists()
    assert not (board / "STOP").exists()
    assert audit_board(board, ttl=DEFAULT_WORKER_TTL)["healthy"] is True


def test_repair_refuses_live_coordinator(tmp_path):
    board = tmp_path / "board"
    executor = FleetExecutor(1, board_dir=board, spawn_workers=0)
    try:
        result = repair_board(board)
        assert "skipped" in result
    finally:
        executor.close()


def test_audit_covers_legacy_pid_leases(tmp_path):
    board = _make_board(tmp_path)
    # a legacy LeaseExecutor lease held by a certainly-dead pid
    (board / "leases" / "00000000.task.999999").write_bytes(b"x")
    report = audit_board(board)
    assert [o["worker"] for o in report["orphaned_leases"]] == ["pid:999999"]
    repair_board(board)
    assert (board / "todo" / "00000000.task").exists()
