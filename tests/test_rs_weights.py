"""Tests for the MDS weight distribution and mis-correction analysis."""

import collections
import itertools
import random

import pytest

from repro.rs import (
    RSCode,
    RSDecodingError,
    decoding_sphere_fraction,
    mds_weight_distribution,
    miscorrection_probability_beyond_capability,
    undetected_error_probability,
)
from repro.rs.weights import expected_weight_enumerator_checks


class TestWeightDistribution:
    def test_total_is_q_to_k(self):
        weights = mds_weight_distribution(18, 16, 256)
        assert sum(weights) == 256**16

    def test_minimum_distance_is_singleton(self):
        weights = mds_weight_distribution(18, 16, 256)
        assert weights[1] == weights[2] == 0
        assert weights[3] > 0  # d = n - k + 1 = 3

    def test_brute_force_rs73(self):
        """Exhaustive enumeration of all 512 RS(7,3) codewords."""
        code = RSCode(7, 3, m=3)
        counts = collections.Counter()
        for data in itertools.product(range(8), repeat=3):
            cw = code.encode(list(data))
            counts[sum(1 for s in cw if s)] += 1
        theory = mds_weight_distribution(7, 3, 8)
        for w in range(8):
            assert counts.get(w, 0) == theory[w], f"weight {w}"

    def test_brute_force_rs1513(self):
        """A second field: RS(15,13) over GF(16), 16^13 too big — check
        via the dual-style identity sum w A_w = n (q-1) q^{k-1}."""
        n, k, q = 15, 13, 16
        weights = mds_weight_distribution(n, k, q)
        total_weight = sum(w * a for w, a in enumerate(weights))
        assert total_weight == n * (q - 1) * q ** (k - 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            mds_weight_distribution(16, 16, 256)
        with pytest.raises(ValueError):
            mds_weight_distribution(18, 16, 1)

    def test_consistency_helper(self):
        checks = expected_weight_enumerator_checks(36, 16, 256)
        assert checks["total_codewords"] == checks["expected_total"]
        assert checks["min_distance"] == 21
        assert checks["singleton_slack"] == 0


class TestUndetectedError:
    def test_zero_at_zero_error_rate(self):
        assert undetected_error_probability(18, 16, 256, 0.0) == 0.0

    def test_increases_with_error_rate_in_low_regime(self):
        low = undetected_error_probability(18, 16, 256, 1e-3)
        high = undetected_error_probability(18, 16, 256, 1e-2)
        assert 0 < low < high

    def test_more_redundancy_fewer_undetected(self):
        p = 0.01
        weak = undetected_error_probability(18, 16, 256, p)
        strong = undetected_error_probability(36, 16, 256, p)
        assert strong < weak / 1e10

    def test_validation(self):
        with pytest.raises(ValueError):
            undetected_error_probability(18, 16, 256, 1.5)


class TestMiscorrection:
    def test_sphere_fraction_rs1816(self):
        # q^k (1 + n(q-1)) / q^n = (1 + 18*255) / 256^2
        expected = (1 + 18 * 255) / 256**2
        assert decoding_sphere_fraction(18, 16, 256) == pytest.approx(expected)

    def test_within_capability_never_miscorrects(self):
        code = RSCode(18, 16, m=8)
        assert miscorrection_probability_beyond_capability(code, 1) == 0.0

    def test_matches_monte_carlo_double_errors(self):
        """The headline validation: random double-error patterns on
        RS(18,16) mis-correct at about the decoding-sphere fraction."""
        code = RSCode(18, 16, m=8)
        predicted = miscorrection_probability_beyond_capability(code, 2)
        rng = random.Random(77)
        trials, accepted = 4000, 0
        data = [rng.randrange(256) for _ in range(16)]
        cw = code.encode(data)
        for _ in range(trials):
            corrupted = list(cw)
            for pos in rng.sample(range(18), 2):
                corrupted[pos] ^= rng.randrange(1, 256)
            try:
                code.decode(corrupted)
            except RSDecodingError:
                continue
            accepted += 1
        observed = accepted / trials
        # binomial noise at 4000 trials: ~3 sigma = 0.012
        assert observed == pytest.approx(predicted, abs=0.015)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            decoding_sphere_fraction(18, 16, 256, t=-1)
