"""Progress heartbeats: rolling throughput, ETA, rendering."""

import pytest

from repro.obs.progress import ProgressEvent, ProgressTracker, format_progress


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t

    def tick(self, dt):
        self.t += dt


class TestTracker:
    def test_first_heartbeat_has_no_rate(self):
        clock = FakeClock()
        tracker = ProgressTracker(total=100, clock=clock)
        tracker.start()
        event = tracker.snapshot()
        assert event.done == 0
        assert event.rate_per_second is None
        assert event.eta_seconds is None

    def test_rate_and_eta_from_rolling_window(self):
        clock = FakeClock()
        tracker = ProgressTracker(total=100, clock=clock)
        tracker.start()
        clock.tick(1.0)
        event = tracker.advance(10)  # 10 units in 1 s
        assert event.rate_per_second == pytest.approx(10.0)
        assert event.eta_seconds == pytest.approx(9.0)  # 90 left at 10/s
        assert event.fraction == pytest.approx(0.1)

    def test_window_adapts_to_throughput_changes(self):
        clock = FakeClock()
        tracker = ProgressTracker(total=1000, window=3, clock=clock)
        tracker.start()
        for _ in range(5):  # slow phase: 1 unit/s
            clock.tick(1.0)
            tracker.advance(1)
        for _ in range(5):  # fast phase: 10 units/s
            clock.tick(1.0)
            event = tracker.advance(10)
        # window=3 spans only the fast phase; the slow start is forgotten
        assert event.rate_per_second == pytest.approx(10.0)

    def test_eta_reaches_zero_at_completion(self):
        clock = FakeClock()
        tracker = ProgressTracker(total=20, clock=clock)
        tracker.start()
        clock.tick(2.0)
        event = tracker.advance(20)
        assert event.done == 20
        assert event.eta_seconds == pytest.approx(0.0)

    def test_overshoot_keeps_eta_nonnegative(self):
        clock = FakeClock()
        tracker = ProgressTracker(total=10, clock=clock)
        tracker.start()
        clock.tick(1.0)
        event = tracker.advance(15)
        assert event.eta_seconds == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProgressTracker(total=-1)
        with pytest.raises(ValueError):
            ProgressTracker(total=10, window=1)
        with pytest.raises(ValueError):
            ProgressTracker(total=10).advance(-1)

    def test_as_dict_is_manifest_ready(self):
        clock = FakeClock()
        tracker = ProgressTracker(total=4, unit="chunks", clock=clock)
        tracker.start()
        clock.tick(1.0)
        data = tracker.advance(1).as_dict()
        assert data["done"] == 1
        assert data["total"] == 4
        assert data["unit"] == "chunks"
        assert data["rate_per_second"] == pytest.approx(1.0)
        assert data["eta_seconds"] == pytest.approx(3.0)


class TestFormatting:
    def test_full_line(self):
        event = ProgressEvent(
            done=30,
            total=120,
            elapsed_seconds=3.0,
            rate_per_second=10.0,
            eta_seconds=9.0,
            unit="trials",
        )
        line = format_progress(event)
        assert "30/120 trials" in line
        assert "25.0%" in line
        assert "10/s" in line
        assert "eta 9.0s" in line

    def test_no_rate_yet(self):
        event = ProgressEvent(
            done=0,
            total=10,
            elapsed_seconds=0.0,
            rate_per_second=None,
            eta_seconds=None,
        )
        line = format_progress(event)
        assert "0/10" in line
        assert "eta" not in line

    def test_long_etas_render_in_minutes_and_hours(self):
        base = dict(done=1, total=100, elapsed_seconds=1.0, rate_per_second=1.0)
        assert "eta 2m05s" in format_progress(
            ProgressEvent(eta_seconds=125.0, **base)
        )
        assert "eta 1h01m" in format_progress(
            ProgressEvent(eta_seconds=3660.0, **base)
        )
