"""Unit tests for ASCII table rendering."""

import numpy as np
import pytest

from repro.analysis import format_ber, render_ber_table, render_cost_table
from repro.memory.ber import BERCurve
from repro.rs import paper_comparison


def curve(label, times, values):
    return BERCurve(label, np.asarray(times, float), np.asarray(values, float))


class TestFormatBer:
    def test_zero(self):
        assert format_ber(0.0) == "0"

    def test_scientific(self):
        assert format_ber(1.234e-7) == "1.234e-07"

    def test_deep_tail(self):
        assert format_ber(1e-200) == "1.000e-200"


class TestBerTable:
    def test_header_and_rows(self):
        t = [0.0, 24.0, 48.0]
        table = render_ber_table(
            [curve("a", t, [0, 1e-8, 2e-8]), curve("b", t, [0, 1e-9, 3e-9])]
        )
        lines = table.splitlines()
        assert lines[0].split() == ["hours", "a", "b"]
        assert len(lines) == 2 + 3  # header + rule + 3 rows
        assert "2.000e-08" in table

    def test_time_scaling_to_months(self):
        t = [0.0, 730.0]
        table = render_ber_table(
            [curve("x", t, [0, 1e-3])], time_label="months", time_scale=730.0
        )
        assert "1.0" in table.splitlines()[-1]

    def test_decimation(self):
        t = np.linspace(0, 48, 100)
        table = render_ber_table(
            [curve("x", t, np.linspace(0, 1e-6, 100))], max_rows=5
        )
        assert len(table.splitlines()) == 2 + 5

    def test_empty(self):
        assert render_ber_table([]) == "(no curves)"

    def test_mismatched_grids_rejected(self):
        with pytest.raises(ValueError, match="time grid"):
            render_ber_table(
                [curve("a", [0, 1], [0, 0]), curve("b", [0, 1, 2], [0, 0, 0])]
            )


class TestCostTable:
    def test_renders_paper_comparison(self):
        table = render_cost_table(paper_comparison())
        assert "74" in table
        assert "308" in table
        assert "duplex RS(18,16)" in table

    def test_column_alignment(self):
        table = render_cost_table(paper_comparison())
        lines = table.splitlines()
        assert len({len(line) for line in lines if line.strip()}) <= 2


class TestBERCurve:
    def test_at_picks_nearest_grid_point(self):
        c = curve("x", [0.0, 10.0, 20.0], [0.0, 1e-6, 2e-6])
        assert c.at(9.0) == 1e-6
        assert c.at(25.0) == 2e-6  # within one grid step past the span

    def test_at_rejects_far_off_grid_queries(self):
        c = curve("x", [0.0, 10.0, 20.0], [0.0, 1e-6, 2e-6])
        with pytest.raises(ValueError, match="outside the curve's grid"):
            c.at(100.0)

    def test_final(self):
        c = curve("x", [0.0, 10.0], [0.0, 5e-7])
        assert c.final == 5e-7
