"""Run-manifest provenance records."""

import json

from repro.perf import PerfCounters
from repro.runtime import SupervisorEvent, build_manifest, git_describe, write_manifest
from repro.simulator import (
    CampaignCell,
    campaign_fingerprint,
    run_campaign,
)


class TestGitDescribe:
    def test_in_this_repo_returns_a_revision(self):
        # The reproduction repo itself is a git checkout.
        import repro

        described = git_describe(cwd=repro.__file__.rsplit("/src/", 1)[0])
        assert described is None or isinstance(described, str)

    def test_outside_any_repo_returns_none(self, tmp_path):
        assert git_describe(cwd=tmp_path) is None


class TestManifest:
    def _rows(self):
        cells = [CampaignCell("simplex", 2e-3, 0.0)]
        rows = run_campaign(
            cells, trials=100, base_seed=5, engine="batch", chunk_size=50
        )
        return cells, rows

    def test_document_shape(self):
        cells, rows = self._rows()
        counters = PerfCounters(trials=100, retries=2, engine_fallbacks=1)
        events = [SupervisorEvent("retry", 0, 0, "injected")]
        manifest = build_manifest(
            command="campaign",
            fingerprint=campaign_fingerprint(
                cells, 18, 16, 8, 48.0, 100, 5, "batch", 50
            ),
            rows=rows,
            counters=counters,
            events=events,
            wall_clock_seconds=1.25,
            resumed=True,
            checkpoint_path="run.jsonl",
        )
        assert manifest["manifest_version"] == 3
        assert manifest["scenario"] is None
        assert manifest["fingerprint"]["base_seed"] == 5
        assert manifest["fingerprint"]["cells"][0]["arrangement"] == "simplex"
        assert manifest["resumed"] is True
        assert manifest["checkpoint"] == "run.jsonl"
        assert manifest["counters"]["retries"] == 2
        assert manifest["counters"]["engine_fallbacks"] == 1
        assert manifest["resilience_events"] == [
            {"kind": "retry", "chunk": 0, "attempt": 0, "detail": "injected"}
        ]
        result = manifest["results"][0]
        assert result["cell"] == rows[0].cell.label()
        assert result["trials"] == 100
        assert result["failures"] == rows[0].estimate.failures
        assert result["pattern"] is None
        assert result["schedule"] is None
        assert isinstance(result["silent_miscorrections"], int)
        assert isinstance(result["detected_uncorrectable"], int)
        assert result["silent_miscorrections"] + result[
            "detected_uncorrectable"
        ] == result["failures"]
        assert set(manifest["environment"]) == {
            "git_describe",
            "python",
            "numpy",
            "platform",
        }

    def test_write_is_valid_json_and_stamped(self, tmp_path):
        cells, rows = self._rows()
        manifest = build_manifest(
            command="campaign",
            fingerprint=campaign_fingerprint(
                cells, 18, 16, 8, 48.0, 100, 5, "batch", 50
            ),
            rows=rows,
            counters=PerfCounters(),
        )
        path = write_manifest(tmp_path / "out" / "m.json", manifest)
        loaded = json.loads(path.read_text())
        assert loaded["created_unix"] > 0
        assert loaded["results"][0]["probability"] == rows[0].estimate.probability

    def test_write_is_atomic_no_temp_litter(self, tmp_path):
        cells, rows = self._rows()
        manifest = build_manifest(
            command="campaign",
            fingerprint=campaign_fingerprint(
                cells, 18, 16, 8, 48.0, 100, 5, "batch", 50
            ),
            rows=rows,
            counters=PerfCounters(),
        )
        out_dir = tmp_path / "out"
        write_manifest(out_dir / "m.json", manifest)
        write_manifest(out_dir / "m.json", manifest)  # overwrite in place
        assert sorted(p.name for p in out_dir.iterdir()) == ["m.json"]
