"""Cross-decoder parity: Berlekamp-Massey vs Euclidean key solver.

Both key-equation solvers feed the same syndrome/Chien/Forney pipeline,
and for any pattern inside the capability bound the MDS uniqueness
argument says a correct bounded-distance decoder has exactly one word it
may return — so the two solvers must agree *exactly*: same success
flags, same corrected words, same error counts.  Beyond capability both
must detect (or, identically, miscorrect): the full pipeline's
post-checks make the outcome solver-independent, and this suite pins
that equivalence on the regimes where key solvers historically diverge —
exactly at capacity, one beyond it, and erasure-only patterns.
"""

import numpy as np
import pytest

from repro.rs.codec import RSCode, RSDecodingError

# (n, k, m): even and odd n-k, the paper's RS(18,16), and a long code.
CONFIGS = [
    (7, 3, 3),
    (15, 9, 4),
    (18, 16, 8),
    (21, 16, 8),  # n - k = 5, odd
    (31, 25, 5),
]

CASES_PER_CODE = 200


def make_pair(n, k, m):
    return (
        RSCode(n, k, m=m, key_solver="bm"),
        RSCode(n, k, m=m, key_solver="euclid"),
    )


def random_pattern(rng, n, nsym, regime):
    """(num_errors, num_erasures) for the requested stress regime."""
    if regime == "at":
        re = int(rng.integers(0, nsym // 2 + 1))
        return re, nsym - 2 * re
    if regime == "one-beyond":
        budget = nsym + 1
        re = int(rng.integers(0, budget // 2 + 1))
        return re, budget - 2 * re
    if regime == "erasure-only":
        return 0, int(rng.integers(1, nsym + 1))
    raise ValueError(regime)


def corrupt(rng, code, codeword, num_errors, num_erasures):
    received = list(codeword)
    positions = rng.choice(
        code.n, size=num_errors + num_erasures, replace=False
    )
    for pos in positions[:num_errors]:
        received[pos] ^= int(rng.integers(1, 1 << code.m))
    erasure_positions = sorted(int(p) for p in positions[num_errors:])
    for pos in erasure_positions:
        if rng.random() < 0.8:  # leave some erasures benign
            received[pos] ^= int(rng.integers(1, 1 << code.m))
    return received, erasure_positions


def decode_outcome(code, received, erasure_positions):
    """Normalize a decode attempt to a comparable tuple.

    Detection failures compare as bare ``("fail",)``: BM and Euclid are
    different algorithms whose post-checks may trip at different stages,
    so the *diagnostic message* is solver-specific — only the
    success/failure outcome and the corrected word must be identical.
    """
    try:
        result = code.decode(received, erasure_positions=erasure_positions)
    except RSDecodingError:
        return ("fail",)
    return (
        "ok",
        list(result.codeword),
        list(result.data),
        int(result.num_errors),
        sorted(int(p) for p in result.error_positions),
    )


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: f"rs{c[0]}_{c[1]}")
@pytest.mark.parametrize("regime", ["at", "one-beyond", "erasure-only"])
def test_bm_euclid_parity(config, regime):
    n, k, m = config
    nsym = n - k
    bm, euclid = make_pair(n, k, m)
    regime_id = ["at", "one-beyond", "erasure-only"].index(regime)
    rng = np.random.default_rng([0x5041_5249, n, k, regime_id])
    cases = CASES_PER_CODE // 3  # ~200 per code across the three regimes
    for trial in range(cases):
        data = [int(x) for x in rng.integers(0, 1 << m, size=k)]
        codeword = bm.encode(data)
        assert euclid.encode(data) == codeword  # encoding is solver-free
        re, er = random_pattern(rng, n, nsym, regime)
        received, erasures = corrupt(rng, bm, codeword, re, er)
        out_bm = decode_outcome(bm, received, erasures)
        out_euclid = decode_outcome(euclid, received, erasures)
        assert out_bm == out_euclid, (
            f"solver divergence (regime={regime}, trial={trial}, "
            f"re={re}, er={er}):\n  bm:     {out_bm}\n  euclid: {out_euclid}"
        )
        if regime in ("at", "erasure-only") and out_bm[0] == "ok":
            assert out_bm[1] == codeword


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: f"rs{c[0]}_{c[1]}")
def test_within_capability_both_succeed(config):
    """Inside the bound the pattern is always correctable: both solvers
    must succeed AND return the transmitted word (uniqueness)."""
    n, k, m = config
    nsym = n - k
    bm, euclid = make_pair(n, k, m)
    rng = np.random.default_rng([0x5041_5249, n, k, 0xBEEF])
    for _ in range(40):
        data = [int(x) for x in rng.integers(0, 1 << m, size=k)]
        codeword = bm.encode(data)
        re = int(rng.integers(0, nsym // 2 + 1))
        er = int(rng.integers(0, nsym - 2 * re + 1))
        received, erasures = corrupt(rng, bm, codeword, re, er)
        for code in (bm, euclid):
            outcome = decode_outcome(code, received, erasures)
            assert outcome[0] == "ok"
            assert outcome[1] == codeword
