"""Unit tests for the duplex memory Markov model (paper Figs. 3-4)."""

import numpy as np
import pytest

from repro.memory import FAIL, DuplexMarkovModel, FaultRates, duplex_model

LAM = 2.0   # per-bit SEU rate (per hour) used in rate checks
LAME = 3.0  # per-symbol erasure rate


def model_with(n=36, k=16, m=8, lam=LAM, lam_e=LAME, scrub=0.0, fail_rule="either"):
    return DuplexMarkovModel(
        n,
        k,
        m,
        FaultRates(seu_per_bit=lam, erasure_per_symbol=lam_e, scrub_rate=scrub),
        fail_rule=fail_rule,
    )


class TestConstruction:
    def test_fail_rule_validation(self):
        with pytest.raises(ValueError, match="fail_rule"):
            model_with(fail_rule="sometimes")

    def test_initial_state(self):
        assert model_with().initial_state() == (0, 0, 0, 0, 0, 0)

    def test_convenience_constructor(self):
        m = duplex_model(18, 16, seu_per_bit_day=24.0, fail_rule="both")
        assert m.rates.seu_per_bit == 1.0
        assert m.fail_rule == "both"


class TestCapabilityConditions:
    def test_word_conditions(self):
        m = model_with(n=18, k=16)
        # X + 2(b + ec + e1) <= 2
        assert m.word_ok((2, 5, 0, 0, 0, 0), 1)
        assert m.word_ok((0, 0, 1, 0, 0, 0), 1)
        assert not m.word_ok((1, 0, 1, 0, 0, 0), 1)
        assert not m.word_ok((0, 0, 0, 2, 0, 0), 1)
        # word 2 uses e2
        assert m.word_ok((0, 0, 0, 2, 0, 0), 2)

    def test_either_rule(self):
        m = model_with(n=18, k=16, fail_rule="either")
        assert not m.is_valid((0, 0, 0, 2, 0, 0))  # word1 broken

    def test_both_rule(self):
        m = model_with(n=18, k=16, fail_rule="both")
        assert m.is_valid((0, 0, 0, 2, 0, 0))       # word2 still fine
        assert not m.is_valid((0, 0, 0, 2, 2, 0))   # both broken

    def test_y_is_cost_free(self):
        """Single-sided erasures are masked: any Y is valid."""
        m = model_with(n=18, k=16)
        assert m.is_valid((0, 18, 0, 0, 0, 0))


class TestTransitionFamilies:
    """Each arc of paper Fig. 4 with its rate, from a generic state."""

    # generic state with every class populated: needs a roomy code
    S = (1, 2, 1, 1, 1, 1)  # (X, Y, b, e1, e2, ec); clean = 36 - 7 = 29

    @pytest.fixture(scope="class")
    def chain(self):
        return model_with(n=36, k=16).chain

    def rate(self, chain, target):
        return chain.rate(self.S, target)

    def test_A_second_erasure_on_pair(self, chain):
        assert self.rate(chain, (2, 1, 1, 1, 1, 1)) == pytest.approx(LAME * 2)

    def test_B_erasure_on_errored_partner_uses_b_not_y(self, chain):
        """The documented Fig.4-vs-text correction: rate is lam_e * b."""
        assert self.rate(chain, (2, 2, 0, 1, 1, 1)) == pytest.approx(LAME * 1)

    def test_C_erasure_on_clean_pair(self, chain):
        assert self.rate(chain, (1, 3, 1, 1, 1, 1)) == pytest.approx(LAME * 29)

    def test_D_erasure_hits_errored_symbol_word1(self, chain):
        assert self.rate(chain, (1, 3, 1, 0, 1, 1)) == pytest.approx(LAME * 1)

    def test_E_erasure_hits_errored_symbol_word2(self, chain):
        assert self.rate(chain, (1, 3, 1, 1, 0, 1)) == pytest.approx(LAME * 1)

    def test_F_erasure_on_double_errored_pair(self, chain):
        assert self.rate(chain, (1, 2, 2, 1, 1, 0)) == pytest.approx(LAME * 1)

    def test_I_flip_on_clean_partner_of_erasure(self, chain):
        assert self.rate(chain, (1, 1, 2, 1, 1, 1)) == pytest.approx(8 * LAM * 2)

    def test_L_flip_on_clean_pair_word1(self, chain):
        assert self.rate(chain, (1, 2, 1, 2, 1, 1)) == pytest.approx(8 * LAM * 29)

    def test_M_flip_on_clean_pair_word2(self, chain):
        assert self.rate(chain, (1, 2, 1, 1, 2, 1)) == pytest.approx(8 * LAM * 29)

    def test_N_flip_on_partner_of_e1(self, chain):
        assert self.rate(chain, (1, 2, 1, 0, 1, 2)) == pytest.approx(8 * LAM * 1)

    def test_O_flip_on_partner_of_e2(self, chain):
        assert self.rate(chain, (1, 2, 1, 1, 0, 2)) == pytest.approx(8 * LAM * 1)

    def test_G_H_merge_into_combined_rate(self, chain):
        """G (e1->b) and the B-target overlap is distinct; check G via a
        state where only one family can produce the target."""
        src = (0, 0, 0, 1, 0, 0)
        # G: erasure on the clean partner of the e1 symbol -> b
        assert chain.rate(src, (0, 0, 1, 0, 0, 0)) == pytest.approx(LAME * 1)
        # D: erasure on the errored symbol itself -> Y
        assert chain.rate(src, (0, 1, 0, 0, 0, 0)) == pytest.approx(LAME * 1)


class TestScrubbing:
    def test_scrub_target_merges_b_into_y(self):
        m = model_with(n=36, k=16, scrub=7.0)
        assert m.chain.rate((1, 2, 1, 1, 1, 1), (1, 3, 0, 0, 0, 0)) == 7.0

    def test_scrub_is_noop_from_scrubbed_states(self):
        m = model_with(n=36, k=16, scrub=7.0)
        # (1, 3, 0, 0, 0, 0) scrubs to itself: no self-loop emitted
        assert m.chain.rate((1, 3, 0, 0, 0, 0), (1, 3, 0, 0, 0, 0)) == 0.0


class TestFailureDynamics:
    def test_fail_reachable_and_absorbing(self):
        m = duplex_model(18, 16, seu_per_bit_day=1e-3)
        assert FAIL in m.chain.states
        assert FAIL in m.chain.absorbing_states()

    def test_either_fails_faster_than_both(self):
        either = duplex_model(18, 16, seu_per_bit_day=1e-3, fail_rule="either")
        both = duplex_model(18, 16, seu_per_bit_day=1e-3, fail_rule="both")
        t = [48.0]
        assert both.fail_probability(t)[0] < either.fail_probability(t)[0]

    def test_duplex_beats_simplex_under_permanent_faults(self):
        from repro.memory import simplex_model

        dup = duplex_model(18, 16, erasure_per_symbol_day=1e-4)
        simp = simplex_model(18, 16, erasure_per_symbol_day=1e-4)
        t = [24 * 730.0]
        assert dup.fail_probability(t)[0] < simp.fail_probability(t)[0] / 100

    def test_duplex_transient_ber_same_range_as_simplex(self):
        """Paper Section 6: Figs 5/6 are 'in the same range'."""
        from repro.memory import simplex_model

        dup = duplex_model(18, 16, seu_per_bit_day=1.7e-5)
        simp = simplex_model(18, 16, seu_per_bit_day=1.7e-5)
        t = [48.0]
        ratio = dup.ber(t)[0] / simp.ber(t)[0]
        assert 0.5 < ratio < 5.0

    def test_scrubbing_reduces_duplex_ber(self):
        base = duplex_model(18, 16, seu_per_bit_day=1.7e-5)
        scrubbed = duplex_model(
            18, 16, seu_per_bit_day=1.7e-5, scrub_period_seconds=3600.0
        )
        t = [48.0]
        assert scrubbed.ber(t)[0] < base.ber(t)[0]

    def test_ber_zero_without_faults(self):
        m = duplex_model(18, 16)
        assert np.all(m.ber([0.0, 48.0]) == 0.0)
