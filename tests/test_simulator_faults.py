"""Unit tests for Poisson fault-event generation and scrub schedules."""

import numpy as np
import pytest

from repro.simulator import (
    FaultEvent,
    FaultKind,
    event_sort_key,
    merge_event_streams,
    sample_permanent_events,
    sample_seu_events,
    scrub_schedule,
    sort_events,
)


class TestSEUSampling:
    def test_zero_rate_no_events(self):
        rng = np.random.default_rng(0)
        assert sample_seu_events(rng, 0.0, 18, 8, 100.0) == []

    def test_zero_horizon_no_events(self):
        rng = np.random.default_rng(0)
        assert sample_seu_events(rng, 1.0, 18, 8, 0.0) == []

    def test_event_fields_in_range(self):
        rng = np.random.default_rng(1)
        events = sample_seu_events(rng, 0.05, 18, 8, 10.0, module=1)
        assert events, "expected some events at this rate"
        for e in events:
            assert e.kind is FaultKind.SEU
            assert e.module == 1
            assert 0 <= e.symbol < 18
            assert 0 <= e.bit < 8
            assert 0.0 <= e.time < 10.0

    def test_mean_count_matches_poisson_rate(self):
        rng = np.random.default_rng(2)
        rate, n, m, t = 0.01, 18, 8, 10.0
        counts = [len(sample_seu_events(rng, rate, n, m, t)) for _ in range(300)]
        expected = rate * n * m * t  # 14.4
        assert np.mean(counts) == pytest.approx(expected, rel=0.1)

    def test_deterministic_with_seed(self):
        e1 = sample_seu_events(np.random.default_rng(9), 0.05, 18, 8, 10.0)
        e2 = sample_seu_events(np.random.default_rng(9), 0.05, 18, 8, 10.0)
        assert e1 == e2


class TestPermanentSampling:
    def test_event_fields(self):
        rng = np.random.default_rng(3)
        events = sample_permanent_events(rng, 0.1, 18, 8, 10.0)
        assert events
        for e in events:
            assert e.kind is FaultKind.PERMANENT
            assert e.stuck_value in (0, 1)
            assert 0 <= e.bit < 8

    def test_mean_count(self):
        rng = np.random.default_rng(4)
        counts = [
            len(sample_permanent_events(rng, 0.05, 18, 8, 10.0))
            for _ in range(300)
        ]
        assert np.mean(counts) == pytest.approx(0.05 * 18 * 10.0, rel=0.1)


class TestScrubSchedule:
    def test_periodic_schedule(self):
        events = scrub_schedule(10.0, 3.0)
        assert [e.time for e in events] == [3.0, 6.0, 9.0]
        assert all(e.kind is FaultKind.SCRUB for e in events)

    def test_no_period_no_events(self):
        assert scrub_schedule(10.0, None) == []

    def test_exponential_schedule_mean_gap(self):
        rng = np.random.default_rng(5)
        events = scrub_schedule(10_000.0, 10.0, rng=rng, exponential=True)
        times = [e.time for e in events]
        gaps = np.diff([0.0] + times)
        assert np.mean(gaps) == pytest.approx(10.0, rel=0.1)

    def test_exponential_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            scrub_schedule(10.0, 1.0, exponential=True)


class TestMerge:
    def test_merge_orders_by_time(self):
        rng = np.random.default_rng(6)
        seu = sample_seu_events(rng, 0.02, 18, 8, 20.0)
        perm = sample_permanent_events(rng, 0.02, 18, 8, 20.0)
        scrubs = scrub_schedule(20.0, 5.0)
        merged = list(merge_event_streams(seu, perm, scrubs))
        assert len(merged) == len(seu) + len(perm) + len(scrubs)
        times = [e.time for e in merged]
        assert times == sorted(times)


class TestDeterministicOrdering:
    def test_samplers_emit_sorted_streams(self):
        rng = np.random.default_rng(13)
        for events in (
            sample_seu_events(rng, 0.05, 18, 8, 20.0),
            sample_permanent_events(rng, 0.05, 18, 8, 20.0),
        ):
            assert events == sort_events(events)

    def test_equal_time_tie_break_is_total(self):
        """Simultaneous events order by kind, module, symbol, bit, mask."""
        t = 1.0
        events = [
            FaultEvent(t, FaultKind.SCRUB, 0, 0, 0),
            FaultEvent(t, FaultKind.PERMANENT, 0, 2, 1, 1),
            FaultEvent(t, FaultKind.SEU, 1, 0, 0),
            FaultEvent(t, FaultKind.SEU, 0, 5, 3),
            FaultEvent(t, FaultKind.SEU, 0, 5, 0, 0, mask=0b110),
            FaultEvent(t, FaultKind.SEU, 0, 5, 0),
        ]
        ordered = sort_events(events)
        # transients first, then permanents, then scrubs
        assert [e.kind for e in ordered] == [
            FaultKind.SEU,
            FaultKind.SEU,
            FaultKind.SEU,
            FaultKind.SEU,
            FaultKind.PERMANENT,
            FaultKind.SCRUB,
        ]
        # within SEUs: module then symbol then bit then mask
        seus = ordered[:4]
        assert [(e.module, e.symbol, e.bit, e.mask) for e in seus] == [
            (0, 5, 0, 0),
            (0, 5, 0, 0b110),
            (0, 5, 3, 0),
            (1, 0, 0, 0),
        ]

    def test_sort_is_deterministic_under_any_input_order(self):
        rng = np.random.default_rng(14)
        events = sample_seu_events(rng, 0.05, 18, 8, 20.0)
        events += [FaultEvent(e.time, e.kind, 1, e.symbol, e.bit) for e in events]
        reference = sort_events(events)
        for seed in range(5):
            shuffled = list(events)
            np.random.default_rng(seed).shuffle(shuffled)
            assert sort_events(shuffled) == reference

    def test_merge_uses_full_tie_break(self):
        t = 2.0
        a = [FaultEvent(t, FaultKind.SEU, 0, 7, 1)]
        b = [FaultEvent(t, FaultKind.SEU, 0, 3, 0)]
        c = [FaultEvent(t, FaultKind.SCRUB, 0, 0, 0)]
        merged = list(merge_event_streams(a, b, c))
        assert [event_sort_key(e) for e in merged] == sorted(
            event_sort_key(e) for e in merged
        )
        assert merged[0].symbol == 3 and merged[-1].kind is FaultKind.SCRUB
