"""End-to-end assertions of the paper's headline claims (Section 6).

These are the statements a reader takes away from the paper; each one is
checked against the reproduced pipeline, not against stored constants.
"""

import numpy as np
import pytest

from repro.analysis import (
    fig7_duplex_scrubbing,
    permanent_fault_ordering,
    table_decoder_complexity,
)
from repro.memory import duplex_model, months_to_hours, simplex_model
from repro.rs import decoding_time_cycles


class TestTransientClaims:
    def test_simplex_and_duplex_same_range_under_seu(self):
        """'the values for the BER are in the same range for all considered
        transient fault rates' (Figs. 5-6)."""
        for lam in (7.3e-7, 3.6e-6, 1.7e-5):
            s = simplex_model(18, 16, seu_per_bit_day=lam).ber([48.0])[0]
            d = duplex_model(18, 16, seu_per_bit_day=lam).ber([48.0])[0]
            assert 0.1 < d / s < 10.0

    def test_hourly_scrubbing_keeps_ber_below_1e6(self):
        """'a scrubbing frequency of lower than once per hour is sufficient
        to maintain the BER below 1e-6' (Fig. 7)."""
        model = duplex_model(
            18, 16, seu_per_bit_day=1.7e-5, scrub_period_seconds=3600.0
        )
        assert model.ber(np.linspace(0, 48, 13)).max() < 1e-6

    def test_unscrubbed_worst_case_exceeds_1e6(self):
        """Without scrubbing the worst case drifts past the 1e-6 budget —
        scrubbing is doing real work in Fig. 7."""
        model = duplex_model(18, 16, seu_per_bit_day=1.7e-5)
        assert model.ber([48.0])[0] > 1e-6

    def test_fig7_expectations(self):
        result = fig7_duplex_scrubbing(points=7)
        assert result.all_expectations_hold(), result.failed_expectations()


class TestPermanentFaultClaims:
    def test_duplex_copes_with_permanent_faults(self):
        """'the duplex arrangement allows to efficiently cope with the
        occurrence of permanent faults' — orders of magnitude better than
        simplex with the same code."""
        t = [months_to_hours(24.0)]
        for rate in (1e-4, 1e-6, 1e-8):
            s = simplex_model(18, 16, erasure_per_symbol_day=rate)
            d = duplex_model(18, 16, erasure_per_symbol_day=rate)
            from repro.memory.analytic import (
                duplex_fail_probability,
                simplex_fail_probability,
            )

            ps = simplex_fail_probability(s, t)[0]
            pd = duplex_fail_probability(d, t)[0]
            assert pd < ps / 1e3

    def test_rs3616_beats_duplex_on_ber(self):
        """'it shows a degradation in performance compared with a simplex
        system employing a RS(36,16) code' (Figs. 8-10)."""
        bers = permanent_fault_ordering(rate_per_symbol_day=1e-6)
        assert bers["simplex RS(36,16)"] < bers["duplex RS(18,16)"]

    def test_full_ordering_at_every_swept_rate(self):
        for rate in (1e-4, 1e-5, 1e-6, 1e-7):
            bers = permanent_fault_ordering(rate_per_symbol_day=rate)
            assert (
                bers["simplex RS(18,16)"]
                > bers["duplex RS(18,16)"]
                > bers["simplex RS(36,16)"]
            ), f"ordering broken at rate {rate}"


class TestComplexityClaims:
    def test_decoding_access_time_more_than_four_times_higher(self):
        """'the decoding access time ... is more than four times higher
        using the RS(36,16) arrangement'."""
        assert decoding_time_cycles(36, 16) > 4 * decoding_time_cycles(18, 16)

    def test_exact_paper_cycle_counts(self):
        assert decoding_time_cycles(36, 16) == 308
        assert decoding_time_cycles(18, 16) == 74

    def test_single_rs3616_decoder_larger_than_two_rs1816(self):
        """'a single RS(36,16) decoder will require more area than two
        RS(18,16) decoders'."""
        costs = {c.name: c for c in table_decoder_complexity()}
        assert (
            costs["simplex RS(36,16)"].area_gates
            > costs["duplex RS(18,16)"].area_gates
        )


class TestTradeoffNarrative:
    def test_duplex_is_the_balanced_design_point(self):
        """The paper's conclusion in one test: duplex RS(18,16) keeps the
        fast decoder (74 cycles), costs less area than RS(36,16), and
        buys orders of magnitude of permanent-fault resilience over the
        simplex with the same code."""
        costs = {c.name: c for c in table_decoder_complexity()}
        duplex_cost = costs["duplex RS(18,16)"]
        rs3616_cost = costs["simplex RS(36,16)"]
        assert duplex_cost.decode_cycles < rs3616_cost.decode_cycles
        assert duplex_cost.area_gates < rs3616_cost.area_gates

        bers = permanent_fault_ordering(rate_per_symbol_day=1e-6)
        assert bers["duplex RS(18,16)"] < 1e-6 * bers["simplex RS(18,16)"]
