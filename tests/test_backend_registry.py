"""Backend registry capability probing and loud numba-absent degradation.

The contract under test: a missing numba is *never* a silent slowdown.
The registry must list ``compiled`` as unavailable with the probe's
reason string, ``--engine compiled`` must exit with status 2, and
``--engine auto`` must fall back to numpy while announcing itself — a
:class:`ResilienceWarning` once per process plus an
``engine_auto_fallback`` trace event every resolution.

Numba absence is *simulated* (the probe function is monkeypatched and
re-probed) so these tests pin the degradation path identically on
machines with and without numba installed.
"""

import warnings

import pytest

from repro.cli import main
from repro.obs.trace import TraceCollector, use_collector
from repro.rs import BatchRSCodec
from repro.rs.backends import (
    BATCH_BACKENDS,
    ENGINE_CHOICES,
    BackendUnavailableError,
    auto_backend,
    backend_info,
    canonical_engine,
    create_backend,
    list_backends,
    resolve_engine,
)
from repro.rs.backends import kernels as kernels_mod
from repro.rs.backends.kernels import KERNELS_ENV, kernel_mode, numba_status
from repro.runtime.supervisor import ResilienceWarning

REASON = "numba not importable: ModuleNotFoundError(\"No module named 'numba'\")"


@pytest.fixture
def without_numba(monkeypatch):
    """Force the capability probe to report numba as missing."""
    monkeypatch.delenv(KERNELS_ENV, raising=False)
    monkeypatch.setattr(kernels_mod, "_probe_numba", lambda: (False, REASON))
    numba_status(refresh=True)
    yield
    monkeypatch.undo()
    numba_status(refresh=True)  # restore the real probe result


@pytest.fixture
def fresh_fallback_latch(monkeypatch):
    """Re-arm the once-per-process auto-fallback warning."""
    from repro.rs import backends as registry

    monkeypatch.setattr(registry, "_auto_fallback_warned", False)


class TestCapabilityMatrix:
    def test_scalar_and_numpy_always_available(self):
        infos = {info.name: info for info in list_backends()}
        assert set(infos) == set(BATCH_BACKENDS)
        for name in ("scalar", "numpy"):
            assert infos[name].available
            assert infos[name].reason == "always available"
            assert infos[name].description

    def test_compiled_unavailable_carries_probe_reason(self, without_numba):
        info = backend_info("compiled")
        assert not info.available
        assert info.reason == REASON  # verbatim, not paraphrased

    def test_compiled_available_when_python_kernels_forced(
        self, without_numba, monkeypatch
    ):
        monkeypatch.setenv(KERNELS_ENV, "python")
        mode, detail = kernel_mode()
        assert mode == "python"
        assert backend_info("compiled").available
        assert KERNELS_ENV in detail

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown RS backend"):
            backend_info("fpga")
        with pytest.raises(ValueError, match="unknown RS backend"):
            create_backend("fpga", 18, 16)


class TestCreateBackend:
    def test_compiled_unavailable_raises_loudly(self, without_numba):
        with pytest.raises(BackendUnavailableError) as excinfo:
            create_backend("compiled", 18, 16)
        assert excinfo.value.backend == "compiled"
        assert excinfo.value.reason == REASON
        assert "unavailable" in str(excinfo.value)

    def test_always_available_backends_construct(self):
        for name in ("scalar", "numpy", "batch"):
            codec = create_backend(name, 18, 16)
            assert isinstance(codec, BatchRSCodec)
            assert codec.n == 18 and codec.k == 16

    def test_compiled_constructs_with_forced_python_kernels(
        self, without_numba, monkeypatch
    ):
        monkeypatch.setenv(KERNELS_ENV, "python")
        codec = create_backend("compiled", 18, 16)
        assert codec.backend_name == "compiled"
        word = list(range(16))
        assert codec.decode(codec.encode(word)).data == word


class TestEngineResolution:
    def test_compiled_engine_unavailable_raises(self, without_numba):
        with pytest.raises(BackendUnavailableError):
            resolve_engine("compiled")

    def test_auto_falls_back_to_numpy(self, without_numba, fresh_fallback_latch):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ResilienceWarning)
            assert resolve_engine("auto") == ("batch", "numpy")

    def test_auto_fallback_warns_resilience_once(
        self, without_numba, fresh_fallback_latch
    ):
        with pytest.warns(ResilienceWarning, match="falling back to numpy"):
            assert auto_backend() == "numpy"
        # Latch engaged: the second resolution must stay quiet.
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResilienceWarning)
            assert auto_backend() == "numpy"

    def test_auto_fallback_emits_trace_event_every_time(
        self, without_numba, fresh_fallback_latch
    ):
        collector = TraceCollector()
        with use_collector(collector), warnings.catch_warnings():
            warnings.simplefilter("ignore", ResilienceWarning)
            auto_backend()
            auto_backend()
        events = collector.events("engine_auto_fallback")
        assert len(events) == 2
        for event in events:
            assert event["attrs"]["requested"] == "auto"
            assert event["attrs"]["selected"] == "numpy"
            assert event["attrs"]["reason"] == REASON

    def test_engine_families(self):
        assert resolve_engine("reference") == ("reference", None)
        assert resolve_engine("numpy") == ("batch", "numpy")
        assert resolve_engine("batch") == ("batch", "numpy")
        assert resolve_engine("scalar") == ("batch", "scalar")
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("gpu")

    def test_canonical_engine_collapses_execution_hints(self):
        assert canonical_engine("reference") == "scalar"
        for engine in ("auto", "compiled", "numpy", "scalar", "batch"):
            assert canonical_engine(engine) == "batch"
        with pytest.raises(ValueError, match="unknown engine"):
            canonical_engine("gpu")

    def test_engine_choices_cover_every_resolution(self):
        for engine in ENGINE_CHOICES:
            canonical_engine(engine)  # no engine name is unmapped


class TestCLIDegradation:
    CAMPAIGN = ["campaign", "--trials", "20", "--chunk-size", "10"]

    def test_engine_compiled_exits_2_with_reason(self, without_numba, capsys):
        code = main(self.CAMPAIGN + ["--engine", "compiled"])
        assert code == 2
        err = capsys.readouterr().err
        assert "compiled" in err and "unavailable" in err
        assert "repro engines" in err  # points at the capability matrix

    def test_engine_auto_still_runs(
        self, without_numba, fresh_fallback_latch, capsys
    ):
        with pytest.warns(ResilienceWarning):
            assert main(self.CAMPAIGN + ["--engine", "auto"]) == 0
        assert "simplex" in capsys.readouterr().out

    def test_engines_subcommand_shows_unavailable_reason(
        self, without_numba, capsys
    ):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ResilienceWarning)
            assert main(["engines"]) == 0
        out = capsys.readouterr().out
        for name in BATCH_BACKENDS:
            assert name in out
        assert "UNAVAILABLE" in out
        assert REASON in out
        assert "resolves to: numpy" in out

    def test_engines_subcommand_with_python_kernels(
        self, without_numba, monkeypatch, capsys
    ):
        monkeypatch.setenv(KERNELS_ENV, "python")
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "resolves to: compiled" in out
