"""Tests for the named fault-physics scenario catalog."""

import pytest

from repro.simulator import (
    SCENARIOS,
    get_scenario,
    parse_pattern,
    parse_schedule,
    render_catalog,
    scenario_names,
)
from repro.simulator.campaign import run_campaign

EXPECTED_NAMES = [
    "iid-baseline",
    "mbu-cluster",
    "row-burst",
    "col-burst",
    "mixed-field",
    "solar-flare-mission",
    "stuck-row-permanent",
    "beyond-capacity-stress",
]

IN_MODEL = {"iid-baseline", "solar-flare-mission"}


def _run(name):
    """Run a preset exactly as the CLI defaults would (batch, chunk 512)."""
    s = get_scenario(name)
    return run_campaign(
        s.cells,
        n=s.n,
        k=s.k,
        m=s.m,
        t_end_hours=s.t_end_hours,
        trials=s.trials,
        base_seed=s.seed,
        engine="batch",
        chunk_size=512,
    )


class TestCatalog:
    def test_expected_names_in_order(self):
        assert scenario_names() == EXPECTED_NAMES

    def test_every_cell_spec_is_canonical(self):
        """Specs parse, and are already in canonical grammar text."""
        for scenario in SCENARIOS.values():
            assert scenario.cells, scenario.name
            for cell in scenario.cells:
                if cell.pattern is not None:
                    assert parse_pattern(cell.pattern).spec() == cell.pattern
                if cell.schedule is not None:
                    assert (
                        parse_schedule(cell.schedule).spec() == cell.schedule
                    )

    def test_in_model_classification(self):
        for scenario in SCENARIOS.values():
            assert scenario.iid_reducible == (scenario.name in IN_MODEL), (
                scenario.name
            )

    def test_presets_are_fully_seeded(self):
        seeds = [s.seed for s in SCENARIOS.values()]
        assert len(set(seeds)) == len(seeds), "per-preset seeds must differ"
        for scenario in SCENARIOS.values():
            assert scenario.trials > 0
            assert scenario.t_end_hours > 0

    def test_get_scenario_unknown_name(self):
        with pytest.raises(ValueError, match="iid-baseline"):
            get_scenario("no-such-scenario")

    def test_render_catalog_lists_every_preset(self):
        text = render_catalog()
        for name in EXPECTED_NAMES:
            assert name in text
        assert "in-model" in text and "out-of-model" in text


class TestScenarioRuns:
    def test_iid_baseline_agrees_with_analytics_and_never_miscorrects(self):
        rows = _run("iid-baseline")
        for row in rows:
            assert row.model_fail_probability is not None
            assert row.consistent, (
                f"{row.cell.label()}: model {row.model_fail_probability} "
                f"outside [{row.estimate.ci_low}, {row.estimate.ci_high}]"
            )
            assert row.estimate.silent_miscorrections == 0
            assert row.estimate.detected_uncorrectable >= 0

    def test_solar_flare_mission_matches_mission_profile(self):
        """The scheduled i.i.d. preset is predicted by the mission chains."""
        rows = _run("solar-flare-mission")
        for row in rows:
            assert row.model_fail_probability is not None
            assert row.consistent, row.cell.label()

    def test_beyond_capacity_stress_miscorrects_where_baseline_does_not(self):
        rows = _run("beyond-capacity-stress")
        for row in rows:
            # out-of-model: no analytic column, graceful degradation
            assert row.model_fail_probability is None
            assert row.consistent  # vacuously — nothing to contradict
            assert row.estimate.silent_miscorrections > 0, row.cell.label()
            assert row.estimate.detected_uncorrectable > 0
            assert row.estimate.failures == (
                row.estimate.silent_miscorrections
                + row.estimate.detected_uncorrectable
            )

    def test_out_of_model_preset_reports_null_model(self):
        s = get_scenario("mbu-cluster")
        rows = run_campaign(
            s.cells,
            n=s.n,
            k=s.k,
            m=s.m,
            t_end_hours=s.t_end_hours,
            trials=40,
            base_seed=s.seed,
            engine="batch",
            chunk_size=512,
        )
        for row in rows:
            assert row.model_fail_probability is None
            assert row.consistent
            assert row.estimate.silent_miscorrections is not None
            assert row.estimate.detected_uncorrectable is not None
