"""Differential suite: the batch codec is bit-identical to the scalar codec.

Every supported configuration drives random batches through
:class:`repro.rs.batch.BatchRSCodec` and the scalar
:class:`repro.rs.codec.RSCode` side by side and demands *symbol-identical*
outcomes for encode, clean decode, random-error decode and erasure decode
— including capability-boundary patterns ``2*re + er == n - k`` and
uncorrectable words, which must surface the same
:class:`~repro.rs.RSDecodingError` on both paths.  This is the lockdown
that lets every later performance PR trust the batch layer.
"""

import numpy as np
import pytest

from repro.perf import PerfCounters
from repro.rs import BatchRSCodec, RSCode, RSDecodingError

# (n, k, m) spanning all supported symbol widths of the batch layer.
CONFIGS = [
    (7, 3, 3),
    (7, 5, 3),
    (15, 9, 4),
    (15, 11, 4),
    (18, 16, 8),
    (36, 16, 8),
    (255, 223, 8),
]


@pytest.fixture(params=CONFIGS, ids=lambda c: f"RS({c[0]},{c[1]})m{c[2]}")
def pair(request):
    n, k, m = request.param
    scalar = RSCode(n, k, m=m)
    return scalar, BatchRSCodec(n, k, m=m, scalar=scalar)


def random_batch(rng, code, batch):
    return rng.integers(0, code.gf.order, size=(batch, code.k))


def assert_same_result(batch_outcome, scalar_call):
    """Batch entry and scalar call must agree result-for-result."""
    try:
        expected = scalar_call()
    except RSDecodingError as exc:
        assert isinstance(batch_outcome, RSDecodingError), (
            f"scalar raised {exc!r} but batch returned {batch_outcome!r}"
        )
        assert str(batch_outcome) == str(exc)
        return
    assert not isinstance(batch_outcome, RSDecodingError), (
        f"batch raised {batch_outcome!r} but scalar decoded"
    )
    assert batch_outcome.data == expected.data
    assert batch_outcome.codeword == expected.codeword
    assert batch_outcome.num_errors == expected.num_errors
    assert batch_outcome.num_erasures == expected.num_erasures
    assert batch_outcome.corrected == expected.corrected
    assert batch_outcome.error_positions == expected.error_positions


class TestEncodeDifferential:
    def test_encode_batch_matches_scalar(self, pair):
        scalar, batch = pair
        rng = np.random.default_rng(101)
        words = random_batch(rng, scalar, 40)
        encoded = batch.encode_batch(words)
        assert encoded.shape == (40, scalar.n)
        for row, data in zip(encoded, words):
            assert row.tolist() == scalar.encode(data.tolist())

    def test_encoded_rows_are_codewords(self, pair):
        scalar, batch = pair
        rng = np.random.default_rng(102)
        encoded = batch.encode_batch(random_batch(rng, scalar, 16))
        assert batch.is_codeword_mask(encoded).all()
        assert all(scalar.is_codeword(row.tolist()) for row in encoded)


class TestCleanDecodeDifferential:
    def test_clean_decode_takes_fast_path_and_matches(self, pair):
        scalar, batch = pair
        counters = PerfCounters()
        batch.counters = counters
        rng = np.random.default_rng(103)
        encoded = batch.encode_batch(random_batch(rng, scalar, 24))
        report = batch.decode_batch(encoded)
        assert report.clean.all() and report.ok.all()
        assert counters.clean_fast_path == 24
        assert counters.scalar_fallbacks == 0
        for i, row in enumerate(encoded):
            assert_same_result(
                report[i], lambda row=row: scalar.decode(row.tolist())
            )

    def test_clean_decode_with_benign_erasures(self, pair):
        """Erased positions that happen to hold correct values."""
        scalar, batch = pair
        rng = np.random.default_rng(104)
        encoded = batch.encode_batch(random_batch(rng, scalar, 12))
        erasures = [
            sorted(
                rng.choice(scalar.n, size=min(i % 4, scalar.nsym), replace=False)
                .astype(int)
                .tolist()
            )
            for i in range(12)
        ]
        report = batch.decode_batch(encoded, erasures)
        for i, row in enumerate(encoded):
            assert_same_result(
                report[i],
                lambda row=row, e=erasures[i]: scalar.decode(
                    row.tolist(), erasure_positions=e
                ),
            )
            assert report.result(i).num_erasures == len(erasures[i])


def corrupt(rng, code, codeword, num_errors, num_erasures):
    """Apply distinct-position random errors + erasures; return word, erasures."""
    word = list(codeword)
    positions = rng.choice(
        code.n, size=num_errors + num_erasures, replace=False
    ).astype(int)
    error_pos = positions[:num_errors]
    erasure_pos = sorted(int(p) for p in positions[num_errors:])
    for p in positions:  # corrupt erased positions too (worst case)
        word[p] ^= int(rng.integers(1, code.gf.order))
    return word, erasure_pos, error_pos


class TestErrorDecodeDifferential:
    def test_random_correctable_errors(self, pair):
        scalar, batch = pair
        rng = np.random.default_rng(105)
        words = random_batch(rng, scalar, 30)
        encoded = batch.encode_batch(words)
        received = []
        for row in encoded:
            re = int(rng.integers(0, scalar.t + 1))
            word, _, _ = corrupt(rng, scalar, row.tolist(), re, 0)
            received.append(word)
        report = batch.decode_batch(np.asarray(received))
        for i, word in enumerate(received):
            assert_same_result(
                report[i], lambda w=word: scalar.decode(w)
            )

    def test_error_erasure_mixes_at_capability_boundary(self, pair):
        """Every boundary pattern 2*re + er == n - k must decode identically."""
        scalar, batch = pair
        rng = np.random.default_rng(106)
        received, erasures = [], []
        patterns = [
            (re, scalar.nsym - 2 * re) for re in range(scalar.t + 1)
        ]
        for re, er in patterns * 3:
            data = random_batch(rng, scalar, 1)[0]
            codeword = scalar.encode(data.tolist())
            word, erasure_pos, _ = corrupt(rng, scalar, codeword, re, er)
            received.append(word)
            erasures.append(erasure_pos)
        report = batch.decode_batch(np.asarray(received), erasures)
        for i, word in enumerate(received):
            assert_same_result(
                report[i],
                lambda w=word, e=erasures[i]: scalar.decode(
                    w, erasure_positions=e
                ),
            )

    def test_uncorrectable_words_raise_identically(self, pair):
        """Beyond-capability patterns: same error type, same message."""
        scalar, batch = pair
        rng = np.random.default_rng(107)
        received, erasures = [], []
        for _ in range(20):
            data = random_batch(rng, scalar, 1)[0]
            codeword = scalar.encode(data.tolist())
            re = scalar.t + 1 + int(rng.integers(0, max(1, scalar.t)))
            re = min(re, scalar.n)
            word, _, _ = corrupt(rng, scalar, codeword, re, 0)
            received.append(word)
            erasures.append([])
        # Also: too many erasures must be rejected identically.
        data = random_batch(rng, scalar, 1)[0]
        codeword = scalar.encode(data.tolist())
        word, erasure_pos, _ = corrupt(rng, scalar, codeword, 0, scalar.nsym)
        received.append(word)
        erasures.append(sorted(set(erasure_pos) | {0, 1, scalar.n - 1}))
        report = batch.decode_batch(np.asarray(received), erasures)
        for i, word in enumerate(received):
            assert_same_result(
                report[i],
                lambda w=word, e=erasures[i]: scalar.decode(
                    w, erasure_positions=e
                ),
            )

    def test_mixed_batch_masks_are_consistent(self, pair):
        """ok/clean masks agree with the per-word outcomes."""
        scalar, batch = pair
        rng = np.random.default_rng(108)
        encoded = batch.encode_batch(random_batch(rng, scalar, 9))
        received = []
        for i, row in enumerate(encoded):
            word = row.tolist()
            if i % 3 == 1:  # correctable
                word, _, _ = corrupt(rng, scalar, word, 1, 0)
            elif i % 3 == 2:  # very likely uncorrectable
                word, _, _ = corrupt(
                    rng, scalar, word, min(scalar.n, scalar.nsym + 1), 0
                )
            received.append(word)
        report = batch.decode_batch(np.asarray(received))
        assert len(report) == 9
        for i in range(9):
            outcome = report[i]
            assert report.ok[i] == (not isinstance(outcome, RSDecodingError))
            if report.clean[i]:
                assert report.ok[i]
                assert not outcome.corrected
        assert report.num_clean + report.num_fallback == 9


class TestErasureHeavyDifferential:
    """Words where erasures dominate or exhaust the budget entirely."""

    def test_full_erasure_budget_no_errors(self, pair):
        """er == n - k with zero errors is exactly at capability: every
        word must decode, identically, through the erasure-only path."""
        scalar, batch = pair
        rng = np.random.default_rng(110)
        received, erasures = [], []
        for _ in range(12):
            data = random_batch(rng, scalar, 1)[0]
            codeword = scalar.encode(data.tolist())
            word, erasure_pos, _ = corrupt(
                rng, scalar, codeword, 0, scalar.nsym
            )
            received.append(word)
            erasures.append(erasure_pos)
        report = batch.decode_batch(np.asarray(received), erasures)
        assert report.ok.all()
        for i, word in enumerate(received):
            assert_same_result(
                report[i],
                lambda w=word, e=erasures[i]: scalar.decode(
                    w, erasure_positions=e
                ),
            )
            assert report.result(i).num_erasures == scalar.nsym

    def test_erasure_dominated_mixes(self, pair):
        """Mixes with er > 2*re (erasure-heavy but within capability)."""
        scalar, batch = pair
        rng = np.random.default_rng(111)
        received, erasures = [], []
        for _ in range(15):
            er = int(rng.integers(1, scalar.nsym + 1))
            re = int(rng.integers(0, (scalar.nsym - er) // 2 + 1))
            data = random_batch(rng, scalar, 1)[0]
            codeword = scalar.encode(data.tolist())
            word, erasure_pos, _ = corrupt(rng, scalar, codeword, re, er)
            received.append(word)
            erasures.append(erasure_pos)
        report = batch.decode_batch(np.asarray(received), erasures)
        assert report.ok.all()
        for i, word in enumerate(received):
            assert_same_result(
                report[i],
                lambda w=word, e=erasures[i]: scalar.decode(
                    w, erasure_positions=e
                ),
            )

    def test_over_erased_words_rejected_identically(self, pair):
        """er > n - k must fail on both paths before the syndrome stage."""
        scalar, batch = pair
        rng = np.random.default_rng(112)
        received, erasures = [], []
        for extra in (1, 2):
            er = min(scalar.nsym + extra, scalar.n)
            data = random_batch(rng, scalar, 1)[0]
            codeword = scalar.encode(data.tolist())
            word, erasure_pos, _ = corrupt(rng, scalar, codeword, 0, er)
            received.append(word)
            erasures.append(erasure_pos)
        report = batch.decode_batch(np.asarray(received), erasures)
        assert not report.ok.any()
        for i, word in enumerate(received):
            assert_same_result(
                report[i],
                lambda w=word, e=erasures[i]: scalar.decode(
                    w, erasure_positions=e
                ),
            )


class TestBeyondCapacityDifferential:
    """Patterns one or more units past 2*re + er == n - k."""

    def test_one_beyond_capacity_mixes(self, pair):
        """Every (re, er) with 2*re + er == n - k + 1: the outcome —
        detection or identical miscorrection — must match word-for-word."""
        scalar, batch = pair
        rng = np.random.default_rng(113)
        budget = scalar.nsym + 1
        received, erasures = [], []
        for re in range(budget // 2 + 1):
            er = budget - 2 * re
            if re + er > scalar.n:
                continue
            for _ in range(3):
                data = random_batch(rng, scalar, 1)[0]
                codeword = scalar.encode(data.tolist())
                word, erasure_pos, _ = corrupt(rng, scalar, codeword, re, er)
                received.append(word)
                erasures.append(erasure_pos)
        report = batch.decode_batch(np.asarray(received), erasures)
        for i, word in enumerate(received):
            assert_same_result(
                report[i],
                lambda w=word, e=erasures[i]: scalar.decode(
                    w, erasure_positions=e
                ),
            )

    def test_far_beyond_capacity_saturated_errors(self, pair):
        """Heavily corrupted words (every symbol flipped) still agree."""
        scalar, batch = pair
        rng = np.random.default_rng(114)
        received = []
        for _ in range(6):
            data = random_batch(rng, scalar, 1)[0]
            codeword = scalar.encode(data.tolist())
            word, _, _ = corrupt(rng, scalar, codeword, scalar.n, 0)
            received.append(word)
        report = batch.decode_batch(np.asarray(received))
        for i, word in enumerate(received):
            assert_same_result(report[i], lambda w=word: scalar.decode(w))

    def test_beyond_capacity_with_erasures_and_errors_mixed_batch(self, pair):
        """A single batch mixing within-capability, boundary and beyond:
        masks and outcomes must be per-word independent."""
        scalar, batch = pair
        rng = np.random.default_rng(115)
        specs = [
            (0, 0),
            (scalar.t, 0),
            (0, scalar.nsym),
            ((scalar.nsym + 1) // 2, 1 - (scalar.nsym % 2) + 1),
            (0, min(scalar.nsym + 1, scalar.n)),
        ]
        received, erasures, within = [], [], []
        for re, er in specs:
            data = random_batch(rng, scalar, 1)[0]
            codeword = scalar.encode(data.tolist())
            word, erasure_pos, _ = corrupt(rng, scalar, codeword, re, er)
            received.append(word)
            erasures.append(erasure_pos)
            within.append(2 * re + er <= scalar.nsym)
        report = batch.decode_batch(np.asarray(received), erasures)
        for i, word in enumerate(received):
            assert_same_result(
                report[i],
                lambda w=word, e=erasures[i]: scalar.decode(
                    w, erasure_positions=e
                ),
            )
            if within[i]:
                assert report.ok[i]


class TestBatchValidation:
    def test_wrong_shapes_rejected(self, pair):
        scalar, batch = pair
        with pytest.raises(ValueError, match="batch"):
            batch.encode_batch(np.zeros((2, scalar.k + 1), dtype=int))
        with pytest.raises(ValueError, match="batch"):
            batch.decode_batch(np.zeros((2, scalar.n + 1), dtype=int))

    def test_erasure_list_length_must_match(self, pair):
        scalar, batch = pair
        rng = np.random.default_rng(109)
        encoded = batch.encode_batch(random_batch(rng, scalar, 3))
        with pytest.raises(ValueError, match="erasure_positions"):
            batch.decode_batch(encoded, [[0]])

    def test_out_of_range_symbols_rejected(self, pair):
        scalar, batch = pair
        bad = np.zeros((1, scalar.n), dtype=int)
        bad[0, 0] = scalar.gf.order
        with pytest.raises(ValueError, match="outside"):
            batch.decode_batch(bad)

    def test_empty_batch(self, pair):
        scalar, batch = pair
        assert batch.encode_batch(np.zeros((0, scalar.k), dtype=int)).shape == (
            0,
            scalar.n,
        )
        report = batch.decode_batch(np.zeros((0, scalar.n), dtype=int))
        assert len(report) == 0
        assert report.num_clean == 0 and report.num_failures == 0

    def test_mismatched_scalar_codec_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            BatchRSCodec(18, 16, m=8, scalar=RSCode(18, 14, m=8))


class TestSyndromeOverflowRegression:
    """Regression: n=255 GF(2^8) batches in a signed narrow dtype.

    A full-length byte codeword handed over as ``int8`` wraps every
    symbol >= 128 negative.  The syndrome path used to feed those values
    straight into the log-table gather, where numpy's negative indexing
    silently produced a *wrong* syndrome — capable of proving a dirty
    word "clean" and skipping decode entirely.  The entry point now
    range-checks (raising ``ValueError``), and well-typed full-length
    batches must agree symbol-for-symbol with the scalar codec.
    """

    N, K, M = 255, 223, 8

    @pytest.fixture()
    def pair255(self):
        scalar = RSCode(self.N, self.K, m=self.M)
        return scalar, BatchRSCodec(self.N, self.K, m=self.M, scalar=scalar)

    def _high_symbol_batch(self, scalar, rng, rows=4):
        """Encoded words guaranteed to contain symbols >= 128."""
        data = rng.integers(128, 256, size=(rows, self.K))
        codewords = np.array([scalar.encode(row.tolist()) for row in data])
        assert (codewords >= 128).any(axis=1).all()  # int8 would wrap these
        return codewords

    def test_signed_int8_batch_rejected_not_silently_wrong(self, pair255):
        scalar, batch = pair255
        rng = np.random.default_rng(255)
        wrapped = self._high_symbol_batch(scalar, rng).astype(np.int8)
        assert (wrapped < 0).any()  # the hazard is real for this input
        with pytest.raises(ValueError, match="outside"):
            batch.syndromes_batch(wrapped)
        with pytest.raises(ValueError, match="outside"):
            batch.is_codeword_mask(wrapped)
        with pytest.raises(ValueError, match="outside"):
            batch.decode_batch(wrapped)

    def test_uint8_full_length_syndromes_match_scalar(self, pair255):
        from repro.rs.syndromes import compute_syndromes

        scalar, batch = pair255
        rng = np.random.default_rng(256)
        received = self._high_symbol_batch(scalar, rng)
        # Corrupt one high-value symbol per word so syndromes are nonzero.
        for row in received:
            row[int(rng.integers(0, self.N))] ^= 0xFF
        got = batch.syndromes_batch(received.astype(np.uint8))
        for i, word in enumerate(received):
            expected = compute_syndromes(
                scalar.gf, word.tolist(), scalar.nsym, scalar.fcr
            )
            assert got[i].tolist() == expected

    def test_uint8_clean_words_stay_clean_and_decode(self, pair255):
        scalar, batch = pair255
        rng = np.random.default_rng(257)
        codewords = self._high_symbol_batch(scalar, rng).astype(np.uint8)
        assert batch.is_codeword_mask(codewords).all()
        report = batch.decode_batch(codewords)
        assert report.ok.all() and report.clean.all()
        for i in range(len(codewords)):
            assert report[i].codeword == codewords[i].astype(int).tolist()
