"""Unit tests for the three transient solvers and their agreement."""

import math

import numpy as np
import pytest
from scipy import sparse
from scipy.stats import erlang

from repro.markov import CTMC
from repro.markov.solvers import (
    TRANSIENT_SOLVERS,
    transient_expm,
    transient_ode,
    transient_uniformization,
    uniformization_propagate,
)
from repro.obs import trace


def erlang_chain(stages: int, rate: float) -> CTMC:
    """A pure birth chain: 0 -> 1 -> ... -> stages, all at ``rate``."""
    states = list(range(stages + 1))
    transitions = [(i, i + 1, rate) for i in range(stages)]
    return CTMC(states, transitions, 0)


def random_chain(rng: np.random.Generator, n: int) -> CTMC:
    states = list(range(n))
    transitions = []
    for i in range(n):
        for j in range(n):
            if i != j and rng.uniform() < 0.5:
                transitions.append((i, j, float(rng.uniform(0.1, 2.0))))
    return CTMC(states, transitions, 0)


class TestSolverRegistry:
    def test_three_methods_registered(self):
        assert set(TRANSIENT_SOLVERS) == {"uniformization", "expm", "ode"}


class TestAgainstClosedForms:
    @pytest.mark.parametrize("solver", [transient_uniformization, transient_expm])
    def test_erlang_absorption(self, solver):
        """Absorbing-state probability equals the Erlang CDF."""
        stages, rate = 4, 1.5
        chain = erlang_chain(stages, rate)
        times = np.array([0.1, 0.5, 1.0, 2.0, 5.0])
        probs = solver(chain, times)
        expected = erlang.cdf(times, stages, scale=1.0 / rate)
        assert np.allclose(probs[:, stages], expected, rtol=1e-9)

    def test_ode_erlang_absorption(self):
        stages, rate = 4, 1.5
        chain = erlang_chain(stages, rate)
        times = np.array([0.5, 2.0])
        probs = transient_ode(chain, times)
        expected = erlang.cdf(times, stages, scale=1.0 / rate)
        assert np.allclose(probs[:, stages], expected, rtol=1e-6)

    def test_uniformization_deep_tail_relative_accuracy(self):
        """The headline property: tiny absorption probabilities keep
        relative accuracy (this is what resolves the paper's Figs. 8-10)."""
        stages, rate = 6, 1e-6
        chain = erlang_chain(stages, rate)
        t = 10.0  # rate * t = 1e-5 per hop -> P ~ (1e-5)^6 / 6! ~ 1e-33
        probs = transient_uniformization(chain, np.array([t]))
        expected = erlang.cdf(t, stages, scale=1.0 / rate)
        assert expected < 1e-30  # confirm we are genuinely deep in the tail
        assert probs[0, stages] == pytest.approx(expected, rel=1e-10)


class TestSolverCrossAgreement:
    def test_all_solvers_agree_on_random_chains(self):
        rng = np.random.default_rng(123)
        for trial in range(5):
            chain = random_chain(rng, n=int(rng.integers(3, 8)))
            times = np.array([0.3, 1.7])
            uni = transient_uniformization(chain, times)
            exp = transient_expm(chain, times)
            ode = transient_ode(chain, times)
            assert np.allclose(uni, exp, atol=1e-10), f"trial {trial}"
            assert np.allclose(uni, ode, atol=1e-7), f"trial {trial}"

    def test_rows_remain_distributions(self):
        rng = np.random.default_rng(7)
        chain = random_chain(rng, 6)
        for method in TRANSIENT_SOLVERS:
            probs = chain.transient(np.linspace(0, 4, 5), method=method)
            assert np.all(probs >= -1e-12)
            assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-8)


class TestUniformizationInternals:
    def test_propagate_zero_time_is_identity(self):
        rates = sparse.csr_matrix(np.array([[0.0, 1.0], [0.0, 0.0]]))
        p0 = np.array([0.3, 0.7])
        out = uniformization_propagate(rates, p0, 0.0)
        assert np.allclose(out, p0)

    def test_propagate_negative_time_rejected(self):
        rates = sparse.csr_matrix((2, 2))
        with pytest.raises(ValueError):
            uniformization_propagate(rates, np.array([1.0, 0.0]), -1.0)

    def test_propagate_no_rates_is_static(self):
        rates = sparse.csr_matrix((3, 3))
        p0 = np.array([0.2, 0.3, 0.5])
        assert np.allclose(uniformization_propagate(rates, p0, 10.0), p0)

    def test_large_lt_fallback(self):
        """Exercise the log-domain windowed path (L*t > ~709)."""
        chain = CTMC(["A", "B"], [("A", "B", 1.0), ("B", "A", 1.0)], "A")
        probs = transient_uniformization(chain, np.array([800.0]))
        # equilibrium of the symmetric chain is (1/2, 1/2)
        assert probs[0, 0] == pytest.approx(0.5, rel=1e-6)
        assert probs[0].sum() == pytest.approx(1.0, rel=1e-9)

    def test_large_lt_fallback_matches_expm_off_equilibrium(self):
        """Pin the windowed fallback against the independent Padé solver
        on a *stiff* chain that has NOT relaxed to equilibrium at
        L*t ~ 800 (the equilibrium check above would pass even for a
        subtly wrong window): a fast A<->B oscillation sets L high while
        absorption into C stays slow."""
        chain = CTMC(
            ["A", "B", "C"],
            [("A", "B", 1000.0), ("B", "A", 1000.0), ("A", "C", 1e-3)],
            "A",
        )
        t = 0.8  # L*t ~ 800 -> e^{-Lt} underflows -> fallback path
        uni = transient_uniformization(chain, np.array([t]))
        exp = transient_expm(chain, np.array([t]))
        assert 0.0 < uni[0, 2] < 1e-3  # genuinely mid-transient
        assert np.allclose(uni, exp, atol=1e-10)

    def test_large_lt_window_honours_rtol(self):
        """A stricter rtol must widen the summation window (the old code
        ignored the caller's rtol and always used the fixed k=10 width)."""
        rates = sparse.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        p0 = np.array([1.0, 0.0])
        windows = {}
        for rtol in (1e-14, 1e-40):
            collector = trace.TraceCollector()
            with trace.use_collector(collector):
                uniformization_propagate(rates, p0, 800.0, rtol=rtol)
            [span] = collector.spans("uniformization_propagate")
            assert span["attrs"]["fallback"] is True
            attrs = span["attrs"]
            windows[rtol] = attrs["window_hi"] - attrs["window_lo"]
            # the discarded Poisson tail must stay below ~exp(-k^2/2)
            assert attrs["tail_bound"] < 1e-21
        assert windows[1e-40] > windows[1e-14]

    def test_composition_property(self):
        """Propagating t1 then t2 equals propagating t1 + t2."""
        rng = np.random.default_rng(5)
        chain = random_chain(rng, 5)
        rates = chain.rate_matrix
        direct = uniformization_propagate(rates, chain.p0, 1.3)
        stepped = uniformization_propagate(
            rates, uniformization_propagate(rates, chain.p0, 0.9), 0.4
        )
        assert np.allclose(direct, stepped, atol=1e-12)


class TestInputHandling:
    def test_negative_times_rejected_everywhere(self):
        chain = erlang_chain(2, 1.0)
        for solver in (transient_uniformization, transient_expm, transient_ode):
            with pytest.raises(ValueError):
                solver(chain, np.array([-0.5]))

    def test_expm_caches_uniform_grid(self):
        chain = erlang_chain(3, 1.0)
        times = np.linspace(0, 5, 6)
        probs = transient_expm(chain, times)
        # spot-check against uniformization
        uni = transient_uniformization(chain, times)
        assert np.allclose(probs, uni, atol=1e-11)


class TestExpmStepCache:
    @staticmethod
    def _cache_stats(chain, times):
        collector = trace.TraceCollector()
        with trace.use_collector(collector):
            transient_expm(chain, times)
        [span] = collector.spans("transient_expm")
        return span["attrs"]["pade_evals"], span["attrs"]["cache_hits"]

    def test_uniform_grid_costs_one_pade_evaluation(self):
        chain = erlang_chain(3, 1.0)
        pade_evals, cache_hits = self._cache_stats(
            chain, np.linspace(0.5, 5.0, 10)
        )
        assert pade_evals == 1
        assert cache_hits == 9

    def test_fp_drift_does_not_defeat_cache(self):
        """A grid built by repeated ``t += 0.1`` carries sub-ulp drift in
        its differences; keying the cache on the exact float would
        silently re-run Padé for every step."""
        t, grid = 0.0, []
        for _ in range(50):
            t += 0.1
            grid.append(t)
        diffs = np.diff(np.array(grid))
        assert len(set(diffs.tolist())) > 1  # drift genuinely present
        pade_evals, cache_hits = self._cache_stats(
            erlang_chain(3, 1.0), np.array(grid)
        )
        assert pade_evals == 1
        assert cache_hits == 49

    def test_distinct_steps_are_not_conflated(self):
        chain = erlang_chain(3, 1.0)
        pade_evals, _ = self._cache_stats(chain, np.array([0.5, 1.5, 2.0]))
        assert pade_evals == 2  # dt = 0.5 (x2, cached) and dt = 1.0

    def test_cache_misses_accumulate_in_metrics_registry(self):
        from repro.obs.metrics import MetricsRegistry, set_registry

        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            transient_expm(erlang_chain(2, 1.0), np.linspace(0.5, 2.0, 4))
        finally:
            set_registry(previous)
        assert fresh.counter("repro.solver.expm.pade_evals").value == 1
        assert fresh.counter("repro.solver.expm.cache_hits").value == 3

    def test_ode_all_zero_times(self):
        chain = erlang_chain(2, 1.0)
        probs = transient_ode(chain, np.array([0.0, 0.0]))
        assert np.allclose(probs, np.tile(chain.p0, (2, 1)))

    def test_scalar_like_single_time(self):
        chain = erlang_chain(2, 2.0)
        probs = chain.transient([1.0])
        assert probs.shape == (1, 3)
        assert probs[0, 0] == pytest.approx(math.exp(-2.0), rel=1e-10)
