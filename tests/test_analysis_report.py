"""Tests for the markdown report generator."""

from repro.analysis import generate_report, write_report


class TestGenerateReport:
    def test_contains_all_artifacts(self):
        text = generate_report(points=3)
        for fig in ("fig5", "fig6", "fig7", "fig8", "fig9", "fig10"):
            assert f"## {fig}:" in text
        assert "decoder complexity" in text
        assert "permanent-fault comparison" in text

    def test_reports_expectation_status(self):
        text = generate_report(points=3)
        assert "all paper expectations hold" in text
        assert "FAILED" not in text

    def test_embeds_plots_and_tables(self):
        text = generate_report(points=5)
        assert "hours  " in text      # table header
        assert "1e-" in text          # log axis labels from the plot
        assert "o " in text           # plot legend marker

    def test_write_report_creates_parents(self, tmp_path):
        path = write_report(tmp_path / "deep" / "report.md", points=3)
        assert path.exists()
        assert path.read_text().startswith("# Reproduction report")
