"""Tests for the behavioral decoder pipeline timing model."""

import pytest

from repro.rs import (
    decode_time_seconds,
    decoder_timing,
    decoding_time_cycles,
    validate_paper_formula,
)
from repro.rs.pipeline import KE_CYCLES_PER_ITER


class TestStageBudgets:
    def test_stage_names(self):
        timing = decoder_timing(18, 16)
        assert list(timing.stage_budgets()) == [
            "syndrome",
            "key_equation",
            "chien_forney",
            "correction_readout",
        ]

    def test_syndrome_stage_is_one_cycle_per_symbol(self):
        assert decoder_timing(36, 16).stage_budgets()["syndrome"] == 36

    def test_key_equation_iterations(self):
        budgets = decoder_timing(36, 16).stage_budgets()
        assert budgets["key_equation"] == KE_CYCLES_PER_ITER * 2 * 20


class TestPaperFormula:
    @pytest.mark.parametrize(
        "n,k", [(18, 16), (36, 16), (255, 223), (15, 11), (7, 3)]
    )
    def test_model_reproduces_formula(self, n, k):
        """The staged datapath derives Td = 3n + 10(n-k) structurally."""
        assert validate_paper_formula(n, k)
        assert decoder_timing(n, k).latency_cycles == decoding_time_cycles(n, k)

    def test_paper_values(self):
        assert decoder_timing(18, 16).latency_cycles == 74
        assert decoder_timing(36, 16).latency_cycles == 308


class TestThroughput:
    def test_bottleneck_rs1816_is_key_equation_narrowly(self):
        timing = decoder_timing(18, 16)
        # 20-cycle key equation just edges out the 18-cycle symbol stages
        assert timing.bottleneck_cycles == 20

    def test_bottleneck_rs3616_is_key_equation(self):
        timing = decoder_timing(36, 16)
        # 200-cycle key equation dwarfs the 36-cycle symbol stages: the
        # architectural reason the stronger code's throughput collapses
        assert timing.bottleneck_cycles == 200

    def test_throughput_is_inverse_bottleneck(self):
        timing = decoder_timing(18, 16)
        assert timing.pipelined_throughput_words_per_cycle == pytest.approx(
            1 / 20
        )


class TestWallClock:
    def test_decode_time_at_50mhz(self):
        assert decode_time_seconds(18, 16, 50e6) == pytest.approx(74 / 50e6)

    def test_invalid_clock(self):
        with pytest.raises(ValueError):
            decode_time_seconds(18, 16, 0.0)

    def test_invalid_code(self):
        with pytest.raises(ValueError):
            decoder_timing(16, 16)
