"""Tests for piecewise-constant mission profiles."""

import numpy as np
import pytest

from repro.memory import (
    DuplexMarkovModel,
    FaultRates,
    MissionPhase,
    MissionProfile,
    SimplexMarkovModel,
    orbital_profile,
    simplex_model,
)


def phase(name, hours, seu_day=0.0, perm_day=0.0, scrub_s=None):
    return MissionPhase(
        name,
        hours,
        FaultRates.from_paper_units(
            seu_per_bit_day=seu_day,
            erasure_per_symbol_day=perm_day,
            scrub_period_seconds=scrub_s,
        ),
    )


class TestConstruction:
    def test_empty_mission_rejected(self):
        with pytest.raises(ValueError, match="at least one phase"):
            MissionProfile(SimplexMarkovModel, 18, 16, 8, [])

    def test_nonpositive_phase_duration_rejected(self):
        with pytest.raises(ValueError, match="positive finite duration"):
            phase("bad", 0.0)

    def test_negative_phase_duration_rejected(self):
        with pytest.raises(ValueError, match="positive finite duration"):
            phase("bad", -1.0)

    def test_nan_phase_duration_rejected(self):
        with pytest.raises(ValueError, match="positive finite duration"):
            phase("bad", float("nan"))

    def test_infinite_phase_duration_rejected(self):
        with pytest.raises(ValueError, match="positive finite duration"):
            phase("bad", float("inf"))

    def test_zero_symbol_width_rejected(self):
        # m = 0 would divide by zero in the ber_factor denominator
        with pytest.raises(ValueError, match="m"):
            MissionProfile(SimplexMarkovModel, 18, 16, 0, [phase("a", 1.0)])

    def test_degenerate_code_rejected(self):
        # k = n leaves no parity; n*m - k*m = 0 also breaks ber_factor
        with pytest.raises(ValueError, match="0 < k < n"):
            MissionProfile(SimplexMarkovModel, 18, 18, 8, [phase("a", 1.0)])
        with pytest.raises(ValueError, match="0 < k < n"):
            MissionProfile(SimplexMarkovModel, 18, 0, 8, [phase("a", 1.0)])

    def test_total_duration(self):
        profile = MissionProfile(
            SimplexMarkovModel,
            18,
            16,
            8,
            [phase("a", 1.0, seu_day=1e-5), phase("b", 2.5, seu_day=1e-6)],
        )
        assert profile.total_duration_hours == 3.5

    def test_orbital_profile_defaults(self):
        profile = orbital_profile()
        assert [p.name for p in profile.phases] == ["quiet", "saa"]
        assert profile.total_duration_hours == pytest.approx(1.6)

    def test_orbital_profile_validates_fraction(self):
        with pytest.raises(ValueError, match="saa_fraction"):
            orbital_profile(saa_fraction=1.5)


class TestAgainstConstantModel:
    def test_single_phase_equals_constant_model(self):
        """One phase long enough to cover the horizon == the plain chain."""
        lam = 1e-4
        profile = MissionProfile(
            SimplexMarkovModel, 18, 16, 8, [phase("only", 1000.0, seu_day=lam)]
        )
        constant = simplex_model(18, 16, seu_per_bit_day=lam)
        times = [10.0, 48.0, 100.0]
        assert np.allclose(
            profile.fail_probability(times),
            constant.fail_probability(times),
            rtol=1e-9,
        )

    def test_identical_phases_equal_constant_model(self):
        """Splitting a constant environment into legs changes nothing."""
        lam = 1e-4
        profile = MissionProfile(
            SimplexMarkovModel,
            18,
            16,
            8,
            [phase("a", 5.0, seu_day=lam), phase("b", 3.0, seu_day=lam)],
        )
        constant = simplex_model(18, 16, seu_per_bit_day=lam)
        times = [2.0, 7.0, 30.0]
        assert np.allclose(
            profile.fail_probability(times),
            constant.fail_probability(times),
            rtol=1e-9,
        )

    def test_profile_bracketed_by_constant_extremes(self):
        low, high = 1e-6, 1e-4
        profile = MissionProfile(
            SimplexMarkovModel,
            18,
            16,
            8,
            [phase("quiet", 1.0, seu_day=low), phase("storm", 1.0, seu_day=high)],
        )
        t = [48.0]
        p = profile.fail_probability(t)[0]
        p_low = simplex_model(18, 16, seu_per_bit_day=low).fail_probability(t)[0]
        p_high = simplex_model(18, 16, seu_per_bit_day=high).fail_probability(t)[0]
        assert p_low < p < p_high


class TestSchedule:
    def test_cyclic_repetition(self):
        profile = MissionProfile(
            SimplexMarkovModel,
            18,
            16,
            8,
            [phase("a", 0.5, seu_day=1e-4), phase("b", 0.5, seu_day=1e-6)],
        )
        pf = profile.fail_probability([0.0, 10.0, 20.0])
        assert pf[0] == 0.0
        assert 0 < pf[1] < pf[2]

    def test_unsorted_times(self):
        profile = orbital_profile()
        times = [30.0, 5.0, 48.0]
        pf = profile.fail_probability(times)
        ordered = profile.fail_probability(sorted(times))
        lookup = dict(zip(sorted(times), ordered))
        for t, v in zip(times, pf):
            assert v == pytest.approx(lookup[t], rel=1e-9)

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            orbital_profile().fail_probability([-1.0])

    def test_ber_factor(self):
        profile = orbital_profile()
        t = [10.0]
        assert profile.ber(t)[0] == pytest.approx(
            profile.ber_factor * profile.fail_probability(t)[0]
        )


class TestAverageApproximation:
    def test_average_model_rates(self):
        profile = MissionProfile(
            SimplexMarkovModel,
            18,
            16,
            8,
            [phase("a", 1.0, seu_day=24.0), phase("b", 3.0, seu_day=0.0)],
        )
        avg = profile.equivalent_average_model()
        assert avg.rates.seu_per_bit == pytest.approx(0.25)

    def test_average_close_for_gentle_variation(self):
        profile = orbital_profile(model_cls=DuplexMarkovModel)
        avg = profile.equivalent_average_model()
        t = [48.0]
        exact = profile.fail_probability(t)[0]
        approx = avg.fail_probability(t)[0]
        assert 0.5 < approx / exact < 2.0
