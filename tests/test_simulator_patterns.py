"""Unit tests for the correlated fault-pattern grammar and rate schedules."""

import numpy as np
import pytest

from repro.rs import RSCode
from repro.simulator import (
    IID_1BIT,
    FaultKind,
    FaultPattern,
    PatternKind,
    PatternTerm,
    RateSchedule,
    format_pattern,
    format_schedule,
    parse_pattern,
    parse_schedule,
    sample_pattern_events,
    simulate_fail_probability_batched,
)
from repro.simulator.patterns import expand_arrivals


class TestGrammarRoundTrip:
    SPECS = [
        "1BIT",
        "1SYM",
        "2SYM",
        "MBU",
        "MBU:3",
        "ROW",
        "ROW:4",
        "COL:6",
        "ROW:3!",
        "0.9*1BIT+0.08*MBU:3+0.02*ROW",
        "0.5*1BIT+0.25*2SYM+0.25*COL:6!",
        "2*1BIT+1*1SYM",
    ]

    @pytest.mark.parametrize("spec", SPECS)
    def test_parse_format_parse_is_identity(self, spec):
        pattern = parse_pattern(spec)
        canonical = format_pattern(pattern)
        assert parse_pattern(canonical) == pattern
        # and canonical text is a fixed point
        assert format_pattern(parse_pattern(canonical)) == canonical

    def test_random_patterns_round_trip(self):
        """Property: any constructible pattern survives format->parse."""
        rng = np.random.default_rng(42)
        kinds = list(PatternKind)
        for _ in range(200):
            terms = []
            for _ in range(int(rng.integers(1, 5))):
                kind = kinds[int(rng.integers(0, len(kinds)))]
                if kind is PatternKind.BIT:
                    size = None
                elif kind is PatternKind.SYM:
                    size = int(rng.integers(1, 9))
                else:
                    size = (
                        int(rng.integers(1, 9)) if rng.random() < 0.7 else None
                    )
                terms.append(
                    PatternTerm(
                        kind=kind,
                        size=size,
                        permanent=bool(rng.integers(0, 2)),
                        weight=float(rng.uniform(0.01, 10.0)),
                    )
                )
            pattern = FaultPattern(tuple(terms))
            assert parse_pattern(format_pattern(pattern)) == pattern

    def test_parse_accepts_pattern_instance(self):
        assert parse_pattern(IID_1BIT) is IID_1BIT

    def test_default_weight_is_one(self):
        pattern = parse_pattern("1BIT+ROW:2")
        assert [t.weight for t in pattern.terms] == [1.0, 1.0]
        assert np.allclose(pattern.probabilities, [0.5, 0.5])

    def test_iid_reducible_classification(self):
        assert parse_pattern("1BIT").iid_reducible
        assert parse_pattern("0.5*1BIT+0.5*1SYM").iid_reducible
        assert not parse_pattern("2SYM").iid_reducible
        assert not parse_pattern("0.9*1BIT+0.1*MBU:3").iid_reducible
        assert not parse_pattern("1BIT!").iid_reducible  # permanents


class TestGrammarRejection:
    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "   ",
            "BOGUS",
            "2BIT",
            "1BIT:3",  # 1BIT takes no parameter
            "SYM",  # kSYM needs its size in the token name
            "3SYM:2",  # ... and must not also carry a ':' parameter
            "MBU:0",
            "ROW:-1",
            "x*1BIT",
            "1BIT++ROW",
        ],
    )
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_pattern(spec)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            parse_pattern("-0.5*1BIT")

    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            parse_pattern("0*1BIT+1*ROW")

    def test_nan_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            parse_pattern("nan*1BIT")

    def test_empty_term_tuple_rejected(self):
        with pytest.raises(ValueError, match="at least one term"):
            FaultPattern(())

    def test_non_string_spec_rejected(self):
        with pytest.raises(ValueError):
            parse_pattern(None)  # type: ignore[arg-type]


class TestScheduleParsing:
    def test_round_trip(self):
        for spec in ["42.0h@1.0,6.0h@8.0", "1.5h@0.0,2.5h@3.25", "10.0h@2.0"]:
            schedule = parse_schedule(spec)
            canonical = format_schedule(schedule)
            assert parse_schedule(canonical) == schedule

    def test_none_passes_through(self):
        assert parse_schedule(None) is None

    def test_schedule_instance_passes_through(self):
        schedule = RateSchedule(((1.0, 2.0),))
        assert parse_schedule(schedule) is schedule

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "5h",  # missing factor
            "xh@2",  # non-numeric duration
            "5h@y",  # non-numeric factor
            "-1.0h@2",  # negative duration
            "nanh@2",  # NaN duration
            "1.0h@-2",  # negative factor
            "0h@1",  # zero duration
        ],
    )
    def test_malformed_segments_raise(self, spec):
        with pytest.raises(ValueError):
            parse_schedule(spec)

    def test_integral_with_cyclic_repetition(self):
        schedule = parse_schedule("1.0h@1.0,1.0h@3.0")  # cycle area 4 over 2 h
        assert schedule.integral(2.0) == pytest.approx(4.0)
        assert schedule.integral(5.0) == pytest.approx(8.0 + 1.0)
        assert schedule.integral(0.0) == 0.0

    def test_sample_times_respect_density(self):
        rng = np.random.default_rng(0)
        schedule = parse_schedule("1.0h@1.0,1.0h@9.0")
        times = schedule.sample_times(rng, 2.0, 4000)
        assert times.shape == (4000,)
        assert np.all(np.diff(times) >= 0.0)
        frac_hot = np.mean(times >= 1.0)
        assert frac_hot == pytest.approx(0.9, abs=0.03)

    def test_all_zero_schedule_cannot_sample(self):
        rng = np.random.default_rng(0)
        schedule = parse_schedule("1.0h@0.0")
        with pytest.raises(ValueError, match="all-zero"):
            schedule.sample_times(rng, 1.0, 3)

    def test_mission_phases_scale_only_seu(self):
        from repro.memory.rates import FaultRates

        base = FaultRates.from_paper_units(
            seu_per_bit_day=1e-3,
            erasure_per_symbol_day=2e-4,
            scrub_period_seconds=3600.0,
        )
        schedule = parse_schedule("42.0h@1.0,6.0h@8.0")
        phases = schedule.mission_phases(base)
        assert [p.duration_hours for p in phases] == [42.0, 6.0]
        assert phases[1].rates.seu_per_bit == pytest.approx(
            base.seu_per_bit * 8.0
        )
        for phase in phases:
            assert phase.rates.erasure_per_symbol == base.erasure_per_symbol
            assert phase.rates.scrub_rate == base.scrub_rate


class TestEventSampling:
    def test_pure_1bit_matches_iid_law(self):
        """1BIT arrivals reproduce the i.i.d. sampler's count law."""
        rng = np.random.default_rng(3)
        rate, n, m, t = 0.01, 18, 8, 10.0
        counts = [
            len(sample_pattern_events(rng, "1BIT", rate, n, m, t))
            for _ in range(300)
        ]
        assert np.mean(counts) == pytest.approx(rate * n * m * t, rel=0.1)

    def test_1bit_events_are_plain_seu_flips(self):
        rng = np.random.default_rng(4)
        events = sample_pattern_events(rng, "1BIT", 0.05, 18, 8, 10.0, module=1)
        assert events
        for e in events:
            assert e.kind is FaultKind.SEU
            assert e.mask == 0
            assert e.module == 1
            assert 0 <= e.symbol < 18
            assert 0 <= e.bit < 8

    def test_events_emitted_in_time_order(self):
        rng = np.random.default_rng(5)
        events = sample_pattern_events(
            rng, "0.5*1BIT+0.5*ROW:4", 0.05, 18, 8, 10.0
        )
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_row_terms_emit_adjacent_mask_events(self):
        rng = np.random.default_rng(6)
        events = expand_arrivals(
            rng, parse_pattern("ROW:4"), [1.0], n=18, m=8
        )
        assert 1 <= len(events) <= 4
        symbols = [e.symbol for e in events]
        assert symbols == list(range(symbols[0], symbols[0] + len(symbols)))
        for e in events:
            assert e.kind is FaultKind.SEU
            assert 0 < e.mask < 256

    def test_col_terms_hit_one_bit_plane(self):
        rng = np.random.default_rng(7)
        events = expand_arrivals(
            rng, parse_pattern("COL:6"), [1.0], n=18, m=8
        )
        assert len(events) >= 1
        bits = {e.bit for e in events}
        assert len(bits) == 1
        assert all(e.mask == 0 for e in events)

    def test_permanent_suffix_emits_stuck_events(self):
        rng = np.random.default_rng(8)
        events = expand_arrivals(
            rng, parse_pattern("ROW:3!"), [1.0], n=18, m=8
        )
        assert events
        assert all(e.kind is FaultKind.PERMANENT for e in events)

    def test_mbu_burst_groups_cells_per_symbol(self):
        rng = np.random.default_rng(9)
        for _ in range(50):
            events = expand_arrivals(
                rng, parse_pattern("MBU:8"), [1.0], n=18, m=8
            )
            total_cells = sum(bin(e.mask).count("1") for e in events)
            assert 1 <= total_cells <= 8
            # burst cells are adjacent: at most two symbols for width 8
            assert len({e.symbol for e in events}) <= 2

    def test_zero_rate_and_zero_horizon(self):
        rng = np.random.default_rng(10)
        assert sample_pattern_events(rng, "1BIT", 0.0, 18, 8, 10.0) == []
        assert sample_pattern_events(rng, "1BIT", 0.1, 18, 8, 0.0) == []

    def test_schedule_modulates_arrival_mass(self):
        rng = np.random.default_rng(11)
        rate, n, m = 0.01, 18, 8
        counts = [
            len(
                sample_pattern_events(
                    rng, "1BIT", rate, n, m, 10.0, schedule="5.0h@1.0,5.0h@3.0"
                )
            )
            for _ in range(300)
        ]
        assert np.mean(counts) == pytest.approx(rate * n * m * 20.0, rel=0.1)


class TestSeededDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_batched_estimate_worker_invariant(self, workers):
        """The same seed gives bit-identical estimates at any worker count."""
        code = RSCode(18, 16, m=8)
        estimate = simulate_fail_probability_batched(
            "simplex",
            code,
            48.0,
            seu_per_bit=2e-3 / 24.0,
            erasure_per_symbol=0.0,
            trials=200,
            seed=99,
            chunk_size=50,
            workers=workers,
            pattern="0.8*1BIT+0.2*COL:6",
        )
        reference = simulate_fail_probability_batched(
            "simplex",
            code,
            48.0,
            seu_per_bit=2e-3 / 24.0,
            erasure_per_symbol=0.0,
            trials=200,
            seed=99,
            chunk_size=50,
            workers=1,
            pattern="0.8*1BIT+0.2*COL:6",
        )
        assert estimate.failures == reference.failures
        assert estimate.probability == reference.probability
        assert estimate.outcome_counts == reference.outcome_counts

    def test_sampler_is_seed_deterministic(self):
        events_a = sample_pattern_events(
            np.random.default_rng(123), "0.7*1BIT+0.3*MBU:3", 0.02, 18, 8, 20.0
        )
        events_b = sample_pattern_events(
            np.random.default_rng(123), "0.7*1BIT+0.3*MBU:3", 0.02, 18, 8, 20.0
        )
        assert events_a == events_b
