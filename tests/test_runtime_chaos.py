"""Chaos-spec grammar and injection semantics."""

import pytest

from repro.runtime import (
    ChaosCrashError,
    ChaosHangError,
    ChaosPoisonError,
    chaos_from_arg,
    parse_chaos_spec,
)
from repro.runtime.chaos import WILDCARD


class TestParsing:
    def test_defaults_per_kind(self):
        spec = parse_chaos_spec("crash@0;hang@1;poison@2;slow@3")
        assert spec.crash == {0: 1}
        assert spec.hang == {1: 3600.0}
        assert spec.poison == {2: -1}
        assert spec.slow == {3: 0.1}

    def test_explicit_parameters(self):
        spec = parse_chaos_spec("crash@0:2;hang@1:0.5;poison@2:3;slow@4:0.25")
        assert spec.crash_attempts(0) == 2
        assert spec.hang_seconds(1, attempt=0) == 0.5
        assert spec.poison_attempts(2) == 3
        assert spec.slow_seconds(4) == 0.25

    def test_wildcard_and_target_lists(self):
        spec = parse_chaos_spec("slow@*:0.01;crash@1,3")
        assert spec.slow == {WILDCARD: 0.01}
        assert spec.slow_seconds(7) == 0.01
        assert spec.crash_attempts(1) == 1
        assert spec.crash_attempts(3) == 1
        assert spec.crash_attempts(2) == 0

    def test_specific_overrides_wildcard(self):
        spec = parse_chaos_spec("slow@*:0.01;slow@2:0.5")
        assert spec.slow_seconds(2) == 0.5
        assert spec.slow_seconds(0) == 0.01

    def test_hang_only_fires_on_first_attempt(self):
        spec = parse_chaos_spec("hang@1:9")
        assert spec.hang_seconds(1, attempt=0) == 9
        assert spec.hang_seconds(1, attempt=1) == 0.0

    @pytest.mark.parametrize(
        "bad",
        [
            "explode@1",
            "crash",
            "crash@x",
            "crash@-2",
            "hang@1:soon",
        ],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_chaos_spec(bad)

    def test_chaos_from_arg_none_and_empty(self):
        assert chaos_from_arg(None) is None
        assert chaos_from_arg("") is None
        assert chaos_from_arg(";;") is None
        assert chaos_from_arg("poison@0") is not None


class TestJournalFaultParsing:
    def test_defaults_per_kind(self):
        spec = parse_chaos_spec("bitrot@0;torn@1;enospc@2")
        assert spec.bitrot == {0: 1}
        assert spec.torn == {1: 0.5}
        assert spec.enospc == {2: -1}
        assert not spec.is_empty

    def test_torn_write_alias(self):
        spec = parse_chaos_spec("torn-write@4:0.25")
        assert spec.torn == {4: 0.25}
        assert spec.torn_fraction(4) == 0.25
        assert spec.torn_fraction(5) == 0.0

    def test_bitrot_mask_lookup(self):
        spec = parse_chaos_spec("bitrot@3:8")
        assert spec.bitrot_mask(3) == 8
        assert spec.bitrot_mask(2) == 0
        assert parse_chaos_spec("bitrot@*:2").bitrot_mask(17) == 2

    def test_enospc_window_semantics(self):
        # enospc@i:n fails n consecutive appends starting at i ...
        spec = parse_chaos_spec("enospc@3:2")
        assert [spec.enospc_fires(i) for i in range(6)] == [
            False, False, False, True, True, False,
        ]
        # ... and the default (-1) means the disk never recovers.
        forever = parse_chaos_spec("enospc@3")
        assert not forever.enospc_fires(2)
        assert all(forever.enospc_fires(i) for i in range(3, 10))
        assert parse_chaos_spec("enospc@*").enospc_fires(0)

    def test_journal_kinds_do_not_touch_chunk_execution(self):
        spec = parse_chaos_spec("bitrot@0;torn@0;enospc@0")
        spec.before_chunk(0, attempt=0)  # must not raise or sleep


class TestFleetFaultParsing:
    def test_defaults_per_kind(self):
        spec = parse_chaos_spec(
            "worker-kill@0;worker-hang@1;partition@2;zombie@3"
        )
        assert spec.worker_kill == {0: 1}
        assert spec.worker_hang == {1: 3600.0}
        assert spec.partition == {2: 5.0}
        assert spec.zombie == {3: 1}
        assert not spec.is_empty

    def test_kill_budget_is_per_epoch(self):
        spec = parse_chaos_spec("worker-kill@4:2")
        assert spec.worker_kill_fires(4, epoch=0)
        assert spec.worker_kill_fires(4, epoch=1)
        assert not spec.worker_kill_fires(4, epoch=2)  # budget exhausted
        assert not spec.worker_kill_fires(5, epoch=0)  # untargeted

    def test_hang_and_partition_fire_on_first_epoch_only(self):
        spec = parse_chaos_spec("worker-hang@1:9;partition@2:1.5")
        assert spec.worker_hang_seconds(1, epoch=0) == 9
        assert spec.worker_hang_seconds(1, epoch=1) == 0.0
        assert spec.partition_seconds(2, epoch=0) == 1.5
        assert spec.partition_seconds(2, epoch=1) == 0.0

    def test_zombie_budget(self):
        spec = parse_chaos_spec("zombie@0")
        assert spec.zombie_fires(0, epoch=0)
        assert not spec.zombie_fires(0, epoch=1)
        assert not spec.zombie_fires(1, epoch=0)

    def test_fleet_kinds_do_not_touch_chunk_execution(self):
        spec = parse_chaos_spec("worker-kill@0;partition@0;zombie@0")
        spec.before_chunk(0, attempt=0)  # must not raise or sleep

    def test_wildcard_kill(self):
        spec = parse_chaos_spec("worker-kill@*:1")
        assert spec.worker_kill_fires(9, epoch=0)
        assert not spec.worker_kill_fires(9, epoch=1)


class TestSerialInjection:
    """In the parent process, crash/hang degrade to typed exceptions."""

    def test_crash_raises_in_parent(self):
        spec = parse_chaos_spec("crash@0")
        with pytest.raises(ChaosCrashError):
            spec.before_chunk(0, attempt=0)
        # attempt budget exhausted: the retry goes through
        spec.before_chunk(0, attempt=1)

    def test_hang_raises_in_parent(self):
        spec = parse_chaos_spec("hang@3:42")
        with pytest.raises(ChaosHangError):
            spec.before_chunk(3, attempt=0)
        spec.before_chunk(3, attempt=1)  # retry passes

    def test_poison_persists_across_attempts(self):
        spec = parse_chaos_spec("poison@2")
        for attempt in range(4):
            with pytest.raises(ChaosPoisonError):
                spec.before_chunk(2, attempt=attempt)

    def test_untargeted_chunks_untouched(self):
        spec = parse_chaos_spec("crash@0;hang@1;poison@2")
        spec.before_chunk(5, attempt=0)
