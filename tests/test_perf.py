"""Perf-counter accounting: wall vs CPU time, merge, Stopwatch guards."""

import pickle
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.perf import PerfCounters, Stopwatch, merge_counter_dicts, timed


class TestMergeAccounting:
    def test_merge_sums_additive_fields(self):
        a = PerfCounters(trials=10, chunks=1, cpu_seconds=0.5, retries=1)
        b = PerfCounters(trials=20, chunks=2, cpu_seconds=1.5, retries=2)
        a.merge(b)
        assert a.trials == 30
        assert a.chunks == 3
        assert a.cpu_seconds == pytest.approx(2.0)
        assert a.retries == 3

    def test_merge_does_not_sum_wall_clock(self):
        """The headline bug: summing per-worker elapsed reported N× the
        true wall time and understated trials/sec by the worker count."""
        coordinator = PerfCounters(elapsed_seconds=2.0)
        for _ in range(4):  # four workers, overlapping in time
            coordinator.merge(PerfCounters(trials=100, elapsed_seconds=2.0))
        assert coordinator.elapsed_seconds == pytest.approx(2.0)
        assert coordinator.trials_per_second == pytest.approx(400 / 2.0)

    def test_merge_counter_dicts_preserves_wall_semantics(self):
        total = merge_counter_dicts(
            iter(
                [
                    PerfCounters(trials=5, cpu_seconds=1.0, elapsed_seconds=1.0).as_dict(),
                    PerfCounters(trials=5, cpu_seconds=1.0, elapsed_seconds=1.0).as_dict(),
                ]
            )
        )
        assert total.trials == 10
        assert total.cpu_seconds == pytest.approx(2.0)
        assert total.elapsed_seconds == 0.0  # coordinator-owned, not merged

    def test_from_dict_tolerates_pre_cpu_seconds_records(self):
        # Journals written before the cpu_seconds split must still load.
        old = PerfCounters(trials=7).as_dict()
        del old["cpu_seconds"]
        restored = PerfCounters.from_dict(old)
        assert restored.trials == 7
        assert restored.cpu_seconds == 0.0

    def test_roundtrip_pickle(self):
        c = PerfCounters(trials=3, cpu_seconds=0.25)
        assert pickle.loads(pickle.dumps(c)) == c


class TestDerived:
    def test_trials_per_second_uses_wall_clock(self):
        c = PerfCounters(trials=100, elapsed_seconds=2.0, cpu_seconds=8.0)
        assert c.trials_per_second == pytest.approx(50.0)

    def test_parallel_speedup(self):
        c = PerfCounters(elapsed_seconds=2.0, cpu_seconds=8.0)
        assert c.parallel_speedup == pytest.approx(4.0)
        assert PerfCounters().parallel_speedup == 0.0

    def test_summary_reports_both_time_axes(self):
        c = PerfCounters(trials=10, elapsed_seconds=1.0, cpu_seconds=4.0)
        text = c.summary()
        assert "elapsed (wall)" in text
        assert "cpu (all workers)" in text
        assert "4.00x" in text

    def test_publish_mirrors_fields_into_registry(self):
        registry = MetricsRegistry()
        PerfCounters(trials=42, cpu_seconds=1.5).publish(registry)
        assert registry.gauge("repro.perf.trials").value == 42
        assert registry.gauge("repro.perf.cpu_seconds").value == 1.5


class TestStopwatch:
    def test_accumulates_wall_by_default(self):
        c = PerfCounters()
        with Stopwatch(c):
            time.sleep(0.01)
        assert c.elapsed_seconds > 0.0
        assert c.cpu_seconds == 0.0

    def test_attr_selects_cpu_axis(self):
        c = PerfCounters()
        with Stopwatch(c, attr="cpu_seconds"):
            time.sleep(0.01)
        assert c.cpu_seconds > 0.0
        assert c.elapsed_seconds == 0.0

    def test_unknown_attr_rejected(self):
        with pytest.raises(ValueError):
            Stopwatch(PerfCounters(), attr="nonexistent")

    def test_exit_without_enter_raises_runtime_error(self):
        """Must be a real exception, not a bare assert that ``python -O``
        strips (leaving a baffling TypeError on perf_counter() - None)."""
        sw = Stopwatch(PerfCounters())
        with pytest.raises(RuntimeError, match="without __enter__"):
            sw.__exit__(None, None, None)

    def test_reentry_accumulates(self):
        c = PerfCounters()
        sw = Stopwatch(c)
        with sw:
            pass
        with sw:
            pass
        assert c.elapsed_seconds >= 0.0

    def test_timed_returns_result_and_elapsed(self):
        result, elapsed = timed(lambda x: x * 2, 21)
        assert result == 42
        assert elapsed >= 0.0


class TestPooledWallAccounting:
    """workers=1 vs workers=4 must both report the true wall time."""

    @pytest.mark.parametrize("workers", [1, 4])
    def test_elapsed_is_coordinator_wall_not_worker_sum(self, workers):
        from repro.rs import RSCode
        from repro.simulator import simulate_fail_probability_batched

        code = RSCode(18, 16, m=8)
        counters = PerfCounters()
        t0 = time.perf_counter()
        estimate = simulate_fail_probability_batched(
            "simplex",
            code,
            48.0,
            seu_per_bit=2e-3 / 24.0,
            erasure_per_symbol=0.0,
            trials=800,
            seed=11,
            chunk_size=100,
            workers=workers,
            counters=counters,
        )
        wall = time.perf_counter() - t0
        assert estimate.trials == 800
        assert counters.trials == 800
        # True wall time: bounded by the coordinator's measurement, never
        # the sum over 8 chunks (the old merge bug would inflate it).
        assert 0.0 < counters.elapsed_seconds <= wall
        assert counters.cpu_seconds > 0.0
        assert counters.trials_per_second == pytest.approx(
            800 / counters.elapsed_seconds
        )
