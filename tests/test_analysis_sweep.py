"""Unit tests for the sweep/design-study helpers."""

import numpy as np
import pytest

from repro.analysis import (
    max_scrub_period_for_budget,
    sweep_parameter,
    time_to_ber_budget,
)
from repro.memory import simplex_model
from repro.memory.ber import BERCurve


class TestSweepParameter:
    def test_one_curve_per_value(self):
        curves = sweep_parameter(
            lambda lam: simplex_model(18, 16, seu_per_bit_day=lam),
            values=[1e-6, 1e-5],
            times_hours=[0.0, 48.0],
        )
        assert len(curves) == 2
        assert curves[0].final < curves[1].final

    def test_custom_labels(self):
        curves = sweep_parameter(
            lambda lam: simplex_model(18, 16, seu_per_bit_day=lam),
            values=[1e-6],
            times_hours=[48.0],
            label_fn=lambda v: f"lam={v}",
        )
        assert curves[0].label == "lam=1e-06"


class TestTimeToBudget:
    def test_finds_first_crossing(self):
        c = BERCurve(
            "x", np.array([0.0, 10.0, 20.0, 30.0]), np.array([0, 1e-9, 1e-7, 1e-5])
        )
        assert time_to_ber_budget(c, 1e-8) == 20.0

    def test_within_budget_returns_inf(self):
        c = BERCurve("x", np.array([0.0, 10.0]), np.array([0.0, 1e-12]))
        assert time_to_ber_budget(c, 1e-6) == float("inf")

    def test_budget_validation(self):
        c = BERCurve("x", np.array([0.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            time_to_ber_budget(c, 0.0)


class TestMaxScrubPeriod:
    def test_paper_fig7_design_point(self):
        """At the worst-case SEU rate, an hourly scrub meets 1e-6 over 48 h
        (the Fig. 7 claim), so the search must return >= 3600 s."""
        period = max_scrub_period_for_budget(
            18,
            16,
            seu_per_bit_day=1.7e-5,
            budget=1e-6,
            horizon_hours=48.0,
        )
        assert period >= 3600.0

    def test_tighter_budget_needs_faster_scrubbing(self):
        loose = max_scrub_period_for_budget(
            18, 16, seu_per_bit_day=1.7e-5, budget=1e-6, horizon_hours=48.0
        )
        tight = max_scrub_period_for_budget(
            18, 16, seu_per_bit_day=1.7e-5, budget=1e-7, horizon_hours=48.0
        )
        assert tight < loose

    def test_impossible_budget_raises(self):
        with pytest.raises(ValueError, match="no swept"):
            max_scrub_period_for_budget(
                18,
                16,
                seu_per_bit_day=1.7e-5,
                budget=1e-15,
                horizon_hours=48.0,
                periods_seconds=(3600.0,),
            )


class TestFeasibleScrubWindow:
    def test_fig7_design_is_feasible(self):
        from repro.analysis import feasible_scrub_window

        lo, hi = feasible_scrub_window(
            18,
            16,
            num_words=1 << 20,
            seu_per_bit_day=1.7e-5,
            ber_budget=1e-6,
            availability_target=0.999,
            horizon_hours=48.0,
        )
        assert lo < hi
        assert hi >= 3600.0  # the paper's hourly scrub fits
        assert lo > 0

    def test_conflicting_constraints_raise(self):
        import pytest

        from repro.analysis import feasible_scrub_window

        with pytest.raises(ValueError, match="infeasible"):
            feasible_scrub_window(
                36,
                16,
                num_words=1 << 26,       # huge memory
                seu_per_bit_day=1.7e-5,
                ber_budget=1e-6,
                availability_target=0.999999,  # near-perfect availability
                horizon_hours=48.0,
                clock_hz=1e6,            # slow controller
            )
