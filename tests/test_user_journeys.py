"""End-to-end user journeys: the workflows the README promises.

Each test walks one realistic path through the public API from model
construction to a persisted artifact, in a temp directory — the closest
thing to integration smoke tests of the whole package surface.
"""

import json

import numpy as np

from repro import RSCode, ber_curve, duplex_model, simplex_model
from repro.analysis import (
    ascii_ber_plot,
    curves_to_csv,
    load_csv,
    run_scenario_suite,
    write_report,
)
from repro.cli import main
from repro.memory import WholeMemory
from repro.simulator import DuplexSystem, ReadOutcome


class TestAnalystJourney:
    """Model -> curve -> CSV -> reload -> plot."""

    def test_curve_to_csv_roundtrip_and_plot(self, tmp_path):
        times = np.linspace(0.0, 48.0, 7)
        curves = [
            ber_curve(
                duplex_model(18, 16, seu_per_bit_day=lam),
                times,
                label=f"{lam:g}",
            )
            for lam in (7.3e-7, 1.7e-5)
        ]
        path = curves_to_csv(curves, tmp_path / "duplex.csv")
        header, rows = load_csv(path)
        assert header == ["hours", "7.3e-07", "1.7e-05"]
        assert rows[-1][2] == curves[1].final
        plot = ascii_ber_plot(curves)
        assert "hours" in plot


class TestMissionPlannerJourney:
    """Scenario file -> suite run -> budget verdicts -> whole memory."""

    def test_scenario_suite_and_whole_memory(self, tmp_path):
        scenarios = [
            {
                "name": "baseline",
                "arrangement": "duplex",
                "n": 18,
                "k": 16,
                "seu_per_bit_day": 1.7e-5,
                "scrub_period_seconds": 3600,
                "horizon_hours": 48.0,
                "points": 5,
                "ber_budget": 1e-6,
            },
            {
                "name": "no-scrub",
                "arrangement": "duplex",
                "n": 18,
                "k": 16,
                "seu_per_bit_day": 1.7e-5,
                "horizon_hours": 48.0,
                "points": 5,
                "ber_budget": 1e-6,
            },
        ]
        path = tmp_path / "mission.json"
        path.write_text(json.dumps(scenarios))
        results = run_scenario_suite(path)
        assert results[0].meets_budget is True
        assert results[1].meets_budget is False

        word = duplex_model(
            18, 16, seu_per_bit_day=1.7e-5, scrub_period_seconds=3600
        )
        memory = WholeMemory(word, 1 << 16)
        assert 0.9 < memory.data_integrity([48.0])[0] <= 1.0


class TestReviewerJourney:
    """One command regenerates the whole paper as a report."""

    def test_report_via_cli(self, tmp_path):
        out = tmp_path / "repro.md"
        assert main(["report", "-o", str(out), "--points", "3"]) == 0
        text = out.read_text()
        for fig in ("fig5", "fig6", "fig7", "fig8", "fig9", "fig10"):
            assert f"## {fig}:" in text
        assert "decoder complexity" in text


class TestHardwareEngineerJourney:
    """Codec + arbiter in the loop, then the cost side."""

    def test_inject_arbitrate_and_cost(self):
        code = RSCode(18, 16, m=8)
        system = DuplexSystem(code, data=[7] * 16)
        from repro.simulator import FaultEvent, FaultKind

        system.apply_event(FaultEvent(1.0, FaultKind.SEU, 0, 3, 2))
        system.apply_event(FaultEvent(2.0, FaultKind.SEU, 1, 11, 5))
        assert system.read() is ReadOutcome.CORRECT

        from repro.rs import decoder_area, decoder_timing

        assert decoder_timing(18, 16).latency_cycles == 74
        assert decoder_area(36, 16).gate_equivalents > 2 * decoder_area(
            18, 16
        ).gate_equivalents

    def test_simplex_vs_duplex_decision(self):
        """The package answers the paper's core question end to end."""
        t = [24 * 730.0]
        simplex = simplex_model(18, 16, erasure_per_symbol_day=1e-6)
        duplex = duplex_model(18, 16, erasure_per_symbol_day=1e-6)
        advantage = (
            simplex.fail_probability(t)[0] / duplex.fail_probability(t)[0]
        )
        assert advantage > 1e6
