"""Tests for the elasticity-based sensitivity analysis."""

import pytest

from repro.analysis import elasticity, memory_system_sensitivities
from repro.memory import simplex_model


class TestElasticity:
    def test_rs1816_seu_elasticity_is_two(self):
        """A t = 1 code fails on two random errors, so BER ~ λ² and the
        log-log slope is 2 — the structural check of the whole method."""
        value = elasticity(
            lambda lam: simplex_model(18, 16, seu_per_bit_day=lam),
            base_value=1.7e-5,
            t_hours=48.0,
        )
        assert value == pytest.approx(2.0, abs=0.02)

    def test_rs3616_permanent_elasticity_is_21(self):
        """RS(36,16) dies on its 21st erasure: elasticity 21 in λe."""
        value = elasticity(
            lambda r: simplex_model(36, 16, erasure_per_symbol_day=r),
            base_value=1e-7,
            t_hours=730.0,
        )
        assert value == pytest.approx(21.0, abs=0.1)

    def test_positive_base_required(self):
        with pytest.raises(ValueError):
            elasticity(
                lambda lam: simplex_model(18, 16, seu_per_bit_day=lam),
                base_value=0.0,
                t_hours=48.0,
            )

    def test_zero_ber_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            elasticity(
                lambda lam: simplex_model(18, 16, seu_per_bit_day=lam),
                base_value=1e-6,
                t_hours=0.0,
            )

    def test_step_validation(self):
        with pytest.raises(ValueError):
            elasticity(
                lambda lam: simplex_model(18, 16, seu_per_bit_day=lam),
                base_value=1e-6,
                t_hours=48.0,
                rel_step=1.5,
            )


class TestSystemSensitivities:
    def test_reports_only_active_parameters(self):
        result = memory_system_sensitivities(
            "simplex", 18, 16, 48.0, seu_per_bit_day=1.7e-5
        )
        assert [s.parameter for s in result] == ["seu_per_bit_day"]

    def test_scrub_period_elasticity_positive(self):
        result = memory_system_sensitivities(
            "duplex",
            18,
            16,
            48.0,
            seu_per_bit_day=1.7e-5,
            scrub_period_seconds=3600.0,
        )
        by_name = {s.parameter: s for s in result}
        assert by_name["scrub_period_seconds"].elasticity > 0.5
        # SEU rate still dominates for a t=1 code
        assert (
            by_name["seu_per_bit_day"].elasticity
            > by_name["scrub_period_seconds"].elasticity
        )

    def test_sorted_by_magnitude(self):
        result = memory_system_sensitivities(
            "duplex",
            18,
            16,
            48.0,
            seu_per_bit_day=1.7e-5,
            scrub_period_seconds=3600.0,
        )
        mags = [abs(s.elasticity) for s in result]
        assert mags == sorted(mags, reverse=True)

    def test_unknown_arrangement_rejected(self):
        with pytest.raises(ValueError, match="arrangement"):
            memory_system_sensitivities(
                "triplex", 18, 16, 48.0, seu_per_bit_day=1e-5
            )

    def test_base_ber_recorded(self):
        result = memory_system_sensitivities(
            "simplex", 18, 16, 48.0, seu_per_bit_day=1.7e-5
        )
        expected = float(
            simplex_model(18, 16, seu_per_bit_day=1.7e-5).ber([48.0])[0]
        )
        assert result[0].base_ber == pytest.approx(expected)
