"""Golden-vector regression: pinned BER values for the paper's key figures.

The Fig. 5 (simplex, SEU sweep) and Fig. 6 (duplex, SEU sweep) horizon
BERs are the anchor points of the reproduction — every curve the repo
publishes flows through the same models and solvers.  These values were
produced by the seed-state solvers and are pinned to a tight relative
tolerance so that codec, solver or batching refactors cannot silently
shift the paper curves.  A deliberate modelling change that moves them
must update the goldens *in the same PR* and say why.
"""

import pytest

from repro.analysis import fig5_simplex_seu, fig6_duplex_seu

# Curve labels are the swept SEU rates (errors/bit/day); values are
# BER(48 h) from the seed-state analytic solvers.
GOLDEN_FIG5 = {
    "7.3E-07": 2.0869783174725508e-08,
    "3.6E-06": 5.072762901311551e-07,
    "1.7E-05": 1.1283695342864154e-05,
}

GOLDEN_FIG6 = {
    "7.3E-07": 4.1739565913903167e-08,
    "3.6E-06": 1.0145523229330757e-06,
    "1.7E-05": 2.2567263363947718e-05,
}

#: Relative tolerance: generous enough for BLAS/ordering noise across
#: platforms, far tighter than any physically meaningful curve shift.
RTOL = 1e-9


@pytest.mark.parametrize(
    "build,golden",
    [(fig5_simplex_seu, GOLDEN_FIG5), (fig6_duplex_seu, GOLDEN_FIG6)],
    ids=["fig5", "fig6"],
)
class TestGoldenBER:
    def test_final_bers_match_golden(self, build, golden):
        result = build(points=5)
        finals = result.final_ber_map()
        assert set(finals) == set(golden), "curve labels changed"
        for label, expected in golden.items():
            assert finals[label] == pytest.approx(expected, rel=RTOL), (
                f"{result.experiment_id} curve {label}: "
                f"{finals[label]!r} drifted from golden {expected!r}"
            )

    def test_goldens_are_grid_invariant(self, build, golden):
        """The horizon BER must not depend on the time-grid resolution."""
        coarse = build(points=3).final_ber_map()
        fine = build(points=9).final_ber_map()
        for label in golden:
            assert coarse[label] == pytest.approx(fine[label], rel=1e-6)
