"""Tests for field structure: orders, cosets, minimal polynomials."""

import pytest

from repro.gf import (
    GF2m,
    conjugates,
    cyclotomic_cosets,
    element_order,
    is_primitive_element,
    minimal_polynomial,
    poly,
)


@pytest.fixture(scope="module")
def gf16():
    return GF2m(4)


@pytest.fixture(scope="module")
def gf256():
    return GF2m(8)


class TestElementOrder:
    def test_identity_has_order_one(self, gf16):
        assert element_order(gf16, 1) == 1

    def test_alpha_is_primitive(self, gf16, gf256):
        assert element_order(gf16, 2) == 15
        assert element_order(gf256, 2) == 255

    def test_orders_divide_group_order(self, gf16):
        for a in gf16.nonzero_elements():
            assert 15 % element_order(gf16, a) == 0

    def test_order_matches_brute_force(self, gf16):
        for a in gf16.nonzero_elements():
            x, count = a, 1
            while x != 1:
                x = gf16.mul(x, a)
                count += 1
            assert element_order(gf16, a) == count

    def test_zero_rejected(self, gf16):
        with pytest.raises(ValueError):
            element_order(gf16, 0)


class TestPrimitivity:
    def test_zero_not_primitive(self, gf16):
        assert not is_primitive_element(gf16, 0)

    def test_one_not_primitive(self, gf16):
        assert not is_primitive_element(gf16, 1)

    def test_count_of_primitive_elements(self, gf16):
        """Exactly phi(15) = 8 primitive elements in GF(16)."""
        count = sum(
            1 for a in gf16.nonzero_elements() if is_primitive_element(gf16, a)
        )
        assert count == 8


class TestCyclotomicCosets:
    def test_partition_property(self):
        for m in (2, 3, 4, 8):
            cosets = cyclotomic_cosets(m)
            flat = [e for coset in cosets for e in coset]
            assert sorted(flat) == list(range((1 << m) - 1))

    def test_sizes_divide_m(self):
        for coset in cyclotomic_cosets(8):
            assert 8 % len(coset) == 0

    def test_known_m4_cosets(self):
        assert cyclotomic_cosets(4) == [
            [0],
            [1, 2, 4, 8],
            [3, 6, 9, 12],
            [5, 10],
            [7, 11, 13, 14],
        ]

    def test_m_validation(self):
        with pytest.raises(ValueError):
            cyclotomic_cosets(1)


class TestConjugatesAndMinimalPolynomials:
    def test_conjugates_of_zero(self, gf16):
        assert conjugates(gf16, 0) == [0]

    def test_conjugacy_class_size_matches_coset(self, gf16):
        # alpha^5 lies in coset {5, 10}: class size 2
        assert len(conjugates(gf16, gf16.exp(5))) == 2

    def test_minimal_polynomial_of_alpha_is_field_polynomial(self, gf16):
        minpoly = minimal_polynomial(gf16, 2)
        # x^4 + x + 1 in ascending coefficients
        assert minpoly == [1, 1, 0, 0, 1]

    def test_minimal_polynomial_of_zero_is_x(self, gf16):
        assert minimal_polynomial(gf16, 0) == [0, 1]

    def test_minimal_polynomial_annihilates_element(self, gf256):
        for a in (2, 7, 0x53):
            minpoly = minimal_polynomial(gf256, a)
            assert poly.eval_at(gf256, minpoly, a) == 0

    def test_minimal_polynomial_is_binary_and_monic(self, gf256):
        minpoly = minimal_polynomial(gf256, 0x1D)
        assert all(c in (0, 1) for c in minpoly)
        assert minpoly[-1] == 1

    def test_rs_generator_factors_into_minimal_polynomials(self, gf256):
        """BCH view: the RS generator's roots alpha^1, alpha^2 each have
        their own conjugacy class; the generator divides the product of
        their minimal polynomials over GF(2)."""
        from repro.rs import RSCode

        code = RSCode(18, 16, m=8)
        product = [1]
        for exponent in (1, 2):
            product = poly.mul(
                gf256, product, minimal_polynomial(gf256, gf256.exp(exponent))
            )
        _q, r = poly.divmod_poly(gf256, product, code.generator)
        assert poly.is_zero(r)
