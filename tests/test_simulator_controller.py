"""Tests for the memory-controller discrete-event simulation."""

import numpy as np
import pytest

from repro.memory.overhead import scrub_overhead
from repro.rs.pipeline import decoder_timing
from repro.simulator import simulate_controller


def run(
    read_rate=1000.0,
    period=60.0,
    words=50_000,
    sim_s=120.0,
    seed=3,
    n=18,
    k=16,
    clock=50e6,
):
    return simulate_controller(
        n,
        k,
        num_words=words,
        scrub_period_s=period,
        read_rate_per_s=read_rate,
        sim_seconds=sim_s,
        clock_hz=clock,
        rng=np.random.default_rng(seed),
    )


class TestValidation:
    def test_parameter_checks(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            simulate_controller(18, 16, 0, 60.0, 10.0, 10.0, rng=rng)
        with pytest.raises(ValueError):
            simulate_controller(18, 16, 10, 0.0, 10.0, 10.0, rng=rng)
        with pytest.raises(ValueError):
            simulate_controller(18, 16, 10, 60.0, -1.0, 10.0, rng=rng)
        with pytest.raises(ValueError):
            simulate_controller(18, 16, 10, 60.0, 10.0, 0.0, rng=rng)


class TestScrubProgress:
    def test_scrub_walks_the_whole_memory_each_period(self):
        stats = run(read_rate=0.0, words=10_000, period=30.0, sim_s=90.0)
        # three periods -> about 30k word steps
        assert stats.scrub_words_done == pytest.approx(30_000, rel=0.02)

    def test_measured_duty_matches_analytic_overhead(self):
        words, period, clock = 50_000, 60.0, 50e6
        stats = run(read_rate=0.0, words=words, period=period, clock=clock)
        analytic = scrub_overhead(
            18,
            16,
            num_words=words,
            scrub_period_seconds=period,
            clock_hz=clock,
            writeback_cycles=0,  # the DES charges decode latency only
        )
        assert stats.scrub_duty == pytest.approx(analytic.duty_cycle, rel=0.02)

    def test_availability_complements_duty(self):
        stats = run()
        assert stats.availability == pytest.approx(1.0 - stats.scrub_duty)


class TestReadService:
    def test_read_throughput_matches_arrival_rate(self):
        stats = run(read_rate=2000.0, sim_s=60.0)
        assert stats.reads_served == pytest.approx(2000.0 * 60.0, rel=0.05)

    def test_latency_at_least_service_time(self):
        stats = run()
        service = decoder_timing(18, 16).latency_cycles / 50e6
        assert stats.mean_read_latency_s >= service * 0.999
        assert stats.p99_read_latency_s >= stats.mean_read_latency_s * 0.5

    def test_light_load_latency_close_to_service_time(self):
        stats = run(read_rate=10.0, words=1000, period=600.0)
        service = decoder_timing(18, 16).latency_cycles / 50e6
        assert stats.mean_read_latency_s == pytest.approx(service, rel=0.05)

    def test_heavy_load_increases_latency(self):
        light = run(read_rate=100.0, sim_s=60.0)
        heavy = run(read_rate=300_000.0, sim_s=60.0)
        assert heavy.mean_read_latency_s > light.mean_read_latency_s
        assert heavy.utilization > light.utilization

    def test_stronger_code_costs_utilization(self):
        weak = run(read_rate=10_000.0, sim_s=60.0, n=18, k=16)
        strong = run(read_rate=10_000.0, sim_s=60.0, n=36, k=16)
        assert strong.utilization > weak.utilization

    def test_no_reads_zero_read_busy(self):
        stats = run(read_rate=0.0)
        assert stats.reads_served == 0
        assert stats.read_busy_seconds == 0.0
