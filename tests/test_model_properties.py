"""Property-based tests over the memory-model family.

Randomized structural invariants that must hold for *any* valid
configuration — code geometry, rates, scrubbing — not just the paper's
points.  These catch rate-bookkeeping mistakes (lost probability mass,
mis-signed transitions, capability off-by-ones) that fixed-point tests
can miss.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import FAIL, DuplexMarkovModel, FaultRates, SimplexMarkovModel
from repro.memory.analytic import (
    duplex_fail_probability,
    simplex_fail_probability,
)

_CODES = [(18, 16), (20, 16), (24, 16), (15, 11), (36, 16)]

rates_strategy = st.builds(
    FaultRates,
    seu_per_bit=st.floats(min_value=0.0, max_value=1e-3),
    erasure_per_symbol=st.floats(min_value=0.0, max_value=1e-3),
    scrub_rate=st.sampled_from([0.0, 0.5, 2.0]),
)


@st.composite
def simplex_models(draw):
    n, k = draw(st.sampled_from(_CODES))
    return SimplexMarkovModel(n, k, 8, draw(rates_strategy))


@st.composite
def duplex_models(draw):
    n, k = draw(st.sampled_from([(18, 16), (20, 16)]))  # keep chains small
    rule = draw(st.sampled_from(["either", "both"]))
    return DuplexMarkovModel(n, k, 8, draw(rates_strategy), fail_rule=rule)


class TestChainInvariants:
    @settings(max_examples=30, deadline=None)
    @given(simplex_models(), st.floats(min_value=0.0, max_value=100.0))
    def test_simplex_probability_conserved(self, model, t):
        probs = model.chain.transient([t])[0]
        assert abs(probs.sum() - 1.0) < 1e-9
        assert np.all(probs >= -1e-12)

    @settings(max_examples=15, deadline=None)
    @given(duplex_models(), st.floats(min_value=0.0, max_value=100.0))
    def test_duplex_probability_conserved(self, model, t):
        probs = model.chain.transient([t])[0]
        assert abs(probs.sum() - 1.0) < 1e-9
        assert np.all(probs >= -1e-12)

    @settings(max_examples=30, deadline=None)
    @given(simplex_models())
    def test_every_simplex_state_within_capability(self, model):
        for state in model.chain.states:
            if state == FAIL:
                continue
            er, re = state
            assert er + 2 * re <= model.nsym

    @settings(max_examples=15, deadline=None)
    @given(duplex_models())
    def test_every_duplex_state_satisfies_fail_rule(self, model):
        for state in model.chain.states:
            if state == FAIL:
                continue
            assert model.is_valid(state)

    @settings(max_examples=20, deadline=None)
    @given(simplex_models())
    def test_fail_probability_monotone_in_time(self, model):
        """FAIL is absorbing, so its mass never decreases."""
        times = [0.0, 10.0, 50.0, 200.0]
        pf = model.fail_probability(times)
        assert np.all(np.diff(pf) >= -1e-12)


class TestAnalyticAgreementRandomized:
    @settings(max_examples=25, deadline=None)
    @given(
        st.sampled_from(_CODES),
        st.floats(min_value=1e-9, max_value=1e-4),
        st.booleans(),
        st.floats(min_value=1.0, max_value=500.0),
    )
    def test_simplex_closed_form_tracks_chain(self, code, rate, permanent, t):
        n, k = code
        rates = (
            FaultRates(erasure_per_symbol=rate)
            if permanent
            else FaultRates(seu_per_bit=rate)
        )
        model = SimplexMarkovModel(n, k, 8, rates)
        an = simplex_fail_probability(model, [t])[0]
        uni = model.fail_probability([t])[0]
        if an > 1e-290:
            assert abs(uni - an) <= 1e-8 * an + 1e-300

    @settings(max_examples=15, deadline=None)
    @given(
        st.floats(min_value=1e-9, max_value=1e-4),
        st.booleans(),
        st.floats(min_value=1.0, max_value=500.0),
    )
    def test_duplex_closed_form_tracks_chain(self, rate, permanent, t):
        rates = (
            FaultRates(erasure_per_symbol=rate)
            if permanent
            else FaultRates(seu_per_bit=rate)
        )
        model = DuplexMarkovModel(18, 16, 8, rates)
        an = duplex_fail_probability(model, [t])[0]
        uni = model.fail_probability([t])[0]
        if an > 1e-290:
            assert abs(uni - an) <= 1e-8 * an + 1e-300


class TestStructuralMonotonicity:
    @settings(max_examples=10, deadline=None)
    @given(
        st.floats(min_value=1e-7, max_value=1e-4),
        st.floats(min_value=2.0, max_value=10.0),
    )
    def test_higher_rate_higher_ber(self, rate, factor):
        t = [48.0]
        low = SimplexMarkovModel(18, 16, 8, FaultRates(seu_per_bit=rate))
        high = SimplexMarkovModel(
            18, 16, 8, FaultRates(seu_per_bit=rate * factor)
        )
        assert high.ber(t)[0] > low.ber(t)[0]

    @settings(max_examples=10, deadline=None)
    @given(st.floats(min_value=1e-7, max_value=1e-5))
    def test_scrubbing_never_hurts(self, rate):
        t = [48.0]
        base = DuplexMarkovModel(18, 16, 8, FaultRates(seu_per_bit=rate))
        scrubbed = DuplexMarkovModel(
            18, 16, 8, FaultRates(seu_per_bit=rate, scrub_rate=4.0)
        )
        assert scrubbed.fail_probability(t)[0] <= base.fail_probability(t)[0]

    @settings(max_examples=10, deadline=None)
    @given(st.floats(min_value=1e-7, max_value=1e-4), st.booleans())
    def test_duplex_y_states_cost_nothing(self, rate, scrubbed):
        """Models differing only in initial single-sided erasures (Y)
        must produce identical fail probabilities under pure transients —
        the arbiter masks them for free."""
        scrub = 2.0 if scrubbed else 0.0
        model = DuplexMarkovModel(
            18, 16, 8, FaultRates(seu_per_bit=rate, scrub_rate=scrub)
        )
        # Y-shifted chain: start from (0, 3, 0, 0, 0, 0)
        from repro.markov import build_chain

        shifted = build_chain((0, 3, 0, 0, 0, 0), model.transitions)
        t = [48.0]
        base_pf = model.fail_probability(t)[0]
        shifted_pf = shifted.state_probability(FAIL, t)[0]
        # Y pairs only reduce the clean count; effect on transient-only
        # failure is second order but never negative protection-wise
        assert shifted_pf <= base_pf * 1.01 + 1e-15
