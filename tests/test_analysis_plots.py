"""Tests for the ASCII log-plot renderer."""

import numpy as np
import pytest

from repro.analysis import ascii_ber_plot
from repro.memory.ber import BERCurve


def curve(label, times, values):
    return BERCurve(label, np.asarray(times, float), np.asarray(values, float))


class TestAsciiPlot:
    def test_empty(self):
        assert ascii_ber_plot([]) == "(no curves)"

    def test_all_zero(self):
        plot = ascii_ber_plot([curve("z", [0.0, 1.0], [0.0, 0.0])])
        assert plot == "(all values are zero)"

    def test_size_validation(self):
        c = curve("a", [0.0, 1.0], [1e-9, 1e-6])
        with pytest.raises(ValueError):
            ascii_ber_plot([c], width=4)
        with pytest.raises(ValueError):
            ascii_ber_plot([c], height=2)

    def test_contains_markers_and_legend(self):
        c1 = curve("alpha", [1.0, 2.0, 3.0], [1e-9, 1e-8, 1e-7])
        c2 = curve("beta", [1.0, 2.0, 3.0], [1e-6, 1e-5, 1e-4])
        plot = ascii_ber_plot([c1, c2])
        assert "o" in plot and "x" in plot
        assert "o alpha" in plot and "x beta" in plot

    def test_axis_labels_span_decades(self):
        c = curve("a", [0.0, 48.0], [1e-12, 1e-4])
        plot = ascii_ber_plot([c])
        assert "1e-12" in plot
        assert "1e-4" in plot
        assert "48 hours" in plot

    def test_monotone_curve_renders_monotone(self):
        """Higher BER must appear higher on the plot (smaller row index)."""
        times = np.linspace(1, 10, 10)
        values = np.logspace(-12, -3, 10)
        plot = ascii_ber_plot([curve("m", times, values)], width=40, height=12)
        rows_with_marker = [
            (r, line.index("o"))
            for r, line in enumerate(plot.splitlines())
            if "o" in line and "|" in line
        ]
        # later columns (larger t) sit on higher rows (smaller r)
        ordered = sorted(rows_with_marker, key=lambda rc: rc[1])
        rows = [r for r, _c in ordered]
        assert rows == sorted(rows, reverse=True)

    def test_time_scale_changes_axis(self):
        c = curve("a", [0.0, 730.0], [1e-9, 1e-6])
        plot = ascii_ber_plot([c], time_scale=730.0, time_label="months")
        assert "1 months" in plot

    def test_zero_values_skipped_not_crashing(self):
        c = curve("a", [0.0, 24.0, 48.0], [0.0, 1e-8, 1e-7])
        plot = ascii_ber_plot([c])
        assert "o" in plot
