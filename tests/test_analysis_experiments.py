"""Tests for the experiment registry — every paper artifact is runnable
and its qualitative claims hold."""

import numpy as np
import pytest

from repro.analysis import (
    ALL_FIGURES,
    PERMANENT_RATES_PER_SYMBOL_DAY,
    SCRUB_PERIODS_SECONDS,
    SEU_RATES_PER_BIT_DAY,
    fig5_simplex_seu,
    fig6_duplex_seu,
    fig7_duplex_scrubbing,
    fig8_simplex_permanent,
    fig9_duplex_permanent,
    fig10_rs3616_permanent,
    permanent_fault_ordering,
    table_decoder_complexity,
)


class TestRegistry:
    def test_all_six_figures_registered(self):
        assert set(ALL_FIGURES) == {
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
        }

    def test_paper_parameter_constants(self):
        assert SEU_RATES_PER_BIT_DAY == (7.3e-7, 3.6e-6, 1.7e-5)
        assert SCRUB_PERIODS_SECONDS == (900.0, 1200.0, 1800.0, 3600.0)
        assert len(PERMANENT_RATES_PER_SYMBOL_DAY) == 7
        assert PERMANENT_RATES_PER_SYMBOL_DAY[0] == 1e-4
        assert PERMANENT_RATES_PER_SYMBOL_DAY[-1] == 1e-10


@pytest.mark.parametrize("fig_id", sorted(ALL_FIGURES))
def test_every_figure_runs_and_expectations_hold(fig_id):
    result = ALL_FIGURES[fig_id](points=7)
    assert result.experiment_id == fig_id
    assert result.curves
    failed = result.failed_expectations()
    assert not failed, f"{fig_id}: {failed}"


class TestFigureDetails:
    def test_fig5_curve_count_and_labels(self):
        result = fig5_simplex_seu(points=3)
        assert len(result.curves) == 3
        assert result.curve("1.7E-05").final > result.curve("7.3E-07").final

    def test_fig6_same_range_as_fig5(self):
        f5 = fig5_simplex_seu(points=3)
        f6 = fig6_duplex_seu(points=3)
        for lam in SEU_RATES_PER_BIT_DAY:
            label = f"{lam:.1E}"
            ratio = f6.curve(label).final / f5.curve(label).final
            assert 0.5 < ratio < 5.0

    def test_fig7_headline_claim(self):
        """Scrubbing at most hourly keeps worst-case duplex BER < 1e-6."""
        result = fig7_duplex_scrubbing(points=5)
        assert len(result.curves) == 4
        assert all(c.final < 1e-6 for c in result.curves)

    def test_fig8_fig9_fig10_ordering(self):
        """Section 6: duplex RS(18,16) between simplex RS(18,16) and
        simplex RS(36,16) under permanent faults."""
        f8 = fig8_simplex_permanent(points=3)
        f9 = fig9_duplex_permanent(points=3)
        f10 = fig10_rs3616_permanent(points=3)
        for rate in PERMANENT_RATES_PER_SYMBOL_DAY[:4]:
            label = f"{rate:.0E}"
            b8 = f8.curve(label).at(24 * 730.0)
            b9 = f9.curve(label).at(24 * 730.0)
            b10 = f10.curve(label).at(24 * 730.0)
            assert b8 > b9 > b10, f"rate {rate}"

    def test_permanent_fault_ordering_helper(self):
        bers = permanent_fault_ordering(rate_per_symbol_day=1e-6)
        assert (
            bers["simplex RS(18,16)"]
            > bers["duplex RS(18,16)"]
            > bers["simplex RS(36,16)"]
        )

    def test_fig9_uses_25_month_horizon(self):
        result = fig9_duplex_permanent(points=3)
        assert result.curves[0].times_hours[-1] == pytest.approx(25 * 730.0)

    def test_result_curve_lookup_error(self):
        result = fig5_simplex_seu(points=3)
        with pytest.raises(KeyError):
            result.curve("nonexistent")

    def test_curves_share_grid(self):
        result = fig7_duplex_scrubbing(points=5)
        grids = [c.times_hours for c in result.curves]
        for g in grids[1:]:
            assert np.array_equal(g, grids[0])


class TestComplexityTable:
    def test_paper_values(self):
        costs = {c.name: c for c in table_decoder_complexity()}
        assert costs["simplex RS(18,16)"].decode_cycles == 74
        assert costs["duplex RS(18,16)"].decode_cycles == 74
        assert costs["simplex RS(36,16)"].decode_cycles == 308

    def test_latency_ratio_exceeds_four(self):
        costs = {c.name: c for c in table_decoder_complexity()}
        ratio = (
            costs["simplex RS(36,16)"].decode_cycles
            / costs["duplex RS(18,16)"].decode_cycles
        )
        assert ratio > 4.0

    def test_area_ordering(self):
        costs = {c.name: c for c in table_decoder_complexity()}
        assert (
            costs["simplex RS(18,16)"].area_gates
            < costs["duplex RS(18,16)"].area_gates
            < costs["simplex RS(36,16)"].area_gates
        )
