"""Property-based tests of CTMC invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov import CTMC


@st.composite
def random_ctmc(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    transitions = []
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if draw(st.booleans()):
                rate = draw(
                    st.floats(
                        min_value=0.01,
                        max_value=5.0,
                        allow_nan=False,
                        allow_infinity=False,
                    )
                )
                transitions.append((i, j, rate))
    return CTMC(list(range(n)), transitions, 0)


@st.composite
def absorbing_birth_chain(draw):
    """A monotone chain 0 -> 1 -> ... -> n with the last state absorbing."""
    n = draw(st.integers(min_value=1, max_value=6))
    rates = [
        draw(st.floats(min_value=0.01, max_value=3.0, allow_nan=False))
        for _ in range(n)
    ]
    transitions = [(i, i + 1, r) for i, r in enumerate(rates)]
    return CTMC(list(range(n + 1)), transitions, 0)


class TestTransientInvariants:
    @settings(max_examples=40, deadline=None)
    @given(random_ctmc(), st.floats(min_value=0.0, max_value=10.0))
    def test_probability_conservation(self, chain, t):
        probs = chain.transient([t])[0]
        assert abs(probs.sum() - 1.0) < 1e-9

    @settings(max_examples=40, deadline=None)
    @given(random_ctmc(), st.floats(min_value=0.0, max_value=10.0))
    def test_nonnegativity(self, chain, t):
        probs = chain.transient([t])[0]
        assert np.all(probs >= -1e-12)

    @settings(max_examples=30, deadline=None)
    @given(random_ctmc(), st.floats(min_value=0.01, max_value=5.0))
    def test_solver_agreement(self, chain, t):
        uni = chain.transient([t], method="uniformization")[0]
        exp = chain.transient([t], method="expm")[0]
        assert np.allclose(uni, exp, atol=1e-9)


class TestAbsorbingInvariants:
    @settings(max_examples=40, deadline=None)
    @given(absorbing_birth_chain(), st.floats(min_value=0.0, max_value=5.0))
    def test_absorbing_probability_monotone_in_time(self, chain, t):
        last = chain.num_states - 1
        p = chain.state_probability(last, [t, t + 1.0, t + 2.0])
        assert p[0] <= p[1] + 1e-12
        assert p[1] <= p[2] + 1e-12

    @settings(max_examples=30, deadline=None)
    @given(absorbing_birth_chain())
    def test_eventual_absorption(self, chain):
        last = chain.num_states - 1
        p = chain.state_probability(last, [1e4])
        assert p[0] > 0.999

    @settings(max_examples=30, deadline=None)
    @given(absorbing_birth_chain())
    def test_mtta_positive_and_finite(self, chain):
        last = chain.num_states - 1
        mtta = chain.mean_time_to_absorption([last])
        assert 0 < mtta < float("inf")
