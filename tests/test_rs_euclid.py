"""Tests for the Euclidean (Sugiyama) key-equation solver.

The decisive property: on every in-capability errata pattern, the
Euclidean solver and Berlekamp-Massey must derive the *same* locator —
two structurally different algorithms agreeing pattern-for-pattern, the
codec-level analogue of the package's solver cross-validation.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import GF2m, poly
from repro.rs import RSCode, RSDecodingError
from repro.rs.berlekamp import berlekamp_massey
from repro.rs.euclid import (
    berlekamp_euclid_agree,
    euclid_key_equation,
    extended_euclid_until,
)
from repro.rs.syndromes import compute_syndromes


@pytest.fixture(scope="module")
def gf():
    return GF2m(8)


class TestExtendedEuclid:
    def test_bezout_identity_holds(self, gf):
        rng = random.Random(3)
        a = [rng.randrange(256) for _ in range(9)] + [1]  # monic deg 9
        b = [rng.randrange(256) for _ in range(7)]
        u, r = extended_euclid_until(gf, a, b, 4)
        # u*b == r (mod a)
        lhs = poly.mod(gf, poly.mul(gf, u, b), a)
        assert lhs == poly.normalize(r)
        assert poly.degree(r) < 4

    def test_stops_immediately_if_already_below_bound(self, gf):
        u, r = extended_euclid_until(gf, [0, 0, 0, 1], [5], 2)
        assert u == [1]
        assert r == [5]


class TestKeyEquation:
    def test_zero_syndromes_trivial_locator(self, gf):
        lam, omega = euclid_key_equation(gf, [0, 0, 0, 0], 4)
        assert lam == [1]
        assert omega == [0]

    def test_syndrome_length_checked(self, gf):
        with pytest.raises(ValueError):
            euclid_key_equation(gf, [1, 2], 4)

    def test_matches_bm_single_error(self, gf):
        code = RSCode(36, 16, m=8)
        cw = code.encode([3] * 16)
        received = list(cw)
        received[11] ^= 0x5C
        synd = compute_syndromes(gf, received, code.nsym)
        lam_euclid, _ = euclid_key_equation(gf, synd, code.nsym)
        assert lam_euclid == berlekamp_massey(gf, synd)

    @settings(max_examples=80, deadline=None)
    @given(
        st.integers(min_value=1, max_value=10),
        st.randoms(use_true_random=False),
    )
    def test_matches_bm_up_to_capability(self, num_errors, rnd):
        """BM and Euclid agree on the locator for every random pattern
        within capability of RS(36,16)."""
        code = RSCode(36, 16, m=8)
        cw = code.encode([rnd.randrange(256) for _ in range(16)])
        received = list(cw)
        for pos in rnd.sample(range(36), num_errors):
            received[pos] ^= rnd.randrange(1, 256)
        synd = compute_syndromes(code.gf, received, code.nsym)
        assert berlekamp_euclid_agree(code.gf, synd, code.nsym)


class TestEuclidDecoder:
    def test_constructor_validates_solver(self):
        with pytest.raises(ValueError, match="key_solver"):
            RSCode(18, 16, key_solver="magic")

    @pytest.mark.parametrize("nk", [(18, 16), (36, 16), (15, 9)])
    def test_full_decode_roundtrip(self, nk):
        n, k = nk
        rng = random.Random(n)
        code = RSCode(n, k, m=8, key_solver="euclid")
        data = [rng.randrange(256) for _ in range(k)]
        cw = code.encode(data)
        for er in range(0, code.nsym + 1, 2):
            re = (code.nsym - er) // 2
            positions = rng.sample(range(n), er + re)
            corrupted = list(cw)
            for pos in positions:
                corrupted[pos] ^= rng.randrange(1, 256)
            result = code.decode(corrupted, erasure_positions=positions[:er])
            assert result.codeword == cw

    def test_euclid_and_bm_decoders_identical_outputs(self):
        rng = random.Random(5)
        bm = RSCode(36, 16, m=8, key_solver="bm")
        euclid = RSCode(36, 16, m=8, key_solver="euclid")
        data = [rng.randrange(256) for _ in range(16)]
        cw = bm.encode(data)
        for _ in range(50):
            corrupted = list(cw)
            for pos in rng.sample(range(36), rng.randrange(1, 11)):
                corrupted[pos] ^= rng.randrange(1, 256)
            assert (
                euclid.decode(corrupted).codeword
                == bm.decode(corrupted).codeword
            )

    def test_beyond_capability_behaviour_sane(self):
        """Past capability Euclid must still either detect or emit a
        valid codeword — never garbage."""
        rng = random.Random(9)
        code = RSCode(18, 16, m=8, key_solver="euclid")
        cw = code.encode([rng.randrange(256) for _ in range(16)])
        detected = 0
        for _ in range(200):
            corrupted = list(cw)
            for pos in rng.sample(range(18), 3):
                corrupted[pos] ^= rng.randrange(1, 256)
            try:
                result = code.decode(corrupted)
            except RSDecodingError:
                detected += 1
            else:
                assert code.is_codeword(result.codeword)
        assert detected > 0
