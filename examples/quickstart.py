"""Quickstart: evaluate a Reed-Solomon protected memory in ten lines.

Builds the paper's two arrangements under the worst-case SEU environment,
asks the headline question — does hourly scrubbing hold the BER below
1e-6 over a 2-day storage window? — and prints the answer.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ber_curve, duplex_model, simplex_model

WORST_CASE_SEU = 1.7e-5  # errors/bit/day (paper Section 6)
TIMES = np.linspace(0.0, 48.0, 13)  # hours


def main() -> None:
    simplex = simplex_model(18, 16, seu_per_bit_day=WORST_CASE_SEU)
    duplex = duplex_model(18, 16, seu_per_bit_day=WORST_CASE_SEU)
    scrubbed = duplex_model(
        18, 16, seu_per_bit_day=WORST_CASE_SEU, scrub_period_seconds=3600.0
    )

    for model, name in (
        (simplex, "simplex RS(18,16)          "),
        (duplex, "duplex RS(18,16)           "),
        (scrubbed, "duplex RS(18,16) + scrub 1h"),
    ):
        curve = ber_curve(model, TIMES)
        print(f"{name}  BER(48 h) = {curve.final:.3e}")

    budget = 1e-6
    verdict = "meets" if ber_curve(scrubbed, TIMES).final < budget else "misses"
    print(
        f"\nHourly scrubbing {verdict} the {budget:g} BER budget at the "
        "worst-case SEU rate - the paper's Fig. 7 takeaway."
    )


if __name__ == "__main__":
    main()
