"""Design study: sizing a Solid State Mass Memory for a 2-year mission.

The paper's motivating scenario (Section 1): a satellite SSMM built from
COTS memory chips, which beat space-certified parts on capacity and power
but are exposed to SEUs and permanent faults.  This walkthrough chains
every layer of the library:

1. estimate the permanent-fault rate of a COTS chip from the
   MIL-HDBK-217-style parts-stress model (paper ref. [1]);
2. apportion it to a per-symbol erasure rate λe;
3. evaluate the three arrangements of the paper over the mission;
4. extend the word-level result to the whole memory;
5. weigh the decoder latency/area bill.

Run:  python examples/ssmm_design_study.py
"""

from repro.analysis import render_cost_table, table_decoder_complexity
from repro.memory import ber_curve, duplex_model, months_to_hours, simplex_model
from repro.reliability import MemoryChip, whole_memory_data_integrity

MISSION_MONTHS = 24.0
SEU_PER_BIT_DAY = 3.6e-6  # mid-range orbital environment (paper Fig. 5)
CAPACITY_BITS = 4 * 1024 * 1024  # 4 Mbit COTS SRAM
WORDS_IN_MEMORY = 2**20  # 1M codewords stored


def main() -> None:
    # 1-2. permanent-fault environment from the parts-stress model
    chip = MemoryChip(
        capacity_bits=CAPACITY_BITS,
        junction_celsius=45.0,
        environment="space_flight",
        quality="commercial",
    )
    symbols_per_chip = CAPACITY_BITS // 8
    lam_e = chip.symbol_erasure_rate_per_day(symbols_per_chip)
    print(f"COTS chip failure rate : {chip.failure_rate_per_hour():.3e} /h")
    print(f"per-symbol erasure rate: {lam_e:.3e} /symbol/day\n")

    # 3. candidate arrangements over the mission
    horizon = [months_to_hours(MISSION_MONTHS)]
    candidates = {
        "simplex RS(18,16)": simplex_model(
            18, 16, seu_per_bit_day=SEU_PER_BIT_DAY, erasure_per_symbol_day=lam_e
        ),
        "duplex RS(18,16)": duplex_model(
            18, 16, seu_per_bit_day=SEU_PER_BIT_DAY, erasure_per_symbol_day=lam_e
        ),
        "simplex RS(36,16)": simplex_model(
            36, 16, seu_per_bit_day=SEU_PER_BIT_DAY, erasure_per_symbol_day=lam_e
        ),
    }
    # transient pressure is handled by scrubbing in all candidates
    candidates = {
        name: type(model)(
            model.n,
            model.k,
            model.m,
            model.rates.with_scrub_period(3600.0),
        )
        for name, model in candidates.items()
    }

    print(f"{'arrangement':<20} {'word BER':>12} {'whole-memory integrity':>24}")
    for name, model in candidates.items():
        word_fail = float(model.fail_probability(horizon)[0])
        integrity = whole_memory_data_integrity(word_fail, WORDS_IN_MEMORY)
        ber = ber_curve(model, horizon, method="uniformization").final
        print(f"{name:<20} {ber:>12.3e} {integrity:>24.6f}")

    # 5. the hardware bill
    print("\nDecoder cost (Section 6 models):")
    print(render_cost_table(table_decoder_complexity()))
    print(
        "\nTakeaway: the duplex RS(18,16) keeps the 74-cycle decode path and "
        "most of the\nRS(36,16) integrity at less than a quarter of its "
        "decoder area - the paper's\nbalanced design point."
    )


if __name__ == "__main__":
    main()
