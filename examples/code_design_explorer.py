"""Exploring the code/arrangement design space beyond the paper's 3 points.

The paper compares simplex RS(18,16), duplex RS(18,16) and simplex
RS(36,16).  Those are three points in the family RS(16 + 2t, 16) x
{simplex, duplex}; this explorer sweeps the family and reports:

1. the Pareto front on (BER, decode latency, decoder area, storage);
2. the cheapest design for several BER budgets;
3. the hardware detail behind each front member (pipeline stage budgets
   and structural gate counts);
4. the mis-correction exposure of the t = 1 codes (why the duplex
   arbiter matters most exactly where the paper puts it).

Run:  python examples/code_design_explorer.py
"""

from repro.analysis import (
    cheapest_meeting_budget,
    enumerate_design_space,
    pareto_front,
)
from repro.rs import (
    decoder_area,
    decoder_timing,
    decoding_sphere_fraction,
)

MISSION_HOURS = 24 * 730.0
PERM_RATE = 1e-6  # per symbol per day


def main() -> None:
    points = enumerate_design_space(
        k=16,
        t_values=[1, 2, 4, 6, 10],
        horizon_hours=MISSION_HOURS,
        erasure_per_symbol_day=PERM_RATE,
    )
    front = pareto_front(points)

    print(
        f"Pareto front, permanent faults {PERM_RATE:g}/symbol/day over "
        f"24 months ({len(front)}/{len(points)} designs survive):\n"
    )
    header = f"{'design':<20}{'BER':>12}{'Td':>6}{'area GE':>9}{'storage':>9}"
    print(header)
    print("-" * len(header))
    for p in front:
        print(
            f"{p.name:<20}{p.ber:>12.2e}{p.decode_cycles:>6}"
            f"{p.area_gate_equivalents:>9.0f}{p.storage_overhead:>9.2f}"
        )

    print("\nCheapest design meeting a BER budget:")
    for budget in (1e-6, 1e-15, 1e-40):
        best = cheapest_meeting_budget(points, budget)
        print(
            f"  {budget:>7.0e} -> {best.name:<20} "
            f"(area {best.area_gate_equivalents:.0f} GE, "
            f"Td {best.decode_cycles} cycles)"
        )

    print("\nHardware detail of the paper's three points:")
    for n in (18, 36):
        timing = decoder_timing(n, 16)
        area = decoder_area(n, 16)
        stages = ", ".join(
            f"{name}={cycles}" for name, cycles in timing.stage_budgets().items()
        )
        print(
            f"  RS({n},16): Td={timing.latency_cycles} cycles ({stages}); "
            f"{area.gate_equivalents:.0f} GE"
        )

    print("\nMis-correction exposure (decoding-sphere fraction):")
    for n, k in ((18, 16), (20, 16), (36, 16)):
        frac = decoding_sphere_fraction(n, k, 256)
        print(f"  RS({n},{k}): {frac:.2e}")
    print(
        "\n-> the t = 1 code mis-corrects 7% of over-capability patterns; "
        "larger t makes\n   the event negligible. The duplex flag arbiter "
        "is the paper's answer exactly\n   at the design point where the "
        "exposure is worst."
    )


if __name__ == "__main__":
    main()
