"""Tuning the scrubbing period against a BER budget.

Scrubbing is not free — each pass costs controller activity, memory
availability and power (paper Section 2) — so the design question behind
Fig. 7 is: *how slow can the scrubber run while still meeting the data-
integrity budget?*  This walkthrough answers it three ways:

1. sweep Tsc over the paper's grid and print the BER trajectory;
2. search the largest admissible period for several budgets;
3. cross-check the exponential-rate model against a deterministic
   fixed-schedule scrubber (the library's extension solver).

Run:  python examples/scrubbing_tuning.py
"""

import numpy as np

from repro.analysis import (
    SCRUB_PERIODS_SECONDS,
    max_scrub_period_for_budget,
    render_ber_table,
)
from repro.memory import ber_curve, duplex_model
from repro.memory.scrubbing import deterministic_scrub_ber

SEU = 1.7e-5  # worst-case errors/bit/day
HORIZON_H = 48.0


def main() -> None:
    times = np.linspace(0.0, HORIZON_H, 13)

    print("BER trajectories over the paper's Tsc grid (Fig. 7):")
    curves = [
        ber_curve(
            duplex_model(
                18, 16, seu_per_bit_day=SEU, scrub_period_seconds=tsc
            ),
            times,
            label=f"{int(tsc)} s",
        )
        for tsc in SCRUB_PERIODS_SECONDS
    ]
    print(render_ber_table(curves))

    print("\nLargest scrubbing period meeting a 48 h BER budget:")
    for budget in (1e-6, 3e-7, 1e-7):
        period = max_scrub_period_for_budget(
            18, 16, seu_per_bit_day=SEU, budget=budget, horizon_hours=HORIZON_H
        )
        print(f"  budget {budget:>7.0e}  ->  Tsc <= {period / 60:6.0f} min")

    print("\nExponential-rate model vs a fixed-schedule scrubber (Tsc = 1 h):")
    exp_ber = ber_curve(
        duplex_model(18, 16, seu_per_bit_day=SEU, scrub_period_seconds=3600.0),
        [HORIZON_H],
    ).final
    det_ber = deterministic_scrub_ber(
        duplex_model(18, 16, seu_per_bit_day=SEU), [HORIZON_H], 1.0
    )[0]
    print(f"  exponential rate 1/Tsc : BER = {exp_ber:.3e}")
    print(f"  deterministic schedule : BER = {det_ber:.3e}")
    print(
        "  -> the paper's rate-based approximation is accurate to within "
        f"{max(exp_ber, det_ber) / min(exp_ber, det_ber):.2f}x here."
    )


if __name__ == "__main__":
    main()
