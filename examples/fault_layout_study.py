"""Clustered upsets and physical layout: beyond the single-bit SEU.

The paper models every SEU as one flipped bit.  In scaled technologies a
single particle upsets a *cluster* of adjacent cells, and the physical
placement of a codeword's bits decides how many RS symbols one strike
corrupts.  This study walks the three layouts with both the analytical
chain and the bit-level simulator:

* contiguous    — a symbol's bits adjacent (the chipkill rule);
* bit-interleaved — adjacent cells cycle through symbols (good for
  Hamming, catastrophic for RS);
* word-interleaved — adjacent cells belong to different codewords.

Run:  python examples/fault_layout_study.py
"""

import numpy as np

from repro.memory.mbu import (
    ClusterDistribution,
    Layout,
    SimplexMBUModel,
    mbu_layout_comparison,
)
from repro.memory.rates import FaultRates
from repro.rs import RSCode
from repro.simulator.mbu import simulate_mbu_read_unreliability

STRIKE_RATE_DAY = 1.7e-5  # strikes per cell per day (paper worst case)
CLUSTERS = ClusterDistribution.typical()


def main() -> None:
    print(
        f"cluster mix: {dict(CLUSTERS.sizes)} "
        f"(mean {CLUSTERS.mean_size:.2f} cells/strike)\n"
    )

    print("Analytical BER at the paper's worst-case strike rate:")
    comp = mbu_layout_comparison(
        18,
        16,
        strike_rate_per_cell_day=STRIKE_RATE_DAY,
        times_hours=[12.0, 24.0, 48.0],
        clusters=CLUSTERS,
    )
    print(f"{'hours':>6}", *(f"{name:>17}" for name in comp))
    for i, t in enumerate((12.0, 24.0, 48.0)):
        print(f"{t:>6.0f}", *(f"{comp[name][i]:>17.3e}" for name in comp))
    ratio = comp["bit_interleaved"][-1] / comp["word_interleaved"][-1]
    print(f"\nlayout spread at 48 h: {ratio:.0f}x between worst and best\n")

    print("Cross-check against bit-level fault injection (high rate):")
    rate_day = 2e-3
    code = RSCode(18, 16, m=8)
    rng = np.random.default_rng(42)
    for layout in Layout:
        model = SimplexMBUModel(
            18,
            16,
            8,
            FaultRates.from_paper_units(seu_per_bit_day=rate_day),
            layout=layout,
            clusters=CLUSTERS,
        )
        p_model = model.fail_probability([48.0])[0]
        mc = simulate_mbu_read_unreliability(
            code, layout, CLUSTERS, rate_day / 24.0, 48.0, 600, rng
        )
        print(
            f"  {layout.value:<17} chain={p_model:.4f}  "
            f"injected={mc.probability:.4f} "
            f"[{mc.ci_low:.4f},{mc.ci_high:.4f}]"
        )
    print(
        "\nTakeaway: for a symbol-oriented code, never interleave bits of "
        "different\nsymbols - one strike then costs several of the code's "
        "t = (n-k)/2 corrections.\nKeep symbols physically together, or "
        "interleave across codewords."
    )


if __name__ == "__main__":
    main()
