"""End-to-end mission reliability: orbits, whole memories, sensitivities.

Builds on the paper's word-level chains to answer the questions a
mission-assurance engineer actually asks:

1. how does a realistic LEO orbit (quiet legs + South Atlantic Anomaly
   passes at the paper's worst-case rate) differ from the averaged-rate
   shortcut?
2. what does the word-level BER mean for a full 1M-word memory — data
   integrity and mean time to first data loss?
3. which parameter is worth hardening — the SEU environment or the
   scrubber?

Run:  python examples/mission_reliability.py
"""

import numpy as np

from repro.analysis import memory_system_sensitivities
from repro.memory import WholeMemory, duplex_model, orbital_profile

HORIZON_H = 48.0
WORDS = 1 << 20


def main() -> None:
    # 1. exact piecewise orbit vs averaged rates
    profile = orbital_profile()  # duplex RS(18,16), hourly scrub
    times = np.linspace(0.0, HORIZON_H, 7)
    exact = profile.ber(times)
    avg_model = profile.equivalent_average_model()
    averaged = avg_model.ber_factor * avg_model.fail_probability(times)
    print("LEO orbit (85% quiet / 15% SAA), duplex RS(18,16), hourly scrub:")
    print(f"{'hours':>6} {'piecewise BER':>15} {'averaged BER':>15}")
    for t, e, a in zip(times, exact, averaged):
        print(f"{t:>6.0f} {e:>15.3e} {a:>15.3e}")

    # 2. whole-memory view at the worst-case constant rate
    word = duplex_model(
        18, 16, seu_per_bit_day=1.7e-5, scrub_period_seconds=3600.0
    )
    memory = WholeMemory(word, WORDS)
    integrity = memory.data_integrity([HORIZON_H])[0]
    expected_bad = memory.expected_unreadable_words([HORIZON_H])[0]
    mttdl_h = memory.mean_time_to_data_loss()
    print(f"\n1M-word memory at the worst-case SEU rate, hourly scrub:")
    print(f"  P(all words readable at 48 h) = {integrity:.4f}")
    print(f"  expected unreadable words     = {expected_bad:.2f}")
    print(f"  mean time to first data loss  = {mttdl_h:.1f} h")

    # 3. where to spend hardening effort
    print("\nBER elasticities (percent BER change per percent parameter):")
    for s in memory_system_sensitivities(
        "duplex",
        18,
        16,
        HORIZON_H,
        seu_per_bit_day=1.7e-5,
        scrub_period_seconds=3600.0,
    ):
        print(f"  {s.parameter:<24} {s.elasticity:+.2f}")
    print(
        "\n-> BER scales ~quadratically with the SEU rate (a t = 1 code "
        "dies on two\n   errors) and ~linearly with the scrubbing period: "
        "halving Tsc buys as much\n   as a 30% cleaner orbit."
    )


if __name__ == "__main__":
    main()
