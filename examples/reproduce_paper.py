"""Full reproduction driver: regenerate every figure and table of the paper.

Prints each evaluation artifact of Section 6 as an ASCII table and checks
the paper's qualitative expectations along the way.  This is the script
behind EXPERIMENTS.md.

Run:  python examples/reproduce_paper.py
"""

from repro.analysis import (
    ALL_FIGURES,
    permanent_fault_ordering,
    render_ber_table,
    render_cost_table,
    table_decoder_complexity,
)
from repro.memory import HOURS_PER_MONTH


def main() -> None:
    for fig_id, build in ALL_FIGURES.items():
        result = build(points=25)
        print(f"\n=== {fig_id}: {result.title} ===")
        scale = HOURS_PER_MONTH if fig_id in ("fig8", "fig9", "fig10") else 1.0
        label = "months" if scale != 1.0 else "hours"
        print(render_ber_table(result.curves, time_label=label, time_scale=scale))
        failed = result.failed_expectations()
        status = "all paper expectations hold" if not failed else f"FAILED: {failed}"
        print(f"--> {status}")

    print("\n=== Section 6: decoder complexity ===")
    print(render_cost_table(table_decoder_complexity()))

    print("\n=== Section 6: permanent-fault comparison at 1e-6 /symbol/day ===")
    for name, ber in permanent_fault_ordering(1e-6).items():
        print(f"  {name:<20}  BER(24 months) = {ber:.3e}")


if __name__ == "__main__":
    main()
