"""Inside the codec and the arbiter: errors, erasures, mis-correction.

A guided tour of the machinery under the Markov models, using the actual
RS(18,16) decoder and the Section 3 duplex arbiter:

* encode a word and watch syndromes expose injected faults;
* correct a random error, then an erasure, then the 2er+re boundary mix;
* push past capability to trigger a real mis-correction;
* watch the duplex arbiter's flag comparison catch that mis-correction.

Run:  python examples/codec_playground.py
"""

import random

from repro.rs import RSCode, RSDecodingError
from repro.rs.syndromes import compute_syndromes
from repro.simulator import ArbiterDecision, MemoryWord, arbitrate

rng = random.Random(2005)


def banner(text: str) -> None:
    print(f"\n--- {text} ---")


def main() -> None:
    code = RSCode(18, 16, m=8)
    data = [rng.randrange(256) for _ in range(16)]
    cw = code.encode(data)
    print(f"RS(18,16) over GF(256): t = {code.t} error, n-k = {code.nsym}")
    print(f"codeword: {bytes(cw).hex()}")

    banner("syndromes flag any corruption")
    clean = compute_syndromes(code.gf, cw, code.nsym)
    corrupted = list(cw)
    corrupted[7] ^= 0x40
    dirty = compute_syndromes(code.gf, corrupted, code.nsym)
    print(f"clean syndromes    : {clean}")
    print(f"after one bit flip : {dirty}")

    banner("a random error is corrected")
    result = code.decode(corrupted)
    print(f"corrected positions {result.error_positions}, data intact: "
          f"{result.data == data}")

    banner("two erasures use the full n-k budget")
    corrupted = list(cw)
    corrupted[0] ^= 0xFF
    corrupted[9] ^= 0x13
    result = code.decode(corrupted, erasure_positions=[0, 9])
    print(f"2 erasures corrected (2*0 + 2 <= {code.nsym}), data intact: "
          f"{result.data == data}")

    banner("beyond capability: detection or mis-correction")
    detected = miscorrected = 0
    miscorrecting_word = None
    for _ in range(300):
        attempt = list(cw)
        for pos in rng.sample(range(18), 2):
            attempt[pos] ^= rng.randrange(1, 256)
        try:
            out = code.decode(attempt)
        except RSDecodingError:
            detected += 1
        else:
            miscorrected += 1
            if miscorrecting_word is None and out.data != data:
                miscorrecting_word = attempt
    print(f"300 double-error words: {detected} detected, "
          f"{miscorrected} silently mis-corrected")

    banner("the duplex arbiter catches the mis-correction by flag comparison")
    assert miscorrecting_word is not None
    module1 = MemoryWord(miscorrecting_word, code.m)  # will mis-correct
    module2 = MemoryWord(cw, code.m)                  # healthy replica
    verdict = arbitrate(code, module1, module2)
    print(f"decision = {verdict.decision.name}, flags = {verdict.flags}")
    print(f"arbiter output correct: {verdict.data == data}")
    assert verdict.decision is ArbiterDecision.FLAG_DISCRIMINATED


if __name__ == "__main__":
    main()
