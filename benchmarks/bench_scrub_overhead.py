"""Extension bench: the cost side of Fig. 7.

The paper notes scrubbing costs availability and power but does not
quantify them.  For each Fig. 7 period this bench reports BER next to
availability, scrub bandwidth and duty cycle for a 1M-word duplex memory
on a 50 MHz controller, closing the BER-vs-cost tradeoff loop.
"""

from repro.analysis import SCRUB_PERIODS_SECONDS, WORST_CASE_SEU_PER_BIT_DAY
from repro.analysis.tables import _render, format_ber
from repro.memory import duplex_model, scrub_overhead

WORDS = 1 << 20


def run_cost_table():
    rows = []
    for period in SCRUB_PERIODS_SECONDS:
        model = duplex_model(
            18,
            16,
            seu_per_bit_day=WORST_CASE_SEU_PER_BIT_DAY,
            scrub_period_seconds=period,
        )
        ber = model.ber([48.0])[0]
        cost = scrub_overhead(
            18, 16, num_words=WORDS, scrub_period_seconds=period,
            num_decoders=2,
        )
        rows.append((period, ber, cost))
    return rows


def test_scrub_overhead(benchmark, save_table):
    rows = benchmark.pedantic(run_cost_table, rounds=1, iterations=1)
    # the tradeoff must be real: faster scrubbing lowers BER, costs duty
    bers = [r[1] for r in rows]
    duties = [r[2].duty_cycle for r in rows]
    assert bers == sorted(bers)
    assert duties == sorted(duties, reverse=True)
    assert all(cost.availability > 0.99 for _p, _b, cost in rows)
    table = [
        [
            f"{int(period)}",
            format_ber(ber),
            f"{cost.availability:.6f}",
            f"{cost.scrub_bandwidth_bits_per_s / 8e3:.1f}",
            f"{cost.duty_cycle:.2e}",
        ]
        for period, ber, cost in rows
    ]
    save_table(
        "scrub_overhead",
        "Extension: BER vs scrubbing cost, duplex RS(18,16), 1M words, "
        "50 MHz controller",
        _render(
            ["Tsc (s)", "BER(48h)", "availability", "bandwidth (kB/s)", "duty"],
            table,
        ),
    )
