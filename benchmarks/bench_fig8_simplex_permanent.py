"""Fig. 8 — BER of simplex RS(18,16) varying the permanent fault rate.

Paper configuration: no scrubbing, λe swept over 1e-4..1e-10 per symbol
per day, 24-month storage horizon.  The closed-form solver resolves the
deep tail (the paper plots down to 1e-30) with full relative accuracy.
"""

from repro.analysis import fig8_simplex_permanent, render_ber_table
from repro.memory import HOURS_PER_MONTH


def test_fig8_reproduction(benchmark, save_table):
    result = benchmark(fig8_simplex_permanent, points=25)
    assert result.all_expectations_hold(), result.failed_expectations()
    save_table(
        "fig8",
        "Fig. 8: BER of Simplex RS(18,16), permanent fault rate sweep "
        "(/symbol/day)",
        render_ber_table(
            result.curves, time_label="months", time_scale=HOURS_PER_MONTH
        ),
    )
