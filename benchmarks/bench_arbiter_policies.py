"""Ablation: how much is the Section 3 flag comparison worth?

Runs identical fault histories through four duplex read policies —
the paper's flag-compare arbiter, a first-decodable policy (no
comparison), a flagless compare, and module-1-only — and reports total
failure rate plus *silent corruption* rate.  The paper's design resolves
single-sided mis-corrections and keeps silent corruption to the corner
cases Section 3 explicitly neglects (a mis-correction whose partner word
is detected-undecodable, or matching double mis-corrections).
"""

import numpy as np

from repro.analysis.tables import _render
from repro.rs import RSCode
from repro.simulator import compare_policies

LAM_DAY = 2e-3
TRIALS = 800


def run_policies():
    return compare_policies(
        RSCode(18, 16, m=8),
        t_end=48.0,
        seu_per_bit=LAM_DAY / 24.0,
        erasure_per_symbol=0.0,
        trials=TRIALS,
        rng=np.random.default_rng(2005),
    )


def test_arbiter_policies(benchmark, save_table):
    results = benchmark.pedantic(run_policies, rounds=1, iterations=1)
    flag = results["flag_compare"]
    # the flag arbiter's only silent paths are the rare corner cases the
    # paper neglects (matching double mis-corrections; a mis-correction
    # paired with a detected-undecodable partner) - it must be at least
    # as clean as every cheaper policy and strictly cleaner than the
    # no-comparison one
    assert flag["silent"] <= results["first_decodable"]["silent"]
    assert flag["silent"] <= results["module1_only"]["silent"]
    assert flag["failure"] <= results["compare_no_flags"]["failure"]
    assert flag["failure"] <= results["module1_only"]["failure"]
    rows = [
        [name, f"{c['failure']:.4f}", f"{c['silent']:.4f}"]
        for name, c in results.items()
    ]
    save_table(
        "arbiter_policies",
        f"Ablation: duplex read policies, lambda={LAM_DAY}/bit/day, 48 h, "
        f"{TRIALS} shared fault histories",
        _render(["policy", "failure rate", "silent corruption"], rows),
    )
