"""Extension bench: multi-bit upsets vs physical layout.

The paper's single-bit SEU assumption breaks down in scaled memories
where one strike upsets a cell cluster.  This bench compares the three
layouts under a representative cluster mix at the paper's worst-case
strike rate, quantifying the symbol-oriented-code layout rule: keep a
symbol's bits together (or interleave across words), never interleave
bits of different symbols.
"""

import numpy as np

from repro.analysis.tables import _render, format_ber
from repro.memory.mbu import ClusterDistribution, mbu_layout_comparison

STRIKE_RATE_DAY = 1.7e-5
TIMES = [12.0, 24.0, 48.0]


def run_layouts():
    return mbu_layout_comparison(
        18,
        16,
        strike_rate_per_cell_day=STRIKE_RATE_DAY,
        times_hours=TIMES,
        clusters=ClusterDistribution.typical(),
    )


def test_mbu_layouts(benchmark, save_table):
    comp = benchmark(run_layouts)
    final = {name: series[-1] for name, series in comp.items()}
    assert final["word_interleaved"] < final["contiguous"]
    assert final["contiguous"] < final["bit_interleaved"] / 2
    rows = [
        [f"{t:.0f}"] + [format_ber(comp[name][i]) for name in comp]
        for i, t in enumerate(TIMES)
    ]
    save_table(
        "mbu_layouts",
        "Extension: BER under clustered upsets vs layout, simplex "
        "RS(18,16), strike rate 1.7e-5/cell/day",
        _render(["hours"] + list(comp), rows),
    )
