"""Extension bench: how many replicas are worth their area?

Sweeps N-modular redundancy (per-symbol voting + RS(18,16)) over
N = 1..5 under a mixed fault environment and prints reliability next to
the decoder-area bill, exposing the even-N tie penalty that motivates
the paper's flag-based duplex arbiter.
"""

from repro.analysis.tables import _render, format_ber
from repro.memory import redundancy_sweep
from repro.memory.rates import FaultRates
from repro.rs import decoder_area_gates

RATES = FaultRates.from_paper_units(
    seu_per_bit_day=1.7e-5, erasure_per_symbol_day=1e-5
)
T = 48.0


def run_sweep():
    return redundancy_sweep(18, 16, RATES, T, max_modules=5)


def test_nmr_sweep(benchmark, save_table):
    sweep = benchmark(run_sweep)
    by_n = dict(sweep)
    # odd ladder improves strictly; even N pays the tie penalty
    assert by_n[3] < by_n[1]
    assert by_n[5] < by_n[3]
    assert by_n[2] > by_n[1]
    area_one = decoder_area_gates(8, 18, 16)
    rows = [
        [str(n), format_ber(p), f"{n * area_one:.0f}"]
        for n, p in sweep
    ]
    save_table(
        "nmr_sweep",
        "Extension: N-modular redundancy with symbol voting, RS(18,16), "
        "48 h read unreliability",
        _render(["modules", "read unreliability", "decoder area (gates)"], rows),
    )
