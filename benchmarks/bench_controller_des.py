"""Extension bench: controller DES vs the closed-form scrub overhead.

Validates the availability/duty numbers of `repro.memory.overhead` with a
queueing-aware discrete-event simulation: Poisson read traffic competes
with a patrol scrubber for the decoder, both costing the Section 6
decode latency.
"""

import numpy as np

from repro.analysis.tables import _render
from repro.memory.overhead import scrub_overhead
from repro.simulator import simulate_controller

WORDS = 50_000
CLOCK = 50e6
READ_RATE = 5_000.0
SIM_S = 120.0


def run_des():
    rows = []
    for period in (15.0, 30.0, 60.0):
        stats = simulate_controller(
            18,
            16,
            num_words=WORDS,
            scrub_period_s=period,
            read_rate_per_s=READ_RATE,
            sim_seconds=SIM_S,
            clock_hz=CLOCK,
            rng=np.random.default_rng(11),
        )
        analytic = scrub_overhead(
            18,
            16,
            num_words=WORDS,
            scrub_period_seconds=period,
            clock_hz=CLOCK,
            writeback_cycles=0,
        )
        rows.append((period, stats, analytic))
    return rows


def test_controller_des(benchmark, save_table):
    rows = benchmark.pedantic(run_des, rounds=1, iterations=1)
    table = []
    for period, stats, analytic in rows:
        np.testing.assert_allclose(
            stats.scrub_duty, analytic.duty_cycle, rtol=0.05
        )
        table.append(
            [
                f"{period:.0f}",
                f"{analytic.duty_cycle:.2e}",
                f"{stats.scrub_duty:.2e}",
                f"{stats.mean_read_latency_s * 1e6:.2f}",
                f"{stats.p99_read_latency_s * 1e6:.2f}",
            ]
        )
    save_table(
        "controller_des",
        "Extension: scrub duty, closed form vs DES; read latency under "
        f"{READ_RATE:.0f} reads/s, RS(18,16) @ 50 MHz",
        _render(
            [
                "Tsc (s)",
                "duty (analytic)",
                "duty (measured)",
                "mean lat (us)",
                "p99 lat (us)",
            ],
            table,
        ),
    )
