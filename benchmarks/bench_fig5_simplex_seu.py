"""Fig. 5 — BER of simplex RS(18,16) under different SEU rates.

Paper configuration: no scrubbing, no permanent faults, λ swept over
{7.3e-7, 3.6e-6, 1.7e-5} errors/bit/day, data stored for Tst = 48 h.
Expected shape: BER grows monotonically in time and in λ, staying within
the paper's plotted 1e-12..1e-4 band at 48 h.
"""

from repro.analysis import fig5_simplex_seu, render_ber_table


def test_fig5_reproduction(benchmark, save_table):
    result = benchmark(fig5_simplex_seu, points=25)
    assert result.all_expectations_hold(), result.failed_expectations()
    save_table(
        "fig5",
        "Fig. 5: BER of Simplex RS(18,16), SEU rate sweep (errors/bit/day)",
        render_ber_table(result.curves),
    )
