"""Ablation: the duplex fail rule — "either" word (paper) vs "both" words.

The paper's brace condition absorbs into FAIL when *either* replica
exceeds capability.  The codec-level simulation (bench_xval_montecarlo)
shows the physical arbiter usually survives one broken word, i.e. behaves
closer to the "both" rule.  This bench quantifies the gap across the
paper's SEU sweep.
"""

import numpy as np

from repro.analysis import SEU_RATES_PER_BIT_DAY, render_ber_table
from repro.memory import ber_curve, duplex_model


def run_failrule_sweep(points=13):
    times = np.linspace(0.0, 48.0, points)
    curves = []
    for rule in ("either", "both"):
        for lam in SEU_RATES_PER_BIT_DAY:
            curves.append(
                ber_curve(
                    duplex_model(18, 16, seu_per_bit_day=lam, fail_rule=rule),
                    times,
                    label=f"{rule}:{lam:.1E}",
                )
            )
    return curves


def test_failrule_ablation(benchmark, save_table):
    curves = benchmark(run_failrule_sweep)
    by_label = {c.label: c for c in curves}
    for lam in SEU_RATES_PER_BIT_DAY:
        either = by_label[f"either:{lam:.1E}"].final
        both = by_label[f"both:{lam:.1E}"].final
        assert both < either, "the both-words rule must be strictly kinder"
        # for transients the either rule is roughly the union bound (~2x
        # one word) while both-words is the quadratically smaller joint
        assert both < either / 10
    save_table(
        "ablation_failrule",
        "Ablation: duplex fail rule (either word vs both words), 48 h",
        render_ber_table(curves),
    )
