"""Adaptive stopping: trials saved vs estimate quality retained.

``--stop-rel-ci`` trades a controlled amount of interval width for
(sometimes dramatic) savings in Monte-Carlo trials.  This bench sweeps
the target relative halfwidth on a fixed seeded cell, recording how
many trials each target actually consumed, and checks the two promises
that make the feature usable: the full-budget point estimate stays
inside every early stop's reported interval, and tighter targets
consume monotonically more trials.
"""

from repro.analysis.tables import _render, format_ber
from repro.rs import RSCode
from repro.runtime import RuntimeConfig, StoppingRule
from repro.simulator import simulate_fail_probability_batched

CODE = RSCode(18, 16, m=8)
LAM = 2e-3 / 24.0
BUDGET = 3000
REL_CI_TARGETS = (2.0, 1.0, 0.6, 0.4)


def _simulate(stop=None):
    runtime = RuntimeConfig(stop=stop, executor="serial")
    return simulate_fail_probability_batched(
        "simplex",
        CODE,
        48.0,
        LAM,
        0.0,
        BUDGET,
        seed=17,
        chunk_size=100,
        runtime=runtime,
    )


def run_stopping_sweep():
    reference = _simulate()
    rows = []
    for rel_ci in REL_CI_TARGETS:
        stop = StoppingRule(rel_ci=rel_ci, min_trials=200)
        estimate = _simulate(stop=stop)
        rows.append((rel_ci, estimate))
    return reference, rows


def test_adaptive_stopping_savings(benchmark, save_table):
    reference, rows = benchmark(run_stopping_sweep)
    trials_used = []
    table_rows = []
    for rel_ci, estimate in rows:
        # honesty: the full-budget estimate lies inside the early CI
        assert estimate.ci_low <= reference.probability <= estimate.ci_high
        trials_used.append(estimate.trials)
        halfwidth = (estimate.ci_high - estimate.ci_low) / 2.0
        achieved = halfwidth / estimate.probability if estimate.probability else float("inf")
        table_rows.append(
            [
                f"{rel_ci:.1f}",
                str(estimate.trials),
                f"{100.0 * (1.0 - estimate.trials / reference.trials):.0f}%",
                format_ber(estimate.probability),
                f"{achieved:.2f}",
                "yes" if estimate.stopped_early else "no",
            ]
        )
    # tighter targets must consume at least as many trials
    assert all(a <= b for a, b in zip(trials_used, trials_used[1:]))
    # the loosest target must actually save something on this cell
    assert rows[0][1].stopped_early
    save_table(
        "adaptive_stopping",
        f"Adaptive stopping on simplex seu=2e-3 (budget {BUDGET}, "
        f"full-run BER {format_ber(reference.probability)})",
        _render(
            [
                "rel-ci target",
                "trials used",
                "saved",
                "BER",
                "achieved rel-hw",
                "stopped early",
            ],
            table_rows,
        ),
    )
