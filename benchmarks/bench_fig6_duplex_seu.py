"""Fig. 6 — BER of duplex RS(18,16) under different SEU rates.

Same sweep as Fig. 5 on the duplex arrangement.  The paper's observation:
under transients only, duplex BER stays in the same range as simplex
(duplication pays off against *permanent* faults, Figs. 8-9).
"""

from repro.analysis import fig6_duplex_seu, render_ber_table


def test_fig6_reproduction(benchmark, save_table):
    result = benchmark(fig6_duplex_seu, points=25)
    assert result.all_expectations_hold(), result.failed_expectations()
    save_table(
        "fig6",
        "Fig. 6: BER of Duplex RS(18,16), SEU rate sweep (errors/bit/day)",
        render_ber_table(result.curves),
    )
