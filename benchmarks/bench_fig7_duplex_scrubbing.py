"""Fig. 7 — BER of duplex RS(18,16) with different scrubbing periods.

Paper configuration: worst-case λ = 1.7e-5 errors/bit/day, Tsc swept over
{900, 1200, 1800, 3600} s, 48 h horizon.  Headline claim: scrubbing at
least once per hour keeps BER below 1e-6.
"""

from repro.analysis import fig7_duplex_scrubbing, render_ber_table


def test_fig7_reproduction(benchmark, save_table):
    result = benchmark(fig7_duplex_scrubbing, points=25)
    assert result.all_expectations_hold(), result.failed_expectations()
    assert all(c.final < 1e-6 for c in result.curves)
    save_table(
        "fig7",
        "Fig. 7: BER of Duplex RS(18,16), lambda=1.7e-5/bit/day, Tsc sweep",
        render_ber_table(result.curves),
    )
