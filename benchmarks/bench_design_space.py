"""Extension bench: the Pareto front behind the paper's conclusion.

Sweeps the RS(16 + 2t, 16) family for simplex and duplex arrangements
under the paper's permanent-fault mission (24 months at 1e-6/symbol/day)
and prints the non-dominated designs on (BER, decode cycles, area,
storage).  The paper's three comparison points all survive the pruning,
with duplex RS(18,16) as the fast-decode high-reliability member.
"""

from repro.analysis import enumerate_design_space, pareto_front
from repro.analysis.tables import _render, format_ber


def run_sweep():
    points = enumerate_design_space(
        k=16,
        t_values=[1, 2, 4, 6, 10],
        horizon_hours=24 * 730.0,
        erasure_per_symbol_day=1e-6,
    )
    return points, pareto_front(points)


def test_design_space(benchmark, save_table):
    points, front = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    names = {p.name for p in front}
    assert "duplex RS(18,16)" in names
    assert "simplex RS(36,16)" in names
    assert "simplex RS(18,16)" in names
    rows = [
        [
            p.name,
            format_ber(p.ber),
            str(p.decode_cycles),
            f"{p.area_gate_equivalents:.0f}",
            f"{p.storage_overhead:.2f}",
        ]
        for p in front
    ]
    save_table(
        "design_space",
        "Extension: Pareto front of RS(16+2t,16) arrangements, permanent "
        "faults 1e-6/symbol/day, 24 months",
        _render(
            ["design", "BER", "Td (cycles)", "area (GE)", "storage overhead"],
            rows,
        ),
    )
