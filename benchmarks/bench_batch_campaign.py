"""Monte-Carlo campaign throughput: scalar loop vs batched engine.

Runs the same 10k-trial codec-level fault-injection campaign through the
original one-trial-at-a-time estimator and the chunked batch engine
(single process and ``workers=4``), verifies the batch engine's
worker-count invariance on the fly, and records before/after
trials-per-second in ``benchmarks/results/batch_campaign.txt``.

Two fault environments bracket the regimes the paper cares about:

* ``mc-visible`` — the inflated rate used by the cross-validation
  benches, where nearly half the trials carry faults (the batch engine's
  worst case: heavy scalar fallback);
* ``near-paper`` — a 10x lower rate approaching the paper's operating
  points, where almost every word is clean and the vectorized fast path
  dominates.
"""

import numpy as np

from repro.analysis.tables import _render  # reuse the aligner
from repro.perf import timed
from repro.rs import RSCode
from repro.simulator import (
    simulate_fail_probability,
    simulate_fail_probability_batched,
)

CODE = RSCode(18, 16, m=8)
T_END = 48.0
TRIALS = 10_000
SEED = 2005

ENVIRONMENTS = [
    ("mc-visible", 2e-3 / 24.0),
    ("near-paper", 2e-4 / 24.0),
]


def run_comparison():
    rows = []
    for label, lam in ENVIRONMENTS:
        _, t_scalar = timed(
            simulate_fail_probability,
            "simplex",
            CODE,
            T_END,
            lam,
            0.0,
            TRIALS,
            rng=np.random.default_rng(SEED),
        )
        est1, t_batch = timed(
            simulate_fail_probability_batched,
            "simplex",
            CODE,
            T_END,
            lam,
            0.0,
            TRIALS,
            seed=SEED,
        )
        est4, t_batch4 = timed(
            simulate_fail_probability_batched,
            "simplex",
            CODE,
            T_END,
            lam,
            0.0,
            TRIALS,
            seed=SEED,
            workers=4,
        )
        assert est1 == est4, "batch engine must be worker-count invariant"
        rows.append(
            [
                label,
                f"{TRIALS / t_scalar:,.0f}",
                f"{TRIALS / t_batch:,.0f}",
                f"{TRIALS / t_batch4:,.0f}",
                f"{t_scalar / t_batch:.1f}x",
            ]
        )
        assert t_batch < t_scalar, (
            f"{label}: batch engine slower than scalar "
            f"({t_batch:.2f}s vs {t_scalar:.2f}s)"
        )
    return rows


def test_campaign_throughput(benchmark, save_table):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    save_table(
        "batch_campaign",
        f"{TRIALS:,}-trial simplex RS(18,16) campaign, trials/sec "
        "(before = scalar loop, after = batch engine)",
        _render(
            ["environment", "scalar t/s", "batch t/s", "batch x4 t/s", "speedup"],
            rows,
        ),
    )
