"""Extension bench: piecewise-constant LEO mission vs averaged rates.

A two-phase orbit (quiet leg + SAA leg at the paper's worst-case rate)
solved exactly by phase-wise propagation, compared against the
duration-weighted constant-rate approximation mission planners commonly
use.
"""

import numpy as np

from repro.analysis import render_ber_table
from repro.memory import orbital_profile
from repro.memory.ber import BERCurve


def run_mission():
    profile = orbital_profile()  # duplex RS(18,16), hourly scrub
    times = np.linspace(0.0, 48.0, 13)
    exact = profile.ber(times)
    avg_model = profile.equivalent_average_model()
    averaged = avg_model.ber_factor * avg_model.fail_probability(times)
    return times, exact, averaged


def test_mission_profile(benchmark, save_table):
    times, exact, averaged = benchmark.pedantic(
        run_mission, rounds=1, iterations=1
    )
    # the averaged model is a good but not exact stand-in
    mask = exact > 0
    ratios = averaged[mask] / exact[mask]
    assert np.all((ratios > 0.5) & (ratios < 2.0))
    save_table(
        "mission_profile",
        "Extension: LEO orbit (quiet + SAA legs) vs averaged-rate model, "
        "duplex RS(18,16), hourly scrub",
        render_ber_table(
            [
                BERCurve("piecewise exact", times, exact),
                BERCurve("averaged rates", times, averaged),
            ]
        ),
    )
