"""Shared helpers for the benchmark harness.

Every bench regenerates one evaluation artifact of the paper (a figure's
series or a table), times the solve via pytest-benchmark, verifies the
paper's qualitative expectations, and writes the rendered ASCII table to
``benchmarks/results/`` — the inputs from which EXPERIMENTS.md is kept
honest.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_table(results_dir):
    """Persist a rendered table and echo it to the terminal report."""

    def _save(name: str, title: str, table: str) -> None:
        text = f"{title}\n{'=' * len(title)}\n{table}\n"
        (results_dir / f"{name}.txt").write_text(text)
        print(f"\n{text}")

    return _save
