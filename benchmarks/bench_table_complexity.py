"""Section 6 decoder complexity table — Td and area of the arrangements.

Paper arithmetic: Td(RS(18,16)) = 74 cycles, Td(RS(36,16)) = 308 cycles
(a >4x access-latency penalty for the stronger simplex code), and one
RS(36,16) decoder outweighs the duplex's two RS(18,16) decoders in gates.
"""

from repro.analysis import render_cost_table, table_decoder_complexity


def test_complexity_table(benchmark, save_table):
    costs = benchmark(table_decoder_complexity)
    by_name = {c.name: c for c in costs}
    assert by_name["simplex RS(18,16)"].decode_cycles == 74
    assert by_name["simplex RS(36,16)"].decode_cycles == 308
    assert (
        by_name["simplex RS(36,16)"].area_gates
        > by_name["duplex RS(18,16)"].area_gates
    )
    save_table(
        "table_complexity",
        "Section 6: decoder complexity of the three arrangements",
        render_cost_table(costs),
    )
