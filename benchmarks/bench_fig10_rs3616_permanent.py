"""Fig. 10 — BER of simplex RS(36,16) varying the permanent fault rate.

Same sweep as Fig. 8 with the double-redundancy code: t = 10 symbol
corrections drive BER to the 1e-200 scale the paper plots, which is why
the harness uses the exact closed-form solver rather than a generic
matrix method.
"""

from repro.analysis import fig10_rs3616_permanent, render_ber_table
from repro.memory import HOURS_PER_MONTH


def test_fig10_reproduction(benchmark, save_table):
    result = benchmark(fig10_rs3616_permanent, points=25)
    assert result.all_expectations_hold(), result.failed_expectations()
    save_table(
        "fig10",
        "Fig. 10: BER of Simplex RS(36,16), permanent fault rate sweep "
        "(/symbol/day)",
        render_ber_table(
            result.curves, time_label="months", time_scale=HOURS_PER_MONTH
        ),
    )
