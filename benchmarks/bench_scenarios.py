"""Scenario-engine throughput: i.i.d. fast path vs correlated patterns.

The batch engine keeps a vectorized-XOR fast path for the paper's
i.i.d. physics; correlated fault patterns disable it and replay every
dirty trial through the bit-level systems.  This bench puts a number on
that cost — trials/sec for the legacy i.i.d. path, the same physics
routed through the pattern sampler, and a fully correlated mixture —
and checks the robustness accounting that rides along.  Results land in
``benchmarks/results/scenarios.txt``.
"""

from repro.analysis.tables import _render  # reuse the aligner
from repro.perf import timed
from repro.rs import RSCode
from repro.simulator import simulate_fail_probability_batched

N, K, M = 18, 16, 8
TRIALS = 2000
T_END = 48.0
SEU = 2e-3 / 24.0  # per-bit-hour, MC-visible band

CONFIGS = [
    ("iid (legacy fast path)", None),
    ("iid via pattern sampler", "1BIT"),
    ("mixed correlated field", "0.82*1BIT+0.1*MBU:3+0.05*ROW:4+0.03*COL:6"),
    ("beyond-capacity bursts", "0.4*1BIT+0.35*ROW:6+0.25*MBU:8"),
]


def run_one(pattern):
    return simulate_fail_probability_batched(
        "simplex",
        RSCode(N, K, m=M),
        T_END,
        seu_per_bit=SEU,
        erasure_per_symbol=0.0,
        trials=TRIALS,
        seed=2005,
        chunk_size=512,
        pattern=pattern,
    )


def test_scenario_throughput(benchmark, save_table):
    report = benchmark.pedantic(
        run_one, args=(CONFIGS[2][1],), rounds=1, iterations=1
    )
    assert report.trials == TRIALS

    rows = []
    throughput = {}
    for label, pattern in CONFIGS:
        estimate, seconds = timed(run_one, pattern)
        rate = TRIALS / seconds
        throughput[label] = rate
        rows.append(
            [
                label,
                f"{rate:,.0f}",
                f"{estimate.probability:.4f}",
                str(estimate.silent_miscorrections),
                str(estimate.detected_uncorrectable),
            ]
        )
        # failure mass must split exactly into the two robustness buckets
        assert estimate.failures == (
            estimate.silent_miscorrections + estimate.detected_uncorrectable
        )
    save_table(
        "scenarios",
        f"Scenario engine throughput, RS({N},{K}), {TRIALS} trials "
        f"over {T_END:.0f} h (trials/sec)",
        _render(
            ["physics", "trials/s", "p_fail", "miscorrect", "unreadable"],
            rows,
        ),
    )
    assert all(rate > 0 for rate in throughput.values())
    # the dedicated i.i.d. fast path must not be slower than routing the
    # same physics through the pattern sampler
    assert (
        throughput["iid (legacy fast path)"]
        >= throughput["iid via pattern sampler"]
    )


def test_pattern_estimates_deterministic(benchmark):
    """The timed configuration is seed-deterministic (spot check)."""
    report = benchmark.pedantic(
        run_one, args=(CONFIGS[3][1],), rounds=1, iterations=1
    )
    again = run_one(CONFIGS[3][1])
    assert report.failures == again.failures
    assert report.outcome_counts == again.outcome_counts
