"""Batch codec kernels vs the scalar codec: measured speedups.

Acceptance gate of the batch execution layer: on a clean-word batch
(the dominant case in every memory-reliability regime the paper
studies) ``BatchRSCodec.decode_batch`` must be at least 10x faster than
looping the scalar decoder, and batch encode must beat scalar encode.
The numbers land in ``benchmarks/results/batch_codec.txt``.
"""

import numpy as np

from repro.analysis.tables import _render  # reuse the aligner
from repro.perf import timed
from repro.rs import BatchRSCodec, RSCode

N, K, M = 18, 16, 8
BATCH = 4096


def make_inputs():
    code = RSCode(N, K, m=M)
    codec = BatchRSCodec(N, K, m=M, scalar=code)
    rng = np.random.default_rng(2005)
    data = rng.integers(0, code.gf.order, size=(BATCH, K))
    clean = codec.encode_batch(data)
    noisy = clean.copy()
    # one random symbol error in every word: worst case for the batch
    # layer (100% scalar fallback), bounds the fallback overhead.
    rows = np.arange(BATCH)
    cols = rng.integers(0, N, size=BATCH)
    noisy[rows, cols] ^= rng.integers(1, code.gf.order, size=BATCH)
    return code, codec, data, clean, noisy


def test_clean_decode_speedup(benchmark, save_table):
    code, codec, data, clean, noisy = make_inputs()
    clean_lists = [row.tolist() for row in clean]

    report = benchmark(codec.decode_batch, clean)
    assert report.clean.all()

    _, t_batch = timed(codec.decode_batch, clean)
    _, t_scalar = timed(lambda: [code.decode(w) for w in clean_lists])
    speedup = t_scalar / t_batch

    _, t_enc_batch = timed(codec.encode_batch, data)
    _, t_enc_scalar = timed(
        lambda: [code.encode(d) for d in data.tolist()]
    )
    enc_speedup = t_enc_scalar / t_enc_batch

    noisy_lists = [row.tolist() for row in noisy]

    def scalar_noisy():
        out = []
        for w in noisy_lists:
            out.append(code.decode(w))
        return out

    _, t_noisy_batch = timed(codec.decode_batch, noisy)
    _, t_noisy_scalar = timed(scalar_noisy)
    noisy_speedup = t_noisy_scalar / t_noisy_batch

    rows = [
        [
            "decode, all words clean",
            f"{BATCH / t_scalar:,.0f}",
            f"{BATCH / t_batch:,.0f}",
            f"{speedup:.1f}x",
        ],
        [
            "decode, 1 error/word (100% fallback)",
            f"{BATCH / t_noisy_scalar:,.0f}",
            f"{BATCH / t_noisy_batch:,.0f}",
            f"{noisy_speedup:.1f}x",
        ],
        [
            "encode",
            f"{BATCH / t_enc_scalar:,.0f}",
            f"{BATCH / t_enc_batch:,.0f}",
            f"{enc_speedup:.1f}x",
        ],
    ]
    save_table(
        "batch_codec",
        f"Batch vs scalar RS({N},{K}) codec, batch of {BATCH} words (words/sec)",
        _render(["operation", "scalar w/s", "batch w/s", "speedup"], rows),
    )
    assert speedup >= 10.0, (
        f"clean-word batch decode only {speedup:.1f}x faster than scalar"
    )
    assert enc_speedup > 1.0
    # the fallback path must not cost materially more than scalar decoding
    assert noisy_speedup > 0.5


def test_backend_matrix_speedups(benchmark, save_table):
    """Clean-word decode/encode across every registered backend.

    The registry's promise is "same bits, different speed": this bench
    measures the speed axis, one row per backend, against the scalar
    codec loop as the common reference.  The compiled backend runs its
    jitted kernels when numba is present; otherwise the numpy fallback
    forms of the same bit-sliced algorithm are measured (and labeled).
    """
    import os

    from repro.rs.backends import create_backend
    from repro.rs.backends.kernels import KERNELS_ENV, kernel_mode

    code, _codec, data, clean, _noisy = make_inputs()
    clean_lists = [row.tolist() for row in clean]

    def best(fn, *args, repeats=3):
        return min(timed(fn, *args)[1] for _ in range(repeats))

    t_loop_dec = best(lambda: [code.decode(w) for w in clean_lists])
    t_loop_enc = best(lambda: [code.encode(d) for d in data.tolist()])

    mode, _detail = kernel_mode()
    forced_env = False
    prior = os.environ.get(KERNELS_ENV)
    if mode == "unavailable":
        # No numba here: measure the compiled backend's numpy kernel
        # forms instead of silently skipping the row.
        os.environ[KERNELS_ENV] = "python"
        forced_env = True
        mode = "python"
    try:
        backends = {
            name: create_backend(name, N, K, m=M)
            for name in ("scalar", "numpy", "compiled")
        }
        rows, speedups = [], {}
        for name, backend in backends.items():
            report = backend.decode_batch(clean)
            assert report.clean.all(), name  # same bits before timing speed
            t_dec = best(backend.decode_batch, clean)
            t_enc = best(backend.encode_batch, data)
            speedups[name] = t_loop_dec / t_dec
            label = f"compiled [{mode} kernels]" if name == "compiled" else name
            rows.append(
                [
                    label,
                    f"{BATCH / t_dec:,.0f}",
                    f"{t_loop_dec / t_dec:.1f}x",
                    f"{BATCH / t_enc:,.0f}",
                    f"{t_loop_enc / t_enc:.1f}x",
                ]
            )
        benchmark.pedantic(
            backends["compiled"].decode_batch,
            args=(clean,),
            rounds=3,
            iterations=1,
        )
    finally:
        if forced_env:
            if prior is None:
                os.environ.pop(KERNELS_ENV, None)
            else:
                os.environ[KERNELS_ENV] = prior
    save_table(
        "batch_codec_backends",
        f"RS({N},{K}) backend matrix, clean batch of {BATCH} words "
        f"(vs scalar codec loop)",
        _render(
            ["backend", "decode w/s", "speedup", "encode w/s", "speedup"],
            rows,
        ),
    )
    # The registry's speed promise: vectorized backends land the 10-50x
    # clean-word window (the jitted compiled kernels must clear it; the
    # numpy fallback forms of the same algorithm get a softer floor),
    # and the scalar backend — the contract floor — must not be
    # materially slower than the raw loop it wraps.
    assert speedups["numpy"] >= 8.0, speedups
    assert speedups["compiled"] >= (10.0 if mode == "numba" else 3.0), (
        mode,
        speedups,
    )
    assert speedups["scalar"] > 0.3, speedups


def test_batch_results_identical_to_scalar(benchmark):
    """The timed configurations really are bit-identical (spot check)."""
    code, codec, data, clean, noisy = make_inputs()
    report = benchmark.pedantic(
        codec.decode_batch, args=(noisy,), rounds=1, iterations=1
    )
    for i in (0, 1, BATCH // 2, BATCH - 1):
        assert report.result(i).codeword == clean[i].tolist()
        assert report.result(i).data == data[i].tolist()
