"""Extension bench: mis-correction rate — combinatorics vs the real codec.

The duplex arbiter of paper Section 3 exists because a bounded-distance
decoder sometimes *mis-corrects* words damaged beyond capability.  The
MDS weight distribution predicts that acceptance rate (the decoding-
sphere fraction); this bench measures it on the actual decoder for
double- and triple-error patterns.
"""

import random

from repro.analysis.tables import _render
from repro.rs import (
    RSCode,
    RSDecodingError,
    miscorrection_probability_beyond_capability,
)

TRIALS = 3000


def measure(code, num_errors, rng):
    data = [rng.randrange(code.gf.order) for _ in range(code.k)]
    cw = code.encode(data)
    accepted = 0
    for _ in range(TRIALS):
        corrupted = list(cw)
        for pos in rng.sample(range(code.n), num_errors):
            corrupted[pos] ^= rng.randrange(1, code.gf.order)
        try:
            code.decode(corrupted)
        except RSDecodingError:
            continue
        accepted += 1
    return accepted / TRIALS


def run_miscorrection():
    rng = random.Random(2005)
    code = RSCode(18, 16, m=8)
    rows = []
    for num_errors in (2, 3, 4):
        predicted = miscorrection_probability_beyond_capability(
            code, num_errors
        )
        observed = measure(code, num_errors, rng)
        rows.append((num_errors, predicted, observed))
    return rows


def test_miscorrection(benchmark, save_table):
    rows = benchmark.pedantic(run_miscorrection, rounds=1, iterations=1)
    table = []
    for num_errors, predicted, observed in rows:
        assert abs(observed - predicted) < 0.02  # ~4 sigma at 3000 trials
        table.append(
            [str(num_errors), f"{predicted:.4f}", f"{observed:.4f}"]
        )
    save_table(
        "miscorrection",
        "Extension: mis-correction probability of RS(18,16) beyond "
        "capability — sphere-packing prediction vs measured decoder",
        _render(["errors injected", "predicted", "measured"], table),
    )
