"""Ablation: exponential-rate scrubbing (paper) vs deterministic periods.

The paper folds scrubbing into the CTMC as an exponential event at rate
1/Tsc; real scrubbers run on a fixed schedule.  This bench solves both
semantics on the Fig. 7 configuration and reports the ratio — the
exponential approximation is mildly pessimistic (occasional long gaps
between scrubs let more errors accumulate).
"""

import numpy as np

from repro.analysis import WORST_CASE_SEU_PER_BIT_DAY
from repro.analysis.tables import _render, format_ber
from repro.memory import duplex_model
from repro.memory.scrubbing import deterministic_scrub_ber

PERIODS_S = (900.0, 1200.0, 1800.0, 3600.0)
T_END = 48.0


def run_scrub_comparison():
    rows = []
    for period_s in PERIODS_S:
        exp_model = duplex_model(
            18,
            16,
            seu_per_bit_day=WORST_CASE_SEU_PER_BIT_DAY,
            scrub_period_seconds=period_s,
        )
        det_model = duplex_model(
            18, 16, seu_per_bit_day=WORST_CASE_SEU_PER_BIT_DAY
        )
        exp_ber = exp_model.ber([T_END])[0]
        det_ber = deterministic_scrub_ber(
            det_model, [T_END], period_s / 3600.0
        )[0]
        rows.append((period_s, exp_ber, det_ber))
    return rows


def test_scrub_model_ablation(benchmark, save_table):
    rows = benchmark.pedantic(run_scrub_comparison, rounds=1, iterations=1)
    table = []
    for period_s, exp_ber, det_ber in rows:
        # both semantics agree within a small factor, and both meet the
        # paper's 1e-6 budget at hourly-or-faster scrubbing
        assert 0.2 < det_ber / exp_ber < 2.0
        assert exp_ber < 1e-6 and det_ber < 1e-6
        table.append(
            [
                f"{int(period_s)}",
                format_ber(exp_ber),
                format_ber(det_ber),
                f"{det_ber / exp_ber:.2f}",
            ]
        )
    save_table(
        "ablation_scrub_model",
        "Ablation: scrub semantics at 48 h, duplex RS(18,16), "
        "lambda=1.7e-5/bit/day",
        _render(
            ["Tsc (s)", "exponential-rate BER", "deterministic BER", "ratio"],
            table,
        ),
    )
