"""Ablation: transient-solver accuracy and cost on the paper's chains.

Times uniformization (default), expm and RK45 on the scrubbed duplex
chain of Fig. 7 and checks their mutual agreement, plus the deep-tail
case where only uniformization and the closed form retain relative
accuracy (absolute-accuracy methods bottom out near 1e-16).
"""

import numpy as np
import pytest

from repro.analysis.tables import _render, format_ber
from repro.memory import duplex_model, simplex_model
from repro.memory.analytic import simplex_fail_probability

TIMES = np.linspace(0.0, 48.0, 13)


def make_model():
    return duplex_model(
        18, 16, seu_per_bit_day=1.7e-5, scrub_period_seconds=1800.0
    )


@pytest.mark.parametrize("method", ["uniformization", "expm", "ode"])
def test_solver_timing(benchmark, method):
    model = make_model()
    model.chain  # build outside the timed region
    result = benchmark(model.fail_probability, TIMES, method=method)
    reference = model.fail_probability(TIMES, method="uniformization")
    atol = 1e-12 if method == "expm" else 1e-9
    assert np.allclose(result, reference, atol=atol)


def test_deep_tail_solver_fidelity(benchmark, save_table):
    """Only positive-series methods resolve the Fig. 8-10 tails."""
    model = simplex_model(18, 16, erasure_per_symbol_day=1e-9)
    t = [24 * 730.0]
    exact = benchmark(simplex_fail_probability, model, t)[0]
    uni = model.fail_probability(t, method="uniformization")[0]
    exp = model.fail_probability(t, method="expm")[0]
    assert exact < 1e-15  # deep below expm's absolute floor
    assert uni == pytest.approx(exact, rel=1e-9)
    rows = [
        ["closed form (reference)", format_ber(exact), "-"],
        ["uniformization", format_ber(uni), f"{abs(uni - exact) / exact:.1e}"],
        ["expm", format_ber(exp), f"{abs(exp - exact) / exact:.1e}"],
    ]
    save_table(
        "ablation_solvers",
        "Deep-tail fidelity: P_fail of simplex RS(18,16), "
        "lambda_e=1e-9/symbol/day, 24 months",
        _render(["solver", "P_fail", "relative error"], rows),
    )
