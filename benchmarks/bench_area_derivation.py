"""Extension bench: Section 6 area claims derived from gate counts.

Builds the structural gate inventory of each decoder from exact GF(2^m)
multiplier gate counts and checks both Section 6 area statements: one
RS(36,16) decoder outweighs the duplex's two RS(18,16) decoders, and the
total is linear in (n - k) to within a few percent.
"""

from repro.analysis.tables import _render
from repro.rs import decoder_area, linearity_check


def run_areas():
    return {
        "simplex RS(18,16)": decoder_area(18, 16),
        "duplex RS(18,16) (x2)": decoder_area(18, 16),
        "simplex RS(36,16)": decoder_area(36, 16),
    }


def test_area_derivation(benchmark, save_table):
    areas = benchmark(run_areas)
    one_big = areas["simplex RS(36,16)"].gate_equivalents
    two_small = 2 * areas["simplex RS(18,16)"].gate_equivalents
    assert one_big > two_small
    deviation = linearity_check(m=8, k=16)
    assert deviation < 0.05
    rows = []
    for name, area in areas.items():
        mult = 2 if name.startswith("duplex") else 1
        rows.append(
            [
                name,
                str(area.syndrome_gates * mult),
                str(area.key_equation_gates * mult),
                str(area.chien_forney_gates * mult),
                str(area.flipflops * mult),
                f"{area.gate_equivalents * mult:.0f}",
            ]
        )
    rows.append(
        ["linearity in n-k", "-", "-", "-", "-", f"{deviation:.1%} max dev."]
    )
    save_table(
        "area_derivation",
        "Extension: structural decoder area (gates from exact GF "
        "multiplier matrices)",
        _render(
            ["arrangement", "syndrome", "key eq", "chien+forney", "FFs", "GE"],
            rows,
        ),
    )
