"""Ablation: Berlekamp-Massey vs Euclidean key-equation solvers.

The codec ships two structurally different key-equation solvers that are
proven equivalent pattern-for-pattern (tests/test_rs_euclid.py); this
bench times a full decode through each on the paper's heavy code,
RS(36,16) carrying its maximum t = 10 random errors.
"""

import random

import pytest

from repro.rs import RSCode


def make_case(key_solver):
    rng = random.Random(7)
    code = RSCode(36, 16, m=8, key_solver=key_solver)
    data = [rng.randrange(256) for _ in range(16)]
    cw = code.encode(data)
    corrupted = list(cw)
    for pos in rng.sample(range(36), 10):
        corrupted[pos] ^= rng.randrange(1, 256)
    return code, corrupted, cw


@pytest.mark.parametrize("key_solver", ["bm", "euclid"])
def test_key_solver_decode(benchmark, key_solver):
    code, corrupted, cw = make_case(key_solver)
    result = benchmark(code.decode, corrupted)
    assert result.codeword == cw
