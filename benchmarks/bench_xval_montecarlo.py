"""Cross-validation bench: Markov models vs stochastic simulation.

Runs the two independent stochastic validators at Monte-Carlo-visible
rates (the paper's own rates put failures below anything sampling can
see) and reports model-vs-simulation side by side:

* Gillespie SSA on the chain — converges to the transient solution, so
  it validates chain construction + solvers.
* Bit-level fault injection through the real RS codec and Section 3
  arbiter — validates the modelling abstraction itself.  The duplex rows
  quantify the reproduction finding that the paper's either-word fail
  rule is *conservative* against the physical arbiter.
"""

import numpy as np

from repro.analysis.tables import _render  # reuse the aligner
from repro.memory import duplex_model, simplex_model
from repro.rs import RSCode
from repro.simulator import gillespie_fail_probability, simulate_fail_probability

LAM_DAY = 2e-3  # MC-visible SEU rate
T_END = 48.0
CODE = RSCode(18, 16, m=8)


def run_crossval(trials_gillespie=2000, trials_codec=600):
    rng = np.random.default_rng(2005)
    rows = []
    for name, model, arrangement in (
        ("simplex", simplex_model(18, 16, seu_per_bit_day=LAM_DAY), "simplex"),
        ("duplex", duplex_model(18, 16, seu_per_bit_day=LAM_DAY), "duplex"),
    ):
        p_model = model.fail_probability([T_END])[0]
        ssa = gillespie_fail_probability(model, T_END, trials_gillespie, rng)
        mc = simulate_fail_probability(
            arrangement,
            CODE,
            T_END,
            seu_per_bit=LAM_DAY / 24.0,
            erasure_per_symbol=0.0,
            trials=trials_codec,
            rng=rng,
        )
        rows.append((name, p_model, ssa, mc))
    return rows


def test_montecarlo_cross_validation(benchmark, save_table):
    rows = benchmark.pedantic(run_crossval, rounds=1, iterations=1)
    table_rows = []
    for name, p_model, ssa, mc in rows:
        assert ssa.consistent_with(p_model), f"{name}: SSA disagrees with chain"
        if name == "simplex":
            assert mc.consistent_with(p_model), "simplex chain must track codec"
        else:
            # reproduction finding: either-word rule is conservative
            assert mc.probability <= p_model
        table_rows.append(
            [
                name,
                f"{p_model:.4f}",
                f"{ssa.probability:.4f} [{ssa.ci_low:.4f},{ssa.ci_high:.4f}]",
                f"{mc.probability:.4f} [{mc.ci_low:.4f},{mc.ci_high:.4f}]",
            ]
        )
    save_table(
        "xval_montecarlo",
        f"Model vs simulation, lambda={LAM_DAY}/bit/day, t={T_END} h",
        _render(
            ["arrangement", "Markov P_fail", "Gillespie SSA", "codec-level MC"],
            table_rows,
        ),
    )
