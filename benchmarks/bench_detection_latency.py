"""Extension bench: permanent-fault location latency (paper Section 2).

The paper notes that until a permanent fault is located it degrades the
code like a random error.  This bench quantifies that window on
RS(36,16): read unreliability at 1 month versus the mean self-checking
latency, bounded below by the paper's instantaneous-location chain.
"""

import numpy as np

from repro.analysis.tables import _render, format_ber
from repro.memory import simplex_detection_model, simplex_model

RATE_DAY = 1e-3
LATENCIES_H = (0.01, 1.0, 10.0, 100.0, 1000.0)
T = 730.0  # one month


def run_latency_sweep():
    rows = []
    paper = simplex_model(36, 16, erasure_per_symbol_day=RATE_DAY)
    baseline = paper.fail_probability([T])[0]
    for latency in LATENCIES_H:
        model = simplex_detection_model(
            36, 16, erasure_per_symbol_day=RATE_DAY,
            mean_detection_hours=latency,
        )
        inst = model.read_unreliability([T])[0]
        rows.append((latency, inst, baseline))
    return rows


def test_detection_latency(benchmark, save_table):
    rows = benchmark.pedantic(run_latency_sweep, rounds=1, iterations=1)
    unreliabilities = [r[1] for r in rows]
    # degrades monotonically with latency and never beats ideal location
    assert all(a <= b * (1 + 1e-9) for a, b in zip(unreliabilities, unreliabilities[1:]))
    assert all(u >= rows[0][2] * 0.99 for u in unreliabilities)
    table = [
        [f"{lat:g}", format_ber(inst), f"{inst / base:.1f}"]
        for lat, inst, base in rows
    ]
    save_table(
        "detection_latency",
        "Extension: read unreliability vs permanent-fault location latency, "
        "simplex RS(36,16), 1 month, lambda_e=1e-3/symbol/day",
        _render(
            ["mean latency (h)", "read unreliability", "vs ideal location"],
            table,
        ),
    )
