"""Extension bench: the duplex advantage vs fault-location latency.

The duplex arrangement's permanent-fault resilience (Figs. 8-9) comes
entirely from *located* faults being maskable.  This bench sweeps the
mean self-checking latency and shows the advantage over simplex eroding:
with slow location the duplex degenerates toward a pair of unprotected
words — quantifying how much of the paper's headline result is really a
claim about the self-checking hardware of Section 2.
"""

from repro.analysis.tables import _render, format_ber
from repro.memory import duplex_detection_model, duplex_model, simplex_model
from repro.memory.analytic import simplex_fail_probability

RATE = 1e-4  # permanent faults per symbol per day
T = 17520.0  # 24 months
LATENCIES_H = (0.01, 1.0, 24.0, 168.0, 1000.0)


def run_latency_sweep():
    ideal = duplex_model(18, 16, erasure_per_symbol_day=RATE)
    p_ideal = float(ideal.fail_probability([T])[0])
    simplex = simplex_model(18, 16, erasure_per_symbol_day=RATE)
    p_simplex = float(simplex_fail_probability(simplex, [T])[0])
    rows = []
    for latency in LATENCIES_H:
        model = duplex_detection_model(
            18,
            16,
            erasure_per_symbol_day=RATE,
            mean_detection_hours=latency,
        )
        rows.append((latency, float(model.read_unreliability([T])[0])))
    return p_ideal, p_simplex, rows


def test_duplex_detection(benchmark, save_table):
    p_ideal, p_simplex, rows = benchmark.pedantic(
        run_latency_sweep, rounds=1, iterations=1
    )
    values = [v for _latency, v in rows]
    # degradation is monotone in latency, bounded below by the ideal chain
    assert all(a <= b * (1 + 1e-9) for a, b in zip(values, values[1:]))
    assert values[0] >= p_ideal * 0.99
    # a week of location latency still beats simplex; the point is the gap
    assert values[0] < p_simplex / 100
    table = [
        [
            f"{latency:g}",
            format_ber(value),
            f"{value / p_ideal:.1f}",
            f"{p_simplex / value:.2e}",
        ]
        for latency, value in rows
    ]
    table.append(["(ideal location)", format_ber(p_ideal), "1.0", f"{p_simplex / p_ideal:.2e}"])
    table.append(["(simplex)", format_ber(p_simplex), "-", "1.0"])
    save_table(
        "duplex_detection",
        "Extension: duplex read unreliability vs fault-location latency, "
        "lambda_e=1e-4/symbol/day, 24 months",
        _render(
            [
                "mean latency (h)",
                "read unreliability",
                "vs ideal duplex",
                "advantage over simplex",
            ],
            table,
        ),
    )
