"""Extension bench: combined transient + permanent stress map.

The paper evaluates transients (Figs. 5-7) and permanent faults
(Figs. 8-10) separately; its conclusion claims the duplex handles both.
This bench runs the mixed environment the figures never show: a grid of
(SEU rate x permanent rate) with hourly scrubbing, reporting which
arrangement wins each cell.  The crossover is itself a finding: in the
transient-dominated corner the duplex (either-word fail rule) sits a
factor ~2 above the simplex, and duplication only pays once permanent
faults matter — the quantitative form of the paper's closing claim.
"""

import numpy as np

from repro.analysis.tables import _render, format_ber
from repro.memory import duplex_model, simplex_model

SEU_RATES = (7.3e-7, 1.7e-5)
PERM_RATES = (1e-8, 1e-6, 1e-4)
HORIZON_H = 24 * 730.0


def run_grid():
    rows = []
    for seu in SEU_RATES:
        for perm in PERM_RATES:
            cells = {}
            for name, factory in (
                ("simplex RS(18,16)", simplex_model),
                ("duplex RS(18,16)", duplex_model),
            ):
                model = factory(
                    18,
                    16,
                    seu_per_bit_day=seu,
                    erasure_per_symbol_day=perm,
                    scrub_period_seconds=3600.0,
                )
                cells[name] = float(model.ber([HORIZON_H])[0])
            s36 = simplex_model(
                36,
                16,
                seu_per_bit_day=seu,
                erasure_per_symbol_day=perm,
                scrub_period_seconds=3600.0,
            )
            cells["simplex RS(36,16)"] = float(s36.ber([HORIZON_H])[0])
            rows.append((seu, perm, cells))
    return rows


def test_combined_stress(benchmark, save_table):
    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    table = []
    for seu, perm, cells in rows:
        simplex = cells["simplex RS(18,16)"]
        duplex = cells["duplex RS(18,16)"]
        if perm >= 1e-6:
            # permanent faults in play: duplication pays (paper's claim)
            assert duplex <= simplex
        else:
            # transient-dominated corner: duplex tracks simplex within the
            # factor-2 union bound of Figs. 5-6 and may sit slightly above
            assert duplex <= 2.0 * simplex
        winner = min(cells, key=cells.get)
        table.append(
            [
                f"{seu:.1e}",
                f"{perm:.0e}",
                format_ber(cells["simplex RS(18,16)"]),
                format_ber(cells["duplex RS(18,16)"]),
                format_ber(cells["simplex RS(36,16)"]),
                winner,
            ]
        )
    save_table(
        "combined_stress",
        "Extension: mixed SEU x permanent stress, hourly scrub, 24 months",
        _render(
            [
                "SEU /bit/day",
                "perm /sym/day",
                "simplex 18,16",
                "duplex 18,16",
                "simplex 36,16",
                "winner",
            ],
            table,
        ),
    )
