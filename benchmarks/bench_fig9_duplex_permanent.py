"""Fig. 9 — BER of duplex RS(18,16) varying the permanent fault rate.

Same sweep as Fig. 8 over 25 months.  Expected shape: the single-sided
erasure masking of the arbiter squares the per-symbol erasure exposure,
pushing BER tens of decades below the simplex of Fig. 8 (paper shows
1e-60-scale floors vs 1e-30).
"""

from repro.analysis import fig9_duplex_permanent, render_ber_table
from repro.memory import HOURS_PER_MONTH


def test_fig9_reproduction(benchmark, save_table):
    result = benchmark(fig9_duplex_permanent, points=25)
    assert result.all_expectations_hold(), result.failed_expectations()
    save_table(
        "fig9",
        "Fig. 9: BER of Duplex RS(18,16), permanent fault rate sweep "
        "(/symbol/day)",
        render_ber_table(
            result.curves, time_label="months", time_scale=HOURS_PER_MONTH
        ),
    )
