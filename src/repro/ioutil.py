"""Durable-I/O primitives shared by everything the stack persists.

The paper's premise is that storage corrupts silently; our own durable
state (checkpoint journals, run manifests, trace exports, verify
artifacts) must meet the same bar it sets for memories.  This module is
the dependency-free foundation of :mod:`repro.runtime.integrity`:

* :func:`atomic_write` — write-to-temp + ``fsync`` + ``os.replace`` +
  parent-directory ``fsync``.  A crash at any instant leaves either the
  old file or the new file, never a truncated hybrid.
* :func:`fsync_dir` — flush a directory entry itself; without it a
  freshly created file (or a rename) can vanish wholesale on power
  loss even though its *contents* were fsynced.
* :func:`crc32c` — the Castagnoli CRC (CRC-32C, as used by ext4, btrfs
  and iSCSI) in table-driven pure Python.  It detects all single-byte
  and all burst errors shorter than 32 bits, which is exactly the
  bitrot class journal framing defends against.

Nothing here imports any other ``repro`` module, so the observability
and runtime layers can both build on it without cycles.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union

# --------------------------------------------------------------------------
# CRC-32C (Castagnoli), reflected polynomial 0x82F63B78
# --------------------------------------------------------------------------


def _build_crc32c_table() -> tuple:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ 0x82F63B78 if crc & 1 else crc >> 1
        table.append(crc)
    return tuple(table)


_CRC32C_TABLE = _build_crc32c_table()


def crc32c(data: bytes, value: int = 0) -> int:
    """CRC-32C of ``data`` (chainable via ``value`` for streaming use).

    >>> hex(crc32c(b"123456789"))  # the standard CRC-32C check value
    '0xe3069283'
    """
    crc = ~value & 0xFFFFFFFF
    table = _CRC32C_TABLE
    for byte in data:
        crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF]
    return ~crc & 0xFFFFFFFF


# --------------------------------------------------------------------------
# durable writes
# --------------------------------------------------------------------------


def fsync_dir(path: Union[str, Path]) -> None:
    """Flush a directory entry to stable storage (best effort).

    ``fsync`` on a file makes its *contents* durable; the file's
    existence (and any rename into place) lives in the parent directory
    and needs its own ``fsync``.  Platforms that cannot open
    directories (Windows) silently skip — the rename is still atomic
    there, only the durability window is wider.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without directory fsync
        pass
    finally:
        os.close(fd)


def atomic_write(
    path: Union[str, Path],
    data: Union[str, bytes],
    encoding: str = "utf-8",
) -> Path:
    """Atomically replace ``path`` with ``data`` (temp + fsync + rename).

    The data is written to a temporary file *in the destination
    directory* (so the final ``os.replace`` cannot cross filesystems),
    fsynced, renamed over the destination, and the parent directory is
    fsynced.  Readers therefore observe either the complete old file or
    the complete new file — a crash mid-write can no longer leave a
    truncated JSON manifest or trace behind.
    """
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    payload = data.encode(encoding) if isinstance(data, str) else data
    fd, tmp_name = tempfile.mkstemp(
        dir=out.parent, prefix=out.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, out)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    fsync_dir(out.parent)
    return out
