"""Continuous-time Markov chain representation.

A :class:`CTMC` holds a finite state space (arbitrary hashable labels), a
sparse set of transition rates and an initial distribution.  It exposes the
infinitesimal generator ``Q`` (``Q[i, j]`` = rate i→j for i != j, rows sum
to zero) and delegates transient solution to :mod:`repro.markov.solvers`.

This is the reproduction's substitute for the NASA SURE solver the paper
used: the memory models of :mod:`repro.memory` compile to a :class:`CTMC`
and are solved exactly.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Sequence, Tuple

import numpy as np
from scipy import sparse

State = Hashable
Transition = Tuple[State, State, float]


class CTMC:
    """A finite continuous-time Markov chain.

    Parameters
    ----------
    states:
        Iterable of distinct hashable state labels.  Order defines the
        state indexing of all returned arrays.
    transitions:
        Iterable of ``(src, dst, rate)`` triples with ``rate >= 0`` and
        ``src != dst``.  Parallel triples for the same (src, dst) pair are
        summed.
    initial:
        Either a single state label (probability 1) or a mapping
        ``{state: probability}`` summing to 1.
    """

    def __init__(
        self,
        states: Iterable[State],
        transitions: Iterable[Transition],
        initial: State | Mapping[State, float],
    ):
        self.states: List[State] = list(states)
        if len(set(self.states)) != len(self.states):
            raise ValueError("duplicate state labels")
        self.index: Dict[State, int] = {s: i for i, s in enumerate(self.states)}
        n = len(self.states)
        if n == 0:
            raise ValueError("empty state space")

        rows, cols, vals = [], [], []
        for src, dst, rate in transitions:
            if rate < 0:
                raise ValueError(f"negative rate {rate} on {src!r}->{dst!r}")
            if src == dst:
                raise ValueError(f"self-loop on state {src!r}")
            if rate == 0:
                continue
            rows.append(self.index[src])
            cols.append(self.index[dst])
            vals.append(float(rate))
        self._rates = sparse.csr_matrix(
            (vals, (rows, cols)), shape=(n, n), dtype=float
        )
        self._rates.sum_duplicates()

        self.p0 = np.zeros(n)
        if isinstance(initial, Mapping):
            for s, p in initial.items():
                if p < 0:
                    raise ValueError(f"negative initial probability for {s!r}")
                self.p0[self.index[s]] = p
            if not np.isclose(self.p0.sum(), 1.0):
                raise ValueError(
                    f"initial distribution sums to {self.p0.sum()}, not 1"
                )
        else:
            self.p0[self.index[initial]] = 1.0

    # -- structure ------------------------------------------------------

    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def rate_matrix(self) -> sparse.csr_matrix:
        """Off-diagonal transition rates as a CSR matrix."""
        return self._rates

    def generator(self, dense: bool = False) -> np.ndarray | sparse.csr_matrix:
        """Infinitesimal generator ``Q`` (rows sum to zero)."""
        out_rates = np.asarray(self._rates.sum(axis=1)).ravel()
        q = self._rates - sparse.diags(out_rates)
        return q.toarray() if dense else q.tocsr()

    def exit_rates(self) -> np.ndarray:
        """Total outflow rate of each state."""
        return np.asarray(self._rates.sum(axis=1)).ravel()

    def absorbing_states(self) -> List[State]:
        """States with zero outflow."""
        out = self.exit_rates()
        return [s for s, r in zip(self.states, out) if r == 0.0]

    def rate(self, src: State, dst: State) -> float:
        """Transition rate between two states (0 if absent)."""
        return float(self._rates[self.index[src], self.index[dst]])

    # -- solution -------------------------------------------------------

    def transient(
        self, times: Sequence[float], method: str = "uniformization", **kwargs
    ) -> np.ndarray:
        """State probabilities at each time; shape ``(len(times), num_states)``.

        ``method`` is one of ``"uniformization"`` (positive-term series,
        excellent *relative* accuracy even for deep-tail probabilities),
        ``"expm"`` (scipy matrix exponential stepping) or ``"ode"``
        (RK45 integration of the Kolmogorov forward equations).
        """
        from . import solvers

        try:
            solver = solvers.TRANSIENT_SOLVERS[method]
        except KeyError:
            raise ValueError(
                f"unknown method {method!r}; choose from "
                f"{sorted(solvers.TRANSIENT_SOLVERS)}"
            ) from None
        return solver(self, np.asarray(times, dtype=float), **kwargs)

    def state_probability(
        self,
        state: State,
        times: Sequence[float],
        method: str = "uniformization",
        **kwargs,
    ) -> np.ndarray:
        """Probability of occupying ``state`` at each time point."""
        probs = self.transient(times, method=method, **kwargs)
        return probs[:, self.index[state]]

    def stationary_distribution(self) -> np.ndarray:
        """Stationary distribution ``pi`` with ``pi Q = 0``, ``sum pi = 1``.

        Solved as a least-squares problem with the normalization row
        appended; meaningful for irreducible chains (for chains with
        absorbing states it returns the absorbed limit).
        """
        q = self.generator(dense=True)
        n = self.num_states
        a = np.vstack([q.T, np.ones((1, n))])
        b = np.zeros(n + 1)
        b[-1] = 1.0
        pi, *_ = np.linalg.lstsq(a, b, rcond=None)
        pi = np.clip(pi, 0.0, None)
        total = pi.sum()
        if total <= 0:
            raise np.linalg.LinAlgError("stationary solve degenerate")
        return pi / total

    def mean_time_to_absorption(self, targets: Sequence[State]) -> float:
        """Expected time until first entry into any of ``targets``.

        Solves the standard linear system over the non-target states.
        Returns ``inf`` if some starting mass can never reach a target.
        """
        target_idx = {self.index[s] for s in targets}
        keep = [i for i in range(self.num_states) if i not in target_idx]
        if not keep:
            return 0.0
        q = self.generator(dense=True)
        q_sub = q[np.ix_(keep, keep)]
        try:
            tau = np.linalg.solve(q_sub, -np.ones(len(keep)))
        except np.linalg.LinAlgError:
            return float("inf")
        if np.any(tau < -1e-9):
            return float("inf")
        p0_sub = self.p0[keep]
        absorbed_start = 1.0 - p0_sub.sum()
        return float(p0_sub @ tau + absorbed_start * 0.0)

    def __repr__(self) -> str:
        return (
            f"CTMC(num_states={self.num_states}, "
            f"num_transitions={self._rates.nnz})"
        )
