"""Transient CTMC solvers.

Three independent solution methods for ``p(t) = p0 · exp(Q t)``:

* :func:`transient_uniformization` — Jensen's method (randomization), a
  series of *positive* terms.  Because no cancellation occurs, each state
  probability retains near machine *relative* accuracy, which is what lets
  the deep-tail BER curves of the paper's Figs. 8-10 (down to 1e-200) come
  out clean.  This is the default solver.
* :func:`transient_expm` — scipy's Padé matrix exponential with per-step
  propagation; absolute accuracy ~1e-15, used as an independent check.
* :func:`transient_ode` — RK45 integration of the Kolmogorov forward
  equations, the third cross-check.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

import numpy as np
from scipy import sparse
from scipy.integrate import solve_ivp
from scipy.linalg import expm

from .chain import CTMC


def uniformization_propagate(
    rates: sparse.spmatrix,
    p0: np.ndarray,
    t: float,
    rtol: float = 1e-14,
    max_terms: int = 2_000_000,
    min_terms: int | None = None,
) -> np.ndarray:
    """Advance a distribution ``p0`` by time ``t`` via uniformization.

    ``rates`` is the off-diagonal rate matrix (CSR); the generator's
    diagonal is implied by its row sums.  This is the low-level primitive
    shared by :func:`transient_uniformization` and the deterministic
    scrubbing solver.

    Truncation preserves *relative* accuracy of small entries: the series
    runs for at least ``min_terms`` terms (default: the state count, so
    every reachable state receives its leading-order contribution) and
    then until the remaining Poisson mass is below ``rtol`` times the
    smallest positive accumulated entry.  This is what lets absorbing-state
    probabilities of 1e-200 come out with full significance instead of
    being lost against the O(1) bulk.
    """
    if t < 0:
        raise ValueError("time must be nonnegative")
    out_rates = np.asarray(rates.sum(axis=1)).ravel()
    lam = float(out_rates.max(initial=0.0))
    # subnormal rates make the kernel division meaningless; any total rate
    # below ~1e-250 cannot move representable probability mass anyway
    if lam < 1e-250 or t == 0.0:
        return np.asarray(p0, dtype=float).copy()
    kernel = (rates + sparse.diags(lam - out_rates)) / lam  # row-stochastic
    n_states = rates.shape[0]
    if min_terms is None:
        # every state is first reached within num_states terms; cap to keep
        # very large models affordable (their callers can raise it)
        min_terms = min(n_states + 1, 10_000)
    lt = lam * t
    v = np.asarray(p0, dtype=float).copy()
    weight = math.exp(-lt)
    if weight == 0.0:
        # L*t too large for linear-domain Poisson weights: use the
        # log-domain windowed fallback.
        return _uniformization_large_lt(v, kernel, lt, rtol)
    acc = weight * v
    j = 0
    while j < max_terms:
        j += 1
        v = v @ kernel
        weight *= lt / j
        acc += weight * v
        if weight == 0.0:
            break
        if j < min_terms:
            continue
        ratio = lt / (j + 2)
        if ratio >= 1.0:
            continue  # Poisson weights still growing / not yet decaying
        tail_bound = weight * ratio / (1.0 - ratio)
        positive = acc[acc > 0.0]
        floor = positive.min() if positive.size else 1.0
        if tail_bound < max(rtol * floor, 1e-305):
            break
    return acc


def transient_uniformization(
    chain: CTMC,
    times: np.ndarray,
    rtol: float = 1e-14,
    max_terms: int = 2_000_000,
) -> np.ndarray:
    """Transient solution by uniformization (Jensen's method).

    With uniformization rate ``L = max_i |Q_ii|`` and DTMC kernel
    ``P = I + Q / L``,

        p(t) = sum_{j>=0} Poisson(j; L t) * p0 P^j.

    All quantities are nonnegative, so the summation never cancels; each
    state probability keeps near machine *relative* accuracy — which is
    what resolves the deep-tail BER curves of the paper's Figs. 8-10.
    Poisson weights are generated in the linear domain by upward recursion
    from ``e^{-Lt}``; for the paper's rates and horizons ``L t`` stays far
    from the underflow regime (a log-domain fallback covers the rest).
    """
    times = np.atleast_1d(np.asarray(times, dtype=float))
    if np.any(times < 0):
        raise ValueError("times must be nonnegative")
    result = np.empty((len(times), chain.num_states))
    for pos, t in enumerate(times):
        result[pos] = uniformization_propagate(
            chain.rate_matrix, chain.p0, float(t), rtol=rtol, max_terms=max_terms
        )
    return result


def _uniformization_large_lt(
    p0: np.ndarray, kernel: sparse.spmatrix, lt: float, rtol: float
) -> np.ndarray:
    """Uniformization fallback when ``e^{-Lt}`` underflows.

    Scales the recursion by its running maximum and tracks the scale in
    the log domain, normalizing by the accumulated Poisson mass at the
    end.  Only exercised for extreme ``L*t`` (not reached by the paper's
    parameter ranges, but kept for generality).
    """
    # log Poisson(j; lt) is maximized near j = lt; sum terms within a
    # +-10 sqrt(lt) window (covers the mass to ~1e-20).
    centre = int(lt)
    half = int(10.0 * math.sqrt(lt)) + 10
    j_lo = max(0, centre - half)
    j_hi = centre + half
    v = p0.copy()
    if j_lo > 4096:
        # jump to the window with dense repeated squaring instead of j_lo
        # individual matvecs (j_lo can be 1e7+ when L*t is extreme)
        v = v @ np.linalg.matrix_power(kernel.toarray(), j_lo)
    else:
        for _ in range(j_lo):
            v = v @ kernel
    log_w = j_lo * math.log(lt) - lt - math.lgamma(j_lo + 1)
    acc = np.zeros_like(p0)
    scale = 0.0  # log-domain scale of acc
    total = 0.0
    w = 1.0  # weight relative to exp(scale)
    scale = log_w
    for j in range(j_lo, j_hi + 1):
        acc += w * v
        total += w
        v = v @ kernel
        w *= lt / (j + 1)
        if w > 1e200:
            acc /= w
            total /= w
            scale += math.log(w)
            w = 1.0
    return acc / total


def transient_expm(chain: CTMC, times: np.ndarray) -> np.ndarray:
    """Transient solution by stepping with scipy's matrix exponential.

    Sorts the time grid and propagates ``p`` across each interval with
    ``expm(Q * dt)``; exponentials are cached per distinct ``dt`` so a
    uniform grid costs a single Padé evaluation.
    """
    times = np.atleast_1d(np.asarray(times, dtype=float))
    if np.any(times < 0):
        raise ValueError("times must be nonnegative")
    q = chain.generator(dense=True)
    order = np.argsort(times)
    result = np.empty((len(times), chain.num_states))
    cache: Dict[float, np.ndarray] = {}
    p = chain.p0.copy()
    t_prev = 0.0
    for pos in order:
        dt = times[pos] - t_prev
        if dt > 0:
            step = cache.get(dt)
            if step is None:
                step = expm(q * dt)
                cache[dt] = step
            p = p @ step
            t_prev = times[pos]
        result[pos] = p
    return result


def transient_ode(
    chain: CTMC,
    times: np.ndarray,
    rtol: float = 1e-10,
    atol: float = 1e-14,
) -> np.ndarray:
    """Transient solution by integrating ``dp/dt = p Q`` with RK45."""
    times = np.atleast_1d(np.asarray(times, dtype=float))
    if np.any(times < 0):
        raise ValueError("times must be nonnegative")
    qt = chain.generator().transpose().tocsr()

    def rhs(_t: float, p: np.ndarray) -> np.ndarray:
        return qt @ p

    t_max = float(times.max())
    if t_max == 0.0:
        return np.tile(chain.p0, (len(times), 1))
    sol = solve_ivp(
        rhs,
        (0.0, t_max),
        chain.p0,
        t_eval=np.unique(np.concatenate([[0.0], times])),
        rtol=rtol,
        atol=atol,
        method="RK45",
    )
    if not sol.success:
        raise RuntimeError(f"ODE transient solve failed: {sol.message}")
    lookup = {t: sol.y[:, i] for i, t in enumerate(sol.t)}
    return np.array([lookup[t] for t in times])


TRANSIENT_SOLVERS: Dict[str, Callable[..., np.ndarray]] = {
    "uniformization": transient_uniformization,
    "expm": transient_expm,
    "ode": transient_ode,
}
