"""Transient CTMC solvers.

Three independent solution methods for ``p(t) = p0 · exp(Q t)``:

* :func:`transient_uniformization` — Jensen's method (randomization), a
  series of *positive* terms.  Because no cancellation occurs, each state
  probability retains near machine *relative* accuracy, which is what lets
  the deep-tail BER curves of the paper's Figs. 8-10 (down to 1e-200) come
  out clean.  This is the default solver.
* :func:`transient_expm` — scipy's Padé matrix exponential with per-step
  propagation; absolute accuracy ~1e-15, used as an independent check.
* :func:`transient_ode` — RK45 integration of the Kolmogorov forward
  equations, the third cross-check.

Every solver is traced (:mod:`repro.obs.trace`): the span attributes
record each truncation decision — terms used, ``L·t``, the Poisson tail
bound at exit, whether the large-``L·t`` fallback ran, expm cache
hits/misses — so cross-solver differential tests can assert on *why*
answers agree, not just that they do.  Aggregate counts also land in the
process metrics registry (:mod:`repro.obs.metrics`) under
``repro.solver.*``.
"""

from __future__ import annotations

import math
import sys
from typing import Callable, Dict

import numpy as np
from scipy import sparse
from scipy.integrate import solve_ivp
from scipy.linalg import expm

from ..obs import metrics, trace
from .chain import CTMC


def uniformization_propagate(
    rates: sparse.spmatrix,
    p0: np.ndarray,
    t: float,
    rtol: float = 1e-14,
    max_terms: int = 2_000_000,
    min_terms: int | None = None,
) -> np.ndarray:
    """Advance a distribution ``p0`` by time ``t`` via uniformization.

    ``rates`` is the off-diagonal rate matrix (CSR); the generator's
    diagonal is implied by its row sums.  This is the low-level primitive
    shared by :func:`transient_uniformization` and the deterministic
    scrubbing solver.

    Truncation preserves *relative* accuracy of small entries: the series
    runs for at least ``min_terms`` terms (default: the state count, so
    every reachable state receives its leading-order contribution) and
    then until the remaining Poisson mass is below ``rtol`` times the
    smallest positive accumulated entry.  This is what lets absorbing-state
    probabilities of 1e-200 come out with full significance instead of
    being lost against the O(1) bulk.

    The span recorded under the name ``"uniformization_propagate"``
    carries the truncation decision: ``terms_used``, ``lt``,
    ``tail_bound`` at exit, and ``fallback`` (whether the log-domain
    large-``L·t`` path ran).
    """
    if t < 0:
        raise ValueError("time must be nonnegative")
    registry = metrics.get_registry()
    with trace.span(
        "uniformization_propagate",
        n_states=rates.shape[0],
        t=float(t),
        rtol=rtol,
    ) as sp:
        registry.counter("repro.solver.uniformization.calls").inc()
        out_rates = np.asarray(rates.sum(axis=1)).ravel()
        lam = float(out_rates.max(initial=0.0))
        # subnormal rates make the kernel division meaningless; any total
        # rate below ~1e-250 cannot move representable probability mass
        if lam < 1e-250 or t == 0.0:
            sp.set_attrs(lt=0.0, terms_used=0, tail_bound=0.0, fallback=False)
            return np.asarray(p0, dtype=float).copy()
        kernel = (rates + sparse.diags(lam - out_rates)) / lam  # row-stochastic
        n_states = rates.shape[0]
        if min_terms is None:
            # every state is first reached within num_states terms; cap to
            # keep very large models affordable (their callers can raise it)
            min_terms = min(n_states + 1, 10_000)
        lt = lam * t
        sp.set_attr("lt", lt)
        v = np.asarray(p0, dtype=float).copy()
        weight = math.exp(-lt)
        if weight < sys.float_info.min:
            # e^{-Lt} underflowed to zero OR landed in the subnormal range
            # (Lt in ~(708, 745)), where the starting weight keeps only a
            # handful of mantissa bits and the upward recursion inherits
            # that error for every term: use the windowed fallback, whose
            # relative weights never leave the normal range.
            sp.set_attr("fallback", True)
            registry.counter("repro.solver.uniformization.fallbacks").inc()
            return _uniformization_large_lt(v, kernel, lt, rtol, sp)
        acc = weight * v
        j = 0
        tail_bound = float("inf")
        while j < max_terms:
            j += 1
            v = v @ kernel
            weight *= lt / j
            acc += weight * v
            if weight == 0.0:
                tail_bound = 0.0
                break
            if j < min_terms:
                continue
            ratio = lt / (j + 2)
            if ratio >= 1.0:
                continue  # Poisson weights still growing / not yet decaying
            tail_bound = weight * ratio / (1.0 - ratio)
            positive = acc[acc > 0.0]
            floor = positive.min() if positive.size else 1.0
            if tail_bound < max(rtol * floor, 1e-305):
                break
        sp.set_attrs(terms_used=j, tail_bound=tail_bound, fallback=False)
        registry.counter("repro.solver.uniformization.terms").inc(j)
        return acc


def transient_uniformization(
    chain: CTMC,
    times: np.ndarray,
    rtol: float = 1e-14,
    max_terms: int = 2_000_000,
) -> np.ndarray:
    """Transient solution by uniformization (Jensen's method).

    With uniformization rate ``L = max_i |Q_ii|`` and DTMC kernel
    ``P = I + Q / L``,

        p(t) = sum_{j>=0} Poisson(j; L t) * p0 P^j.

    All quantities are nonnegative, so the summation never cancels; each
    state probability keeps near machine *relative* accuracy — which is
    what resolves the deep-tail BER curves of the paper's Figs. 8-10.
    Poisson weights are generated in the linear domain by upward recursion
    from ``e^{-Lt}``; for the paper's rates and horizons ``L t`` stays far
    from the underflow regime (a log-domain fallback covers the rest).
    """
    times = np.atleast_1d(np.asarray(times, dtype=float))
    if np.any(times < 0):
        raise ValueError("times must be nonnegative")
    with trace.span(
        "transient_uniformization",
        n_states=chain.num_states,
        n_times=len(times),
    ):
        result = np.empty((len(times), chain.num_states))
        for pos, t in enumerate(times):
            result[pos] = uniformization_propagate(
                chain.rate_matrix, chain.p0, float(t), rtol=rtol, max_terms=max_terms
            )
        return result


def _uniformization_large_lt(
    p0: np.ndarray,
    kernel: sparse.spmatrix,
    lt: float,
    rtol: float,
    sp: trace.Span | None = None,
) -> np.ndarray:
    """Uniformization fallback when ``e^{-Lt}`` underflows.

    Sums the series inside a window of Poisson-significant terms around
    ``j = L·t``, rescaling the running weight when it grows large, and
    normalizes by the accumulated Poisson mass at the end (the common
    scale of numerator and denominator cancels, so no log-domain
    bookkeeping is needed).  Only exercised for extreme ``L*t`` (not
    reached by the paper's parameter ranges, but kept for generality).
    """
    # The Poisson(lt) mass beyond +-k*sqrt(lt) decays like exp(-k^2/2),
    # so choose k from the caller's rtol (the discarded tail is below it)
    # with a floor of 10 (~1e-22) preserving the historical safety margin.
    k = math.sqrt(-2.0 * math.log(max(rtol, 1e-300)))
    centre = int(lt)
    half = int(max(k, 10.0) * math.sqrt(lt)) + 10
    j_lo = max(0, centre - half)
    j_hi = centre + half
    if sp is not None:
        sp.set_attrs(
            window_lo=j_lo, window_hi=j_hi, terms_used=j_hi - j_lo + 1
        )
    v = p0.copy()
    if j_lo > 4096:
        # jump to the window with dense repeated squaring instead of j_lo
        # individual matvecs (j_lo can be 1e7+ when L*t is extreme)
        v = v @ np.linalg.matrix_power(kernel.toarray(), j_lo)
    else:
        for _ in range(j_lo):
            v = v @ kernel
    acc = np.zeros_like(p0)
    total = 0.0
    w = 1.0  # relative weight; overall scale cancels in acc / total
    for j in range(j_lo, j_hi + 1):
        acc += w * v
        total += w
        v = v @ kernel
        w *= lt / (j + 1)
        if w > 1e200:
            acc /= w
            total /= w
            w = 1.0
    if sp is not None:
        # relative mass outside the window, bounded by the Gaussian tail
        sp.set_attr("tail_bound", math.exp(-0.5 * max(k, 10.0) ** 2))
    return acc / total


def transient_expm(chain: CTMC, times: np.ndarray) -> np.ndarray:
    """Transient solution by stepping with scipy's matrix exponential.

    Sorts the time grid and propagates ``p`` across each interval with
    ``expm(Q * dt)``; exponentials are cached per distinct ``dt`` so a
    uniform grid costs a single Padé evaluation.  Cache keys are ``dt``
    rounded to 12 significant digits, so the accumulated floating-point
    drift of a nominally uniform grid (``0.1 + 0.1 + ...``) cannot
    silently defeat the cache; reusing a step across a sub-ulp ``dt``
    difference perturbs the result far below the method's own ~1e-15
    accuracy.

    The span ``"transient_expm"`` reports ``pade_evals`` (cache misses)
    and ``cache_hits``; the same counts accumulate in the metrics
    registry under ``repro.solver.expm.*``.
    """
    times = np.atleast_1d(np.asarray(times, dtype=float))
    if np.any(times < 0):
        raise ValueError("times must be nonnegative")
    registry = metrics.get_registry()
    with trace.span(
        "transient_expm", n_states=chain.num_states, n_times=len(times)
    ) as sp:
        q = chain.generator(dense=True)
        order = np.argsort(times)
        result = np.empty((len(times), chain.num_states))
        cache: Dict[float, np.ndarray] = {}
        pade_evals = 0
        cache_hits = 0
        p = chain.p0.copy()
        t_prev = 0.0
        for pos in order:
            dt = times[pos] - t_prev
            if dt > 0:
                key = float(np.format_float_scientific(dt, precision=12))
                step = cache.get(key)
                if step is None:
                    step = expm(q * dt)
                    cache[key] = step
                    pade_evals += 1
                else:
                    cache_hits += 1
                p = p @ step
                t_prev = times[pos]
            result[pos] = p
        sp.set_attrs(pade_evals=pade_evals, cache_hits=cache_hits)
        registry.counter("repro.solver.expm.pade_evals").inc(pade_evals)
        registry.counter("repro.solver.expm.cache_hits").inc(cache_hits)
        return result


def transient_ode(
    chain: CTMC,
    times: np.ndarray,
    rtol: float = 1e-10,
    atol: float = 1e-14,
) -> np.ndarray:
    """Transient solution by integrating ``dp/dt = p Q`` with RK45."""
    times = np.atleast_1d(np.asarray(times, dtype=float))
    if np.any(times < 0):
        raise ValueError("times must be nonnegative")
    qt = chain.generator().transpose().tocsr()

    def rhs(_t: float, p: np.ndarray) -> np.ndarray:
        return qt @ p

    t_max = float(times.max())
    if t_max == 0.0:
        return np.tile(chain.p0, (len(times), 1))
    with trace.span(
        "transient_ode", n_states=chain.num_states, n_times=len(times)
    ) as sp:
        sol = solve_ivp(
            rhs,
            (0.0, t_max),
            chain.p0,
            t_eval=np.unique(np.concatenate([[0.0], times])),
            rtol=rtol,
            atol=atol,
            method="RK45",
        )
        if not sol.success:
            raise RuntimeError(f"ODE transient solve failed: {sol.message}")
        sp.set_attrs(rhs_evaluations=int(sol.nfev))
        lookup = {t: sol.y[:, i] for i, t in enumerate(sol.t)}
        return np.array([lookup[t] for t in times])


TRANSIENT_SOLVERS: Dict[str, Callable[..., np.ndarray]] = {
    "uniformization": transient_uniformization,
    "expm": transient_expm,
    "ode": transient_ode,
}
