"""Continuous-time Markov chain engine (the SURE-solver substitute).

Public surface:

* :class:`~repro.markov.chain.CTMC` — finite CTMC with transient solvers.
* :func:`~repro.markov.builder.build_chain` — BFS state-space exploration
  from a local transition rule.
* :mod:`~repro.markov.solvers` — uniformization / expm / ODE transient
  solvers.
"""

from .absorbing import (
    absorption_probabilities,
    expected_time_in_states,
    mean_time_to_absorption,
)
from .builder import build_chain
from .quasistationary import QuasiStationary, quasi_stationary
from .chain import CTMC
from .solvers import (
    TRANSIENT_SOLVERS,
    transient_expm,
    transient_ode,
    transient_uniformization,
)

__all__ = [
    "CTMC",
    "build_chain",
    "TRANSIENT_SOLVERS",
    "transient_expm",
    "transient_ode",
    "transient_uniformization",
    "absorption_probabilities",
    "expected_time_in_states",
    "mean_time_to_absorption",
    "QuasiStationary",
    "quasi_stationary",
]
