"""Absorbing-chain analysis: where, when, and how long.

Complements the transient solvers with the classical fundamental-matrix
quantities for chains with absorbing states:

* :func:`absorption_probabilities` — which absorbing state eventually
  captures the process (useful when a model distinguishes failure modes,
  e.g. detected-uncorrectable vs silent corruption);
* :func:`expected_time_in_states` — expected sojourn in each transient
  state before absorption (the exposure-window budget behind the
  detection-latency analysis);
* :func:`mean_time_to_absorption` — re-exported convenience matching
  :meth:`repro.markov.chain.CTMC.mean_time_to_absorption`.

All solve small dense linear systems on the transient block of the
generator; the memory-model chains are far below the size where sparsity
would matter here.
"""

from __future__ import annotations

from typing import Dict, Hashable, List

import numpy as np

from .chain import CTMC

State = Hashable


def _split(chain: CTMC) -> tuple[List[int], List[int]]:
    """Indices of (transient, absorbing) states."""
    out = chain.exit_rates()
    transient = [i for i, r in enumerate(out) if r > 0.0]
    absorbing = [i for i, r in enumerate(out) if r == 0.0]
    return transient, absorbing


def absorption_probabilities(chain: CTMC) -> Dict[State, float]:
    """Probability of ultimately landing in each absorbing state.

    Solves ``-Q_TT B = R`` for the transient-to-absorbing hitting matrix
    and weights by the initial distribution.  States that can never be
    left (no absorbing set reachable from them) surface as missing mass;
    a chain with no absorbing states raises ValueError.
    """
    transient, absorbing = _split(chain)
    if not absorbing:
        raise ValueError("chain has no absorbing states")
    result = {chain.states[j]: 0.0 for j in absorbing}
    # initial mass already sitting on absorbing states
    for j in absorbing:
        result[chain.states[j]] += float(chain.p0[j])
    if transient:
        q = chain.generator(dense=True)
        q_tt = q[np.ix_(transient, transient)]
        q_ta = q[np.ix_(transient, absorbing)]
        hitting = np.linalg.solve(-q_tt, q_ta)  # (n_transient, n_absorbing)
        p0_t = chain.p0[transient]
        landed = p0_t @ hitting
        for col, j in enumerate(absorbing):
            result[chain.states[j]] += float(landed[col])
    return result


def expected_time_in_states(chain: CTMC) -> Dict[State, float]:
    """Expected total time spent in each transient state before absorption.

    The row sums of the CTMC fundamental matrix ``(-Q_TT)^{-1}`` weighted
    by the initial distribution; absorbing states are omitted.  Infinite
    sojourns (transient states from which no absorbing state is
    reachable) surface as ``inf``.
    """
    transient, absorbing = _split(chain)
    if not absorbing:
        raise ValueError("chain has no absorbing states")
    if not transient:
        return {}
    q = chain.generator(dense=True)
    q_tt = q[np.ix_(transient, transient)]
    p0_t = chain.p0[transient]
    try:
        sojourn = np.linalg.solve(-q_tt.T, p0_t)
    except np.linalg.LinAlgError:
        return {chain.states[i]: float("inf") for i in transient}
    out = {}
    for pos, i in enumerate(transient):
        value = float(sojourn[pos])
        out[chain.states[i]] = value if value > -1e-12 else float("inf")
    return out


def mean_time_to_absorption(chain: CTMC) -> float:
    """Expected time to absorption into *any* absorbing state."""
    return chain.mean_time_to_absorption(chain.absorbing_states())
