"""State-space exploration for Markov models.

The memory models describe their dynamics locally — "from state ``s`` the
possible moves are …" — and :func:`build_chain` turns that local rule into
a full :class:`~repro.markov.chain.CTMC` by breadth-first exploration from
the initial state.  This mirrors how reliability tools (and the paper's
SURE input) enumerate reachable configurations, and contains the state
explosion to what is actually reachable.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable, Iterable, List, Tuple

from .chain import CTMC

State = Hashable
TransitionFn = Callable[[State], Iterable[Tuple[State, float]]]


def build_chain(
    initial_state: State,
    transition_fn: TransitionFn,
    max_states: int = 2_000_000,
) -> CTMC:
    """Explore the reachable state space and assemble a CTMC.

    Parameters
    ----------
    initial_state:
        Starting state (receives probability 1).
    transition_fn:
        Maps a state to an iterable of ``(next_state, rate)`` pairs.
        Zero-rate pairs are ignored; returning an empty iterable makes the
        state absorbing.  Multiple pairs to the same successor are summed.
    max_states:
        Safety bound on the exploration; exceeding it raises RuntimeError
        rather than silently truncating the model.
    """
    states: List[State] = []
    seen = set()
    transitions: List[Tuple[State, State, float]] = []
    queue = deque([initial_state])
    seen.add(initial_state)
    while queue:
        state = queue.popleft()
        states.append(state)
        if len(states) > max_states:
            raise RuntimeError(
                f"state space exceeds max_states={max_states}; "
                "raise the bound or shrink the model"
            )
        for nxt, rate in transition_fn(state):
            if rate < 0:
                raise ValueError(f"negative rate {rate} from state {state!r}")
            if rate == 0.0 or nxt == state:
                continue
            transitions.append((state, nxt, rate))
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    return CTMC(states, transitions, initial_state)
