"""Quasi-stationary analysis of absorbing chains.

A memory word heading for the absorbing FAIL state still has a
well-defined long-run *shape* while it survives: conditioned on
non-absorption, the distribution converges to the quasi-stationary
distribution (QSD) — the left Perron eigenvector of the transient block
— and the survival probability decays at the associated eigenvalue.
For the paper's models this yields the asymptotic hazard of an
unscrubbed word and the typical damage profile of the survivors
(how many erasures/errors a still-readable word carries late in life).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable

import numpy as np

from .chain import CTMC

State = Hashable


@dataclass(frozen=True)
class QuasiStationary:
    """QSD and decay rate of an absorbing chain.

    Attributes
    ----------
    distribution:
        ``{state: probability}`` over transient states, conditioned on
        survival (sums to 1).
    decay_rate:
        Asymptotic hazard: ``P(survive t) ~ C * exp(-decay_rate * t)``.
    """

    distribution: Dict[State, float]
    decay_rate: float

    def mean_residual_life(self) -> float:
        """Expected remaining survival time once quasi-stationarity holds."""
        if self.decay_rate <= 0:
            return float("inf")
        return 1.0 / self.decay_rate


def quasi_stationary(chain: CTMC) -> QuasiStationary:
    """Compute the QSD of a chain with at least one absorbing state.

    Solves the left eigenproblem of the transient generator block; the
    eigenvalue of smallest magnitude real part gives the decay rate and
    its (sign-fixed, normalized) eigenvector the QSD.
    """
    out_rates = chain.exit_rates()
    transient = [i for i, r in enumerate(out_rates) if r > 0.0]
    absorbing = [i for i, r in enumerate(out_rates) if r == 0.0]
    if not absorbing:
        raise ValueError("chain has no absorbing states")
    if not transient:
        raise ValueError("chain has no transient states")
    q = chain.generator(dense=True)
    block = q[np.ix_(transient, transient)]
    eigenvalues, left_vectors = np.linalg.eig(block.T)
    # dominant (least-negative real part) eigenvalue of the generator block
    idx = int(np.argmax(eigenvalues.real))
    decay = -float(eigenvalues[idx].real)
    vector = left_vectors[:, idx].real
    if vector.sum() < 0:
        vector = -vector
    vector = np.clip(vector, 0.0, None)
    total = vector.sum()
    if total <= 0:
        raise np.linalg.LinAlgError("degenerate quasi-stationary eigenvector")
    vector /= total
    distribution = {
        chain.states[i]: float(v) for i, v in zip(transient, vector)
    }
    return QuasiStationary(distribution=distribution, decay_rate=decay)
