"""Resilient campaign runtime: checkpointing, supervision, chaos.

The Monte-Carlo layer treats the *analysis infrastructure itself* as a
reliability problem: long campaigns must survive worker crashes, hangs,
poisoned batch chunks, and operator interrupts without discarding
completed trials — the same fault classes the paper's memories model.

Public surface:

* :class:`CheckpointJournal` — append-only JSONL journal of completed
  chunks; resuming replays journaled chunks for bit-identical results.
* :class:`ChunkSupervisor` / :class:`RetryPolicy` — supervised pool
  dispatch with per-chunk timeouts, bounded exponential-backoff
  retries, engine fallback (batch -> scalar) and serial degradation.
* :class:`ChaosSpec` / :func:`parse_chaos_spec` — deterministic
  crash/hang/poison/slow injection to prove the above under test.
* :class:`RuntimeConfig` — the bundle threaded through
  ``simulate_fail_probability_batched`` and ``run_campaign``.
* :func:`build_manifest` / :func:`write_manifest` — machine-readable
  provenance records for campaign runs.
* :mod:`repro.runtime.integrity` — framed (CRC + hash chain) v2
  journals, damage quarantine, advisory locking, and the audit/repair
  engine behind ``repro doctor``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..obs.progress import ProgressEvent, ProgressTracker
from .chaos import (
    CHAOS_EXIT_CODE,
    ChaosCrashError,
    ChaosError,
    ChaosHangError,
    ChaosPoisonError,
    ChaosSpec,
    chaos_from_arg,
    parse_chaos_spec,
)
from .checkpoint import (
    CheckpointError,
    CheckpointJournal,
    CheckpointMismatchError,
    seed_key,
)
from .integrity import (
    LOCK_CONTENTION_EXIT_CODE,
    STATE_LOST_EXIT_CODE,
    IntegrityError,
    JournalLock,
    JournalLockedError,
    atomic_write,
    audit_journal,
    audit_path,
    repair_journal,
    scan_journal,
)
from .manifest import build_manifest, git_describe, write_manifest
from .supervisor import (
    CHUNK_LATENCY_METRIC,
    ChunkFailedError,
    ChunkSupervisor,
    ResilienceWarning,
    RetryPolicy,
    SupervisorEvent,
)


@dataclass
class RuntimeConfig:
    """Resilience options threaded through the Monte-Carlo entry points.

    ``None`` members disable the corresponding feature; the default
    config (all ``None``/defaults) reproduces plain supervised execution
    with bounded retries and no journaling or chaos.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    chunk_timeout: Optional[float] = None
    chaos: Optional[ChaosSpec] = None
    journal: Optional[CheckpointJournal] = None

    #: Campaign-wide progress tracker; chunk completions (including
    #: journal-resumed replays) advance it and emit heartbeat events.
    progress: Optional[ProgressTracker] = None
    #: Called with each heartbeat :class:`~repro.obs.progress.ProgressEvent`
    #: (the CLI's ``--progress`` renderer). Requires ``progress``.
    on_progress: Optional[Callable[[ProgressEvent], None]] = None

    #: Supervisor events accumulated across cells (filled during runs).
    events: list = field(default_factory=list)


__all__ = [
    "CHAOS_EXIT_CODE",
    "ChaosCrashError",
    "ChaosError",
    "ChaosHangError",
    "ChaosPoisonError",
    "ChaosSpec",
    "chaos_from_arg",
    "parse_chaos_spec",
    "CheckpointError",
    "CheckpointJournal",
    "CheckpointMismatchError",
    "seed_key",
    "LOCK_CONTENTION_EXIT_CODE",
    "STATE_LOST_EXIT_CODE",
    "IntegrityError",
    "JournalLock",
    "JournalLockedError",
    "atomic_write",
    "audit_journal",
    "audit_path",
    "repair_journal",
    "scan_journal",
    "build_manifest",
    "git_describe",
    "write_manifest",
    "CHUNK_LATENCY_METRIC",
    "ChunkFailedError",
    "ChunkSupervisor",
    "ResilienceWarning",
    "RetryPolicy",
    "SupervisorEvent",
    "RuntimeConfig",
]
