"""Resilient campaign runtime: checkpointing, supervision, chaos.

The Monte-Carlo layer treats the *analysis infrastructure itself* as a
reliability problem: long campaigns must survive worker crashes, hangs,
poisoned batch chunks, and operator interrupts without discarding
completed trials — the same fault classes the paper's memories model.

Public surface:

* :class:`CheckpointJournal` — append-only JSONL journal of completed
  chunks; resuming replays journaled chunks for bit-identical results.
* :class:`ChunkSupervisor` / :class:`RetryPolicy` — supervised chunk
  dispatch with per-chunk timeouts, bounded exponential-backoff
  retries, straggler re-dispatch, engine fallback (batch -> scalar)
  and serial degradation.
* :class:`Executor` and friends (:mod:`repro.runtime.executors`) — the
  pluggable execution backends the coordinator drives: serial
  in-process, ``ProcessPoolExecutor`` pool, the multi-host-shaped
  :class:`LeaseExecutor` board guarded by the integrity layer's lock,
  and the cross-host :class:`~repro.runtime.fleet.FleetExecutor`.
* :mod:`repro.runtime.fleet` — detachable ``repro worker`` agents with
  heartbeat leases, epoch-fenced re-dispatch, zombie-result rejection,
  and the ``repro doctor`` board audit/repair helpers.
* :class:`ChaosSpec` / :func:`parse_chaos_spec` — deterministic
  crash/hang/poison/slow injection to prove the above under test.
* :class:`RuntimeConfig` — the bundle threaded through
  ``simulate_fail_probability_batched`` and ``run_campaign``.
* :func:`build_manifest` / :func:`write_manifest` — machine-readable
  provenance records for campaign runs.
* :mod:`repro.runtime.integrity` — framed (CRC + hash chain) v2
  journals, damage quarantine, advisory locking, and the audit/repair
  engine behind ``repro doctor``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from ..obs.progress import ProgressEvent, ProgressTracker
from ..stats import BerSnapshot, StoppingRule
from .chaos import (
    CHAOS_EXIT_CODE,
    ChaosCrashError,
    ChaosError,
    ChaosHangError,
    ChaosPoisonError,
    ChaosSpec,
    chaos_from_arg,
    parse_chaos_spec,
)
from .checkpoint import (
    CheckpointError,
    CheckpointJournal,
    CheckpointMismatchError,
    seed_key,
)
from .integrity import (
    LOCK_CONTENTION_EXIT_CODE,
    STATE_LOST_EXIT_CODE,
    IntegrityError,
    JournalLock,
    JournalLockedError,
    atomic_write,
    audit_journal,
    audit_path,
    repair_journal,
    scan_journal,
)
from .executors import (
    EXECUTOR_NAMES,
    ChunkState,
    Completion,
    Executor,
    LeaseExecutor,
    PoolExecutor,
    SerialExecutor,
    StragglerPolicy,
    make_executor,
)
from .fleet import (
    DEFAULT_WORKER_TTL,
    FleetExecutor,
    audit_board,
    default_worker_id,
    repair_board,
    worker_main,
)
from .manifest import build_manifest, git_describe, write_manifest
from .supervisor import (
    CHUNK_KERNEL_METRIC,
    CHUNK_LATENCY_METRIC,
    ChunkFailedError,
    ChunkSupervisor,
    ResilienceWarning,
    RetryPolicy,
    SupervisorEvent,
)


@dataclass
class RuntimeConfig:
    """Resilience options threaded through the Monte-Carlo entry points.

    ``None`` members disable the corresponding feature; the default
    config (all ``None``/defaults) reproduces plain supervised execution
    with bounded retries and no journaling or chaos.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    chunk_timeout: Optional[float] = None
    chaos: Optional[ChaosSpec] = None
    journal: Optional[CheckpointJournal] = None

    #: Executor backend name (``serial`` | ``pool`` | ``lease`` |
    #: ``fleet``); ``None`` selects the historical default (serial for
    #: one worker, else pool).
    executor: Optional[str] = None
    #: Shared board directory for ``lease``/``fleet`` executors; ``None``
    #: derives a journal-adjacent (or private temporary) board.
    board_dir: Optional[Path] = None
    #: Heartbeat-lease TTL for the ``fleet`` executor, seconds; ``None``
    #: uses :data:`~repro.runtime.fleet.DEFAULT_WORKER_TTL`.
    worker_ttl: Optional[float] = None
    #: Straggler re-dispatch policy (``None`` disables speculation).
    straggler: Optional[StragglerPolicy] = None
    #: Adaptive early-stopping rule (``--stop-rel-ci``); ``None`` runs the
    #: full trial budget.
    stop: Optional[StoppingRule] = None
    #: Called with each incremental :class:`~repro.stats.BerSnapshot` as
    #: chunks land (the CLI's streaming BER±CI renderer).
    on_snapshot: Optional[Callable[[BerSnapshot], None]] = None

    #: Campaign-wide progress tracker; chunk completions (including
    #: journal-resumed replays) advance it and emit heartbeat events.
    progress: Optional[ProgressTracker] = None
    #: Called with each heartbeat :class:`~repro.obs.progress.ProgressEvent`
    #: (the CLI's ``--progress`` renderer). Requires ``progress``.
    on_progress: Optional[Callable[[ProgressEvent], None]] = None

    #: Supervisor events accumulated across cells (filled during runs).
    events: list = field(default_factory=list)


__all__ = [
    "CHAOS_EXIT_CODE",
    "ChaosCrashError",
    "ChaosError",
    "ChaosHangError",
    "ChaosPoisonError",
    "ChaosSpec",
    "chaos_from_arg",
    "parse_chaos_spec",
    "CheckpointError",
    "CheckpointJournal",
    "CheckpointMismatchError",
    "seed_key",
    "LOCK_CONTENTION_EXIT_CODE",
    "STATE_LOST_EXIT_CODE",
    "IntegrityError",
    "JournalLock",
    "JournalLockedError",
    "atomic_write",
    "audit_journal",
    "audit_path",
    "repair_journal",
    "scan_journal",
    "build_manifest",
    "git_describe",
    "write_manifest",
    "EXECUTOR_NAMES",
    "ChunkState",
    "Completion",
    "Executor",
    "LeaseExecutor",
    "PoolExecutor",
    "SerialExecutor",
    "StragglerPolicy",
    "make_executor",
    "DEFAULT_WORKER_TTL",
    "FleetExecutor",
    "audit_board",
    "default_worker_id",
    "repair_board",
    "worker_main",
    "BerSnapshot",
    "StoppingRule",
    "CHUNK_KERNEL_METRIC",
    "CHUNK_LATENCY_METRIC",
    "ChunkFailedError",
    "ChunkSupervisor",
    "ResilienceWarning",
    "RetryPolicy",
    "SupervisorEvent",
    "RuntimeConfig",
]
