"""Append-only chunk-level checkpoint journal for Monte-Carlo campaigns.

Long campaigns at near-paper rates are hours of work; a Ctrl-C or an
OOM-killed process must not discard completed trials.  The journal is a
JSONL file with one record per line:

* a single ``header`` record carrying a campaign *fingerprint* — every
  parameter the estimates depend on (code geometry, rates, horizon,
  trials, chunk size, seed entropy, engine, cell matrix).  Resuming
  against a journal whose fingerprint differs raises
  :class:`CheckpointMismatchError` instead of silently merging
  incompatible trials.
* one ``chunk`` record per completed chunk, keyed by
  ``(cell, chunk_index, seed_entropy/spawn_key)`` and carrying the
  chunk's result payload (failures, outcome counts, perf counters).

Records are appended with ``flush`` + ``fsync`` the moment a chunk
completes, so the journal never lags the computation by more than one
line.  A torn trailing line (the write that was interrupted) is detected
and ignored on load.  Because chunk seeds come from
``SeedSequence.spawn`` and aggregation is a commutative sum, replaying
journaled chunks and computing only the missing ones is bit-identical to
an uninterrupted run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

JOURNAL_VERSION = 1


class CheckpointError(RuntimeError):
    """Base class for journal failures."""


class CheckpointMismatchError(CheckpointError):
    """Journal was written by a campaign with different parameters."""


def seed_key(seed_seq) -> str:
    """Stable identity of a spawned ``SeedSequence``: entropy + spawn key."""
    return json.dumps(
        {
            "entropy": str(seed_seq.entropy),
            "spawn_key": list(seed_seq.spawn_key),
        },
        sort_keys=True,
    )


class CheckpointJournal:
    """Append-only JSONL journal of completed Monte-Carlo chunks."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._header: Optional[Dict[str, Any]] = None
        self._chunks: Dict[Tuple[str, int], Dict[str, Any]] = {}
        self._torn_lines = 0
        self._fh = None
        self._load()

    # -- loading -----------------------------------------------------------

    def _load(self) -> None:
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            lines = fh.read().split("\n")
        for pos, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # Only the final (torn) line may be malformed; anything
                # earlier means real corruption.
                if pos >= len(lines) - 2:
                    self._torn_lines += 1
                    continue
                raise CheckpointError(
                    f"corrupt journal {self.path}: bad record at line {pos + 1}"
                )
            kind = record.get("kind")
            if kind == "header":
                self._header = record
            elif kind == "chunk":
                key = (str(record["cell"]), int(record["chunk"]))
                self._chunks[key] = record
            # Unknown kinds are skipped for forward compatibility.

    # -- writing -----------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- protocol ----------------------------------------------------------

    def ensure_header(self, fingerprint: Dict[str, Any]) -> bool:
        """Bind the journal to a campaign fingerprint.

        Writes the header on a fresh journal; on an existing one,
        verifies the stored fingerprint matches and raises
        :class:`CheckpointMismatchError` on any difference.  Returns
        ``True`` when resuming an existing journal.
        """
        if self._header is None:
            self._header = {
                "kind": "header",
                "version": JOURNAL_VERSION,
                "fingerprint": fingerprint,
            }
            self._append(self._header)
            return False
        stored = self._header.get("fingerprint")
        if stored != fingerprint:
            diff = sorted(
                k
                for k in set(stored or {}) | set(fingerprint)
                if (stored or {}).get(k) != fingerprint.get(k)
            )
            raise CheckpointMismatchError(
                f"journal {self.path} was written by a different campaign "
                f"(mismatched fields: {', '.join(diff) or 'all'}); "
                "use a fresh --checkpoint path or rerun the original "
                "parameters"
            )
        return True

    def completed(
        self, cell: str, chunk_index: int, seed_identity: str
    ) -> Optional[Dict[str, Any]]:
        """The journaled result payload for a chunk, if present and valid.

        A record whose seed identity does not match the chunk's spawned
        seed is ignored (defensive: it can only happen if a journal is
        doctored, since the fingerprint pins the root entropy).
        """
        record = self._chunks.get((str(cell), int(chunk_index)))
        if record is None:
            return None
        if record.get("seed") != seed_identity:
            return None
        return record["result"]

    def record_chunk(
        self,
        cell: str,
        chunk_index: int,
        seed_identity: str,
        result: Dict[str, Any],
    ) -> None:
        """Durably append one completed chunk (flush + fsync)."""
        record = {
            "kind": "chunk",
            "cell": str(cell),
            "chunk": int(chunk_index),
            "seed": seed_identity,
            "result": result,
        }
        self._append(record)
        self._chunks[(str(cell), int(chunk_index))] = record

    # -- introspection -----------------------------------------------------

    @property
    def n_chunks(self) -> int:
        return len(self._chunks)

    @property
    def header_fingerprint(self) -> Optional[Dict[str, Any]]:
        return None if self._header is None else self._header.get("fingerprint")

    @property
    def torn_lines(self) -> int:
        """Malformed trailing lines tolerated on load (0 or 1 normally)."""
        return self._torn_lines
