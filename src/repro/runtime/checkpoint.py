"""Append-only chunk-level checkpoint journal for Monte-Carlo campaigns.

Long campaigns at near-paper rates are hours of work; a Ctrl-C or an
OOM-killed process must not discard completed trials.  The journal is a
line-oriented file with one record per line:

* a single ``header`` record carrying a campaign *fingerprint* — every
  parameter the estimates depend on (code geometry, rates, horizon,
  trials, chunk size, seed entropy, engine, cell matrix).  Resuming
  against a journal whose fingerprint differs raises
  :class:`CheckpointMismatchError` instead of silently merging
  incompatible trials.
* one ``chunk`` record per completed chunk, keyed by
  ``(cell, chunk_index, seed_entropy/spawn_key)`` and carrying the
  chunk's result payload (failures, outcome counts, perf counters).

Since journal format v2 every line is *framed*
(:mod:`repro.runtime.integrity`): a CRC-32C over the JSON payload plus
a SHA-256 chain field linking each line to its predecessor.  On load,
damage is classified — a torn trailing line (the append an interrupt
cut short) is truncated and tolerated, while mid-file corruption is
moved to a ``.quarantine`` sidecar and the affected chunks are simply
recomputed on resume.  Because chunk seeds come from
``SeedSequence.spawn`` and aggregation is a commutative sum, a resume
that replays the surviving chunks and recomputes the quarantined ones
is still bit-identical to an uninterrupted run.  Legacy v1 journals
(bare JSON lines) are accepted read-only.

Records are appended with ``flush`` + ``fsync`` the moment a chunk
completes, and the journal's *parent directory* is fsynced when the
file is created, so neither the records nor the file itself can vanish
on power loss.  An advisory ``flock`` (acquired at the first write)
keeps two campaigns from interleaving appends into one journal —
the loser raises :class:`~repro.runtime.integrity.JournalLockedError`.
If a write fails mid-campaign (ENOSPC, I/O error), the journal degrades
instead of crashing the run: results keep accumulating in memory, an
``io_errors`` counter and a ``journal_io_error`` trace event record the
loss, and the CLI exits with the distinct resumable-state-lost code.
"""

from __future__ import annotations

import errno
import json
import os
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .integrity import (
    CHAIN_SEED,
    JournalLock,
    LineDamage,
    frame_record,
    fsync_dir,
    rewrite_journal,
    scan_journal,
    write_quarantine,
)

JOURNAL_VERSION = 2


class CheckpointError(RuntimeError):
    """Base class for journal failures."""


class CheckpointMismatchError(CheckpointError):
    """Journal was written by a campaign with different parameters."""


def seed_key(seed_seq) -> str:
    """Stable identity of a spawned ``SeedSequence``: entropy + spawn key."""
    return json.dumps(
        {
            "entropy": str(seed_seq.entropy),
            "spawn_key": list(seed_seq.spawn_key),
        },
        sort_keys=True,
    )


def _observe_quarantine(count: int, path: Path) -> None:
    """Make a quarantine loud: metrics counter, trace event, warning."""
    from ..obs import metrics as obs_metrics
    from ..obs import trace

    obs_metrics.get_registry().counter(
        "repro.runtime.records_quarantined"
    ).inc(count)
    trace.event(
        "journal_quarantine", journal=str(path), records=count
    )
    warnings.warn(
        f"journal {path}: quarantined {count} corrupt record(s) to "
        f"{path}.quarantine; the affected chunks will be recomputed",
        _resilience_warning(),
        stacklevel=3,
    )


def _resilience_warning():
    from .supervisor import ResilienceWarning

    return ResilienceWarning


class CheckpointJournal:
    """Append-only framed journal of completed Monte-Carlo chunks."""

    def __init__(
        self,
        path: Union[str, Path],
        chaos=None,
    ):
        self.path = Path(path)
        #: Deterministic journal-fault injection (``bitrot``/``torn``/
        #: ``enospc`` clauses of a :class:`~repro.runtime.chaos.ChaosSpec`);
        #: targets are *journal append indices*, counted across cells.
        self.chaos = chaos
        self._header: Optional[Dict[str, Any]] = None
        self._chunks: Dict[Tuple[str, int], Dict[str, Any]] = {}
        self._torn_lines = 0
        self._fh = None
        self._chain = CHAIN_SEED
        self._lock = JournalLock(self.path)
        self._append_index = 0  # chunk appends so far (chaos targeting)
        #: Journal format version of the on-disk file (2 for fresh files).
        self.version: int = JOURNAL_VERSION
        #: Legacy v1 journals are replayed but never appended to.
        self.readonly = False
        #: Mid-file-corrupt records moved to the ``.quarantine`` sidecar.
        self.records_quarantined = 0
        #: Failed appends (ENOSPC / I/O errors) absorbed by degradation.
        self.io_errors = 0
        #: Chunk records lost because the journal had already degraded.
        self.appends_lost = 0
        #: True once a write failure switched the journal to memory-only.
        self.degraded = False
        self.degraded_reason: Optional[str] = None
        self._load()

    # -- loading -----------------------------------------------------------

    def _load(self) -> None:
        scan = scan_journal(self.path)
        if not scan.exists:
            return
        if scan.version == 1:
            self._load_legacy(scan)
            return
        self.version = JOURNAL_VERSION
        self._torn_lines = len(scan.torn_tail)
        quarantine: list[LineDamage] = list(scan.mid_file)
        records = [record for _line_no, record in scan.records]
        if scan.header_damaged:
            # The fingerprint cannot be trusted, so no chunk record can
            # be either: quarantine everything and resume from scratch
            # (bit-identity is preserved — all chunks recompute).
            quarantine = quarantine + [
                LineDamage(line_no, "untrusted-after-header-loss", json.dumps(r))
                for line_no, r in scan.records
            ]
            records = []
        if quarantine:
            # Mutating the file requires the lock: two concurrent
            # campaigns must not race the quarantine rewrite.
            self._lock.acquire()
            write_quarantine(self.path, quarantine, reason="load")
            rewrite_journal(self.path, records)
            self.records_quarantined = len(quarantine)
            self._observe_load_quarantine()
        elif scan.torn_tail:
            # Truncate the torn bytes so the next append starts on a
            # clean line instead of concatenating onto the partial one.
            self._lock.acquire()
            rewrite_journal(self.path, records)
        self._ingest(records)
        # The rewrites above re-frame from the chain seed; recompute the
        # running chain so future appends continue it correctly.
        chain = CHAIN_SEED
        for record in records:
            payload = json.dumps(record, sort_keys=True).encode("utf-8")
            _line, chain = frame_record(payload, chain)
        self._chain = chain

    def _load_legacy(self, scan) -> None:
        """Legacy v1 journal: replayable, but strictly read-only."""
        self.version = 1
        self.readonly = True
        self._torn_lines = len(scan.torn_tail)
        if scan.mid_file:
            raise CheckpointError(
                f"corrupt journal {self.path}: bad record at line "
                f"{scan.mid_file[0].line_no} (legacy v1 format; run "
                f"'repro doctor {self.path} --repair' to quarantine the "
                "damage and upgrade to the checksummed v2 format)"
            )
        self._ingest([record for _line_no, record in scan.records])

    def _ingest(self, records) -> None:
        for record in records:
            kind = record.get("kind")
            if kind == "header":
                self._header = record
            elif kind == "chunk":
                try:
                    key = (str(record["cell"]), int(record["chunk"]))
                except (KeyError, TypeError, ValueError):
                    continue  # structurally valid JSON, wrong shape
                self._chunks[key] = record
            # Unknown kinds are skipped for forward compatibility.

    def _observe_load_quarantine(self) -> None:
        _observe_quarantine(self.records_quarantined, self.path)

    # -- writing -----------------------------------------------------------

    def _open_for_append(self):
        if self._fh is None:
            self._lock.acquire()
            created = not self.path.exists()
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
            if created:
                # Without this the *file itself* (not just its records)
                # can vanish on power loss: the parent directory entry
                # was never flushed even though every record is fsynced.
                fsync_dir(self.path.parent)
        return self._fh

    def _append(self, record: Dict[str, Any]) -> None:
        if self.readonly:
            raise CheckpointError(
                f"journal {self.path} is a legacy v1 file and read-only; "
                f"run 'repro doctor {self.path} --repair' to upgrade it"
            )
        chaos = self.chaos
        is_chunk = record.get("kind") == "chunk"
        index = self._append_index
        if chaos is not None and is_chunk and chaos.enospc_fires(index):
            self._append_index += 1
            raise OSError(errno.ENOSPC, "injected ENOSPC (chaos)")
        fh = self._open_for_append()
        payload = json.dumps(record, sort_keys=True).encode("utf-8")
        line, chain = frame_record(payload, self._chain)
        torn_fraction = (
            chaos.torn_fraction(index) if chaos is not None and is_chunk else 0.0
        )
        bitrot_mask = (
            chaos.bitrot_mask(index) if chaos is not None and is_chunk else 0
        )
        if is_chunk:
            self._append_index += 1
        if torn_fraction > 0.0:
            # Simulate a write cut mid-line: a prefix, no newline.  The
            # writer keeps its chain as if the record never landed.
            cut = max(1, int(len(line) * min(torn_fraction, 1.0)))
            fh.write(line[:cut])
            fh.flush()
            os.fsync(fh.fileno())
            return
        fh.write(line + "\n")
        fh.flush()
        os.fsync(fh.fileno())
        self._chain = chain
        if bitrot_mask:
            self._inject_bitrot(len(line) + 1, bitrot_mask)

    def _inject_bitrot(self, line_length: int, mask: int) -> None:
        """Flip a byte in the middle of the just-written line (chaos)."""
        size = os.path.getsize(self.path)
        target = size - line_length + line_length // 2
        with open(self.path, "r+b") as fh:
            fh.seek(target)
            byte = fh.read(1)
            fh.seek(target)
            fh.write(bytes([byte[0] ^ (mask & 0xFF)]))
            fh.flush()
            os.fsync(fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._lock.release()

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- protocol ----------------------------------------------------------

    def ensure_header(
        self,
        fingerprint: Dict[str, Any],
        upgrade=None,
    ) -> bool:
        """Bind the journal to a campaign fingerprint.

        Writes the header on a fresh journal; on an existing one,
        verifies the stored fingerprint matches and raises
        :class:`CheckpointMismatchError` on any difference.  Returns
        ``True`` when resuming an existing journal.  Acquiring the
        journal's advisory lock happens here (or at the first append),
        so a second concurrent campaign fails fast with
        :class:`~repro.runtime.integrity.JournalLockedError`.

        ``upgrade`` (optional) lifts a *stored* legacy fingerprint to
        the caller's current schema before comparison (see
        :func:`repro.simulator.campaign.upgrade_fingerprint`), so old
        journals stay resumable without weakening the strict equality
        check for same-schema fingerprints.
        """
        if not self.readonly:
            self._lock.acquire()
        if self._header is None:
            header = {
                "kind": "header",
                "version": JOURNAL_VERSION,
                "fingerprint": fingerprint,
            }
            self._header = header
            if not self.readonly:
                self._append(header)
            return False
        stored = self._header.get("fingerprint")
        if upgrade is not None and isinstance(stored, dict):
            stored = upgrade(stored)
        if stored != fingerprint:
            diff = sorted(
                k
                for k in set(stored or {}) | set(fingerprint)
                if (stored or {}).get(k) != fingerprint.get(k)
            )
            raise CheckpointMismatchError(
                f"journal {self.path} was written by a different campaign "
                f"(mismatched fields: {', '.join(diff) or 'all'}); "
                "use a fresh --checkpoint path or rerun the original "
                "parameters"
            )
        return True

    def completed(
        self, cell: str, chunk_index: int, seed_identity: str
    ) -> Optional[Dict[str, Any]]:
        """The journaled result payload for a chunk, if present and valid.

        A record whose seed identity does not match the chunk's spawned
        seed is ignored (defensive: it can only happen if a journal is
        doctored, since the fingerprint pins the root entropy).
        """
        record = self._chunks.get((str(cell), int(chunk_index)))
        if record is None:
            return None
        if record.get("seed") != seed_identity:
            return None
        return record.get("result")

    def chunk_kernel_seconds(self) -> List[Dict[str, Any]]:
        """Per-chunk decode-kernel telemetry, sorted by ``(cell, chunk)``.

        Each entry is ``{"cell", "chunk", "kernel_seconds"}`` pulled from
        the journaled chunk's merged perf counters — the service layer's
        per-chunk engine-telemetry source (``GET /v1/jobs/{id}``).
        """
        out: List[Dict[str, Any]] = []
        for (cell, chunk), record in sorted(self._chunks.items()):
            result = record.get("result")
            counters = (
                result.get("counters") if isinstance(result, dict) else None
            )
            try:
                kernel_s = float(
                    (counters or {}).get("kernel_seconds", 0.0)
                )
            except (TypeError, ValueError):
                kernel_s = 0.0
            out.append(
                {"cell": cell, "chunk": chunk, "kernel_seconds": kernel_s}
            )
        return out

    def record_chunk(
        self,
        cell: str,
        chunk_index: int,
        seed_identity: str,
        result: Dict[str, Any],
    ) -> None:
        """Durably append one completed chunk (flush + fsync).

        Never raises on I/O failure: a full or failing disk degrades the
        journal to memory-only (the campaign completes; resume state is
        lost) instead of killing a half-done run with a traceback.
        """
        record = {
            "kind": "chunk",
            "cell": str(cell),
            "chunk": int(chunk_index),
            "seed": seed_identity,
            "result": result,
        }
        self._chunks[(str(cell), int(chunk_index))] = record
        if self.readonly:
            self.appends_lost += 1
            return
        if self.degraded:
            self.appends_lost += 1
            return
        try:
            self._append(record)
        except OSError as exc:
            self._degrade(exc)

    def _degrade(self, exc: OSError) -> None:
        from ..obs import metrics as obs_metrics
        from ..obs import trace

        self.io_errors += 1
        self.appends_lost += 1
        self.degraded = True
        self.degraded_reason = (
            f"{errno.errorcode.get(exc.errno, exc.errno)}: {exc}"
            if exc.errno
            else repr(exc)
        )
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None
        obs_metrics.get_registry().counter("repro.runtime.io_errors").inc()
        trace.event(
            "journal_io_error",
            journal=str(self.path),
            error=self.degraded_reason,
        )
        warnings.warn(
            f"journal {self.path}: write failed ({self.degraded_reason}); "
            "continuing in memory — the campaign will complete but its "
            "resumable state is lost",
            _resilience_warning(),
            stacklevel=3,
        )

    # -- introspection -----------------------------------------------------

    @property
    def n_chunks(self) -> int:
        return len(self._chunks)

    @property
    def header_fingerprint(self) -> Optional[Dict[str, Any]]:
        return None if self._header is None else self._header.get("fingerprint")

    @property
    def torn_lines(self) -> int:
        """Malformed trailing lines tolerated on load (0 or 1 normally)."""
        return self._torn_lines
