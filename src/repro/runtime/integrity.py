"""Durable-state integrity: framed journals, quarantine, locks, doctor.

The campaign runtime persists hours of Monte-Carlo work in append-only
JSONL journals (:mod:`repro.runtime.checkpoint`).  Before this layer a
flipped byte or a torn ``rename`` either crashed resume or — worse —
silently resumed from a damaged chunk record.  This module gives every
journal line the same defenses the paper demands of memories:

* **Framed v2 records** — each line is ``2|<crc32c>|<chain>|<payload>``
  where the CRC-32C covers the JSON payload (bitrot detection within a
  line) and the chain field is a truncated SHA-256 over the previous
  chain value plus the payload (splice / whole-line-loss detection
  across lines).  Legacy v1 journals (bare JSON lines) are still read,
  in read-only mode.
* **Damage classification** — :func:`scan_journal` parses a journal
  defensively and labels every bad line *torn tail* (trailing garbage
  from an interrupted final append — tolerated, truncated on repair) or
  *mid-file* corruption (quarantined: the record is copied to a
  ``.quarantine`` sidecar and dropped, so the supervisor transparently
  recomputes exactly those chunks on resume).
* **Advisory locking** — :class:`JournalLock` (``flock``-based) makes
  two campaigns on one journal impossible to interleave; the loser
  raises :class:`JournalLockedError`, which the CLI maps to exit code
  :data:`LOCK_CONTENTION_EXIT_CODE`.
* **Doctor** — :func:`audit_path` / :func:`repair_journal` back the
  ``repro doctor`` subcommand: audit a journal or a whole state
  directory (journals, manifests, quarantine sidecars, locks) into a
  machine-readable report, and with ``--repair`` truncate torn tails,
  quarantine bad records, and rewrite a clean v2 journal (upgrading v1
  files in the process).

Every mutation here goes through :func:`repro.ioutil.atomic_write`, so
a crash during *repair* is itself recoverable.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..ioutil import atomic_write, crc32c, fsync_dir

#: CLI exit code when another campaign holds the journal lock (EX_TEMPFAIL).
LOCK_CONTENTION_EXIT_CODE = 75

#: CLI exit code when journal writes failed mid-run (ENOSPC, I/O error):
#: the campaign completed in memory but its resumable state was lost
#: (EX_IOERR).
STATE_LOST_EXIT_CODE = 74

#: Frame marker of a v2 journal line.
FRAME_VERSION = "2"

#: Hex digits of the truncated SHA-256 chain field (8 bytes).
CHAIN_HEX_DIGITS = 16

#: Chain value before the first record of a journal.
CHAIN_SEED = hashlib.sha256(b"repro.journal.v2").digest()[: CHAIN_HEX_DIGITS // 2]

#: Quarantine sidecar schema version.
QUARANTINE_SCHEMA = 1


class IntegrityError(RuntimeError):
    """Base class for integrity-layer failures."""


class FrameError(IntegrityError):
    """A line could not be parsed / verified as a framed v2 record."""


class JournalLockedError(IntegrityError):
    """Another process holds the journal's advisory lock."""


# --------------------------------------------------------------------------
# record framing
# --------------------------------------------------------------------------


def chain_hash(prev_chain: bytes, payload: bytes) -> bytes:
    """Next chain value: truncated SHA-256 over (previous chain, payload)."""
    return hashlib.sha256(prev_chain + payload).digest()[: CHAIN_HEX_DIGITS // 2]


def frame_record(payload: bytes, prev_chain: bytes) -> Tuple[str, bytes]:
    """Frame one JSON payload as a v2 journal line.

    Returns ``(line_without_newline, new_chain)``.  The CRC covers the
    payload only, so a flipped byte in the CRC or chain field damages at
    most that one record's verdict, never its neighbours' payloads.
    """
    chain = chain_hash(prev_chain, payload)
    line = (
        f"{FRAME_VERSION}|{crc32c(payload):08x}|{chain.hex()}|"
        f"{payload.decode('utf-8')}"
    )
    return line, chain


def parse_frame(line: str) -> Tuple[int, str, bytes]:
    """Split a framed line into ``(crc, chain_hex, payload_bytes)``.

    Raises :class:`FrameError` on any structural problem; CRC/chain
    *verification* is the caller's job (:func:`scan_journal`), because
    the caller owns the running chain state.
    """
    parts = line.split("|", 3)
    if len(parts) != 4 or parts[0] != FRAME_VERSION:
        raise FrameError("not a framed v2 line")
    crc_text, chain_hex, payload_text = parts[1], parts[2], parts[3]
    if len(crc_text) != 8 or len(chain_hex) != CHAIN_HEX_DIGITS:
        raise FrameError("bad frame field widths")
    try:
        crc = int(crc_text, 16)
        bytes.fromhex(chain_hex)
    except ValueError as exc:
        raise FrameError(f"bad frame hex field: {exc}") from None
    return crc, chain_hex, payload_text.encode("utf-8")


# --------------------------------------------------------------------------
# journal scanning
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class LineDamage:
    """One damaged journal line, with its classification."""

    line_no: int  # 1-based
    reason: str  # bad-frame | bad-crc | chain-break | bad-json | unframed
    raw: str
    torn_tail: bool = False  # trailing damage (tolerated) vs mid-file

    def as_dict(self) -> Dict[str, Any]:
        return {
            "line_no": self.line_no,
            "reason": self.reason,
            "torn_tail": self.torn_tail,
            "raw_prefix": self.raw[:160],
        }


@dataclass
class JournalScan:
    """Defensive parse of one journal file."""

    path: Path
    exists: bool = False
    version: Optional[int] = None  # 2 framed, 1 legacy, None empty/missing
    records: List[Tuple[int, Dict[str, Any]]] = field(default_factory=list)
    damage: List[LineDamage] = field(default_factory=list)
    total_lines: int = 0

    @property
    def header(self) -> Optional[Dict[str, Any]]:
        for _line_no, record in self.records:
            if record.get("kind") == "header":
                return record
        return None

    @property
    def header_damaged(self) -> bool:
        """True when damage precedes (or may have replaced) the header.

        With no header record present, only damage *before the first
        valid record* is suspected of having been the header — journals
        legitimately written without a header (direct
        ``simulate_fail_probability_batched`` use) must not have every
        chunk condemned by one mid-file flip.
        """
        header_line = None
        for line_no, record in self.records:
            if record.get("kind") == "header":
                header_line = line_no
                break
        if header_line is None:
            first_valid = self.records[0][0] if self.records else None
            return any(
                not d.torn_tail
                and (first_valid is None or d.line_no < first_valid)
                for d in self.damage
            )
        return any(d.line_no < header_line for d in self.damage)

    @property
    def chunk_records(self) -> List[Tuple[int, Dict[str, Any]]]:
        return [
            (line_no, record)
            for line_no, record in self.records
            if record.get("kind") == "chunk"
        ]

    @property
    def torn_tail(self) -> List[LineDamage]:
        return [d for d in self.damage if d.torn_tail]

    @property
    def mid_file(self) -> List[LineDamage]:
        return [d for d in self.damage if not d.torn_tail]

    @property
    def classification(self) -> str:
        if not self.exists:
            return "missing"
        if not self.records and not self.damage:
            return "empty"
        if self.mid_file:
            return "corrupt"
        if self.torn_tail:
            return "torn-tail"
        return "healthy"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "path": str(self.path),
            "exists": self.exists,
            "version": self.version,
            "classification": self.classification,
            "records": len(self.records),
            "chunk_records": len(self.chunk_records),
            "header_present": self.header is not None,
            "header_damaged": self.header_damaged,
            "torn_tail_lines": len(self.torn_tail),
            "corrupt_lines": len(self.mid_file),
            "damage": [d.as_dict() for d in self.damage],
        }


def scan_journal(path: Union[str, Path]) -> JournalScan:
    """Parse a journal defensively, verifying v2 frames line by line.

    Never raises on content: every undecodable, CRC-failing,
    chain-breaking, or structurally wrong line becomes a
    :class:`LineDamage` entry instead.  Damage with no valid record
    after it is classified as a torn tail (an interrupted final append);
    anything earlier is mid-file corruption.
    """
    scan = JournalScan(path=Path(path))
    try:
        blob = scan.path.read_bytes()
    except FileNotFoundError:
        return scan
    scan.exists = True
    text = blob.decode("utf-8", errors="replace")
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()  # trailing newline, not an empty record
    scan.total_lines = len(lines)

    framed_seen = False
    legacy_seen = False
    running_chain = CHAIN_SEED
    damage: List[LineDamage] = []

    def damaged(line_no: int, reason: str, raw: str) -> None:
        damage.append(LineDamage(line_no=line_no, reason=reason, raw=raw))

    for pos, raw in enumerate(lines):
        line_no = pos + 1
        if not raw.strip():
            continue
        if raw.startswith(FRAME_VERSION + "|"):
            framed_seen = True
            try:
                crc, chain_hex, payload = parse_frame(raw)
            except FrameError:
                damaged(line_no, "bad-frame", raw)
                continue
            if crc32c(payload) != crc:
                damaged(line_no, "bad-crc", raw)
                # Best-effort resync: trust the stored chain so one
                # damaged payload doesn't condemn its successors.
                running_chain = bytes.fromhex(chain_hex)
                continue
            expected = chain_hash(running_chain, payload)
            stored = bytes.fromhex(chain_hex)
            if expected != stored:
                # Payload is CRC-clean but the chain disagrees: either
                # this line's chain field was hit or a predecessor line
                # vanished.  Quarantine conservatively and resync on the
                # stored value (the writer's own continuation point).
                damaged(line_no, "chain-break", raw)
                running_chain = stored
                continue
            running_chain = stored
            try:
                record = json.loads(payload.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                damaged(line_no, "bad-json", raw)
                continue
            if not isinstance(record, dict):
                damaged(line_no, "bad-json", raw)
                continue
            scan.records.append((line_no, record))
        else:
            # Legacy v1 line (bare JSON) — or garbage.
            try:
                record = json.loads(raw)
            except json.JSONDecodeError:
                reason = "unframed" if framed_seen else "bad-json"
                damaged(line_no, reason, raw)
                continue
            if not isinstance(record, dict):
                damaged(line_no, "bad-json", raw)
                continue
            if framed_seen:
                # A bare-JSON line inside a framed journal carries no
                # CRC and cannot be trusted.
                damaged(line_no, "unframed", raw)
                continue
            legacy_seen = True
            scan.records.append((line_no, record))

    if framed_seen:
        scan.version = 2
    elif legacy_seen:
        scan.version = 1
    elif scan.records or damage:
        scan.version = 1  # garbage-only file: treat as legacy damage
    # Classify trailing damage (nothing valid after it) as torn tail.
    last_valid = scan.records[-1][0] if scan.records else 0
    scan.damage = [
        LineDamage(d.line_no, d.reason, d.raw, torn_tail=d.line_no > last_valid)
        for d in damage
    ]
    return scan


# --------------------------------------------------------------------------
# quarantine & rewrite
# --------------------------------------------------------------------------


def quarantine_path(journal: Union[str, Path]) -> Path:
    return Path(str(journal) + ".quarantine")


def lock_path(journal: Union[str, Path]) -> Path:
    return Path(str(journal) + ".lock")


def write_quarantine(
    journal: Union[str, Path],
    damage: List[LineDamage],
    reason: str,
) -> Optional[Path]:
    """Append damaged raw lines to the journal's quarantine sidecar.

    Each sidecar line is a self-describing JSON record (schema,
    originating journal, line number, damage reason, raw line), so a
    post-mortem can reconstruct exactly what was dropped and why.
    """
    if not damage:
        return None
    sidecar = quarantine_path(journal)
    entries = [
        json.dumps(
            {
                "schema": QUARANTINE_SCHEMA,
                "journal": str(journal),
                "reason": reason,
                "line_no": d.line_no,
                "damage": d.reason,
                "raw": d.raw,
            },
            sort_keys=True,
        )
        for d in damage
    ]
    with open(sidecar, "a", encoding="utf-8") as fh:
        fh.write("\n".join(entries) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    return sidecar


def render_journal(records: List[Dict[str, Any]]) -> str:
    """Serialize records as framed v2 lines (fresh chain from the seed)."""
    chain = CHAIN_SEED
    lines = []
    for record in records:
        payload = json.dumps(record, sort_keys=True).encode("utf-8")
        line, chain = frame_record(payload, chain)
        lines.append(line)
    return "".join(line + "\n" for line in lines)


def rewrite_journal(
    path: Union[str, Path], records: List[Dict[str, Any]]
) -> Path:
    """Atomically rewrite a journal as clean framed v2 records."""
    return atomic_write(path, render_journal(records))


def scan_quarantine(journal: Union[str, Path]) -> Dict[str, Any]:
    """Summarize a journal's quarantine sidecar (if any)."""
    sidecar = quarantine_path(journal)
    info: Dict[str, Any] = {"path": str(sidecar), "exists": sidecar.exists()}
    if not info["exists"]:
        info["entries"] = 0
        return info
    entries = 0
    unparseable = 0
    for raw in sidecar.read_text(errors="replace").split("\n"):
        if not raw.strip():
            continue
        entries += 1
        try:
            json.loads(raw)
        except json.JSONDecodeError:
            unparseable += 1
    info["entries"] = entries
    info["unparseable"] = unparseable
    return info


# --------------------------------------------------------------------------
# advisory locking
# --------------------------------------------------------------------------


class JournalLock:
    """Advisory exclusive lock on a journal's ``.lock`` sidecar.

    Uses ``flock`` where available (conflicts across *and within* a
    process, since each acquisition opens its own descriptor).  On
    platforms without ``fcntl`` the lock degrades to a no-op — single
    -writer discipline is then the operator's job, as before this layer.
    """

    def __init__(self, journal: Union[str, Path]):
        self.path = lock_path(journal)
        self._fh = None

    @property
    def held(self) -> bool:
        return self._fh is not None

    def acquire(self) -> "JournalLock":
        if self._fh is not None:
            return self
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX
            return self
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fh = open(self.path, "a+")
        try:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError as exc:
            fh.close()
            if exc.errno in (errno.EACCES, errno.EAGAIN):
                raise JournalLockedError(
                    f"journal is locked by another campaign "
                    f"(lock file {self.path}); wait for it to finish or "
                    "use a different --checkpoint path"
                ) from None
            raise
        self._fh = fh
        return self

    def release(self) -> None:
        if self._fh is None:
            return
        try:
            import fcntl

            fcntl.flock(self._fh.fileno(), fcntl.LOCK_UN)
        except (ImportError, OSError):  # pragma: no cover - non-POSIX
            pass
        self._fh.close()
        self._fh = None

    def __enter__(self) -> "JournalLock":
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()


def probe_lock(journal: Union[str, Path]) -> Dict[str, Any]:
    """Non-invasively report whether a journal's lock is held."""
    path = lock_path(journal)
    info: Dict[str, Any] = {"path": str(path), "exists": path.exists()}
    if not path.exists():
        info["held"] = False
        return info
    probe = JournalLock(journal)
    try:
        probe.acquire()
    except JournalLockedError:
        info["held"] = True
        return info
    probe.release()
    info["held"] = False
    return info


# --------------------------------------------------------------------------
# doctor: audit & repair
# --------------------------------------------------------------------------

#: Audit/repair report schema version.
DOCTOR_SCHEMA = 1


def audit_journal(path: Union[str, Path]) -> Dict[str, Any]:
    """Full health report for one journal (scan + sidecars + lock)."""
    scan = scan_journal(path)
    report = scan.as_dict()
    report["quarantine"] = scan_quarantine(path)
    report["lock"] = probe_lock(path)
    fingerprint = None
    header = scan.header
    if header is not None:
        fingerprint = header.get("fingerprint")
    report["fingerprint_present"] = fingerprint is not None
    return report


def audit_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Structural health report for one run-manifest JSON file."""
    path = Path(path)
    report: Dict[str, Any] = {"path": str(path), "exists": path.exists()}
    if not path.exists():
        report["ok"] = False
        report["error"] = "missing"
        return report
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        report["ok"] = False
        report["error"] = f"unreadable: {exc}"
        return report
    if not isinstance(doc, dict) or "manifest_version" not in doc:
        report["ok"] = False
        report["error"] = "not a run manifest (no manifest_version)"
        return report
    report["ok"] = True
    report["manifest_version"] = doc["manifest_version"]
    report["results"] = len(doc.get("results") or [])
    return report


def _looks_like_manifest(path: Path) -> bool:
    if path.suffix != ".json":
        return False
    try:
        head = path.read_text(errors="replace")
    except OSError:
        return False
    return '"manifest_version"' in head


def repair_journal(path: Union[str, Path]) -> Dict[str, Any]:
    """Repair one journal in place; returns the action report.

    * torn tails are truncated;
    * mid-file corrupt lines are copied to the ``.quarantine`` sidecar
      and dropped (their chunks will be recomputed on resume);
    * the surviving records are rewritten as clean framed v2 lines —
      which also upgrades legacy v1 journals.

    The rewrite is atomic, so a crash during repair leaves either the
    original damaged journal (re-repairable) or the clean one.
    """
    path = Path(path)
    scan = scan_journal(path)
    actions: Dict[str, Any] = {
        "path": str(path),
        "repaired": False,
        "truncated_torn_lines": 0,
        "quarantined_lines": 0,
        "upgraded_from_v1": False,
        "rewritten": False,
    }
    if not scan.exists:
        actions["error"] = "missing"
        return actions
    records = [record for _line_no, record in scan.records]
    needs_rewrite = bool(scan.damage) or scan.version == 1
    if not needs_rewrite:
        return actions
    if scan.mid_file:
        write_quarantine(path, scan.mid_file, reason="doctor-repair")
        actions["quarantined_lines"] = len(scan.mid_file)
    actions["truncated_torn_lines"] = len(scan.torn_tail)
    actions["upgraded_from_v1"] = scan.version == 1
    rewrite_journal(path, records)
    actions["rewritten"] = True
    actions["repaired"] = True
    actions["surviving_records"] = len(records)
    return actions


def audit_path(path: Union[str, Path]) -> Dict[str, Any]:
    """Audit a journal file, a board directory, or a state directory.

    Directories are searched (non-recursively) for ``*.jsonl`` journals,
    run-manifest ``*.json`` files, and lease/fleet *board* directories
    (``todo/leases/done`` layout — the directory itself if board-shaped,
    else any board-shaped subdirectory); sidecars (``.quarantine``,
    ``.lock``) are reported with their journal, boards under a
    ``boards`` key.
    """
    # Deferred: fleet imports executors which imports this module.
    from .fleet import _looks_like_board, audit_board

    path = Path(path)
    report: Dict[str, Any] = {
        "schema": DOCTOR_SCHEMA,
        "path": str(path),
        "journals": [],
        "manifests": [],
        "boards": [],
    }
    if path.is_dir():
        if _looks_like_board(path):
            report["boards"].append(audit_board(path))
        else:
            for candidate in sorted(path.iterdir()):
                if candidate.suffix == ".jsonl":
                    report["journals"].append(audit_journal(candidate))
                elif _looks_like_manifest(candidate):
                    report["manifests"].append(audit_manifest(candidate))
                elif candidate.is_dir() and _looks_like_board(candidate):
                    report["boards"].append(audit_board(candidate))
    else:
        report["journals"].append(audit_journal(path))
    report["healthy"] = (
        all(
            j["classification"] in ("healthy", "empty")
            for j in report["journals"]
        )
        and all(m.get("ok", False) for m in report["manifests"])
        and all(b["healthy"] for b in report["boards"])
    )
    return report


__all__ = [
    "CHAIN_SEED",
    "DOCTOR_SCHEMA",
    "FRAME_VERSION",
    "FrameError",
    "IntegrityError",
    "JournalLock",
    "JournalLockedError",
    "JournalScan",
    "LOCK_CONTENTION_EXIT_CODE",
    "LineDamage",
    "QUARANTINE_SCHEMA",
    "STATE_LOST_EXIT_CODE",
    "atomic_write",
    "audit_journal",
    "audit_manifest",
    "audit_path",
    "chain_hash",
    "crc32c",
    "frame_record",
    "fsync_dir",
    "lock_path",
    "parse_frame",
    "probe_lock",
    "quarantine_path",
    "render_journal",
    "repair_journal",
    "rewrite_journal",
    "scan_journal",
    "scan_quarantine",
    "write_quarantine",
]
