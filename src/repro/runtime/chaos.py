"""Deterministic chaos injection for the chunked Monte-Carlo engine.

The resilience layer (:mod:`repro.runtime.supervisor`) claims to survive
worker crashes, hangs, and poisoned batch chunks.  This module makes
those fault classes *injectable on purpose*, keyed by chunk index and
attempt number, so the claims are provable under test and from the CLI
(``repro campaign --chaos ...``) without any nondeterministic flakiness.

A :class:`ChaosSpec` is parsed from a compact string grammar::

    spec    := clause (';' clause)*
    clause  := kind '@' targets [':' param]
    kind    := 'crash' | 'hang' | 'poison' | 'slow'
    targets := '*' | index (',' index)*

* ``crash@i[:a]``  — the worker process executing chunk ``i`` dies with
  ``os._exit`` on its first ``a`` attempts (default 1, so the first
  retry succeeds).  In the serial (in-process) path a crash cannot kill
  the interpreter, so it degrades to raising :class:`ChaosCrashError`,
  which exercises the same retry machinery.
* ``hang@i[:s]``   — the worker sleeps ``s`` seconds (default 3600) on
  chunk ``i``'s first attempt, simulating a livelocked worker; the
  supervisor's per-chunk timeout must fire.  Serially this raises
  :class:`ChaosHangError` instead (a blocking sleep in the parent could
  never be supervised).
* ``poison@i[:a]`` — the batch executor raises :class:`ChaosPoisonError`
  for chunk ``i`` on every attempt (``a = -1``, the default), forcing
  the supervisor's engine fallback to the scalar path.
* ``slow@i[:s]``   — benign: sleep ``s`` seconds (default 0.1) before
  computing chunk ``i``.  Widens race windows for interrupt tests
  without changing any result.

Three further kinds target the *checkpoint journal* rather than the
chunk executor (handled inside
:class:`~repro.runtime.checkpoint.CheckpointJournal`; their indices
count journal chunk-appends, in append order across cells):

* ``bitrot@i[:m]``     — after durably appending record ``i``, flip the
  byte in the middle of its line with XOR mask ``m`` (default 1).  The
  next load must quarantine exactly that record and recompute it.
* ``torn@i[:f]``       — write only the first fraction ``f`` (default
  0.5) of record ``i``'s line, with no newline: a power cut mid-append.
  ``torn-write`` is accepted as an alias.
* ``enospc@i[:n]``     — the journal raises ``ENOSPC`` starting at
  append ``i`` for ``n`` appends (default -1 = forever, a full disk).
  The campaign must degrade to memory-only and exit with the
  resumable-state-lost code.

Four kinds target the *fleet worker agent* (:mod:`repro.runtime.fleet`;
consumed by the agent around chunk execution, keyed by chunk index and
board *epoch* rather than attempt — epoch re-dispatch happens inside
the :class:`~repro.runtime.fleet.FleetExecutor`, invisible to the
supervisor's attempt counter):

* ``worker-kill@i[:e]`` — the agent holding chunk ``i`` dies with
  ``os._exit`` while ``epoch < e`` (default 1: the first holder dies,
  the post-expiry re-dispatch succeeds).  Detection is heartbeat
  staleness, never pids.
* ``worker-hang@i[:s]`` — the agent freezes (heartbeat paused, sleeps
  ``s`` seconds, default 3600) on chunk ``i``'s first epoch: a
  SIGSTOP-like livelock.  The coordinator must expire the lease and
  re-dispatch under a bumped epoch.
* ``partition@i[:s]``   — board visibility freezes for ``s`` seconds
  (default 5): the agent pauses heartbeats, computes chunk ``i``, and
  withholds the result until the window closes.  If ``s`` exceeds the
  TTL the late result is a stale-epoch zombie and must be rejected.
* ``zombie@i[:e]``      — deterministic zombie: the agent computes
  chunk ``i`` with heartbeats paused, *waits until the coordinator has
  provably re-dispatched under a higher epoch*, then lets the stale
  result land.  Counted in ``repro.fleet.zombie_results_rejected``.

``*`` targets every chunk.  Chaos only perturbs *scheduling, worker
health, and journal durability*, never the RNG streams, so any run that
completes under chaos (via retries or recomputed chunks) is
bit-identical to an undisturbed run.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

#: Pseudo-index meaning "every chunk" in the per-kind target maps.
WILDCARD = -1

#: Exit status used by injected worker crashes (recognizable in logs).
CHAOS_EXIT_CODE = 86


class ChaosError(RuntimeError):
    """Base class for injected faults."""


class ChaosCrashError(ChaosError):
    """Serial-mode stand-in for a worker process crash."""


class ChaosHangError(ChaosError):
    """Serial-mode stand-in for a hung worker."""


class ChaosPoisonError(ChaosError):
    """A deterministically poisoned batch chunk (persistent failure)."""


@dataclass(frozen=True)
class ChaosSpec:
    """Per-chunk fault injection plan (picklable, crosses process lines).

    Each mapping goes ``chunk index -> parameter``; :data:`WILDCARD`
    applies to all chunks.  ``crash``/``poison`` parameters are *attempt
    budgets*: the fault fires while ``attempt < budget`` (``-1`` means
    every attempt).  ``hang``/``slow`` parameters are seconds.
    """

    crash: Dict[int, int] = field(default_factory=dict)
    hang: Dict[int, float] = field(default_factory=dict)
    poison: Dict[int, int] = field(default_factory=dict)
    slow: Dict[int, float] = field(default_factory=dict)
    # Journal-fault tables (append index -> parameter); consumed by
    # CheckpointJournal, not by before_chunk.
    bitrot: Dict[int, int] = field(default_factory=dict)
    torn: Dict[int, float] = field(default_factory=dict)
    enospc: Dict[int, int] = field(default_factory=dict)
    # Fleet-fault tables (chunk index -> parameter); consumed by the
    # fleet worker agent, not by before_chunk.  ``worker_kill``/``zombie``
    # parameters are *epoch budgets* (fire while epoch < budget, -1 =
    # every epoch); ``worker_hang``/``partition`` are seconds (first
    # epoch only, so the re-dispatch can succeed).
    worker_kill: Dict[int, int] = field(default_factory=dict)
    worker_hang: Dict[int, float] = field(default_factory=dict)
    partition: Dict[int, float] = field(default_factory=dict)
    zombie: Dict[int, int] = field(default_factory=dict)

    def _lookup(self, table, chunk_index):
        if chunk_index in table:
            return table[chunk_index]
        return table.get(WILDCARD)

    def crash_attempts(self, chunk_index: int) -> int:
        budget = self._lookup(self.crash, chunk_index)
        return 0 if budget is None else budget

    def hang_seconds(self, chunk_index: int, attempt: int) -> float:
        if attempt > 0:  # hangs are first-attempt faults
            return 0.0
        seconds = self._lookup(self.hang, chunk_index)
        return 0.0 if seconds is None else seconds

    def poison_attempts(self, chunk_index: int) -> int:
        budget = self._lookup(self.poison, chunk_index)
        return 0 if budget is None else budget

    def slow_seconds(self, chunk_index: int) -> float:
        seconds = self._lookup(self.slow, chunk_index)
        return 0.0 if seconds is None else seconds

    # -- journal faults (consumed by CheckpointJournal._append) ------------

    def bitrot_mask(self, append_index: int) -> int:
        """XOR mask to apply to journal append ``append_index`` (0 = none)."""
        mask = self._lookup(self.bitrot, append_index)
        return 0 if mask is None else int(mask) & 0xFF

    def torn_fraction(self, append_index: int) -> float:
        """Fraction of the line to persist for a torn append (0 = whole)."""
        fraction = self._lookup(self.torn, append_index)
        return 0.0 if fraction is None else float(fraction)

    def enospc_fires(self, append_index: int) -> bool:
        """True when journal append ``append_index`` must fail with ENOSPC.

        An entry ``(start, n)`` fires for ``n`` consecutive appends from
        ``start`` (``n = -1``: forever — the disk stays full).
        """
        for start, budget in self.enospc.items():
            if start == WILDCARD:
                return True
            if append_index >= start and (
                budget < 0 or append_index < start + budget
            ):
                return True
        return False

    # -- fleet faults (consumed by the fleet worker agent) -----------------

    def worker_kill_fires(self, chunk_index: int, epoch: int) -> bool:
        """True when the agent holding this (chunk, epoch) must die."""
        budget = self._lookup(self.worker_kill, chunk_index)
        if budget is None or budget == 0:
            return False
        return budget < 0 or epoch < budget

    def worker_hang_seconds(self, chunk_index: int, epoch: int) -> float:
        """Freeze duration for this chunk (first epoch only)."""
        if epoch > 0:
            return 0.0
        seconds = self._lookup(self.worker_hang, chunk_index)
        return 0.0 if seconds is None else seconds

    def partition_seconds(self, chunk_index: int, epoch: int) -> float:
        """Board-visibility freeze window for this chunk (first epoch)."""
        if epoch > 0:
            return 0.0
        seconds = self._lookup(self.partition, chunk_index)
        return 0.0 if seconds is None else seconds

    def zombie_fires(self, chunk_index: int, epoch: int) -> bool:
        """True when this (chunk, epoch) must land as a stale result."""
        budget = self._lookup(self.zombie, chunk_index)
        if budget is None or budget == 0:
            return False
        return budget < 0 or epoch < budget

    # -- injection ---------------------------------------------------------

    def before_chunk(self, chunk_index: int, attempt: int) -> None:
        """Fire any faults scheduled for this ``(chunk, attempt)``.

        Called by the worker entry point immediately before the real
        chunk executor.  Crash/hang behaviour depends on whether we are
        inside a spawned worker (real death / real sleep) or the parent
        process (typed exceptions the supervisor treats identically).
        """
        import multiprocessing

        in_worker = multiprocessing.parent_process() is not None

        delay = self.slow_seconds(chunk_index)
        if delay > 0:
            time.sleep(delay)

        budget = self.crash_attempts(chunk_index)
        if budget < 0 or attempt < budget:
            if budget:
                if in_worker:
                    os._exit(CHAOS_EXIT_CODE)
                raise ChaosCrashError(
                    f"injected crash: chunk {chunk_index} attempt {attempt}"
                )

        seconds = self.hang_seconds(chunk_index, attempt)
        if seconds > 0:
            if in_worker:
                time.sleep(seconds)
            else:
                raise ChaosHangError(
                    f"injected hang: chunk {chunk_index} attempt {attempt}"
                )

        budget = self.poison_attempts(chunk_index)
        if budget < 0 or attempt < budget:
            if budget:
                raise ChaosPoisonError(
                    f"injected poison: chunk {chunk_index} attempt {attempt}"
                )

    @property
    def is_empty(self) -> bool:
        return not (
            self.crash
            or self.hang
            or self.poison
            or self.slow
            or self.bitrot
            or self.torn
            or self.enospc
            or self.worker_kill
            or self.worker_hang
            or self.partition
            or self.zombie
        )


_DEFAULT_PARAMS = {
    "crash": 1,
    "hang": 3600.0,
    "poison": -1,
    "slow": 0.1,
    "bitrot": 1,
    "torn": 0.5,
    "enospc": -1,
    "worker_kill": 1,
    "worker_hang": 3600.0,
    "partition": 5.0,
    "zombie": 1,
}

#: Spelling aliases accepted by the ``--chaos`` grammar.
_KIND_ALIASES = {
    "torn-write": "torn",
    "worker-kill": "worker_kill",
    "worker-hang": "worker_hang",
}


def parse_chaos_spec(text: str) -> ChaosSpec:
    """Parse the ``--chaos`` CLI grammar into a :class:`ChaosSpec`.

    >>> spec = parse_chaos_spec("crash@0;poison@2;slow@*:0.05")
    >>> spec.crash_attempts(0), spec.poison_attempts(2)
    (1, -1)
    """
    tables: Dict[str, Dict[int, float]] = {
        "crash": {},
        "hang": {},
        "poison": {},
        "slow": {},
        "bitrot": {},
        "torn": {},
        "enospc": {},
        "worker_kill": {},
        "worker_hang": {},
        "partition": {},
        "zombie": {},
    }
    for raw in text.split(";"):
        clause = raw.strip()
        if not clause:
            continue
        if "@" not in clause:
            raise ValueError(
                f"bad chaos clause {clause!r}: expected kind@targets[:param]"
            )
        kind, _, rest = clause.partition("@")
        kind = _KIND_ALIASES.get(kind.strip(), kind.strip())
        if kind not in tables:
            raise ValueError(
                f"unknown chaos kind {kind!r}: expected crash, hang, "
                "poison, slow, bitrot, torn(-write), enospc, worker-kill, "
                "worker-hang, partition, or zombie"
            )
        targets, sep, param_text = rest.partition(":")
        if sep:
            try:
                param = float(param_text)
            except ValueError:
                raise ValueError(
                    f"bad chaos parameter {param_text!r} in {clause!r}"
                ) from None
        else:
            param = _DEFAULT_PARAMS[kind]
        if kind in ("crash", "poison", "bitrot", "enospc", "worker_kill", "zombie"):
            param = int(param)
        for target in targets.split(","):
            target = target.strip()
            if target == "*":
                index = WILDCARD
            else:
                try:
                    index = int(target)
                except ValueError:
                    raise ValueError(
                        f"bad chaos target {target!r} in {clause!r}"
                    ) from None
                if index < 0:
                    raise ValueError(
                        f"chaos chunk index must be >= 0, got {index}"
                    )
            tables[kind][index] = param
    return ChaosSpec(
        crash={k: int(v) for k, v in tables["crash"].items()},
        hang=dict(tables["hang"]),
        poison={k: int(v) for k, v in tables["poison"].items()},
        slow=dict(tables["slow"]),
        bitrot={k: int(v) for k, v in tables["bitrot"].items()},
        torn=dict(tables["torn"]),
        enospc={k: int(v) for k, v in tables["enospc"].items()},
        worker_kill={k: int(v) for k, v in tables["worker_kill"].items()},
        worker_hang=dict(tables["worker_hang"]),
        partition=dict(tables["partition"]),
        zombie={k: int(v) for k, v in tables["zombie"].items()},
    )


def chaos_from_arg(text: Optional[str]) -> Optional[ChaosSpec]:
    """CLI helper: ``None``/empty stays ``None``, else parse."""
    if not text:
        return None
    spec = parse_chaos_spec(text)
    return None if spec.is_empty else spec
