"""Worker supervision for the chunked Monte-Carlo engine.

``multiprocessing.Pool.map`` — the original PR-1 dispatch — deadlocks if
a worker is OOM-killed mid-chunk and aborts the whole campaign on any
chunk exception.  :class:`ChunkSupervisor` replaces it with a supervised
dispatch loop built on ``concurrent.futures.ProcessPoolExecutor``:

* **crash detection** — a dead worker breaks the pool promptly
  (``BrokenProcessPool``); the supervisor rebuilds the pool, re-queues
  the chunks that were in flight, and charges a retry only to chunks
  whose future actually failed.
* **hang detection** — each in-flight chunk carries a deadline
  (``chunk_timeout``); an expired deadline terminates the stuck pool,
  kills its processes, and retries the offending chunk.  Chunks that
  merely shared the pool are re-queued without penalty.
* **bounded retries with exponential backoff** — each chunk gets
  ``RetryPolicy.max_attempts`` tries on the primary executor, separated
  by ``base_delay * growth**n`` (capped at ``max_delay``).  Backoff is
  tracked per chunk via a not-before timestamp, so one flapping chunk
  never stalls the rest of the queue.
* **graceful degradation** — a chunk that exhausts its attempts falls
  back to the (slower, simpler) ``fallback`` executor in-process; a pool
  that keeps dying (``max_pool_restarts``) degrades the remaining work
  to serial in-process execution.  Both paths emit a
  :class:`ResilienceWarning` and count into :class:`~repro.perf.PerfCounters`,
  so a degraded campaign is loud, but it *completes*.

Because chunk RNG streams are spawned ``SeedSequence`` children and
aggregation is commutative, retries and re-dispatch cannot change the
estimate: any schedule that completes yields bit-identical results.
"""

from __future__ import annotations

import concurrent.futures as cf
import time
import warnings
from collections import defaultdict
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import metrics as obs_metrics
from ..obs import trace
from ..obs.progress import ProgressEvent, ProgressTracker
from ..perf import PerfCounters
from .chaos import ChaosSpec

#: Metrics-registry name of the per-chunk completion-latency histogram
#: (coordinator-observed: submit/start to completion, queueing included).
CHUNK_LATENCY_METRIC = "repro.mc.chunk_seconds"


class ResilienceWarning(UserWarning):
    """Structured warning for retries, fallbacks, and degradation."""


class ChunkFailedError(RuntimeError):
    """A chunk failed on the primary executor *and* the fallback."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry/backoff/degradation knobs for the supervisor."""

    max_attempts: int = 3
    base_delay: float = 0.05
    growth: float = 2.0
    max_delay: float = 2.0
    max_pool_restarts: int = 3

    def delay(self, failures: int) -> float:
        """Backoff before retry number ``failures`` (1-based)."""
        if failures <= 0:
            return 0.0
        return min(self.max_delay, self.base_delay * self.growth ** (failures - 1))


@dataclass(frozen=True)
class SupervisorEvent:
    """One recorded resilience event (for summaries and manifests)."""

    kind: str  # retry | timeout | crash | pool_restart | engine_fallback
    #         | serial_degrade | chunk_failed
    chunk: int
    attempt: int
    detail: str


def _supervised_call(payload: tuple) -> Dict[str, Any]:
    """Worker entry point: apply chaos injection, then run the executor.

    Module-level so it pickles; runs in worker processes (pooled mode)
    or the parent (serial mode) — :meth:`ChaosSpec.before_chunk` adapts
    crash/hang semantics to whichever side it is on.
    """
    fn, chunk_index, attempt, chaos, args = payload
    if chaos is not None:
        chaos.before_chunk(chunk_index, attempt)
    return fn(args)


class ChunkSupervisor:
    """Supervised dispatch of Monte-Carlo chunks over a process pool."""

    #: Poll granularity of the dispatch loop, seconds.
    TICK = 0.2

    def __init__(
        self,
        workers: int = 1,
        retry: Optional[RetryPolicy] = None,
        chunk_timeout: Optional[float] = None,
        chaos: Optional[ChaosSpec] = None,
        counters: Optional[PerfCounters] = None,
        progress: Optional[ProgressTracker] = None,
        on_progress: Optional[Callable[[ProgressEvent], None]] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise ValueError("chunk_timeout must be positive")
        self.workers = workers
        self.retry = retry if retry is not None else RetryPolicy()
        self.chunk_timeout = chunk_timeout
        self.chaos = chaos
        self.counters = counters if counters is not None else PerfCounters()
        self.progress = progress
        self.on_progress = on_progress
        self.events: List[SupervisorEvent] = []

    # -- event plumbing ----------------------------------------------------

    def _event(self, kind: str, chunk: int, attempt: int, detail: str) -> None:
        self.events.append(SupervisorEvent(kind, chunk, attempt, detail))

    def _warn(self, message: str) -> None:
        warnings.warn(message, ResilienceWarning, stacklevel=2)

    def _heartbeat(
        self, index: int, result: Dict[str, Any], latency_s: float
    ) -> None:
        """One chunk finished: histogram its latency, emit the heartbeat.

        The heartbeat is a trace event (``chunk_heartbeat``) carrying the
        chunk latency plus — when a :class:`ProgressTracker` is attached —
        the done/total/rate/ETA snapshot, and it also reaches the
        ``on_progress`` callback (the CLI's ``--progress`` renderer).
        """
        obs_metrics.get_registry().histogram(CHUNK_LATENCY_METRIC).observe(
            latency_s
        )
        trials = 0
        if isinstance(result, dict):
            try:
                trials = int(result.get("trials", 0))
            except (TypeError, ValueError):
                trials = 0
        attrs: Dict[str, Any] = {
            "chunk": index,
            "latency_s": latency_s,
            "trials": trials,
        }
        if self.progress is not None:
            progress_event = self.progress.advance(max(trials, 1))
            attrs.update(progress_event.as_dict())
            trace.event("chunk_heartbeat", **attrs)
            if self.on_progress is not None:
                self.on_progress(progress_event)
        else:
            trace.event("chunk_heartbeat", **attrs)

    # -- public API --------------------------------------------------------

    def run(
        self,
        jobs: Sequence[Tuple[int, tuple]],
        primary: Callable[[tuple], Dict[str, Any]],
        fallback: Optional[Callable[[tuple], Dict[str, Any]]] = None,
        on_complete: Optional[Callable[[int, Dict[str, Any]], None]] = None,
    ) -> Dict[int, Dict[str, Any]]:
        """Run every ``(chunk_index, args)`` job to completion.

        ``primary`` is the fast batch executor; ``fallback`` (optional)
        is the degraded per-chunk engine used once a chunk exhausts its
        primary attempts.  ``on_complete(index, result)`` fires the
        moment each chunk finishes (in completion order) — the journal
        hook.  Returns ``{chunk_index: result}`` for all jobs.
        """
        if not jobs:
            return {}
        if self.workers == 1 or len(jobs) == 1:
            return self._run_serial(jobs, primary, fallback, on_complete)
        return self._run_pooled(jobs, primary, fallback, on_complete)

    # -- serial path -------------------------------------------------------

    def _run_one_serial(
        self,
        index: int,
        args: tuple,
        primary: Callable,
        fallback: Optional[Callable],
        first_attempt: int = 0,
    ) -> Dict[str, Any]:
        failures = 0
        for attempt in range(first_attempt, self.retry.max_attempts):
            try:
                return _supervised_call((primary, index, attempt, self.chaos, args))
            except Exception as exc:  # noqa: BLE001 - chunk isolation boundary
                failures += 1
                self.counters.chunk_failures += 1
                if attempt + 1 < self.retry.max_attempts:
                    self.counters.retries += 1
                    self._event("retry", index, attempt, repr(exc))
                    time.sleep(self.retry.delay(failures))
                else:
                    self._event("chunk_failed", index, attempt, repr(exc))
        return self._run_fallback(index, args, fallback)

    def _run_serial(
        self,
        jobs: Sequence[Tuple[int, tuple]],
        primary: Callable,
        fallback: Optional[Callable],
        on_complete: Optional[Callable],
    ) -> Dict[int, Dict[str, Any]]:
        results: Dict[int, Dict[str, Any]] = {}
        for index, args in jobs:
            t0 = time.perf_counter()
            result = self._run_one_serial(index, args, primary, fallback)
            results[index] = result
            if on_complete is not None:
                on_complete(index, result)
            self._heartbeat(index, result, time.perf_counter() - t0)
        return results

    def _run_fallback(
        self, index: int, args: tuple, fallback: Optional[Callable]
    ) -> Dict[str, Any]:
        if fallback is None:
            raise ChunkFailedError(
                f"chunk {index} failed {self.retry.max_attempts} attempts "
                "and no fallback engine is available"
            )
        self.counters.engine_fallbacks += 1
        self._event(
            "engine_fallback",
            index,
            self.retry.max_attempts,
            "degrading chunk to fallback engine",
        )
        self._warn(
            f"chunk {index}: batch engine failed "
            f"{self.retry.max_attempts} attempt(s); degrading this chunk "
            "to the scalar engine"
        )
        try:
            return fallback(args)
        except Exception as exc:
            raise ChunkFailedError(
                f"chunk {index} failed on the fallback engine too: {exc!r}"
            ) from exc

    # -- pooled path -------------------------------------------------------

    def _new_pool(self, n_jobs: int) -> cf.ProcessPoolExecutor:
        return cf.ProcessPoolExecutor(max_workers=min(self.workers, n_jobs))

    @staticmethod
    def _kill_pool(executor: cf.ProcessPoolExecutor) -> None:
        """Tear a pool down hard, including hung worker processes."""
        try:
            processes = list(getattr(executor, "_processes", {}).values())
        except Exception:  # pragma: no cover - interpreter internals moved
            processes = []
        for proc in processes:
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - already dead
                pass
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except TypeError:  # pragma: no cover - cancel_futures needs 3.9
            executor.shutdown(wait=False)

    def _run_pooled(
        self,
        jobs: Sequence[Tuple[int, tuple]],
        primary: Callable,
        fallback: Optional[Callable],
        on_complete: Optional[Callable],
    ) -> Dict[int, Dict[str, Any]]:
        retry = self.retry
        results: Dict[int, Dict[str, Any]] = {}
        failures: Dict[int, int] = defaultdict(int)
        # queue entries: (chunk_index, args, not_before_monotonic)
        queue: List[Tuple[int, tuple, float]] = [(i, a, 0.0) for i, a in jobs]
        fallback_jobs: List[Tuple[int, tuple]] = []
        pool_restarts = 0
        degraded_serial = False
        executor = self._new_pool(len(jobs))
        # inflight entries: (chunk_index, args, deadline, submit_time)
        inflight: Dict[cf.Future, Tuple[int, tuple, float, float]] = {}

        def charge_failure(index: int, args: tuple, attempt: int, why: str) -> None:
            """One failed attempt: schedule a retry or route to fallback."""
            failures[index] += 1
            self.counters.chunk_failures += 1
            if failures[index] < retry.max_attempts:
                self.counters.retries += 1
                self._event("retry", index, attempt, why)
                queue.append(
                    (index, args, time.monotonic() + retry.delay(failures[index]))
                )
            else:
                self._event("chunk_failed", index, attempt, why)
                fallback_jobs.append((index, args))

        def finish(
            index: int, result: Dict[str, Any], latency_s: float
        ) -> None:
            results[index] = result
            if on_complete is not None:
                on_complete(index, result)
            self._heartbeat(index, result, latency_s)

        def finish_timed(index: int, run: Callable[[], Dict[str, Any]]) -> None:
            t0 = time.perf_counter()
            result = run()
            finish(index, result, time.perf_counter() - t0)

        try:
            while queue or inflight or fallback_jobs:
                if degraded_serial:
                    # Pool is gone for good: drain everything in-process.
                    for index, args, _nb in queue:
                        finish_timed(
                            index,
                            lambda index=index, args=args: self._run_one_serial(
                                index, args, primary, fallback, failures[index]
                            ),
                        )
                    queue.clear()
                    for index, args in fallback_jobs:
                        finish_timed(
                            index,
                            lambda index=index, args=args: self._run_fallback(
                                index, args, fallback
                            ),
                        )
                    fallback_jobs.clear()
                    continue

                # Fallback chunks run in-process immediately (the batch
                # engine already proved unreliable for them).
                for index, args in fallback_jobs:
                    finish_timed(
                        index,
                        lambda index=index, args=args: self._run_fallback(
                            index, args, fallback
                        ),
                    )
                fallback_jobs.clear()

                now = time.monotonic()
                ready = [job for job in queue if job[2] <= now]
                for job in ready:
                    if len(inflight) >= self.workers:
                        break
                    index, args, _nb = job
                    queue.remove(job)
                    future = executor.submit(
                        _supervised_call,
                        (primary, index, failures[index], self.chaos, args),
                    )
                    deadline = (
                        now + self.chunk_timeout
                        if self.chunk_timeout is not None
                        else float("inf")
                    )
                    inflight[future] = (index, args, deadline, time.perf_counter())

                if not inflight:
                    if queue:
                        # Everything queued is backing off; sleep to the
                        # earliest not-before point.
                        time.sleep(
                            max(
                                0.0,
                                min(nb for _i, _a, nb in queue)
                                - time.monotonic(),
                            )
                        )
                    continue

                done, _ = cf.wait(
                    set(inflight),
                    timeout=self.TICK,
                    return_when=cf.FIRST_COMPLETED,
                )
                pool_broken = False
                for future in done:
                    index, args, _deadline, t_submit = inflight.pop(future)
                    attempt = failures[index]
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        pool_broken = True
                        self.counters.worker_crashes += 1
                        self._event("crash", index, attempt, "worker process died")
                        charge_failure(index, args, attempt, "worker crash")
                    except Exception as exc:  # noqa: BLE001 - chunk boundary
                        charge_failure(index, args, attempt, repr(exc))
                    else:
                        finish(index, result, time.perf_counter() - t_submit)

                # Hang detection: any in-flight chunk past its deadline
                # condemns the pool (we cannot evict a single worker).
                now = time.monotonic()
                expired = [
                    future
                    for future, (_i, _a, deadline, _ts) in inflight.items()
                    if now >= deadline
                ]
                for future in expired:
                    index, args, _deadline, _t_submit = inflight.pop(future)
                    attempt = failures[index]
                    self.counters.chunk_timeouts += 1
                    self._event(
                        "timeout",
                        index,
                        attempt,
                        f"chunk exceeded {self.chunk_timeout:g}s",
                    )
                    charge_failure(index, args, attempt, "chunk timeout")
                    pool_broken = True

                if pool_broken:
                    # Innocent bystanders go back to the queue unpenalized.
                    for future, (index, args, _deadline, _ts) in inflight.items():
                        queue.append((index, args, 0.0))
                    inflight.clear()
                    self._kill_pool(executor)
                    pool_restarts += 1
                    self.counters.pool_restarts += 1
                    self._event(
                        "pool_restart",
                        -1,
                        pool_restarts,
                        f"restart {pool_restarts}/{retry.max_pool_restarts}",
                    )
                    if pool_restarts >= retry.max_pool_restarts and (
                        queue or fallback_jobs
                    ):
                        degraded_serial = True
                        self.counters.serial_fallbacks += 1
                        self._event(
                            "serial_degrade",
                            -1,
                            pool_restarts,
                            "pool keeps dying; finishing serially in-process",
                        )
                        self._warn(
                            f"worker pool died {pool_restarts} times; "
                            "degrading the remaining chunks to serial "
                            "in-process execution"
                        )
                    else:
                        executor = self._new_pool(max(1, len(queue)))
        finally:
            self._kill_pool(executor)
        return results
