"""Coordinator for supervised chunk execution over pluggable executors.

``multiprocessing.Pool.map`` — the original PR-1 dispatch — deadlocks if
a worker is OOM-killed mid-chunk and aborts the whole campaign on any
chunk exception.  :class:`ChunkSupervisor` replaces it with a supervised
dispatch loop, now split from the execution backend: the coordinator
owns retry/backoff/timeout/speculation *policy* and speaks the small
:class:`~repro.runtime.executors.Executor` interface (serial in-process,
``ProcessPoolExecutor`` pool, or the journal-adjacent lease board) for
*mechanism*.

* **crash detection** — an executor reports a dead worker as a
  ``broken`` completion; the coordinator charges a retry to the chunk
  that died and — for non-self-healing backends like the pool — tears
  the backend down, requeueing in-flight chunks unpenalized.
* **hang detection** — each in-flight chunk carries a deadline
  (``chunk_timeout``); an expired deadline charges the chunk and asks
  the executor to :meth:`~repro.runtime.executors.Executor.abandon`
  just that submission (lease: kill one worker), falling back to a full
  backend restart when it cannot (pool: workers are not individually
  evictable).
* **bounded retries with exponential backoff** — each chunk gets
  ``RetryPolicy.max_attempts`` tries on the primary executor, separated
  by ``base_delay * growth**n`` (capped at ``max_delay``).  Backoff is
  per-chunk state (:class:`~repro.runtime.executors.ChunkState`), so
  one flapping chunk never stalls the rest of the queue.
* **straggler re-dispatch** — with a :class:`StragglerPolicy`, a chunk
  whose in-flight age exceeds the p95 completion latency is
  speculatively re-issued; the first result wins, later copies are
  dropped by chunk id (one journal append, one latency observation —
  double completion is bit-identical and counted once).
* **adaptive stopping** — ``run(..., should_stop=...)`` consults the
  callback after every completion and abandons the remaining queue once
  it fires; the stopping *decision* itself lives in
  :mod:`repro.stats.streaming`, where it is defined on the contiguous
  chunk prefix so it cannot depend on scheduling.
* **graceful degradation** — a chunk that exhausts its attempts falls
  back to the (slower, simpler) ``fallback`` executor in-process; a
  backend that keeps dying (``max_pool_restarts``) degrades the
  remaining work to serial in-process execution.  Both paths emit a
  :class:`ResilienceWarning` and count into
  :class:`~repro.perf.PerfCounters`, so a degraded campaign is loud,
  but it *completes*.

Because chunk RNG streams are spawned ``SeedSequence`` children and
aggregation is commutative, retries, speculation, and re-dispatch cannot
change the estimate: any schedule that completes yields bit-identical
results.
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..obs import metrics as obs_metrics
from ..obs import trace
from ..obs.progress import ProgressEvent, ProgressTracker
from ..perf import PerfCounters
from .chaos import ChaosSpec
from .executors import (
    ChunkState,
    Executor,
    StragglerPolicy,
    _supervised_call,  # noqa: F401  (re-exported: historical import site)
    make_executor,
)

#: Metrics-registry name of the per-chunk completion-latency histogram
#: (coordinator-observed: submit/start to completion, queueing included).
CHUNK_LATENCY_METRIC = "repro.mc.chunk_seconds"

#: Per-chunk decode-kernel CPU time (from each chunk's merged perf
#: counters) — the engine-telemetry histogram surfaced by the service
#: layer's ``/metrics``.
CHUNK_KERNEL_METRIC = "repro.mc.chunk_kernel_seconds"


class ResilienceWarning(UserWarning):
    """Structured warning for retries, fallbacks, and degradation."""


class ChunkFailedError(RuntimeError):
    """A chunk failed on the primary executor *and* the fallback."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry/backoff/degradation knobs for the supervisor."""

    max_attempts: int = 3
    base_delay: float = 0.05
    growth: float = 2.0
    max_delay: float = 2.0
    max_pool_restarts: int = 3

    def delay(self, failures: int) -> float:
        """Backoff before retry number ``failures`` (1-based)."""
        if failures <= 0:
            return 0.0
        return min(self.max_delay, self.base_delay * self.growth ** (failures - 1))


@dataclass(frozen=True)
class SupervisorEvent:
    """One recorded resilience event (for summaries and manifests)."""

    kind: str  # retry | timeout | crash | pool_restart | engine_fallback
    #         | serial_degrade | chunk_failed | straggler_redispatch
    #         | duplicate_drop | copy_failed | early_stop
    chunk: int
    attempt: int
    detail: str


@dataclass
class _Dispatch:
    """One live submission to an executor (a chunk may have several)."""

    index: int
    deadline: float
    t_submit: float
    speculative: bool = False


class ChunkSupervisor:
    """Supervised dispatch of Monte-Carlo chunks over a pluggable executor."""

    #: Poll granularity of the dispatch loop, seconds.
    TICK = 0.2

    def __init__(
        self,
        workers: int = 1,
        retry: Optional[RetryPolicy] = None,
        chunk_timeout: Optional[float] = None,
        chaos: Optional[ChaosSpec] = None,
        counters: Optional[PerfCounters] = None,
        progress: Optional[ProgressTracker] = None,
        on_progress: Optional[Callable[[ProgressEvent], None]] = None,
        executor: Union[Executor, str, None] = None,
        straggler: Optional[StragglerPolicy] = None,
        board_dir=None,
        worker_ttl: Optional[float] = None,
        fleet_spawn: Optional[int] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise ValueError("chunk_timeout must be positive")
        self.workers = workers
        self.retry = retry if retry is not None else RetryPolicy()
        self.chunk_timeout = chunk_timeout
        self.chaos = chaos
        self.counters = counters if counters is not None else PerfCounters()
        self.progress = progress
        self.on_progress = on_progress
        self.executor = executor
        self.straggler = straggler
        self.board_dir = board_dir
        self.worker_ttl = worker_ttl
        self.fleet_spawn = fleet_spawn
        self.events: List[SupervisorEvent] = []

    # -- event plumbing ----------------------------------------------------

    def _event(self, kind: str, chunk: int, attempt: int, detail: str) -> None:
        self.events.append(SupervisorEvent(kind, chunk, attempt, detail))

    def _warn(self, message: str) -> None:
        warnings.warn(message, ResilienceWarning, stacklevel=2)

    def _heartbeat(
        self, index: int, result: Dict[str, Any], latency_s: float
    ) -> None:
        """One chunk finished: histogram its latency, emit the heartbeat.

        Called exactly once per chunk index — duplicate completions from
        straggler speculation are dropped *before* this point, so the
        latency histogram counts each chunk once no matter how many
        copies ran.  The heartbeat is a trace event (``chunk_heartbeat``)
        carrying the chunk latency plus — when a :class:`ProgressTracker`
        is attached — the done/total/rate/ETA snapshot, and it also
        reaches the ``on_progress`` callback (the CLI's ``--progress``
        renderer).
        """
        obs_metrics.get_registry().histogram(CHUNK_LATENCY_METRIC).observe(
            latency_s
        )
        if isinstance(result, dict):
            counters = result.get("counters")
            if isinstance(counters, dict):
                try:
                    kernel_s = float(counters.get("kernel_seconds", 0.0))
                except (TypeError, ValueError):
                    kernel_s = 0.0
                if kernel_s > 0.0:
                    obs_metrics.get_registry().histogram(
                        CHUNK_KERNEL_METRIC
                    ).observe(kernel_s)
        trials = 0
        if isinstance(result, dict):
            try:
                trials = int(result.get("trials", 0))
            except (TypeError, ValueError):
                trials = 0
        attrs: Dict[str, Any] = {
            "chunk": index,
            "latency_s": latency_s,
            "trials": trials,
        }
        if self.progress is not None:
            progress_event = self.progress.advance(max(trials, 1))
            attrs.update(progress_event.as_dict())
            trace.event("chunk_heartbeat", **attrs)
            if self.on_progress is not None:
                self.on_progress(progress_event)
        else:
            trace.event("chunk_heartbeat", **attrs)

    # -- public API --------------------------------------------------------

    def run(
        self,
        jobs: Sequence[Tuple[int, tuple]],
        primary: Callable[[tuple], Dict[str, Any]],
        fallback: Optional[Callable[[tuple], Dict[str, Any]]] = None,
        on_complete: Optional[Callable[[int, Dict[str, Any]], None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> Dict[int, Dict[str, Any]]:
        """Run ``(chunk_index, args)`` jobs to completion (or early stop).

        ``primary`` is the fast batch executor; ``fallback`` (optional)
        is the degraded per-chunk engine used once a chunk exhausts its
        primary attempts.  ``on_complete(index, result)`` fires the
        moment each chunk first finishes (in completion order, once per
        index) — the journal hook.  ``should_stop`` (optional) is
        consulted after every completion; once true, queued work is
        abandoned and the results so far are returned.  Returns
        ``{chunk_index: result}``.
        """
        if not jobs:
            return {}
        executor = self._resolve_executor(len(jobs))
        try:
            return self._run_coordinated(
                executor, jobs, primary, fallback, on_complete, should_stop
            )
        finally:
            executor.close()

    def _resolve_executor(self, n_jobs: int) -> Executor:
        spec = self.executor
        if spec is None:
            spec = "serial" if (self.workers == 1 or n_jobs == 1) else "pool"
        if isinstance(spec, str):
            return make_executor(
                spec,
                workers=min(self.workers, n_jobs),
                board_dir=self.board_dir,
                ttl=self.worker_ttl,
                spawn_workers=self.fleet_spawn,
            )
        return spec

    # -- in-process paths (fallback + degraded-serial drain) ---------------

    def _run_one_serial(
        self,
        index: int,
        args: tuple,
        primary: Callable,
        fallback: Optional[Callable],
        first_attempt: int = 0,
    ) -> Dict[str, Any]:
        failures = 0
        for attempt in range(first_attempt, self.retry.max_attempts):
            try:
                return _supervised_call((primary, index, attempt, self.chaos, args))
            except Exception as exc:  # noqa: BLE001 - chunk isolation boundary
                failures += 1
                self.counters.chunk_failures += 1
                if attempt + 1 < self.retry.max_attempts:
                    self.counters.retries += 1
                    self._event("retry", index, attempt, repr(exc))
                    time.sleep(self.retry.delay(failures))
                else:
                    self._event("chunk_failed", index, attempt, repr(exc))
        return self._run_fallback(index, args, fallback)

    def _run_fallback(
        self, index: int, args: tuple, fallback: Optional[Callable]
    ) -> Dict[str, Any]:
        if fallback is None:
            raise ChunkFailedError(
                f"chunk {index} failed {self.retry.max_attempts} attempts "
                "and no fallback engine is available"
            )
        self.counters.engine_fallbacks += 1
        self._event(
            "engine_fallback",
            index,
            self.retry.max_attempts,
            "degrading chunk to fallback engine",
        )
        self._warn(
            f"chunk {index}: batch engine failed "
            f"{self.retry.max_attempts} attempt(s); degrading this chunk "
            "to the scalar engine"
        )
        try:
            return fallback(args)
        except Exception as exc:
            raise ChunkFailedError(
                f"chunk {index} failed on the fallback engine too: {exc!r}"
            ) from exc

    # -- coordinator loop --------------------------------------------------

    def _run_coordinated(
        self,
        executor: Executor,
        jobs: Sequence[Tuple[int, tuple]],
        primary: Callable,
        fallback: Optional[Callable],
        on_complete: Optional[Callable],
        should_stop: Optional[Callable[[], bool]],
    ) -> Dict[int, Dict[str, Any]]:
        retry = self.retry
        results: Dict[int, Dict[str, Any]] = {}
        states: Dict[int, ChunkState] = {
            index: ChunkState(index=index, args=args) for index, args in jobs
        }
        queue: List[int] = [index for index, _ in jobs]
        fallback_jobs: List[int] = []
        dispatches: Dict[int, _Dispatch] = {}  # token -> live submission
        latencies: List[float] = []
        pool_restarts = 0
        degraded_serial = False
        stopping = False

        def live_copies(index: int) -> int:
            return sum(1 for d in dispatches.values() if d.index == index)

        def charge_failure(index: int, attempt: int, why: str) -> None:
            """One failed attempt: schedule a retry or route to fallback."""
            state = states[index]
            state.failures += 1
            state.speculations = 0  # new attempt wave speculates afresh
            self.counters.chunk_failures += 1
            if state.failures < retry.max_attempts:
                self.counters.retries += 1
                self._event("retry", index, attempt, why)
                state.not_before = time.monotonic() + retry.delay(state.failures)
                queue.append(index)
            else:
                self._event("chunk_failed", index, attempt, why)
                fallback_jobs.append(index)

        def finish(index: int, result: Dict[str, Any], latency_s: float) -> None:
            nonlocal stopping
            results[index] = result
            latencies.append(latency_s)
            if on_complete is not None:
                on_complete(index, result)
            self._heartbeat(index, result, latency_s)
            if should_stop is not None and should_stop():
                stopping = True
                self._event(
                    "early_stop", index, states[index].failures,
                    "stopping rule satisfied; abandoning queued chunks",
                )

        def finish_timed(index: int, run: Callable[[], Dict[str, Any]]) -> None:
            t0 = time.perf_counter()
            result = run()
            finish(index, result, time.perf_counter() - t0)

        def dispatch(state: ChunkState, speculative: bool) -> None:
            payload = (primary, state.index, state.failures, self.chaos, state.args)
            token = executor.submit(payload)
            deadline = (
                time.monotonic() + self.chunk_timeout
                if self.chunk_timeout is not None
                else math.inf
            )
            dispatches[token] = _Dispatch(
                index=state.index,
                deadline=deadline,
                t_submit=time.perf_counter(),
                speculative=speculative,
            )

        while (queue or dispatches or fallback_jobs) and not stopping:
            if degraded_serial:
                # Backend is gone for good: drain everything in-process.
                while queue and not stopping:
                    index = queue.pop(0)
                    finish_timed(
                        index,
                        lambda index=index: self._run_one_serial(
                            index, states[index].args, primary, fallback,
                            states[index].failures,
                        ),
                    )
                while fallback_jobs and not stopping:
                    index = fallback_jobs.pop(0)
                    finish_timed(
                        index,
                        lambda index=index: self._run_fallback(
                            index, states[index].args, fallback
                        ),
                    )
                continue

            # Fallback chunks run in-process immediately (the batch
            # engine already proved unreliable for them).
            while fallback_jobs and not stopping:
                index = fallback_jobs.pop(0)
                finish_timed(
                    index,
                    lambda index=index: self._run_fallback(
                        index, states[index].args, fallback
                    ),
                )
            if stopping:
                break

            now = time.monotonic()
            for index in [i for i in queue if states[i].not_before <= now]:
                if len(dispatches) >= executor.capacity:
                    break
                queue.remove(index)
                dispatch(states[index], speculative=False)

            self._maybe_speculate(executor, dispatches, states, results,
                                  latencies, live_copies, dispatch)

            if not dispatches:
                if queue:
                    # Everything queued is backing off; sleep to the
                    # earliest not-before point.
                    time.sleep(
                        max(
                            0.0,
                            min(states[i].not_before for i in queue)
                            - time.monotonic(),
                        )
                    )
                continue

            backend_broken = False
            for comp in executor.poll(self.TICK):
                disp = dispatches.pop(comp.token, None)
                if disp is None:
                    continue  # stale token from a pre-restart submission
                index = disp.index
                state = states[index]
                if index in results:
                    # First result won already: drop the late copy whole
                    # (no journal append, no heartbeat, no histogram).
                    self.counters.duplicate_results += 1
                    self._event(
                        "duplicate_drop", index, state.failures,
                        "late straggler copy discarded (first result wins)",
                    )
                    continue
                if comp.broken:
                    self.counters.worker_crashes += 1
                    self._event("crash", index, state.failures,
                                "worker process died")
                    if not executor.self_healing:
                        backend_broken = True
                    if live_copies(index) == 0:
                        charge_failure(index, state.failures, "worker crash")
                elif comp.error is not None:
                    if live_copies(index) == 0:
                        charge_failure(index, state.failures, comp.error)
                    else:
                        # A speculative twin is still running; don't
                        # penalize the chunk while it may yet succeed.
                        self._event("copy_failed", index, state.failures,
                                    comp.error)
                else:
                    finish(index, comp.result,
                           time.perf_counter() - disp.t_submit)
                    if stopping:
                        break
            if stopping:
                break

            # Hang detection: charge expired chunks; evict just the
            # offending submission where the backend supports it,
            # otherwise condemn the whole backend.
            now = time.monotonic()
            for token in [t for t, d in dispatches.items()
                          if now >= d.deadline]:
                disp = dispatches.pop(token)
                index = disp.index
                evicted = executor.abandon(token)
                if index in results:
                    continue  # timed-out copy of an already-finished chunk
                state = states[index]
                self.counters.chunk_timeouts += 1
                self._event(
                    "timeout", index, state.failures,
                    f"chunk exceeded {self.chunk_timeout:g}s",
                )
                if live_copies(index) == 0:
                    charge_failure(index, state.failures, "chunk timeout")
                if not evicted:
                    backend_broken = True

            if backend_broken:
                # Innocent bystanders go back to the queue unpenalized.
                for token in executor.restart():
                    disp = dispatches.pop(token, None)
                    if disp is None:
                        continue
                    if (
                        disp.index not in results
                        and live_copies(disp.index) == 0
                        and disp.index not in queue
                        and disp.index not in fallback_jobs
                    ):
                        states[disp.index].not_before = 0.0
                        queue.append(disp.index)
                dispatches.clear()
                pool_restarts += 1
                self.counters.pool_restarts += 1
                self._event(
                    "pool_restart",
                    -1,
                    pool_restarts,
                    f"restart {pool_restarts}/{retry.max_pool_restarts}",
                )
                if pool_restarts >= retry.max_pool_restarts and (
                    queue or fallback_jobs
                ):
                    degraded_serial = True
                    self.counters.serial_fallbacks += 1
                    self._event(
                        "serial_degrade",
                        -1,
                        pool_restarts,
                        "pool keeps dying; finishing serially in-process",
                    )
                    self._warn(
                        f"worker pool died {pool_restarts} times; "
                        "degrading the remaining chunks to serial "
                        "in-process execution"
                    )
        return results

    def _maybe_speculate(
        self,
        executor: Executor,
        dispatches: Dict[int, _Dispatch],
        states: Dict[int, ChunkState],
        results: Dict[int, Dict[str, Any]],
        latencies: List[float],
        live_copies: Callable[[int], int],
        dispatch: Callable[[ChunkState, bool], None],
    ) -> None:
        """Re-issue straggling in-flight chunks (first result wins)."""
        policy = self.straggler
        if policy is None or executor.capacity <= 1:
            return
        threshold = policy.threshold(latencies)
        if threshold is None:
            return
        now_pc = time.perf_counter()
        for disp in list(dispatches.values()):
            if len(dispatches) >= executor.capacity:
                return
            state = states[disp.index]
            if (
                disp.speculative
                or disp.index in results
                or now_pc - disp.t_submit < threshold
                or state.speculations >= policy.max_copies - 1
                or live_copies(disp.index) >= policy.max_copies
            ):
                continue
            state.speculations += 1
            self.counters.stragglers_redispatched += 1
            self._event(
                "straggler_redispatch",
                state.index,
                state.failures,
                f"in-flight {now_pc - disp.t_submit:.2f}s > "
                f"p95 threshold {threshold:.2f}s; issuing second copy",
            )
            dispatch(state, True)
