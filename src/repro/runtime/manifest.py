"""Machine-readable run manifests for campaign provenance.

A benchmark trajectory is only citable if every number in it can name
the exact run that produced it.  ``repro campaign --manifest out.json``
writes one JSON document per campaign with the full reproducibility key
(seed, engine, chunking, code geometry, cell matrix), the resilience
record (retries, timeouts, crashes, fallbacks, resumed chunks), the
per-cell results, the observability record (chunk heartbeat/progress
events with ETA, a metrics-registry snapshot including the chunk-latency
histogram), and environment provenance (git describe, Python and numpy
versions, wall clock).
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

from ..ioutil import atomic_write

# Version 2 added the "progress" heartbeat list and "metrics" snapshot.
# Version 3 added the top-level "scenario" name and per-row fault-pattern
# provenance ("pattern", "schedule") with the robustness counters
# ("silent_miscorrections", "detected_uncorrectable");
# "model_fail_probability" may now be null (out-of-model cells).
MANIFEST_VERSION = 3


def git_describe(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """``git describe --always --dirty`` of the working tree, if any."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def build_manifest(
    *,
    command: str,
    fingerprint: Dict[str, Any],
    rows: Sequence,  # CampaignRow
    counters,  # PerfCounters
    events: Sequence = (),  # SupervisorEvent
    wall_clock_seconds: Optional[float] = None,
    resumed: bool = False,
    checkpoint_path: Optional[str] = None,
    progress_events: Sequence[Dict[str, Any]] = (),  # heartbeat dicts
    metrics: Optional[Dict[str, Dict[str, Any]]] = None,  # registry snapshot
    scenario: Optional[str] = None,  # named preset, if one drove the run
) -> Dict[str, Any]:
    """Assemble the manifest document (pure; no I/O, no clock reads)."""
    import numpy as np

    results = []
    for row in rows:
        est = row.estimate
        results.append(
            {
                "cell": row.cell.label(),
                "pattern": getattr(row.cell, "pattern", None),
                "schedule": getattr(row.cell, "schedule", None),
                "model_fail_probability": row.model_fail_probability,
                "probability": est.probability,
                "failures": est.failures,
                "trials": est.trials,
                "ci_low": est.ci_low,
                "ci_high": est.ci_high,
                "outcome_counts": est.outcome_counts,
                "silent_miscorrections": getattr(
                    est, "silent_miscorrections", None
                ),
                "detected_uncorrectable": getattr(
                    est, "detected_uncorrectable", None
                ),
                "stopped_early": getattr(est, "stopped_early", False),
                "consistent": row.consistent,
            }
        )
    return {
        "manifest_version": MANIFEST_VERSION,
        "command": command,
        "scenario": scenario,
        "fingerprint": fingerprint,
        "resumed": resumed,
        "checkpoint": checkpoint_path,
        "results": results,
        "counters": counters.as_dict(),
        "resilience_events": [
            {
                "kind": ev.kind,
                "chunk": ev.chunk,
                "attempt": ev.attempt,
                "detail": ev.detail,
            }
            for ev in events
        ],
        "progress": list(progress_events),
        "metrics": metrics or {},
        "wall_clock_seconds": wall_clock_seconds,
        "environment": {
            "git_describe": git_describe(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
    }


def write_manifest(path: Union[str, Path], manifest: Dict[str, Any]) -> Path:
    """Write a manifest document as pretty JSON, stamping creation time.

    The write is atomic (temp + fsync + rename): a crash mid-write can
    no longer leave a truncated manifest behind.
    """
    doc = dict(manifest)
    doc.setdefault("created_unix", time.time())
    return atomic_write(path, json.dumps(doc, indent=2, sort_keys=True) + "\n")
