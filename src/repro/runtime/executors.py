"""Pluggable chunk executors behind the campaign coordinator.

:class:`~repro.runtime.supervisor.ChunkSupervisor` used to *be* the
process pool; now it is a coordinator that speaks a small asynchronous
interface — :class:`Executor` — with three implementations:

* :class:`SerialExecutor` — synchronous in-process execution.  The
  degenerate executor the coordinator uses for ``workers=1``; faults
  surface as typed exceptions (chaos crash/hang cannot kill the
  parent), exactly the historical serial semantics.
* :class:`PoolExecutor` — the existing ``ProcessPoolExecutor`` path.
  Worker death breaks the whole pool (``BrokenProcessPool``), so it is
  *not* self-healing: the coordinator tears it down, requeues the
  innocent in-flight chunks, and restarts.
* :class:`LeaseExecutor` — a multi-host-shaped pull model.  The
  coordinator posts pickled chunk payloads to an on-disk *board* (a
  sibling of the checkpoint journal, guarded by the integrity layer's
  :class:`~repro.runtime.integrity.JournalLock`); long-lived worker
  processes *lease* the lowest-numbered task by atomic rename and write
  results back atomically.  Claiming is lock-free work-stealing — an
  idle worker takes whatever is posted, so a second copy of a straggler
  chunk is picked up by whichever worker frees first.  A worker that
  dies holding a lease is detected by its orphaned lease file and
  respawned (self-healing: other workers keep their leases), and a
  second coordinator attaching to the same board fails fast with
  :class:`~repro.runtime.integrity.JournalLockedError` — the same
  single-writer discipline (and CLI exit path) as the journal itself.

Executors move *scheduling* only.  Chunk payloads carry their own
spawned ``SeedSequence``; results are merged commutatively and
deduplicated by chunk id upstream, so any executor, any worker count,
and any completion order yields bit-identical estimates.
"""

from __future__ import annotations

import concurrent.futures as cf
import math
import os
import pickle
import tempfile
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..ioutil import fsync_dir
from .integrity import JournalLock

#: Executor names accepted by :func:`make_executor` (and ``--executor``).
EXECUTOR_NAMES = ("serial", "pool", "lease", "fleet")


def _supervised_call(payload: tuple) -> Dict[str, Any]:
    """Worker entry point: apply chaos injection, then run the executor.

    Module-level so it pickles; runs in worker processes (pool/lease
    modes) or the parent (serial mode) — :meth:`ChaosSpec.before_chunk`
    adapts crash/hang semantics to whichever side it is on.
    """
    fn, chunk_index, attempt, chaos, args = payload
    if chaos is not None:
        chaos.before_chunk(chunk_index, attempt)
    return fn(args)


@dataclass
class ChunkState:
    """Per-chunk dispatch bookkeeping (one instance per chunk index).

    This used to be four parallel structures threaded through a
    300-line dispatch loop (``failures`` dict, queue tuples carrying
    ``not_before``, in-flight tuples carrying deadlines and submit
    times); collecting it per chunk makes retry/backoff/speculation
    state inspectable in one place.
    """

    index: int
    args: tuple
    #: Failed attempts so far; doubles as the attempt number chaos keys on.
    failures: int = 0
    #: Monotonic timestamp before which this chunk must not redispatch.
    not_before: float = 0.0
    #: Speculative copies ever issued for the current attempt.
    speculations: int = 0


@dataclass(frozen=True)
class Completion:
    """One finished (or failed) submission, as reported by an executor."""

    token: int
    result: Optional[Dict[str, Any]] = None
    #: ``repr()`` of the in-chunk exception, if the attempt failed.
    error: Optional[str] = None
    #: True when the *worker* died (crash-equivalent), not the chunk code.
    broken: bool = False


@dataclass(frozen=True)
class StragglerPolicy:
    """When to speculatively re-issue an in-flight chunk.

    A chunk is a straggler once its in-flight age exceeds
    ``max(min_seconds, factor * p95)`` of the completed-chunk latencies
    observed so far (needing at least ``min_samples`` completions before
    any speculation).  At most ``max_copies`` copies of a chunk run
    concurrently; the first result wins and later copies are discarded
    by chunk id, so speculation can never change a result.
    """

    factor: float = 3.0
    min_seconds: float = 1.0
    min_samples: int = 3
    max_copies: int = 2

    def threshold(self, latencies: Sequence[float]) -> Optional[float]:
        """Current straggler age threshold, or ``None`` (too few samples)."""
        if len(latencies) < max(1, self.min_samples):
            return None
        ordered = sorted(latencies)
        rank = max(0, math.ceil(0.95 * len(ordered)) - 1)
        return max(self.min_seconds, self.factor * ordered[rank])


class Executor:
    """Asynchronous chunk-execution backend driven by the coordinator.

    The contract is deliberately small: ``submit`` returns an opaque
    integer token, ``poll`` reports completions observed since the last
    call, ``abandon`` optionally cancels one submission in place, and
    ``restart`` is the big hammer — tear everything down, report which
    tokens were lost so the coordinator can requeue them unpenalized.
    """

    #: Human name (used in events and the CLI).
    name: str = "?"
    #: Maximum concurrently useful submissions.
    capacity: int = 1
    #: True when one worker's death leaves the others running (the
    #: coordinator then skips the restart-and-requeue path).
    self_healing: bool = False

    def submit(self, payload: tuple) -> int:
        raise NotImplementedError

    def poll(self, timeout: float) -> List[Completion]:
        raise NotImplementedError

    def abandon(self, token: int) -> bool:
        """Try to cancel one submission; False means "restart me instead"."""
        return False

    def restart(self) -> List[int]:
        """Hard-restart the backend; returns tokens whose work was lost."""
        return []

    def close(self) -> None:
        """Release every resource (idempotent)."""


class SerialExecutor(Executor):
    """Synchronous in-process execution (the ``workers=1`` path).

    ``submit`` runs the payload immediately and buffers the completion;
    ``poll`` drains the buffer.  Chunk exceptions (including parent-side
    chaos stand-ins) become error completions — the coordinator's retry
    machinery is identical to the pooled paths.
    """

    name = "serial"
    capacity = 1
    self_healing = True  # nothing to heal: there is no worker to lose

    def __init__(self) -> None:
        self._next_token = 0
        self._done: List[Completion] = []

    def submit(self, payload: tuple) -> int:
        token = self._next_token
        self._next_token += 1
        try:
            result = _supervised_call(payload)
        except Exception as exc:  # noqa: BLE001 - chunk isolation boundary
            self._done.append(Completion(token=token, error=repr(exc)))
        else:
            self._done.append(Completion(token=token, result=result))
        return token

    def poll(self, timeout: float) -> List[Completion]:
        done, self._done = self._done, []
        return done


class PoolExecutor(Executor):
    """The classic ``ProcessPoolExecutor`` backend.

    Not self-healing: a dead worker breaks the whole pool, every
    completion during the break reports ``broken=True``, and the
    coordinator calls :meth:`restart` (which also surrenders finished-
    but-unpolled work for recomputation — results are deterministic, so
    recompute equals replay).
    """

    name = "pool"
    self_healing = False

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.capacity = workers
        self._workers = workers
        self._pool: Optional[cf.ProcessPoolExecutor] = None
        self._next_token = 0
        self._futures: Dict[cf.Future, int] = {}

    def _ensure_pool(self) -> cf.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = cf.ProcessPoolExecutor(max_workers=self._workers)
        return self._pool

    def submit(self, payload: tuple) -> int:
        token = self._next_token
        self._next_token += 1
        future = self._ensure_pool().submit(_supervised_call, payload)
        self._futures[future] = token
        return token

    def poll(self, timeout: float) -> List[Completion]:
        if not self._futures:
            return []
        done, _ = cf.wait(
            set(self._futures), timeout=timeout, return_when=cf.FIRST_COMPLETED
        )
        completions: List[Completion] = []
        for future in done:
            token = self._futures.pop(future)
            try:
                result = future.result()
            except BrokenProcessPool:
                completions.append(Completion(token=token, broken=True))
            except Exception as exc:  # noqa: BLE001 - chunk boundary
                completions.append(Completion(token=token, error=repr(exc)))
            else:
                completions.append(Completion(token=token, result=result))
        return completions

    def abandon(self, token: int) -> bool:
        for future, tok in list(self._futures.items()):
            if tok == token:
                if future.cancel():
                    del self._futures[future]
                    return True
                return False  # already running: only a pool restart helps
        return False

    def _kill_pool(self) -> None:
        """Tear the pool down hard, including hung worker processes."""
        pool = self._pool
        if pool is None:
            return
        try:
            processes = list(getattr(pool, "_processes", {}).values())
        except Exception:  # pragma: no cover - interpreter internals moved
            processes = []
        for proc in processes:
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - already dead
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except TypeError:  # pragma: no cover - cancel_futures needs 3.9
            pool.shutdown(wait=False)
        self._pool = None

    def restart(self) -> List[int]:
        lost = list(self._futures.values())
        self._futures.clear()
        self._kill_pool()
        return lost

    def close(self) -> None:
        self._futures.clear()
        self._kill_pool()


# --------------------------------------------------------------------------
# lease executor (multi-host-shaped pull model)
# --------------------------------------------------------------------------

_TASK_SUFFIX = ".task"
_DONE_SUFFIX = ".done"
_STOP_NAME = "STOP"
_CLAIM_POLL_S = 0.02


def _lease_worker_main(board: str) -> None:
    """Worker loop: lease the lowest posted task, run it, post the result.

    Claiming is an atomic ``rename`` from ``todo/`` into ``leases/``
    (suffixed with the worker pid so the coordinator can attribute an
    orphaned lease to a dead worker); results land in ``done/`` via
    write-to-temp-then-rename so the coordinator never reads a torn
    pickle.  The loop exits when the coordinator drops the ``STOP``
    flag or the board disappears.
    """
    todo = os.path.join(board, "todo")
    leases = os.path.join(board, "leases")
    done = os.path.join(board, "done")
    stop_flag = os.path.join(board, _STOP_NAME)
    pid = os.getpid()
    while not os.path.exists(stop_flag):
        claimed = None
        try:
            names = sorted(os.listdir(todo))
        except FileNotFoundError:
            return  # board torn down
        for name in names:
            if not name.endswith(_TASK_SUFFIX):
                continue
            lease_path = os.path.join(leases, f"{name}.{pid}")
            try:
                os.rename(os.path.join(todo, name), lease_path)
            except OSError:
                continue  # another worker won the claim
            claimed = (name, lease_path)
            break
        if claimed is None:
            time.sleep(_CLAIM_POLL_S)
            continue
        name, lease_path = claimed
        token = name[: -len(_TASK_SUFFIX)]
        try:
            with open(lease_path, "rb") as fh:
                payload = pickle.load(fh)
            outcome: Dict[str, Any] = {"ok": _supervised_call(payload)}
        except Exception as exc:  # noqa: BLE001 - chunk isolation boundary
            outcome = {"error": repr(exc)}
        tmp_path = os.path.join(done, f"{token}.tmp.{pid}")
        with open(tmp_path, "wb") as fh:
            pickle.dump(outcome, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, os.path.join(done, token + _DONE_SUFFIX))
        # Make the rename durable *before* releasing the lease: the
        # lease is the only evidence the chunk was claimed, so a host
        # crash after the lease is gone but before the done/ directory
        # entry hits stable storage would silently lose a completed
        # result (no orphan to detect, no done-file to deliver).
        fsync_dir(done)
        try:
            os.remove(lease_path)
        except OSError:  # pragma: no cover - coordinator raced a cleanup
            pass


class LeaseExecutor(Executor):
    """Workers lease chunks from an on-disk board next to the journal.

    The coordinator owns the board exclusively (``JournalLock`` on
    ``board.lock``); workers are long-lived processes that pull work.
    Self-healing: a worker that dies holding a lease is detected via
    its orphaned lease file, reported as one ``broken`` completion, and
    replaced — no other in-flight work is disturbed.
    """

    name = "lease"
    self_healing = True

    def __init__(self, workers: int, board_dir: Union[str, Path, None] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.capacity = workers
        self._workers = workers
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        if board_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-board-")
            board_dir = self._tmp.name
        self.board = Path(board_dir)
        self.board.mkdir(parents=True, exist_ok=True)
        for sub in ("todo", "leases", "done"):
            (self.board / sub).mkdir(exist_ok=True)
        # Single-coordinator discipline, enforced exactly like the
        # journal's: contenders get JournalLockedError (CLI exit 75).
        self._lock = JournalLock(self.board / "board")
        try:
            self._lock.acquire()
        except Exception:
            self._cleanup_tmp()
            raise
        stop_flag = self.board / _STOP_NAME
        if stop_flag.exists():  # board reused after a clean shutdown
            stop_flag.unlink()
        self._procs: List[Any] = []
        self._next_token = 0
        self._inflight: Dict[int, str] = {}  # token -> task file name
        self._closed = False

    # -- internals ---------------------------------------------------------

    def _cleanup_tmp(self) -> None:
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    def _spawn_worker(self) -> Any:
        import multiprocessing

        proc = multiprocessing.Process(
            target=_lease_worker_main, args=(str(self.board),), daemon=True
        )
        proc.start()
        return proc

    def _ensure_workers(self) -> None:
        while len(self._procs) < self._workers:
            self._procs.append(self._spawn_worker())

    def _task_name(self, token: int) -> str:
        return f"{token:08d}{_TASK_SUFFIX}"

    def _find_lease(self, token: int) -> Optional[Path]:
        prefix = self._task_name(token) + "."
        for entry in (self.board / "leases").iterdir():
            if entry.name.startswith(prefix):
                return entry
        return None

    @staticmethod
    def _lease_pid(lease: Path) -> Optional[int]:
        try:
            return int(lease.name.rsplit(".", 1)[-1])
        except ValueError:  # pragma: no cover - foreign file on the board
            return None

    # -- Executor interface ------------------------------------------------

    def submit(self, payload: tuple) -> int:
        self._ensure_workers()
        token = self._next_token
        self._next_token += 1
        name = self._task_name(token)
        tmp_path = self.board / "todo" / (name + ".tmp")
        with open(tmp_path, "wb") as fh:
            pickle.dump(payload, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, self.board / "todo" / name)
        self._inflight[token] = name
        return token

    def poll(self, timeout: float) -> List[Completion]:
        deadline = time.monotonic() + timeout
        while True:
            completions = self._poll_once()
            if completions or time.monotonic() >= deadline:
                return completions
            time.sleep(_CLAIM_POLL_S)

    def _poll_once(self) -> List[Completion]:
        completions: List[Completion] = []
        done_dir = self.board / "done"
        for entry in sorted(done_dir.iterdir()):
            if not entry.name.endswith(_DONE_SUFFIX):
                continue
            try:
                token = int(entry.name[: -len(_DONE_SUFFIX)])
            except ValueError:  # pragma: no cover - foreign file
                continue
            with open(entry, "rb") as fh:
                outcome = pickle.load(fh)
            entry.unlink()
            self._inflight.pop(token, None)
            if "ok" in outcome:
                completions.append(Completion(token=token, result=outcome["ok"]))
            else:
                completions.append(
                    Completion(token=token, error=outcome.get("error", "?"))
                )
        # Crash detection: a dead worker holding a lease orphans it.
        dead = [p for p in self._procs if not p.is_alive()]
        if dead:
            dead_pids = {p.pid for p in dead}
            for token in list(self._inflight):
                lease = self._find_lease(token)
                if lease is not None and self._lease_pid(lease) in dead_pids:
                    try:
                        lease.unlink()
                    except OSError:  # pragma: no cover - cleanup race
                        pass
                    self._inflight.pop(token, None)
                    completions.append(Completion(token=token, broken=True))
            self._procs = [p for p in self._procs if p.is_alive()]
            if not self._closed:
                self._ensure_workers()  # self-heal: replace the dead
        return completions

    def abandon(self, token: int) -> bool:
        name = self._inflight.get(token)
        if name is None:
            return False
        todo_path = self.board / "todo" / name
        try:
            todo_path.unlink()  # unclaimed: just withdraw the posting
        except OSError:
            pass
        else:
            self._inflight.pop(token, None)
            return True
        lease = self._find_lease(token)
        if lease is None:
            return False  # finished (or finishing): let poll() deliver it
        pid = self._lease_pid(lease)
        for proc in list(self._procs):
            if proc.pid == pid:
                proc.terminate()
                proc.join(timeout=2.0)
                if proc.is_alive():  # pragma: no cover - stuck in syscall
                    proc.kill()
                    proc.join(timeout=2.0)
                self._procs.remove(proc)
        try:
            lease.unlink()
        except OSError:  # pragma: no cover - worker died mid-cleanup
            pass
        self._inflight.pop(token, None)
        if not self._closed:
            self._ensure_workers()  # replace the killed worker
        return True

    def restart(self) -> List[int]:
        self._stop_workers()
        for sub in ("todo", "leases"):
            for entry in (self.board / sub).iterdir():
                try:
                    entry.unlink()
                except OSError:  # pragma: no cover - cleanup race
                    pass
        lost = list(self._inflight)
        self._inflight.clear()
        stop_flag = self.board / _STOP_NAME
        if stop_flag.exists():
            stop_flag.unlink()
        return lost

    def _stop_workers(self) -> None:
        (self.board / _STOP_NAME).touch()
        for proc in self._procs:
            proc.terminate()
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck in syscall
                proc.kill()
                proc.join(timeout=2.0)
        self._procs = []

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stop_workers()
        self._inflight.clear()
        self._lock.release()
        self._cleanup_tmp()


def make_executor(
    name: str,
    workers: int = 1,
    board_dir: Union[str, Path, None] = None,
    ttl: Optional[float] = None,
    spawn_workers: Optional[int] = None,
) -> Executor:
    """Build an executor by CLI name (``serial|pool|lease|fleet``).

    ``ttl`` and ``spawn_workers`` apply to the fleet backend only:
    ``ttl`` is the heartbeat-lease TTL and ``spawn_workers`` the number
    of local agent subprocesses to start (``None`` = ``workers``; pass
    ``0`` when external ``repro worker`` agents serve the board).
    """
    if name == "serial":
        return SerialExecutor()
    if name == "pool":
        return PoolExecutor(workers)
    if name == "lease":
        return LeaseExecutor(workers, board_dir=board_dir)
    if name == "fleet":
        from .fleet import DEFAULT_WORKER_TTL, FleetExecutor

        return FleetExecutor(
            workers,
            board_dir=board_dir,
            ttl=DEFAULT_WORKER_TTL if ttl is None else ttl,
            spawn_workers=spawn_workers,
        )
    raise ValueError(
        f"unknown executor {name!r}: expected one of {EXECUTOR_NAMES}"
    )
