"""Fleet runtime: detachable worker agents over heartbeat-leased boards.

The :class:`~repro.runtime.executors.LeaseExecutor` proved the pull
model on one host, but its orphan detection attributes a dead worker by
*local pid* — meaningless the moment a second machine attaches to the
board.  This module replaces pid-liveness with three host-independent
mechanisms:

* **heartbeat leases** — every worker registers
  ``workers/<worker-id>.hb`` on the board and renews it atomically
  (write-temp-then-rename) on an interval; the coordinator declares a
  worker dead when its heartbeat goes stale past the TTL.  No process
  handles, no pids, no shared kernel.
* **epoch fencing** — task and done filenames embed an epoch
  (``00000042.e0003.task``).  When a lease expires the coordinator
  re-posts the chunk under a bumped epoch; a *zombie* result from an
  earlier epoch (a worker that was merely partitioned, not dead) is
  rejected by filename alone — first-valid-epoch-wins, counted in
  ``repro.fleet.zombie_results_rejected``.  Rejection happens before
  the supervisor's journal hook, so journals stay bit-identical to a
  serial run (the same dedup-before-journal discipline as straggler
  speculation).
* **failure-domain quarantine** — a worker whose results fail
  ``bench_threshold`` consecutive times is *benched*: the coordinator
  writes ``workers/<id>.bench`` with a bounded-backoff readmission
  time, and the worker cooperatively stops claiming until it expires.

Two halves share the board protocol:

* :func:`worker_main` — the detachable agent behind ``repro worker
  --board DIR``.  Any host pointing at a shared directory (NFS, a
  synced mount) joins the fleet.  ``SIGTERM`` drains gracefully:
  finish the held lease, publish, deregister the heartbeat, exit 0.
* :class:`FleetExecutor` — the coordinator side, behind the standard
  :class:`~repro.runtime.executors.Executor` contract
  (``--executor fleet``).  With no external board it spawns local
  agent subprocesses, so the fleet path is exercised even on one
  machine.  If no worker heartbeats within a deadline it degrades
  *loudly* (ResilienceWarning + ``fleet_no_workers`` trace event) and
  drains the remaining chunks in-process, so an empty fleet delays a
  campaign but never hangs or fails it.

Determinism: chunk payloads carry their own spawned ``SeedSequence``
and results merge commutatively, so lease expiry, re-dispatch, zombie
rejection, and local-drain fallback cannot change an estimate — any
schedule that completes is bit-identical.

``repro doctor`` understands boards too: :func:`audit_board` reports
orphaned leases (stale heartbeats), torn ``*.tmp.*`` done-files,
epoch-mismatched entries, and leftover ``STOP`` flags;
:func:`repair_board` re-enqueues safely under a bumped epoch.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Union

from ..ioutil import fsync_dir
from ..obs import metrics as obs_metrics
from ..obs import trace
from .chaos import CHAOS_EXIT_CODE, ChaosSpec
from .executors import _CLAIM_POLL_S, _STOP_NAME, Completion, Executor, _supervised_call
from .integrity import JournalLock, probe_lock

#: Default worker heartbeat TTL (seconds): a lease whose worker has not
#: renewed its heartbeat for this long is declared expired.
DEFAULT_WORKER_TTL = 15.0

#: Consecutive failed chunks before a worker is benched.
DEFAULT_BENCH_THRESHOLD = 3

#: Bench backoff: ``base * 2**n`` seconds, capped at ``max``.
DEFAULT_BENCH_BASE_S = 1.0
DEFAULT_BENCH_MAX_S = 30.0

_TASK_RE = re.compile(r"^(\d{8})\.e(\d{4})\.task$")
_DONE_RE = re.compile(r"^(\d{8})\.e(\d{4})\.done$")
#: Lease names are ``<task-name>.<worker-id>``.
_LEASE_RE = re.compile(r"^(\d{8})\.e(\d{4})\.task\.(.+)$")
# Legacy (single-host LeaseExecutor) names: no epoch, pid-suffixed leases.
_LEGACY_TASK_RE = re.compile(r"^(\d{8})\.task$")
_LEGACY_DONE_RE = re.compile(r"^(\d{8})\.done$")
_LEGACY_LEASE_RE = re.compile(r"^(\d{8})\.task\.(\d+)$")
_HB_SUFFIX = ".hb"
_BENCH_SUFFIX = ".bench"

_WORKERS_DIRNAME = "workers"


def _task_name(token: int, epoch: int) -> str:
    return f"{token:08d}.e{epoch:04d}.task"


def _done_name(token: int, epoch: int) -> str:
    return f"{token:08d}.e{epoch:04d}.done"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):  # pragma: no cover - foreign owner
        return True
    return True


def _sanitize_worker_id(raw: str) -> str:
    return re.sub(r"[^A-Za-z0-9_-]", "-", raw) or "worker"


def default_worker_id() -> str:
    """Host-qualified worker identity (filename-safe)."""
    return _sanitize_worker_id(f"{socket.gethostname()}-{os.getpid()}")


def _atomic_json(path: Path, payload: Dict[str, Any]) -> None:
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(payload, sort_keys=True))
    os.replace(tmp, path)


def _ensure_board(board: Path) -> None:
    board.mkdir(parents=True, exist_ok=True)
    for sub in ("todo", "leases", "done", _WORKERS_DIRNAME):
        (board / sub).mkdir(exist_ok=True)


def _looks_like_board(path: Path) -> bool:
    """A directory with the lease-board layout (doctor dispatch).

    ``workers/`` is optional so legacy single-host :class:`LeaseExecutor`
    boards (todo/leases/done only) are recognized too.
    """
    return path.is_dir() and all(
        (path / sub).is_dir() for sub in ("todo", "leases", "done")
    )


# --------------------------------------------------------------------------
# worker agent
# --------------------------------------------------------------------------


class _Heartbeat:
    """Background renewal of ``workers/<id>.hb`` (atomic replace).

    ``pause()``/``resume()`` let chaos kinds simulate a frozen or
    partitioned worker: the process keeps running but its heartbeat
    goes stale, which is exactly what the coordinator keys expiry on.
    """

    def __init__(self, path: Path, interval: float, payload: Dict[str, Any]):
        self.path = path
        self.interval = interval
        self.payload = payload
        self._stop = threading.Event()
        self._paused = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)

    def beat(self) -> None:
        try:
            _atomic_json(self.path, self.payload)
        except OSError:  # board torn down under us; the loop will notice
            pass

    def start(self) -> None:
        self.beat()  # register synchronously before any claim
        self._thread.start()

    def pause(self) -> None:
        self._paused.set()

    def resume(self) -> None:
        self._paused.clear()
        self.beat()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)

    def deregister(self) -> None:
        try:
            os.remove(self.path)
        except OSError:
            pass

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            if not self._paused.is_set():
                self.beat()


def _bench_until(workers_dir: Path, worker_id: str) -> float:
    """Readmission time of this worker's bench file (0.0 = not benched)."""
    bench = workers_dir / (worker_id + _BENCH_SUFFIX)
    try:
        with open(bench, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        until = float(data.get("until", 0.0))
    except (OSError, ValueError):
        return 0.0
    if until <= time.time():
        try:
            os.remove(bench)  # served the sentence; readmit
        except OSError:
            pass
        return 0.0
    return until


def _await_fence(board: Path, token: int, epoch: int, timeout: float) -> None:
    """Block until a higher epoch of ``token`` is visible on the board.

    The ``zombie`` chaos kind uses this to deterministically sequence
    "declared dead -> re-dispatched -> stale result lands": the frozen
    worker holds its finished result until the coordinator has provably
    bumped the epoch, then publishes the zombie.
    """
    deadline = time.monotonic() + timeout
    prefix = f"{token:08d}.e"
    while time.monotonic() < deadline:
        for sub in ("todo", "leases", "done"):
            try:
                names = os.listdir(board / sub)
            except FileNotFoundError:
                return
            for name in names:
                if not name.startswith(prefix):
                    continue
                match = re.match(r"^\d{8}\.e(\d{4})", name)
                if match and int(match.group(1)) > epoch:
                    return
        time.sleep(_CLAIM_POLL_S)


def worker_main(
    board: Union[str, Path],
    *,
    worker_id: Optional[str] = None,
    ttl: float = DEFAULT_WORKER_TTL,
    backend: Optional[str] = None,
    max_chunks: Optional[int] = None,
    poll_s: float = _CLAIM_POLL_S,
    install_signals: bool = True,
) -> int:
    """Detachable fleet worker loop (the ``repro worker`` entry point).

    Claims the lowest-numbered posted task by atomic rename, runs it,
    publishes the result durably (write-temp, fsync, rename, fsync the
    ``done/`` directory), and only then releases the lease — a crash in
    any window leaves either the lease or the done-file as evidence.
    Exits when the board drops a ``STOP`` flag, ``SIGTERM`` arrives
    (graceful drain: the held lease is finished first), ``max_chunks``
    completes, or the board directory disappears.  Returns the number
    of chunks executed.

    ``backend`` (a resolved batch backend name) overrides the engine
    hint embedded in each payload — engines are execution hints, so a
    heterogeneous fleet still produces bit-identical results.
    """
    if ttl <= 0:
        raise ValueError(f"ttl must be positive, got {ttl}")
    board = Path(board)
    _ensure_board(board)
    wid = _sanitize_worker_id(worker_id) if worker_id else default_worker_id()
    workers_dir = board / _WORKERS_DIRNAME
    todo = board / "todo"
    leases = board / "leases"
    done = board / "done"
    stop_flag = board / _STOP_NAME

    draining = threading.Event()
    if install_signals:
        try:
            signal.signal(signal.SIGTERM, lambda *_: draining.set())
        except ValueError:  # pragma: no cover - not the main thread
            pass

    interval = min(max(ttl / 4.0, 0.05), ttl / 2.0)
    hb = _Heartbeat(
        workers_dir / (wid + _HB_SUFFIX),
        interval,
        {
            "schema": 1,
            "worker": wid,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "backend": backend,
            "ttl": ttl,
        },
    )
    hb.start()
    chunks_done = 0
    try:
        while not draining.is_set() and not stop_flag.exists():
            if max_chunks is not None and chunks_done >= max_chunks:
                break
            until = _bench_until(workers_dir, wid)
            if until > 0.0:
                time.sleep(max(0.0, min(max(poll_s, 0.01), until - time.time())))
                continue
            claimed = None
            try:
                names = sorted(os.listdir(todo))
            except FileNotFoundError:
                break  # board torn down
            for name in names:
                if _TASK_RE.match(name) is None:
                    continue
                lease_path = leases / f"{name}.{wid}"
                try:
                    os.rename(todo / name, lease_path)
                except OSError:
                    continue  # another worker won the claim
                claimed = (name, lease_path)
                break
            if claimed is None:
                time.sleep(poll_s)
                continue
            _run_leased_task(board, hb, wid, backend, ttl, *claimed)
            chunks_done += 1
    finally:
        hb.stop()
        hb.deregister()
    return chunks_done


def _run_leased_task(
    board: Path,
    hb: _Heartbeat,
    wid: str,
    backend: Optional[str],
    ttl: float,
    name: str,
    lease_path: Path,
) -> None:
    """Execute one claimed task and publish its outcome durably."""
    match = _TASK_RE.match(name)
    token, epoch = int(match.group(1)), int(match.group(2))
    done = board / "done"
    outcome: Dict[str, Any]
    frozen = False
    t_claim = time.monotonic()
    partition_s = 0.0
    zombie = False
    try:
        with open(lease_path, "rb") as fh:
            payload = pickle.load(fh)
        fn, chunk_index, attempt, chaos, args = payload
        if isinstance(chaos, ChaosSpec):
            # Fleet chaos fires here, keyed by (chunk, epoch): these
            # kinds manipulate the *worker agent* (death, frozen
            # heartbeats, delayed publication), which before_chunk —
            # running inside the chunk sandbox — cannot reach.
            if chaos.worker_kill_fires(chunk_index, epoch):
                os._exit(CHAOS_EXIT_CODE)
            hang_s = chaos.worker_hang_seconds(chunk_index, epoch)
            partition_s = chaos.partition_seconds(chunk_index, epoch)
            zombie = chaos.zombie_fires(chunk_index, epoch)
            frozen = hang_s > 0 or partition_s > 0 or zombie
            if frozen:
                hb.pause()  # SIGSTOP-like: alive but invisible
            if hang_s > 0:
                time.sleep(hang_s)
        if (
            backend is not None
            and isinstance(args, tuple)
            and args
            and isinstance(args[-1], str)
        ):
            args = args[:-1] + (backend,)
        outcome = {"ok": _supervised_call((fn, chunk_index, attempt, chaos, args))}
    except Exception as exc:  # noqa: BLE001 - chunk isolation boundary
        outcome = {"error": repr(exc)}
    outcome["worker"] = wid
    outcome["epoch"] = epoch
    if partition_s > 0:
        # Freeze board visibility for the full window: no heartbeat, no
        # publication, then let the (now stale-epoch) result land.
        remaining = partition_s - (time.monotonic() - t_claim)
        if remaining > 0:
            time.sleep(remaining)
    if zombie:
        _await_fence(board, token, epoch, timeout=max(10.0 * ttl, 2.0))
    tmp_path = done / f"{token:08d}.e{epoch:04d}.tmp.{wid}"
    try:
        with open(tmp_path, "wb") as fh:
            pickle.dump(outcome, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, done / _done_name(token, epoch))
        # Make the publication durable *before* dropping the lease: the
        # lease is the only evidence this chunk was claimed, so losing
        # the rename in a crash while the lease is already gone would
        # silently lose a completed result.
        fsync_dir(done)
    except OSError:  # pragma: no cover - board torn down mid-publish
        pass
    try:
        os.remove(lease_path)
    except OSError:  # coordinator expired the lease first; fine
        pass
    if frozen:
        hb.resume()


# --------------------------------------------------------------------------
# coordinator-side executor
# --------------------------------------------------------------------------


class FleetExecutor(Executor):
    """Heartbeat-leased fleet backend behind the ``Executor`` contract.

    Workers are anonymous peers that pull from the shared board; the
    coordinator never holds a process handle or a pid for them — every
    liveness decision reads heartbeat files, so the same code covers
    local subprocesses and agents on other machines.  ``spawn_workers``
    local agents are started when the board is private (no external
    fleet); pass ``spawn_workers=0`` to rely purely on externally
    started ``repro worker`` processes.
    """

    name = "fleet"
    self_healing = True

    def __init__(
        self,
        workers: int,
        board_dir: Union[str, Path, None] = None,
        *,
        ttl: float = DEFAULT_WORKER_TTL,
        spawn_workers: Optional[int] = None,
        empty_fleet_deadline: Optional[float] = None,
        bench_threshold: int = DEFAULT_BENCH_THRESHOLD,
        bench_base_s: float = DEFAULT_BENCH_BASE_S,
        bench_max_s: float = DEFAULT_BENCH_MAX_S,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        self.capacity = workers
        self._workers = workers
        self.ttl = ttl
        self._spawn_target = workers if spawn_workers is None else spawn_workers
        self._empty_deadline = (
            max(2.0 * ttl, 10.0)
            if empty_fleet_deadline is None
            else empty_fleet_deadline
        )
        self._bench_threshold = bench_threshold
        self._bench_base_s = bench_base_s
        self._bench_max_s = bench_max_s
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        if board_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-fleet-")
            board_dir = self._tmp.name
        self.board = Path(board_dir)
        _ensure_board(self.board)
        # Same single-coordinator discipline (and exit path) as the
        # lease board and the journal itself.
        self._lock = JournalLock(self.board / "board")
        try:
            self._lock.acquire()
        except Exception:
            self._cleanup_tmp()
            raise
        self._recover_board()
        self._procs: List[subprocess.Popen] = []
        self._spawn_seq = 0
        self._next_token = 0
        self._epochs: Dict[int, int] = {}  # token -> current (fenced) epoch
        self._payloads: Dict[int, bytes] = {}  # token -> pickled payload
        self._consec_fail: Dict[str, int] = {}
        self._bench_count: Dict[str, int] = {}
        self._no_worker_since: Optional[float] = None
        self._fleet_dead = False
        self._closed = False
        registry = obs_metrics.get_registry()
        # Pre-create the fleet metrics so snapshots always carry them,
        # zeros included (CI scrapes `zombie_results_rejected >= 0`).
        registry.gauge("repro.fleet.workers_alive").set(0)
        for counter in (
            "repro.fleet.lease_expiries",
            "repro.fleet.zombie_results_rejected",
            "repro.fleet.redispatch_epochs",
            "repro.fleet.workers_benched",
            "repro.fleet.empty_fleet_fallbacks",
        ):
            registry.counter(counter)

    # -- internals ---------------------------------------------------------

    def _cleanup_tmp(self) -> None:
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    def _recover_board(self) -> None:
        """Clear task state a crashed coordinator left behind.

        Token numbering restarts at 0 per coordinator, so stale todo /
        lease / done files from a previous run would otherwise alias
        this run's tokens.  Heartbeats are *not* touched — external
        workers attached to the board stay registered.
        """
        removed = 0
        stop_flag = self.board / _STOP_NAME
        if stop_flag.exists():
            stop_flag.unlink()
            removed += 1
        for sub in ("todo", "leases", "done"):
            for entry in (self.board / sub).iterdir():
                try:
                    entry.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - cleanup race
                    pass
        for entry in (self.board / _WORKERS_DIRNAME).iterdir():
            if entry.name.endswith(_BENCH_SUFFIX):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - cleanup race
                    pass
        if removed:
            trace.event(
                "fleet_board_recovered",
                board=str(self.board),
                files_removed=removed,
            )

    def _spawn_one(self) -> subprocess.Popen:
        self._spawn_seq += 1
        wid = f"local-{os.getpid()}-{self._spawn_seq}"
        env = dict(os.environ)
        src_dir = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                "--board",
                str(self.board),
                "--ttl",
                str(self.ttl),
                "--worker-id",
                wid,
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def _ensure_spawned(self) -> None:
        if self._closed or self._fleet_dead:
            return
        while len(self._procs) < self._spawn_target:
            self._procs.append(self._spawn_one())

    def _reap_spawned(self) -> None:
        """Replace spawned agents that exited (convenience management only).

        This is process babysitting for *locally spawned* agents — not
        failure detection.  A dead agent's in-flight lease is recovered
        by heartbeat expiry exactly as for a remote worker.
        """
        live = [p for p in self._procs if p.poll() is None]
        if len(live) != len(self._procs):
            self._procs = live
            self._ensure_spawned()

    def _post_task(self, token: int, epoch: int) -> None:
        name = _task_name(token, epoch)
        tmp_path = self.board / "todo" / (name + ".tmp")
        with open(tmp_path, "wb") as fh:
            fh.write(self._payloads[token])
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, self.board / "todo" / name)

    def _fresh_workers(self) -> Set[str]:
        """Worker ids with a heartbeat younger than the TTL."""
        fresh: Set[str] = set()
        now = time.time()
        workers_dir = self.board / _WORKERS_DIRNAME
        try:
            names = os.listdir(workers_dir)
        except FileNotFoundError:  # pragma: no cover - board torn down
            names = []
        for name in names:
            if not name.endswith(_HB_SUFFIX):
                continue
            try:
                age = now - os.stat(workers_dir / name).st_mtime
            except OSError:
                continue  # renewed (replaced) mid-scan
            if age <= self.ttl:
                fresh.add(name[: -len(_HB_SUFFIX)])
        obs_metrics.get_registry().gauge("repro.fleet.workers_alive").set(
            len(fresh)
        )
        return fresh

    def _drain_done(self) -> List[Completion]:
        completions: List[Completion] = []
        registry = obs_metrics.get_registry()
        done_dir = self.board / "done"
        for entry in sorted(done_dir.iterdir()):
            match = _DONE_RE.match(entry.name)
            if match is None:
                continue
            token, epoch = int(match.group(1)), int(match.group(2))
            try:
                with open(entry, "rb") as fh:
                    outcome = pickle.load(fh)
            except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
                # Done-files land by atomic rename, so this is corrupt
                # or foreign, not in-flight: discard it and re-dispatch
                # the chunk under a fresh epoch (recompute == replay).
                try:
                    entry.unlink()
                except OSError:  # pragma: no cover - cleanup race
                    pass
                if self._epochs.get(token) == epoch:
                    self._epochs[token] = epoch + 1
                    try:
                        self._post_task(token, epoch + 1)
                        registry.counter("repro.fleet.redispatch_epochs").inc()
                    except OSError:  # pragma: no cover - board torn down
                        pass
                continue
            entry.unlink()
            worker = outcome.get("worker", "?")
            if self._epochs.get(token) != epoch:
                # Zombie: the lease was declared expired and the chunk
                # re-dispatched under a bumped epoch (or abandoned /
                # restarted away).  First-valid-epoch-wins: the stale
                # result is rejected *before* any journal append.
                registry.counter("repro.fleet.zombie_results_rejected").inc()
                trace.event(
                    "fleet_zombie_rejected",
                    token=token,
                    epoch=epoch,
                    current_epoch=self._epochs.get(token),
                    worker=worker,
                )
                continue
            self._epochs.pop(token, None)
            self._payloads.pop(token, None)
            if "ok" in outcome:
                self._consec_fail[worker] = 0
                completions.append(Completion(token=token, result=outcome["ok"]))
            else:
                self._charge_worker_failure(worker)
                completions.append(
                    Completion(token=token, error=outcome.get("error", "?"))
                )
        return completions

    def _charge_worker_failure(self, worker: str) -> None:
        """Bench a failure domain after N consecutive failed chunks."""
        fails = self._consec_fail.get(worker, 0) + 1
        self._consec_fail[worker] = fails
        if fails < self._bench_threshold:
            return
        benched_before = self._bench_count.get(worker, 0)
        backoff = min(
            self._bench_max_s, self._bench_base_s * (2.0 ** benched_before)
        )
        self._bench_count[worker] = benched_before + 1
        self._consec_fail[worker] = 0
        bench = self.board / _WORKERS_DIRNAME / (worker + _BENCH_SUFFIX)
        try:
            _atomic_json(
                bench,
                {
                    "schema": 1,
                    "worker": worker,
                    "until": time.time() + backoff,
                    "backoff_s": backoff,
                    "consecutive_failures": fails,
                },
            )
        except OSError:  # pragma: no cover - board torn down
            return
        obs_metrics.get_registry().counter("repro.fleet.workers_benched").inc()
        trace.event(
            "fleet_worker_benched",
            worker=worker,
            backoff_s=backoff,
            consecutive_failures=fails,
        )

    def _expire_leases(self, fresh: Set[str]) -> None:
        """Re-dispatch chunks whose holder's heartbeat went stale."""
        registry = obs_metrics.get_registry()
        for entry in sorted((self.board / "leases").iterdir()):
            match = _LEASE_RE.match(entry.name)
            if match is None:
                continue
            token, epoch = int(match.group(1)), int(match.group(2))
            worker = match.group(3)
            if worker in fresh:
                continue
            # Stale heartbeat: declare the lease expired.  The holder
            # may be alive behind a partition — its eventual result is
            # fenced off by the epoch bump below.
            try:
                entry.unlink()
            except OSError:  # pragma: no cover - holder raced a cleanup
                continue
            if self._epochs.get(token) != epoch:
                continue  # already fenced (abandon/restart)
            registry.counter("repro.fleet.lease_expiries").inc()
            new_epoch = epoch + 1
            self._epochs[token] = new_epoch
            trace.event(
                "fleet_lease_expired",
                token=token,
                epoch=epoch,
                worker=worker,
                new_epoch=new_epoch,
            )
            try:
                self._post_task(token, new_epoch)
            except OSError:  # pragma: no cover - board torn down
                continue
            registry.counter("repro.fleet.redispatch_epochs").inc()

    def _maybe_local_drain(self, fresh: Set[str]) -> List[Completion]:
        """Empty-fleet degradation: loud, then drain chunks in-process.

        The campaign must complete even if no worker ever heartbeats
        (agents were never started, all crashed, or the shared mount is
        gone).  After ``empty_fleet_deadline`` seconds with outstanding
        work and zero fresh heartbeats, warn once and start executing
        pending chunks in the coordinator process — results are
        deterministic, so the degraded path is bit-identical.
        """
        if not self._epochs:
            self._no_worker_since = None
            return []
        if fresh and not self._fleet_dead:
            self._no_worker_since = None
            return []
        now = time.monotonic()
        if not self._fleet_dead:
            if self._no_worker_since is None:
                self._no_worker_since = now
                return []
            if now - self._no_worker_since < self._empty_deadline:
                return []
            self._fleet_dead = True
            obs_metrics.get_registry().counter(
                "repro.fleet.empty_fleet_fallbacks"
            ).inc()
            trace.event(
                "fleet_no_workers",
                board=str(self.board),
                deadline_s=self._empty_deadline,
                pending=len(self._epochs),
            )
            from .supervisor import ResilienceWarning

            warnings.warn(
                f"no fleet worker heartbeat within {self._empty_deadline:g}s "
                f"on {self.board}; draining the remaining chunks in-process",
                ResilienceWarning,
                stacklevel=4,
            )
        # One chunk per poll keeps the coordinator loop responsive (a
        # late-arriving fleet still gets the remaining work).
        token = min(self._epochs)
        epoch = self._epochs.pop(token)
        payload_bytes = self._payloads.pop(token)
        for name in (_task_name(token, epoch),):
            try:
                (self.board / "todo" / name).unlink()
            except OSError:
                pass  # claimed or already gone; epoch fencing covers it
        try:
            result = _supervised_call(pickle.loads(payload_bytes))
        except Exception as exc:  # noqa: BLE001 - chunk isolation boundary
            return [Completion(token=token, error=repr(exc))]
        return [Completion(token=token, result=result)]

    def _poll_once(self) -> List[Completion]:
        completions = self._drain_done()
        fresh = self._fresh_workers()
        self._expire_leases(fresh)
        self._reap_spawned()
        completions.extend(self._maybe_local_drain(fresh))
        return completions

    # -- Executor interface ------------------------------------------------

    def submit(self, payload: tuple) -> int:
        self._ensure_spawned()
        token = self._next_token
        self._next_token += 1
        self._payloads[token] = pickle.dumps(payload)
        self._epochs[token] = 0
        self._post_task(token, 0)
        return token

    def poll(self, timeout: float) -> List[Completion]:
        deadline = time.monotonic() + timeout
        while True:
            completions = self._poll_once()
            if completions or time.monotonic() >= deadline:
                return completions
            time.sleep(_CLAIM_POLL_S)

    def abandon(self, token: int) -> bool:
        epoch = self._epochs.get(token)
        if epoch is None:
            return False  # finished (or finishing): let poll() deliver it
        # Fence first: whatever lands for this token from now on is a
        # zombie.  Workers cannot be killed across hosts — eviction is
        # "your result will be rejected", which is all fencing needs.
        self._epochs.pop(token, None)
        self._payloads.pop(token, None)
        try:
            (self.board / "todo" / _task_name(token, epoch)).unlink()
        except OSError:
            pass
        for entry in list((self.board / "leases").iterdir()):
            match = _LEASE_RE.match(entry.name)
            if match is not None and int(match.group(1)) == token:
                try:
                    entry.unlink()
                except OSError:  # pragma: no cover - holder raced cleanup
                    pass
        return True

    def restart(self) -> List[int]:
        self._stop_spawned()
        for sub in ("todo", "leases", "done"):
            for entry in (self.board / sub).iterdir():
                try:
                    entry.unlink()
                except OSError:  # pragma: no cover - cleanup race
                    pass
        lost = list(self._epochs)
        self._epochs.clear()
        self._payloads.clear()
        stop_flag = self.board / _STOP_NAME
        if stop_flag.exists():
            stop_flag.unlink()
        return lost

    def _stop_spawned(self) -> None:
        """Drain locally spawned agents (external workers are untouched)."""
        if not self._procs:
            return
        stop_flag = self.board / _STOP_NAME
        stop_flag.touch()
        for proc in self._procs:
            try:
                proc.terminate()
            except OSError:  # pragma: no cover - already dead
                pass
        for proc in self._procs:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - hung agent
                proc.kill()
                proc.wait(timeout=5.0)
        self._procs = []
        try:
            stop_flag.unlink()
        except OSError:  # pragma: no cover - cleanup race
            pass

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stop_spawned()
        self._epochs.clear()
        self._payloads.clear()
        self._lock.release()
        self._cleanup_tmp()


# --------------------------------------------------------------------------
# doctor: board audit and repair
# --------------------------------------------------------------------------


def audit_board(
    path: Union[str, Path], *, ttl: float = DEFAULT_WORKER_TTL
) -> Dict[str, Any]:
    """Audit one fleet/lease board directory (machine-readable).

    Reports, without mutating anything: registered workers and their
    heartbeat ages, orphaned leases (holder's heartbeat stale or
    missing), torn ``*.tmp.*`` files, epoch-mismatched entries (a
    token present under more than one epoch — stale zombies), and a
    leftover ``STOP`` flag.  ``healthy`` is true when none of those
    defects are present.
    """
    board = Path(path)
    now = time.time()
    report: Dict[str, Any] = {
        "path": str(board),
        "kind": "board",
        "ttl": ttl,
        "workers": [],
        "counts": {},
        "orphaned_leases": [],
        "torn_tmp": [],
        "epoch_mismatches": [],
        "stop_flag": (board / _STOP_NAME).exists(),
        "lock": probe_lock(board / "board"),
    }
    fresh: Set[str] = set()
    workers_dir = board / _WORKERS_DIRNAME
    if workers_dir.is_dir():
        for entry in sorted(workers_dir.iterdir()):
            if entry.name.endswith(_HB_SUFFIX):
                try:
                    age = now - entry.stat().st_mtime
                except OSError:  # pragma: no cover - renewed mid-scan
                    continue
                worker = entry.name[: -len(_HB_SUFFIX)]
                is_fresh = age <= ttl
                if is_fresh:
                    fresh.add(worker)
                report["workers"].append(
                    {
                        "worker": worker,
                        "age_seconds": round(age, 3),
                        "fresh": is_fresh,
                        "benched": (
                            workers_dir / (worker + _BENCH_SUFFIX)
                        ).exists(),
                    }
                )
    max_epoch: Dict[int, int] = {}
    entries: List[tuple] = []  # (subdir, name, token, epoch)
    for sub, regex, legacy_regex in (
        ("todo", _TASK_RE, _LEGACY_TASK_RE),
        ("leases", _LEASE_RE, _LEGACY_LEASE_RE),
        ("done", _DONE_RE, _LEGACY_DONE_RE),
    ):
        sub_dir = board / sub
        names = sorted(os.listdir(sub_dir)) if sub_dir.is_dir() else []
        count = 0
        for name in names:
            if ".tmp." in name or name.endswith(".tmp"):
                report["torn_tmp"].append(f"{sub}/{name}")
                continue
            match = regex.match(name)
            if match is not None:
                count += 1
                token, epoch = int(match.group(1)), int(match.group(2))
                entries.append((sub, name, token, epoch))
                max_epoch[token] = max(max_epoch.get(token, 0), epoch)
                continue
            legacy = legacy_regex.match(name)
            if legacy is None:
                continue
            count += 1
            if sub == "leases":
                # Legacy pid-suffixed lease: single-host by construction,
                # so local pid liveness is the right (and only) signal.
                pid = int(legacy.group(2))
                if not _pid_alive(pid):
                    report["orphaned_leases"].append(
                        {"entry": f"leases/{name}", "worker": f"pid:{pid}"}
                    )
        report["counts"][sub] = count
    for sub, name, token, epoch in entries:
        if epoch < max_epoch[token]:
            report["epoch_mismatches"].append(
                {
                    "entry": f"{sub}/{name}",
                    "epoch": epoch,
                    "current_epoch": max_epoch[token],
                }
            )
        if sub == "leases":
            holder = _LEASE_RE.match(name).group(3)
            if holder not in fresh:
                report["orphaned_leases"].append(
                    {"entry": f"leases/{name}", "worker": holder}
                )
    report["coordinator_attached"] = bool(report["lock"].get("held"))
    report["healthy"] = not (
        report["orphaned_leases"]
        or report["torn_tmp"]
        or report["epoch_mismatches"]
        or (report["stop_flag"] and not locked)
    )
    return report


def repair_board(
    path: Union[str, Path], *, ttl: float = DEFAULT_WORKER_TTL
) -> Dict[str, Any]:
    """Heal a board: re-enqueue orphans safely, sweep torn/stale files.

    Orphaned leases are renamed back into ``todo/`` under a *bumped*
    epoch, so a not-actually-dead holder that later publishes is
    rejected as a zombie rather than double-counted.  Torn ``*.tmp.*``
    staging files, epoch-stale entries, expired heartbeats/benches, and
    a leftover ``STOP`` flag are removed.  Refuses to touch a board
    whose coordinator lock is held by a live process.
    """
    board = Path(path)
    actions: List[str] = []
    lock_state = probe_lock(board / "board")
    if bool(lock_state.get("held")):
        return {
            "path": str(board),
            "skipped": "coordinator holds the board lock",
            "actions": [],
        }
    audit = audit_board(board, ttl=ttl)
    for item in audit["orphaned_leases"]:
        sub, name = item["entry"].split("/", 1)
        match = _LEASE_RE.match(name)
        if match is not None:
            token, epoch = int(match.group(1)), int(match.group(2))
            target = board / "todo" / _task_name(token, epoch + 1)
        else:
            legacy = _LEGACY_LEASE_RE.match(name)
            if legacy is None:  # pragma: no cover - audit only emits matches
                continue
            target = board / "todo" / f"{int(legacy.group(1)):08d}.task"
        try:
            os.replace(board / sub / name, target)
            actions.append(f"re-enqueued {item['entry']} as todo/{target.name}")
        except OSError:  # pragma: no cover - raced an attaching coordinator
            continue
    # Re-audit epochs after the bumps so freshly re-enqueued epochs win.
    audit = audit_board(board, ttl=ttl)
    for entry in audit["torn_tmp"]:
        try:
            (board / entry).unlink()
            actions.append(f"removed torn {entry}")
        except OSError:  # pragma: no cover - cleanup race
            pass
    for item in audit["epoch_mismatches"]:
        try:
            (board / item["entry"]).unlink()
            actions.append(f"removed stale-epoch {item['entry']}")
        except OSError:  # pragma: no cover - cleanup race
            pass
    workers_dir = board / _WORKERS_DIRNAME
    if workers_dir.is_dir():
        now = time.time()
        for entry in sorted(workers_dir.iterdir()):
            stale_hb = entry.name.endswith(_HB_SUFFIX) and (
                now - entry.stat().st_mtime > ttl
            )
            if stale_hb or entry.name.endswith(_BENCH_SUFFIX):
                try:
                    entry.unlink()
                    actions.append(f"removed {_WORKERS_DIRNAME}/{entry.name}")
                except OSError:  # pragma: no cover - cleanup race
                    pass
    stop_flag = board / _STOP_NAME
    if stop_flag.exists():
        try:
            stop_flag.unlink()
            actions.append("removed leftover STOP flag")
        except OSError:  # pragma: no cover - cleanup race
            pass
    return {"path": str(board), "actions": actions}


__all__ = [
    "DEFAULT_WORKER_TTL",
    "FleetExecutor",
    "audit_board",
    "default_worker_id",
    "repair_board",
    "worker_main",
]
