"""Reed-Solomon coding substrate.

Public surface:

* :class:`~repro.rs.codec.RSCode` — systematic encoder + errors-and-erasures
  decoder for RS(n, k) over GF(2^m).
* :class:`~repro.rs.codec.DecodeResult`, :class:`~repro.rs.codec.RSDecodingError`.
* :mod:`~repro.rs.complexity` — decoder latency/area models of paper §6.
"""

from .area import DecoderArea, decoder_area, linearity_check
from .batch import BatchDecodeReport, BatchRSCodec
from .codec import DecodeResult, RSCode, RSDecodingError
from .euclid import berlekamp_euclid_agree, euclid_key_equation
from .interleave import (
    BlockInterleaver,
    decode_interleaved,
    encode_interleaved,
    max_correctable_burst,
)
from .weights import (
    decoding_sphere_fraction,
    mds_weight_distribution,
    miscorrection_probability_beyond_capability,
    undetected_error_probability,
)
from .pipeline import (
    DecoderTiming,
    decode_time_seconds,
    decoder_timing,
    validate_paper_formula,
)
from .complexity import (
    ArrangementCost,
    arrangement_cost,
    decoder_area_gates,
    decoding_time_cycles,
    paper_comparison,
)

__all__ = [
    "RSCode",
    "DecodeResult",
    "RSDecodingError",
    "BatchRSCodec",
    "BatchDecodeReport",
    "ArrangementCost",
    "arrangement_cost",
    "decoder_area_gates",
    "decoding_time_cycles",
    "paper_comparison",
    "DecoderTiming",
    "decoder_timing",
    "decode_time_seconds",
    "validate_paper_formula",
    "DecoderArea",
    "decoder_area",
    "linearity_check",
    "mds_weight_distribution",
    "decoding_sphere_fraction",
    "undetected_error_probability",
    "miscorrection_probability_beyond_capability",
    "BlockInterleaver",
    "encode_interleaved",
    "decode_interleaved",
    "max_correctable_burst",
    "euclid_key_equation",
    "berlekamp_euclid_agree",
]
