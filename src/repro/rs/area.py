"""Gate-level area derivation for the RS decoder (paper Section 6).

The paper cites "almost linearly dependent on m and the number of check
symbols n-k" for decoder area without structure.  This module derives
gate counts from the actual arithmetic:

* a **constant-coefficient GF(2^m) multiplier** (used in syndrome cells
  and Chien search, one fixed alpha-power each) is a pure XOR network;
  its exact XOR count is the number of ones in the m x m boolean
  multiplication matrix minus m (one per output column with at least one
  term) — computed here exactly from the field's reduction polynomial;
* a **general GF(2^m) multiplier** (key-equation datapath) in Mastrovito
  form costs ``m^2`` AND gates plus an XOR tree whose exact size is again
  derived from the reduction matrix;
* block counts follow the standard architecture: ``n-k`` syndrome cells,
  ``n-k+1``-tap Chien evaluator, a key-equation solver with a handful of
  general multipliers, and the Forney magnitude unit.

The headline check (tests + bench): summed across blocks the structural
count is *linear in m·(n-k) to within a few percent* over the paper's
configurations — i.e. Section 6's area model drops out of the gate-level
build instead of being assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..gf import GF2m

#: General multipliers in the key-equation (Berlekamp-Massey) datapath:
#: discrepancy multiplier, scaling multiplier, update multiplier per
#: serialized lane.
_KE_GENERAL_MULTIPLIERS = 3
#: General multipliers + one inversion (realized as multiplier chains)
#: in the Forney magnitude evaluator.
_FORNEY_GENERAL_MULTIPLIERS = 4
#: Flip-flops are counted separately; gate-equivalents per FF for the
#: single aggregate figure.
_GATES_PER_FF = 6


def _multiplication_matrix_ones(gf: GF2m, constant: int) -> int:
    """Ones in the boolean matrix of ``x -> constant * x`` over GF(2)^m.

    Column ``j`` of the matrix is ``constant * alpha_basis_j`` i.e. the
    product of the constant with basis element ``2^j``.
    """
    ones = 0
    for j in range(gf.m):
        column = gf.mul(constant, 1 << j)
        ones += bin(column).count("1")
    return ones


def constant_multiplier_xor_count(gf: GF2m, constant: int) -> int:
    """Exact XOR gates of a constant-coefficient multiplier.

    Each of the m output bits is the XOR of the matrix ones in its row;
    a row with ``r`` ones costs ``r - 1`` XORs (0 for empty rows).
    """
    if constant == 0:
        return 0
    rows = [0] * gf.m
    for j in range(gf.m):
        column = gf.mul(constant, 1 << j)
        for i in range(gf.m):
            if column >> i & 1:
                rows[i] += 1
    return sum(max(0, r - 1) for r in rows)


def general_multiplier_gates(gf: GF2m) -> Dict[str, int]:
    """AND/XOR counts of a Mastrovito general multiplier.

    ``m^2`` partial products (AND), then the polynomial product's
    ``(m-1)^2`` combination XORs plus the reduction network, whose exact
    XOR count comes from the ones in the reduction rows of ``x^m ..
    x^{2m-2}`` modulo the primitive polynomial.
    """
    m = gf.m
    ands = m * m
    xors = (m - 1) ** 2  # polynomial-product accumulation
    for e in range(m, 2 * m - 1):
        # reduction of x^e: alpha^e expressed in the basis
        xors += bin(gf.exp(e)).count("1")
    return {"and": ands, "xor": xors}


@dataclass(frozen=True)
class DecoderArea:
    """Structural gate/FF inventory of one RS(n, k) decoder."""

    n: int
    k: int
    m: int
    syndrome_gates: int
    key_equation_gates: int
    chien_forney_gates: int
    flipflops: int

    @property
    def combinational_gates(self) -> int:
        return (
            self.syndrome_gates
            + self.key_equation_gates
            + self.chien_forney_gates
        )

    @property
    def gate_equivalents(self) -> float:
        """Single aggregate figure including storage."""
        return self.combinational_gates + _GATES_PER_FF * self.flipflops


def decoder_area(n: int, k: int, m: int = 8) -> DecoderArea:
    """Build the structural area inventory for an RS(n, k) decoder."""
    if not 0 < k < n:
        raise ValueError(f"need 0 < k < n, got n={n}, k={k}")
    gf = GF2m(m)
    nsym = n - k
    t = nsym // 2

    # syndrome block: one constant multiplier (alpha^(fcr+j)) + m-bit XOR
    # accumulator per syndrome
    syndrome = 0
    for j in range(nsym):
        syndrome += constant_multiplier_xor_count(gf, gf.exp(1 + j)) + m
    syndrome_ffs = nsym * m

    # key equation: general multipliers + m-bit registers for the locator
    # and scratch polynomials (degree <= t each, plus the B polynomial)
    gm = general_multiplier_gates(gf)
    key_equation = _KE_GENERAL_MULTIPLIERS * (gm["and"] + gm["xor"])
    key_equation_ffs = (2 * (t + 1) + (nsym + 1)) * m

    # Chien: one constant multiplier + register per locator coefficient;
    # Forney: general multipliers for the magnitude evaluation
    chien = 0
    for j in range(t + 1):
        chien += constant_multiplier_xor_count(gf, gf.exp(j)) + m
    forney = _FORNEY_GENERAL_MULTIPLIERS * (gm["and"] + gm["xor"])
    chien_forney_ffs = (t + 1) * m + n * m  # locator regs + word buffer

    return DecoderArea(
        n=n,
        k=k,
        m=m,
        syndrome_gates=syndrome,
        key_equation_gates=key_equation,
        chien_forney_gates=chien + forney,
        flipflops=syndrome_ffs + key_equation_ffs + chien_forney_ffs,
    )


def linearity_check(m: int = 8, k: int = 16, t_values=(1, 2, 4, 6, 8, 10)) -> float:
    """Max relative deviation of gate_equivalents from a linear fit in n-k.

    Quantifies the paper's "almost linearly dependent on ... n - k"
    claim over a family RS(k + 2t, k): returns the worst-case relative
    residual of the least-squares line.
    """
    import numpy as np

    nsyms = np.array([2 * t for t in t_values], dtype=float)
    areas = np.array(
        [decoder_area(k + 2 * t, k, m).gate_equivalents for t in t_values]
    )
    coeffs = np.polyfit(nsyms, areas, 1)
    fit = np.polyval(coeffs, nsyms)
    return float(np.max(np.abs(areas - fit) / areas))
