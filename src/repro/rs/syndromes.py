"""Syndrome computation for Reed-Solomon decoding.

For a received word ``r(x)`` of an RS(n, k) code whose generator has roots
``alpha^fcr .. alpha^(fcr + n - k - 1)``, the syndromes are

    S_j = r(alpha^(fcr + j)),   j = 0 .. n-k-1.

A received word is a codeword iff every syndrome is zero.  The *Forney
syndromes* fold known erasure locations out of the ordinary syndromes so
that a plain (erasure-unaware) Berlekamp-Massey pass can recover the
locator of the remaining unknown errors.
"""

from __future__ import annotations

from typing import List, Sequence

from ..gf import GF2m, poly


def compute_syndromes(
    gf: GF2m, received: Sequence[int], nsym: int, fcr: int = 1
) -> List[int]:
    """Return the ``nsym`` syndromes of ``received``.

    ``received`` holds the codeword coefficients in ascending power order
    (position p is the coefficient of ``x^p``).
    """
    return [poly.eval_at(gf, received, gf.exp(fcr + j)) for j in range(nsym)]


def erasure_locator(gf: GF2m, erasure_positions: Sequence[int]) -> List[int]:
    """Build the erasure locator ``Gamma(x) = prod_l (1 - alpha^{p_l} x)``.

    ``erasure_positions`` are codeword positions (coefficient indices).
    Returns the polynomial in ascending order; ``[1]`` for no erasures.
    """
    gamma: List[int] = [1]
    for p in erasure_positions:
        # multiply by (1 + alpha^p x)  (characteristic 2: minus == plus)
        gamma = poly.mul(gf, gamma, [1, gf.exp(p)])
    return gamma


def forney_syndromes(
    gf: GF2m, syndromes: Sequence[int], erasure_positions: Sequence[int]
) -> List[int]:
    """Fold erasures out of the syndromes.

    Computes the modified syndrome polynomial
    ``Xi(x) = Gamma(x) * S(x) mod x^nsym`` and returns its upper
    coefficients ``T_j = Xi_{j + rho}`` for ``j = 0 .. nsym - rho - 1``,
    where ``rho`` is the erasure count.  Running plain Berlekamp-Massey on
    ``T`` yields the locator of the unknown errors only.
    """
    nsym = len(syndromes)
    rho = len(erasure_positions)
    if rho == 0:
        return list(syndromes)
    if rho >= nsym:
        return []
    gamma = erasure_locator(gf, erasure_positions)
    xi = poly.mul(gf, gamma, list(syndromes))
    xi = (xi + [0] * nsym)[:nsym]
    return xi[rho:nsym]
