"""Block interleaving of RS codewords for burst protection.

Storage systems spread codewords across the medium so that a physical
*burst* (a damaged row, a failed column driver, a scratch) lands as a few
symbols in each of many codewords rather than many symbols in one.  A
depth-``D`` block interleaver writes ``D`` codewords column-wise:

    stream position  p  holds  codeword (p mod D), symbol (p // D)

so a burst of ``L`` consecutive stream symbols corrupts at most
``ceil(L / D)`` symbols of any one codeword — decodable whenever
``ceil(L / D) <= t``.  :func:`max_correctable_burst` inverts that bound,
and the interleaver round-trips through the real codec in the tests.
"""

from __future__ import annotations

from typing import List, Sequence

from .codec import RSCode


class BlockInterleaver:
    """Depth-``D`` symbol interleaver over fixed-length codewords."""

    def __init__(self, depth: int, codeword_length: int):
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if codeword_length < 1:
            raise ValueError("codeword length must be positive")
        self.depth = depth
        self.n = codeword_length

    @property
    def block_symbols(self) -> int:
        """Stream symbols in one interleaved block."""
        return self.depth * self.n

    def interleave(self, codewords: Sequence[Sequence[int]]) -> List[int]:
        """Merge ``depth`` codewords column-wise into one stream block."""
        if len(codewords) != self.depth:
            raise ValueError(
                f"expected {self.depth} codewords, got {len(codewords)}"
            )
        for cw in codewords:
            if len(cw) != self.n:
                raise ValueError("codeword length mismatch")
        stream = [0] * self.block_symbols
        for symbol in range(self.n):
            for lane in range(self.depth):
                stream[symbol * self.depth + lane] = codewords[lane][symbol]
        return stream

    def deinterleave(self, stream: Sequence[int]) -> List[List[int]]:
        """Split a stream block back into its ``depth`` codewords."""
        if len(stream) != self.block_symbols:
            raise ValueError(
                f"expected {self.block_symbols} symbols, got {len(stream)}"
            )
        codewords = [[0] * self.n for _ in range(self.depth)]
        for symbol in range(self.n):
            for lane in range(self.depth):
                codewords[lane][symbol] = stream[symbol * self.depth + lane]
        return codewords

    def codewords_touched_by_burst(self, start: int, length: int) -> dict:
        """``{lane: symbols corrupted}`` for a stream burst."""
        if length < 0 or not 0 <= start < self.block_symbols:
            raise ValueError("burst outside the block")
        touched: dict = {}
        for p in range(start, min(start + length, self.block_symbols)):
            lane = p % self.depth
            touched[lane] = touched.get(lane, 0) + 1
        return touched


def max_correctable_burst(code: RSCode, depth: int) -> int:
    """Longest stream burst every lane survives: ``depth * t + extra``.

    A burst of length ``L`` puts at most ``ceil(L / depth)`` errors in
    one codeword; the largest ``L`` with ``ceil(L / depth) <= t`` is
    ``depth * t``.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    return depth * code.t


def encode_interleaved(
    code: RSCode, datawords: Sequence[Sequence[int]], depth: int
) -> List[int]:
    """Encode ``depth`` datawords and interleave them into one block."""
    interleaver = BlockInterleaver(depth, code.n)
    return interleaver.interleave([code.encode(d) for d in datawords])


def decode_interleaved(
    code: RSCode, stream: Sequence[int], depth: int
) -> List[List[int]]:
    """De-interleave and decode every lane; raises on any lane failure."""
    interleaver = BlockInterleaver(depth, code.n)
    return [
        code.decode(cw).data for cw in interleaver.deinterleave(stream)
    ]
