"""Batch Reed-Solomon codec: vectorized encode + syndrome-gated decode.

:class:`BatchRSCodec` processes whole ``(B, k)``/``(B, n)`` ndarrays of
words through the same RS(n, k) code as the scalar :class:`~repro.rs.codec.RSCode`,
with a strict bit-identity contract enforced by the differential suite in
``tests/test_batch_differential.py``:

* ``encode_batch`` runs the systematic LFSR division across the batch
  dimension — ``k`` vectorized steps instead of ``B`` polynomial
  divisions — and is symbol-identical to ``RSCode.encode`` per row.
* ``decode_batch`` computes all syndromes in one vectorized Horner pass
  (:meth:`~repro.gf.batch.BatchGF.poly_eval_batch`).  Words whose
  syndromes are all zero take the *clean fast path*: they are returned
  immediately with the exact :class:`~repro.rs.codec.DecodeResult` the
  scalar decoder would produce.  Dirty words — and only dirty words —
  fall back to the trusted scalar errors-and-erasures pipeline, so every
  correction, every mis-correction and every
  :class:`~repro.rs.codec.RSDecodingError` is produced by the same code
  path the rest of the repo validates against the paper.

That split is the performance contract of the whole batch layer: in the
memory-reliability regimes of the paper almost every stored word is
clean at read time, so the hot loop is "compute syndromes, prove the
word clean" — which vectorizes perfectly — while the rare dirty word
pays the scalar price it always paid.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Union

import numpy as np

from ..gf.batch import BatchGF, batch_field
from ..perf import PerfCounters
from .codec import DecodeResult, RSCode, RSDecodingError

#: A per-word decode outcome: the scalar result, or the decoding error
#: the scalar pipeline raised for that word.
WordOutcome = Union[DecodeResult, RSDecodingError]


class BatchDecodeReport:
    """Outcome of one ``decode_batch`` call.

    Clean words (all syndromes zero) are *proved* clean during
    ``decode_batch`` but their :class:`DecodeResult` objects are built
    lazily on first access — proving a 4096-word batch clean is a pure
    array operation, and most bulk consumers (the Monte-Carlo engine,
    throughput benchmarks) never need per-word result objects for clean
    words.  Dirty words were decoded eagerly by the scalar pipeline; the
    laziness never changes *what* any index returns, only when the clean
    words' result objects get allocated.

    Attributes
    ----------
    ok: boolean mask of words that decoded successfully.
    clean: boolean mask of words that took the all-zero-syndrome fast
        path (a subset of ``ok``).
    results: per-word outcomes, index-aligned with the input batch; each
        entry is a :class:`DecodeResult` or the :class:`RSDecodingError`
        raised for that word (materialized on first access).
    """

    def __init__(
        self,
        ok: np.ndarray,
        clean: np.ndarray,
        received: np.ndarray,
        erasure_counts: List[int],
        fallback: dict,
        nsym: int,
    ):
        self.ok = ok
        self.clean = clean
        self._received = received
        self._erasure_counts = erasure_counts
        self._fallback = fallback
        self._nsym = nsym
        self._results: Optional[List[WordOutcome]] = None

    def _materialize(self, idx: int) -> WordOutcome:
        if idx in self._fallback:
            return self._fallback[idx]
        row = self._received[idx].tolist()
        return DecodeResult(
            data=row[self._nsym :],
            codeword=row,
            num_errors=0,
            num_erasures=self._erasure_counts[idx],
            corrected=False,
        )

    @property
    def results(self) -> List[WordOutcome]:
        if self._results is None:
            self._results = [
                self._materialize(i) for i in range(len(self.ok))
            ]
        return self._results

    def __len__(self) -> int:
        return len(self.ok)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, idx: int) -> WordOutcome:
        if self._results is not None:
            return self._results[idx]
        if not -len(self.ok) <= idx < len(self.ok):
            raise IndexError(idx)
        return self._materialize(idx % len(self.ok))

    @property
    def num_clean(self) -> int:
        return int(self.clean.sum())

    @property
    def num_fallback(self) -> int:
        return len(self.ok) - self.num_clean

    @property
    def num_failures(self) -> int:
        return len(self.ok) - int(self.ok.sum())

    def result(self, idx: int) -> DecodeResult:
        """The :class:`DecodeResult` at ``idx``, re-raising its error."""
        out = self[idx]
        if isinstance(out, RSDecodingError):
            raise out
        return out

    def data_rows(self) -> List[Optional[List[int]]]:
        """Per-word recovered data (``None`` where decoding failed)."""
        return [
            None if isinstance(r, RSDecodingError) else r.data
            for r in self.results
        ]


class BatchRSCodec:
    """Batch-mode systematic RS(n, k) codec over GF(2^m).

    Parameters mirror :class:`RSCode`; a prebuilt scalar codec may be
    supplied to guarantee both views share one generator/field.  An
    optional :class:`~repro.perf.PerfCounters` records words encoded,
    words decoded, fast-path hits, scalar fallbacks, and kernel busy
    time (``kernel_seconds``).

    This class is also the ``numpy`` engine of the backend registry
    (:mod:`repro.rs.backends`).  The *validation, counter, fast-path and
    scalar-fallback logic* lives here and is shared by every engine;
    subclasses override only the two kernel hooks —
    :meth:`_parity_kernel` and :meth:`_syndromes_kernel` — with their
    own arithmetic (pure-python loops for the ``scalar`` engine,
    bit-sliced jitted kernels for ``compiled``).  Because both hooks
    compute exact field arithmetic, every engine is bit-identical by
    construction; the conformance suite and the ``rs-compiled-*``
    differential targets enforce it.
    """

    #: Registry name of this engine; subclasses override.
    backend_name = "numpy"

    def __init__(
        self,
        n: int,
        k: int,
        m: int = 8,
        fcr: int = 1,
        key_solver: str = "bm",
        scalar: Optional[RSCode] = None,
        counters: Optional[PerfCounters] = None,
    ):
        if scalar is None:
            scalar = RSCode(n, k, m=m, fcr=fcr, key_solver=key_solver)
        elif (scalar.n, scalar.k, scalar.m, scalar.fcr) != (n, k, m, fcr):
            raise ValueError(
                f"supplied scalar codec {scalar!r} does not match "
                f"(n={n}, k={k}, m={m}, fcr={fcr})"
            )
        self.scalar = scalar
        self.n = n
        self.k = k
        self.m = m
        self.fcr = fcr
        self.nsym = scalar.nsym
        self.t = scalar.t
        self.bgf: BatchGF = batch_field(m, scalar.gf.prim_poly)
        self.counters = counters
        # Generator tail g[0..nsym-1] (g is monic of degree nsym) drives the
        # vectorized LFSR encode step.
        self._gen_tail = np.asarray(scalar.generator[: self.nsym], dtype=np.int64)
        # Syndrome evaluation points alpha^fcr .. alpha^(fcr+nsym-1).
        self._synd_points = np.asarray(
            [scalar.gf.exp(fcr + j) for j in range(self.nsym)], dtype=np.int64
        )

    # -- kernel hooks --------------------------------------------------------

    def _parity_kernel(self, data: np.ndarray) -> np.ndarray:
        """``(B, nsym)`` parity of a validated ``(B, k)`` data batch.

        The numpy engine runs the systematic LFSR division across the
        batch dimension — ``k`` vectorized steps instead of ``B``
        polynomial divisions.
        """
        B = data.shape[0]
        parity = np.zeros((B, self.nsym), dtype=np.int64)
        for j in range(self.k - 1, -1, -1):
            feedback = data[:, j] ^ parity[:, -1]
            shifted = np.empty_like(parity)
            shifted[:, 1:] = parity[:, :-1]
            shifted[:, 0] = 0
            parity = shifted ^ self.bgf.mul(
                feedback[:, np.newaxis], self._gen_tail[np.newaxis, :]
            )
        return parity

    def _syndromes_kernel(self, rec: np.ndarray) -> np.ndarray:
        """``(B, nsym)`` syndromes of a validated ``(B, n)`` batch."""
        return self.bgf.poly_eval_batch(rec, self._synd_points)

    def _timed_kernel(self, kernel, *args) -> np.ndarray:
        """Run a kernel hook, accounting busy time to ``kernel_seconds``."""
        if self.counters is None:
            return kernel(*args)
        t0 = time.perf_counter()
        try:
            return kernel(*args)
        finally:
            self.counters.kernel_seconds += time.perf_counter() - t0

    # -- encoding -----------------------------------------------------------

    def encode_batch(self, words: Sequence[Sequence[int]]) -> np.ndarray:
        """Systematically encode a ``(B, k)`` batch into ``(B, n)`` codewords.

        Row-identical to ``RSCode.encode``: data lands unchanged in
        positions ``n-k ..``, parity in ``0 .. n-k-1``.
        """
        data = self.bgf.validate_elements(np.atleast_2d(np.asarray(words)))
        if data.ndim != 2 or (data.size and data.shape[1] != self.k):
            raise ValueError(
                f"expected a (B, {self.k}) batch, got shape {data.shape}"
            )
        B = data.shape[0]
        if B == 0:
            return np.zeros((0, self.n), dtype=np.int64)
        parity = self._timed_kernel(self._parity_kernel, data)
        out = np.concatenate([parity, data], axis=1)
        if self.counters is not None:
            self.counters.words_encoded += B
        return out

    # -- syndromes ----------------------------------------------------------

    def syndromes_batch(self, received: Sequence[Sequence[int]]) -> np.ndarray:
        """``(B, nsym)`` syndrome matrix of a ``(B, n)`` received batch.

        Inputs are range-checked like every other entry point: a word
        containing values outside ``[0, 2^m)`` — e.g. a full-length
        n=255 byte batch handed over as a *signed* ``int8`` array, whose
        values >= 128 silently wrapped negative — used to flow into the
        log-table gather, where numpy's negative indexing made it a
        silently *wrong* syndrome instead of an error.  A wrong syndrome
        can prove a dirty word "clean", which is the worst possible
        failure mode for the fast path; now it raises ``ValueError``.
        """
        rec = self.bgf.validate_elements(np.atleast_2d(np.asarray(received)))
        if rec.ndim != 2 or (rec.size and rec.shape[1] != self.n):
            raise ValueError(
                f"expected a (B, {self.n}) batch, got shape {rec.shape}"
            )
        if rec.shape[0] == 0:
            return np.zeros((0, self.nsym), dtype=np.int64)
        return self._timed_kernel(self._syndromes_kernel, rec)

    def is_codeword_mask(self, received: Sequence[Sequence[int]]) -> np.ndarray:
        """Boolean mask of rows whose syndromes are all zero."""
        return np.all(self.syndromes_batch(received) == 0, axis=1)

    # -- decoding -----------------------------------------------------------

    def decode_batch(
        self,
        received: Sequence[Sequence[int]],
        erasure_positions: Optional[Sequence[Sequence[int]]] = None,
    ) -> BatchDecodeReport:
        """Decode a ``(B, n)`` batch with optional per-word erasures.

        ``erasure_positions`` is ``None`` (no erasures anywhere) or a
        length-``B`` sequence of per-word position lists.  Uncorrectable
        words do not raise; their :class:`RSDecodingError` is recorded at
        the word's index in the report, carrying exactly the message the
        scalar decoder produced.
        """
        rec = self.bgf.validate_elements(np.atleast_2d(np.asarray(received)))
        if rec.ndim != 2 or (rec.size and rec.shape[1] != self.n):
            raise ValueError(
                f"expected a (B, {self.n}) batch, got shape {rec.shape}"
            )
        B = rec.shape[0]
        if erasure_positions is not None and len(erasure_positions) != B:
            raise ValueError(
                f"erasure_positions has {len(erasure_positions)} entries "
                f"for a batch of {B}"
            )
        if B == 0:
            empty = np.zeros(0, dtype=bool)
            return BatchDecodeReport(
                ok=empty,
                clean=empty,
                received=rec,
                erasure_counts=[],
                fallback={},
                nsym=self.nsym,
            )

        erasures: List[List[int]] = (
            [[] for _ in range(B)]
            if erasure_positions is None
            else [sorted(set(e)) for e in erasure_positions]
        )
        for ers in erasures:
            if any(not 0 <= p < self.n for p in ers):
                raise ValueError("erasure position out of range")

        syndromes = self.syndromes_batch(rec)
        clean = np.all(syndromes == 0, axis=1)
        # The scalar decoder rejects rho > nsym before looking at the
        # syndromes, so over-erased words can never take the fast path.
        over_erased = np.asarray(
            [len(ers) > self.nsym for ers in erasures], dtype=bool
        )
        clean &= ~over_erased

        # Clean words are proved clean here and materialized lazily by
        # the report; only dirty words run the scalar pipeline now.
        ok = clean.copy()
        fallback: dict = {}
        for i in np.flatnonzero(~clean):
            try:
                fallback[int(i)] = self.scalar.decode(
                    rec[i].tolist(), erasure_positions=erasures[i]
                )
                ok[i] = True
            except RSDecodingError as exc:
                fallback[int(i)] = exc

        if self.counters is not None:
            self.counters.words_decoded += B
            self.counters.clean_fast_path += int(clean.sum())
            self.counters.scalar_fallbacks += int((~clean).sum())
            self.counters.decode_failures += B - int(ok.sum())
        return BatchDecodeReport(
            ok=ok,
            clean=clean,
            received=rec,
            erasure_counts=[len(e) for e in erasures],
            fallback=fallback,
            nsym=self.nsym,
        )

    # -- single-word passthrough (backend contract) -------------------------

    def encode(self, data: Sequence[int]) -> List[int]:
        """Encode one data word via the shared scalar codec."""
        return self.scalar.encode(data)

    def decode(
        self,
        received: Sequence[int],
        erasure_positions: Sequence[int] = (),
    ) -> DecodeResult:
        """Full errors-and-erasures decode of one word.

        Every engine shares the scalar errors-and-erasures pipeline for
        single words — the same code path dirty batch words fall back
        to — so per-word semantics are engine-invariant by construction.
        """
        return self.scalar.decode(received, erasure_positions=erasure_positions)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.n}, k={self.k}, m={self.m}, "
            f"fcr={self.fcr})"
        )
