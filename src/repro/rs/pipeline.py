"""Behavioral cycle model of a Reed-Solomon decoder datapath.

Paper Section 6 takes ``Td ≈ 3n + 10(n-k)`` clock cycles from the Altera
RS compiler documentation [5] without deriving it.  This module grounds
the number: a staged datapath in the style of the FPGA cores the paper
cites, with per-stage cycle counts that follow from the architecture —

* **syndrome stage** — ``n`` cycles: one codeword symbol enters per
  cycle, all ``n-k`` syndrome accumulators update in parallel;
* **key-equation stage** (Berlekamp-Massey) — ``2(n-k)`` iterations, each
  costing a discrepancy + update micro-sequence of ``KE_CYCLES_PER_ITER``
  cycles on a serial multiplier array;
* **Chien/Forney stage** — ``n`` cycles of root search with the Forney
  magnitude evaluated in the same pass, plus a ``n`` cycle correction
  readout overlapping the next word in a pipelined core but counted once
  for the paper's non-time-continuous (memory) access profile.

With ``KE_CYCLES_PER_ITER = 5`` the model gives exactly
``n + 5·2(n-k) + 2n = 3n + 10(n-k)`` — the paper's formula — and the
class also reports per-stage budgets, pipelined throughput and the area
proxy, so the Section 6 table can be audited rather than quoted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Micro-cycles per Berlekamp-Massey iteration (discrepancy, compare,
#: polynomial update) on a serial-multiplier key-equation solver.
KE_CYCLES_PER_ITER = 5


@dataclass(frozen=True)
class StageBudget:
    """Cycle budget of one pipeline stage."""

    name: str
    cycles: int


@dataclass(frozen=True)
class DecoderTiming:
    """Full latency/throughput picture of one decoder configuration."""

    n: int
    k: int
    stages: tuple[StageBudget, ...]

    @property
    def latency_cycles(self) -> int:
        """End-to-end decode latency (the paper's Td)."""
        return sum(stage.cycles for stage in self.stages)

    @property
    def bottleneck_cycles(self) -> int:
        """Initiation interval of the pipelined core (slowest stage)."""
        return max(stage.cycles for stage in self.stages)

    @property
    def pipelined_throughput_words_per_cycle(self) -> float:
        """Sustained words/cycle when words stream back-to-back."""
        return 1.0 / self.bottleneck_cycles

    def stage_budgets(self) -> Dict[str, int]:
        return {stage.name: stage.cycles for stage in self.stages}


def decoder_timing(n: int, k: int) -> DecoderTiming:
    """Build the staged cycle model for an RS(n, k) decoder."""
    if not 0 < k < n:
        raise ValueError(f"need 0 < k < n, got n={n}, k={k}")
    nsym = n - k
    stages = (
        StageBudget("syndrome", n),
        StageBudget("key_equation", KE_CYCLES_PER_ITER * 2 * nsym),
        StageBudget("chien_forney", n),
        StageBudget("correction_readout", n),
    )
    return DecoderTiming(n=n, k=k, stages=stages)


def validate_paper_formula(n: int, k: int) -> bool:
    """True iff the staged model reproduces ``Td = 3n + 10(n-k)``."""
    from .complexity import decoding_time_cycles

    return decoder_timing(n, k).latency_cycles == decoding_time_cycles(n, k)


def decode_time_seconds(n: int, k: int, clock_hz: float) -> float:
    """Wall-clock decode latency at a given core clock."""
    if clock_hz <= 0:
        raise ValueError("clock must be positive")
    return decoder_timing(n, k).latency_cycles / clock_hz
