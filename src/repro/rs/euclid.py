"""Sugiyama's Euclidean key-equation solver.

An independent alternative to Berlekamp-Massey: the RS key equation

    Lambda(x) * S(x)  ==  Omega(x)   (mod x^{2t}),   deg Omega < t

is solved by running the extended Euclidean algorithm on
``(x^{2t}, S(x))`` and stopping at the first remainder of degree below
``t``: the Bezout coefficient of ``S`` is (a scalar multiple of) the
error locator and the remainder is the evaluator.

Having two structurally different key-equation solvers lets the decoder
be cross-validated pattern-for-pattern (``tests/test_rs_euclid.py``
checks they produce identical locators up to normalization on random
errata), the same way the package cross-checks its Markov solvers.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..gf import GF2m, poly


def extended_euclid_until(
    gf: GF2m,
    a: Sequence[int],
    b: Sequence[int],
    degree_bound: int,
) -> Tuple[List[int], List[int]]:
    """Run extended Euclid on (a, b) until ``deg remainder < degree_bound``.

    Returns ``(u, r)`` with ``u * b == r (mod a)`` — for the key equation
    ``a = x^{2t}``, ``b = S(x)``; then ``u`` is the locator and ``r`` the
    evaluator.
    """
    r_prev, r_cur = poly.normalize(a), poly.normalize(b)
    u_prev: List[int] = [0]
    u_cur: List[int] = [1]
    while poly.degree(r_cur) >= degree_bound:
        if poly.is_zero(r_cur):
            break
        quotient, remainder = poly.divmod_poly(gf, r_prev, r_cur)
        r_prev, r_cur = r_cur, remainder
        u_next = poly.add(gf, u_prev, poly.mul(gf, quotient, u_cur))
        u_prev, u_cur = u_cur, u_next
    return u_cur, r_cur


def euclid_key_equation(
    gf: GF2m, syndromes: Sequence[int], nsym: int
) -> Tuple[List[int], List[int]]:
    """Solve the key equation by the Euclidean algorithm.

    Returns ``(locator, evaluator)`` normalized so ``locator[0] == 1``
    (the convention Berlekamp-Massey produces and Chien/Forney expect).
    Raises ZeroDivisionError if the locator has zero constant term,
    which signals an uncorrectable pattern (caller treats it as a
    decoding failure).
    """
    if len(syndromes) != nsym:
        raise ValueError(f"expected {nsym} syndromes, got {len(syndromes)}")
    if all(s == 0 for s in syndromes):
        return [1], [0]
    x_2t = poly.monomial(gf, 1, nsym)
    t = nsym // 2
    locator, evaluator = extended_euclid_until(gf, x_2t, list(syndromes), t)
    constant = locator[0]
    if constant == 0:
        raise ZeroDivisionError(
            "Euclidean locator has zero constant term: uncorrectable"
        )
    inv = gf.inv(constant)
    return poly.scale(gf, locator, inv), poly.scale(gf, evaluator, inv)


def berlekamp_euclid_agree(
    gf: GF2m, syndromes: Sequence[int], nsym: int
) -> bool:
    """True iff BM and Euclid derive the same (monic-normalized) locator.

    Utility for the cross-validation tests; patterns beyond capability
    may legitimately diverge (both solvers produce garbage there, each in
    its own way), so callers restrict to in-capability syndromes.
    """
    from .berlekamp import berlekamp_massey

    bm = berlekamp_massey(gf, list(syndromes))
    try:
        euclid, _omega = euclid_key_equation(gf, syndromes, nsym)
    except ZeroDivisionError:
        return False
    return bm == euclid
