"""Systematic Reed-Solomon encoder and errors-and-erasures decoder.

An RS(n, k) code over GF(2^m) encodes ``k`` data symbols into ``n``
codeword symbols and corrects any pattern with ``2*re + er <= n - k``
random errors ``re`` and erasures ``er`` (paper §2).  Codewords are lists
of ``n`` field elements in ascending polynomial order: position ``p`` is
the coefficient of ``x^p``; parity occupies positions ``0 .. n-k-1`` and
data occupies positions ``n-k .. n-1``.

The decoder implements the classical errors-and-erasures pipeline:
syndromes → Forney syndromes (erasures folded out) → Berlekamp-Massey →
Chien search → Forney magnitudes → verification re-encode.  Detected
failures raise :class:`RSDecodingError`; undetected miscorrections (the
paper's *mis-correction* events that drive the duplex arbiter design) are
possible exactly as in real hardware and are reported faithfully by the
verification step only when detectable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..gf import GF2m, poly
from .berlekamp import berlekamp_massey
from .forney import chien_search, forney_magnitudes
from .syndromes import compute_syndromes, erasure_locator, forney_syndromes


class RSDecodingError(Exception):
    """Raised when the decoder detects an uncorrectable word."""


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of a successful decode.

    Attributes
    ----------
    data: the recovered ``k`` data symbols.
    codeword: the full corrected ``n``-symbol codeword.
    num_errors: count of corrected unknown-position errors.
    num_erasures: count of corrected erasure positions (nonzero magnitude
        or not — all supplied erasure positions are counted).
    corrected: True if any symbol value actually changed (this is the
        "flag" the duplex arbiter of paper §3 inspects).
    error_positions: positions whose value was changed by the decoder.
    """

    data: List[int]
    codeword: List[int]
    num_errors: int
    num_erasures: int
    corrected: bool
    error_positions: List[int] = field(default_factory=list)


class RSCode:
    """A systematic RS(n, k) code over GF(2^m).

    Parameters
    ----------
    n: codeword length in symbols (``k < n <= 2^m - 1``).
    k: dataword length in symbols.
    m: symbol width in bits.  Defaults to 8 (byte-organised memories, the
        convention of the paper's companion works [6][7]); any ``m`` with
        ``n <= 2^m - 1`` is accepted.
    fcr: exponent of the first consecutive generator root (default 1).
    gf: optionally share a prebuilt field instance.
    """

    def __init__(
        self,
        n: int,
        k: int,
        m: int = 8,
        fcr: int = 1,
        gf: Optional[GF2m] = None,
        key_solver: str = "bm",
    ):
        if gf is None:
            gf = GF2m(m)
        elif gf.m != m:
            raise ValueError(f"supplied field GF(2^{gf.m}) does not match m={m}")
        if not 0 < k < n:
            raise ValueError(f"need 0 < k < n, got n={n}, k={k}")
        if n > gf.order - 1:
            raise ValueError(
                f"codeword length n={n} exceeds 2^m - 1 = {gf.order - 1}"
            )
        if key_solver not in ("bm", "euclid"):
            raise ValueError(
                f"key_solver must be 'bm' (Berlekamp-Massey) or 'euclid' "
                f"(Sugiyama), got {key_solver!r}"
            )
        self.n = n
        self.k = k
        self.m = m
        self.fcr = fcr
        self.gf = gf
        self.key_solver = key_solver
        self.nsym = n - k
        #: maximum random errors correctable with no erasures, t = (n-k)/2
        self.t = self.nsym // 2
        self.generator = self._build_generator()

    def _build_generator(self) -> List[int]:
        """Generator ``g(x) = prod_{i=fcr}^{fcr+nsym-1} (x - alpha^i)``."""
        g: List[int] = [1]
        for i in range(self.fcr, self.fcr + self.nsym):
            g = poly.mul(self.gf, g, [self.gf.exp(i), 1])
        return g

    # -- capability ---------------------------------------------------------

    def within_capability(self, num_erasures: int, num_errors: int) -> bool:
        """Paper §2: correctable iff ``2*re + er <= n - k``."""
        return 2 * num_errors + num_erasures <= self.nsym

    # -- encoding -------------------------------------------------------

    def encode(self, data: Sequence[int]) -> List[int]:
        """Systematically encode ``k`` data symbols into an ``n``-symbol codeword.

        The codeword is ``d(x) * x^{n-k} + (d(x) * x^{n-k} mod g(x))``:
        data lands unchanged in positions ``n-k ..``, parity in ``0 .. n-k-1``.
        """
        data = list(data)
        if len(data) != self.k:
            raise ValueError(f"expected {self.k} data symbols, got {len(data)}")
        for s in data:
            self.gf.validate_element(s)
        shifted = poly.mul_by_xn(data, self.nsym)
        remainder = poly.mod(self.gf, shifted, self.generator)
        parity = (remainder + [0] * self.nsym)[: self.nsym]
        return parity + data

    def extract_data(self, codeword: Sequence[int]) -> List[int]:
        """Return the data symbols of a (corrected) codeword."""
        return list(codeword[self.nsym :])

    def is_codeword(self, word: Sequence[int]) -> bool:
        """True if every syndrome of ``word`` is zero."""
        return all(
            s == 0 for s in compute_syndromes(self.gf, word, self.nsym, self.fcr)
        )

    # -- decoding -------------------------------------------------------

    def decode(
        self,
        received: Sequence[int],
        erasure_positions: Sequence[int] = (),
    ) -> DecodeResult:
        """Correct ``received`` given known erasure positions.

        Raises
        ------
        RSDecodingError
            when the word is detectably uncorrectable: too many erasures,
            locator degree/roots mismatch, or nonzero post-correction
            syndromes.
        """
        received = list(received)
        if len(received) != self.n:
            raise ValueError(f"expected {self.n} symbols, got {len(received)}")
        erasure_positions = sorted(set(erasure_positions))
        if any(not 0 <= p < self.n for p in erasure_positions):
            raise ValueError("erasure position out of range")
        rho = len(erasure_positions)
        if rho > self.nsym:
            raise RSDecodingError(
                f"{rho} erasures exceed correction capability n-k={self.nsym}"
            )

        syndromes = compute_syndromes(self.gf, received, self.nsym, self.fcr)
        if all(s == 0 for s in syndromes):
            # Already a codeword; erased positions happened to hold correct
            # values (zero errata magnitude).
            return DecodeResult(
                data=self.extract_data(received),
                codeword=received,
                num_errors=0,
                num_erasures=rho,
                corrected=False,
            )

        # Fold erasures out, find the unknown-error locator, recombine.
        t_synd = forney_syndromes(self.gf, syndromes, erasure_positions)
        lam = self._solve_key_equation(t_synd)
        num_errors = poly.degree(lam)
        if 2 * num_errors + rho > self.nsym:
            raise RSDecodingError(
                f"error locator degree {num_errors} with {rho} erasures "
                f"exceeds capability n-k={self.nsym}"
            )
        gamma = erasure_locator(self.gf, erasure_positions)
        psi = poly.mul(self.gf, lam, gamma)

        positions = chien_search(self.gf, psi, self.n)
        if len(positions) != poly.degree(psi):
            raise RSDecodingError(
                f"errata locator of degree {poly.degree(psi)} has "
                f"{len(positions)} roots in the codeword: uncorrectable"
            )

        try:
            magnitudes = forney_magnitudes(
                self.gf, syndromes, psi, positions, self.fcr
            )
        except ZeroDivisionError as exc:
            raise RSDecodingError(str(exc)) from exc

        corrected = list(received)
        changed = []
        for p, mag in zip(positions, magnitudes):
            if mag != 0:
                corrected[p] ^= mag
                changed.append(p)

        if not self.is_codeword(corrected):
            raise RSDecodingError("post-correction syndromes nonzero")

        return DecodeResult(
            data=self.extract_data(corrected),
            codeword=corrected,
            num_errors=num_errors,
            num_erasures=rho,
            corrected=bool(changed),
            error_positions=changed,
        )

    def _solve_key_equation(self, t_synd):
        """Locator of the unknown errors, via the configured solver."""
        if self.key_solver == "bm":
            return berlekamp_massey(self.gf, t_synd)
        from .euclid import euclid_key_equation

        try:
            locator, _evaluator = euclid_key_equation(
                self.gf, t_synd, len(t_synd)
            )
        except ZeroDivisionError as exc:
            raise RSDecodingError(str(exc)) from exc
        return locator

    def __repr__(self) -> str:
        return f"RSCode(n={self.n}, k={self.k}, m={self.m}, fcr={self.fcr})"
