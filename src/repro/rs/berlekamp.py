"""Berlekamp-Massey error-locator synthesis.

Given a syndrome sequence, Massey's algorithm finds the shortest linear
feedback shift register — equivalently the lowest-degree error locator
polynomial ``Lambda(x)`` with ``Lambda(0) = 1`` — generating it.  Combined
with the Forney-syndrome trick (see :mod:`repro.rs.syndromes`) this handles
errors-and-erasures decoding with a plain, erasure-unaware pass.
"""

from __future__ import annotations

from typing import List, Sequence

from ..gf import GF2m, poly


def berlekamp_massey(gf: GF2m, syndromes: Sequence[int]) -> List[int]:
    """Return the minimal error locator ``Lambda(x)`` (ascending coeffs).

    The returned polynomial satisfies, for every n >= L,

        sum_{i=0}^{L} Lambda_i * S_{n-i} = 0

    where ``L = deg Lambda``.  For an all-zero syndrome sequence the result
    is ``[1]`` (no errors).
    """
    c: List[int] = [1]  # current locator estimate Lambda
    b: List[int] = [1]  # previous locator (before last length change)
    length = 0          # current LFSR length L
    shift = 1           # x^shift gap since last length change
    b_disc = 1          # discrepancy at last length change
    for n_i, s_n in enumerate(syndromes):
        # discrepancy of the current locator against syndrome n_i
        d = s_n
        for i in range(1, length + 1):
            if i < len(c) and c[i] != 0:
                d ^= gf.mul(c[i], syndromes[n_i - i])
        if d == 0:
            shift += 1
            continue
        coef = gf.div(d, b_disc)
        correction = poly.mul_by_xn(poly.scale(gf, b, coef), shift)
        if 2 * length <= n_i:
            # length change: remember the pre-update locator
            prev_c = list(c)
            c = poly.add(gf, c, correction)
            length = n_i + 1 - length
            b = prev_c
            b_disc = d
            shift = 1
        else:
            c = poly.add(gf, c, correction)
            shift += 1
    return poly.normalize(c)


def locator_degree_ok(locator: Sequence[int], max_errors: int) -> bool:
    """Check that the synthesized locator is within correction capability.

    Berlekamp-Massey always returns *some* minimal LFSR; when the error
    count exceeds capability the locator degree overshoots (or its root
    count won't match its degree).  This is the first of the decoder's
    failure screens.
    """
    return poly.degree(locator) <= max_errors
