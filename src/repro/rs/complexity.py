"""Decoder complexity and area models (paper §6).

The paper evaluates decoder cost with two first-order models taken from the
Altera Reed-Solomon compiler core documentation [5]:

* **Decoding time** in clock cycles for non-time-continuous (memory-style)
  access: ``Td ≈ 3n + 10(n - k)``.  For RS(36,16): 108 + 200 = 308; for
  RS(18,16): 54 + 20 = 74 — i.e. the RS(36,16) simplex pays > 4x the
  decoding access latency of the (simplex or duplex) RS(18,16).

* **Decoder area** in logic gates, "almost linearly dependent on m and the
  number of check symbols n - k"; hence one RS(36,16) decoder outweighs the
  two RS(18,16) decoders of the duplex arrangement.
"""

from __future__ import annotations

from dataclasses import dataclass


def decoding_time_cycles(n: int, k: int) -> int:
    """Clock cycles to decode one word: ``Td ≈ 3n + 10(n - k)``."""
    if not 0 < k < n:
        raise ValueError(f"need 0 < k < n, got n={n}, k={k}")
    return 3 * n + 10 * (n - k)


def decoder_area_gates(
    m: int, n: int, k: int, gates_per_unit: float = 120.0
) -> float:
    """First-order gate-count model, linear in ``m * (n - k)``.

    ``gates_per_unit`` calibrates gates per (bit-of-symbol x check-symbol);
    the default is representative of compact FPGA RS cores.  Only *ratios*
    between configurations are meaningful for the paper's argument.
    """
    if not 0 < k < n:
        raise ValueError(f"need 0 < k < n, got n={n}, k={k}")
    if m < 2:
        raise ValueError(f"need m >= 2, got {m}")
    return gates_per_unit * m * (n - k)


@dataclass(frozen=True)
class ArrangementCost:
    """Aggregate decoder cost of a memory arrangement.

    ``decode_cycles`` is the per-read decoding latency; ``area_gates`` sums
    every decoder instance the arrangement needs (two for duplex).
    """

    name: str
    n: int
    k: int
    m: int
    num_decoders: int
    decode_cycles: int
    area_gates: float


def arrangement_cost(
    name: str, n: int, k: int, m: int = 8, num_decoders: int = 1,
    gates_per_unit: float = 120.0,
) -> ArrangementCost:
    """Cost of an arrangement using ``num_decoders`` RS(n, k) decoders.

    Duplex decodes its two words in parallel decoders, so latency is a
    single decode while area doubles.
    """
    return ArrangementCost(
        name=name,
        n=n,
        k=k,
        m=m,
        num_decoders=num_decoders,
        decode_cycles=decoding_time_cycles(n, k),
        area_gates=num_decoders * decoder_area_gates(m, n, k, gates_per_unit),
    )


def paper_comparison(m: int = 8) -> list[ArrangementCost]:
    """The three arrangements compared in paper §6."""
    return [
        arrangement_cost("simplex RS(18,16)", 18, 16, m, num_decoders=1),
        arrangement_cost("duplex RS(18,16)", 18, 16, m, num_decoders=2),
        arrangement_cost("simplex RS(36,16)", 36, 16, m, num_decoders=1),
    ]
