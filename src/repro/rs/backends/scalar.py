"""The ``scalar`` engine: pure-python kernels behind the batch contract.

:class:`ScalarRSCodec` wraps the existing pure-python codec
(:class:`~repro.rs.codec.RSCode` and :func:`~repro.rs.syndromes.compute_syndromes`)
in the shared :class:`~repro.rs.batch.BatchRSCodec` harness: validation,
clean-word fast path, scalar fallback, counters and report objects are
all inherited — only the two kernel hooks run per-row python loops
instead of vectorized numpy.

This is the slowest engine by far, but it is *registered* like the
others for three reasons: it is the always-available floor of the
capability matrix, it gives the conformance suite a reference
implementation behind the exact same interface, and it proves the
engine axis is a pure execution hint — a campaign run with
``--engine scalar`` is bit-identical to ``numpy`` and ``compiled``.
"""

from __future__ import annotations

import numpy as np

from ..batch import BatchRSCodec
from ..syndromes import compute_syndromes


class ScalarRSCodec(BatchRSCodec):
    """Batch-contract codec whose kernels loop the pure-python codec."""

    backend_name = "scalar"

    def _parity_kernel(self, data: np.ndarray) -> np.ndarray:
        rows = [
            self.scalar.encode(row)[: self.nsym] for row in data.tolist()
        ]
        return np.asarray(rows, dtype=np.int64).reshape(-1, self.nsym)

    def _syndromes_kernel(self, rec: np.ndarray) -> np.ndarray:
        rows = [
            compute_syndromes(self.scalar.gf, row, self.nsym, self.fcr)
            for row in rec.tolist()
        ]
        return np.asarray(rows, dtype=np.int64).reshape(-1, self.nsym)
