"""Per-field GF(2^m) table codegen for the native-speed backends.

The compiled RS kernels do not share Python objects with
:class:`~repro.gf.field.GF2m` — a jitted kernel can only consume plain
ndarrays.  This module *generates* those arrays per field (the "codegen"
step): exp/log gather tables, and the **bit-sliced multiplication
planes** the kernels actually use in their hot loops.

Bit-sliced multiplication by a constant ``c`` exploits GF(2^m)
linearity: writing ``a = XOR_i (bit_i(a) * x^i)`` in the polynomial
basis,

    ``a * c = XOR over set bits i of a of (c * x^i)``

so a single precomputed plane vector ``planes[i] = c * x^i`` turns every
multiplication into at most ``m`` masked XORs — no gathers, no data-
dependent branches, which is exactly what a jitted inner loop (or a
SIMD unit) wants.  By construction the product is *linear in each
argument*: linear in ``a`` because it XORs one plane per set bit of
``a``, and linear in ``c`` because every plane is ``c`` times a fixed
basis element.  ``tests/test_gf_codegen_property.py`` pins both
properties against the carry-less reference multiplier.

Everything here is pure numpy and always importable; only the kernels
that *consume* these tables are numba-gated (see
:mod:`repro.rs.backends.kernels`).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from ...gf.batch import batch_field

#: dtype of every generated table — matches :mod:`repro.gf.batch` so
#: cross-backend comparisons are dtype-exact, and wide enough that the
#: bit-sliced accumulations can never overflow for any supported ``m``
#: (values stay < 2^m <= 2^16; the sign bit is only ever used by the
#: ``-(bit)`` all-ones masks, which are XOR-cancelled before output).
TABLE_DTYPE = np.int64


@lru_cache(maxsize=None)
def field_tables(
    m: int, prim_poly: Optional[int] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """``(exp, log)`` gather tables for GF(2^m), as read-only int64 arrays.

    ``exp`` is the doubled table of :class:`~repro.gf.field.GF2m` (length
    ``2 * 2^m``) so ``exp[log[a] + log[b]]`` needs no modulo; ``log`` has
    length ``2^m`` with ``log[0] == 0`` (callers mask zero operands).
    """
    bgf = batch_field(m, prim_poly)
    exp = np.array(bgf._exp, dtype=TABLE_DTYPE)
    log = np.array(bgf._log, dtype=TABLE_DTYPE)
    exp.setflags(write=False)
    log.setflags(write=False)
    return exp, log


def mul_planes(
    constants, m: int, prim_poly: Optional[int] = None
) -> np.ndarray:
    """Bit-sliced multiplication planes for an array of constants.

    For input shape ``(C,)`` the result has shape ``(C, m)`` with
    ``planes[j, i] = constants[j] * x^i`` (``x^i`` is the polynomial-basis
    element ``1 << i``, *not* ``alpha^i``).  Then for any field element
    ``a``::

        a * constants[j] == XOR of planes[j, i] over the set bits i of a

    which :func:`bitsliced_mul` (and the jitted kernels) evaluate with
    ``m`` masked XORs.
    """
    bgf = batch_field(m, prim_poly)
    consts = bgf.validate_elements(np.atleast_1d(np.asarray(constants)))
    basis = np.asarray([1 << i for i in range(m)], dtype=TABLE_DTYPE)
    return bgf.mul(consts[:, np.newaxis], basis[np.newaxis, :]).astype(
        TABLE_DTYPE
    )


def bitsliced_mul(a, planes: np.ndarray) -> np.ndarray:
    """Multiply every element of ``a`` by one constant via its planes.

    ``planes`` is a single ``(m,)`` row of :func:`mul_planes`.  The loop
    is over the ``m`` bit positions only — each step is a vectorized
    mask-and-XOR — so this is also the numpy fallback form of the
    compiled kernels' inner product (bit-identical to table gathers).
    """
    a = np.asarray(a, dtype=TABLE_DTYPE)
    out = np.zeros_like(a)
    for bit in range(planes.shape[0]):
        # -(bit value) is the all-ones / all-zeros mask: branch-free.
        out ^= (-((a >> bit) & 1)) & planes[bit]
    return out
