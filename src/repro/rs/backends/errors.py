"""Exceptions shared across the backend registry and its engines."""

from __future__ import annotations


class BackendUnavailableError(RuntimeError):
    """A requested RS backend cannot run in this environment.

    Raised loudly at *selection/construction* time — never swallowed into
    a silent fallback.  ``reason`` carries the capability probe's detail
    string (e.g. why numba failed to import) so the CLI and service layer
    can surface it verbatim.
    """

    def __init__(self, backend: str, reason: str):
        self.backend = backend
        self.reason = reason
        super().__init__(
            f"RS backend {backend!r} is unavailable: {reason}"
        )
