"""The ``compiled`` engine: numba-jitted bit-sliced GF(2^m) kernels.

:class:`CompiledRSCodec` keeps the shared batch harness (validation,
clean fast path, scalar fallback — see :class:`~repro.rs.batch.BatchRSCodec`)
and replaces both kernel hooks with the bit-sliced forms of
:mod:`repro.rs.backends.kernels`, driven by per-field plane tables from
:mod:`repro.rs.backends.gf_tables`.

Capability is probed, never assumed:

* ``kernels="numba"`` (the registry's default) raises
  :class:`BackendUnavailableError` at *construction* when numba is
  missing, carrying the probe's reason string — selection failures are
  loud and happen before any work is dispatched;
* ``kernels="python"`` runs the same bit-sliced algorithm as vectorized
  numpy (for conformance tests and CI matrices without numba);
* ``kernels="any"`` prefers numba, falls back to the python forms —
  used by the ``rs-compiled-*`` differential-fuzz targets so the
  compiled algorithm is fuzzed nightly even where numba is absent.

Whatever the mode, results are bit-identical to the numpy and scalar
engines: the kernels compute exact field arithmetic and all dirty-word
decoding goes through the one shared scalar pipeline.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...perf import PerfCounters
from ..batch import BatchRSCodec
from ..codec import RSCode
from . import errors
from .gf_tables import mul_planes
from .kernels import encode_kernel, kernel_mode, numba_status, syndromes_kernel

BackendUnavailableError = errors.BackendUnavailableError


class CompiledRSCodec(BatchRSCodec):
    """Batch-contract codec with bit-sliced (optionally jitted) kernels."""

    backend_name = "compiled"

    def __init__(
        self,
        n: int,
        k: int,
        m: int = 8,
        fcr: int = 1,
        key_solver: str = "bm",
        scalar: Optional[RSCode] = None,
        counters: Optional[PerfCounters] = None,
        kernels: str = "numba",
    ):
        super().__init__(
            n,
            k,
            m=m,
            fcr=fcr,
            key_solver=key_solver,
            scalar=scalar,
            counters=counters,
        )
        if kernels not in ("numba", "python", "any"):
            raise ValueError(
                f"kernels must be 'numba', 'python' or 'any', got {kernels!r}"
            )
        mode, detail = kernel_mode()
        if kernels == "numba":
            available, reason = numba_status()
            if not available:
                raise BackendUnavailableError("compiled", reason)
            self.kernel_impl = "numba"
        elif kernels == "python":
            self.kernel_impl = "python"
        else:  # "any": prefer jitted, fall back to the numpy forms
            self.kernel_impl = "numba" if numba_status()[0] else "python"
        del mode, detail
        prim = self.scalar.gf.prim_poly
        # Codegen per field: bit-sliced planes for the syndrome points
        # and for the generator tail — the only multipliers the hot
        # loops ever see, so every kernel multiply is mask-and-XOR.
        self._synd_planes = mul_planes(self._synd_points, self.m, prim)
        self._gen_planes = mul_planes(self._gen_tail, self.m, prim)

    def _parity_kernel(self, data: np.ndarray) -> np.ndarray:
        return encode_kernel(
            np.ascontiguousarray(data), self._gen_planes, self.kernel_impl
        )

    def _syndromes_kernel(self, rec: np.ndarray) -> np.ndarray:
        return syndromes_kernel(
            np.ascontiguousarray(rec), self._synd_planes, self.kernel_impl
        )
