"""RS backend registry: one batch contract, several interchangeable engines.

Every engine implements the same :class:`~repro.rs.batch.BatchRSCodec`
contract — ``encode_batch`` / ``syndromes_batch`` / ``decode_batch``
plus the single-word ``encode`` / ``decode`` passthroughs — and differs
*only* in how the two hot kernels (systematic LFSR parity, Horner
syndromes) are executed:

========  ==================================================================
engine    kernels
========  ==================================================================
scalar    per-row loops over the pure-python codec (always available; the
          reference floor of the capability matrix)
numpy     vectorized table-lookup GF arithmetic (always available; the
          pre-registry default)
compiled  bit-sliced masked-XOR kernels over per-field codegen'd planes,
          numba-jitted; available without numba only when
          ``REPRO_COMPILED_KERNELS=python`` forces the numpy forms
========  ==================================================================

Because all three share the harness (validation, clean-word fast path,
one scalar errors-and-erasures pipeline for dirty words), their results
are bit-identical; the conformance suite and the ``rs-compiled-*``
differential-fuzz targets enforce that continuously.

The engine axis is an **execution hint**, like ``workers``: it never
changes results, so :func:`canonical_engine` collapses it to the
result-relevant families (``batch`` / ``scalar``) for campaign
fingerprints — runs with different engines share cache entries.

Capability is probed, never assumed (:func:`backend_info` carries an
``available`` flag plus the probe's reason string), selection of an
unavailable engine raises :class:`BackendUnavailableError` loudly, and
``auto`` (prefer ``compiled``, fall back to ``numpy``) announces its
fallback with a :class:`~repro.runtime.supervisor.ResilienceWarning`
(once per process) and an ``engine_auto_fallback`` trace event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ...obs import trace
from ...perf import PerfCounters
from ..batch import BatchRSCodec
from ..codec import RSCode
from .errors import BackendUnavailableError
from .kernels import KERNELS_ENV, kernel_mode, numba_status

__all__ = [
    "ENGINE_CHOICES",
    "BATCH_BACKENDS",
    "BackendInfo",
    "BackendUnavailableError",
    "auto_backend",
    "backend_info",
    "canonical_engine",
    "create_backend",
    "list_backends",
    "resolve_engine",
    "KERNELS_ENV",
]

#: Engine names accepted end-to-end (CLI ``--engine``, campaign spec,
#: service jobs).  ``batch`` is the pre-registry alias for ``numpy``;
#: ``reference`` is the legacy one-trial-at-a-time loop (the only
#: engine that is not a batch backend).
ENGINE_CHOICES = ("auto", "compiled", "numpy", "scalar", "batch", "reference")

#: Registered batch backends, slowest first.
BATCH_BACKENDS = ("scalar", "numpy", "compiled")

_DESCRIPTIONS = {
    "scalar": "pure-python kernels behind the batch contract (reference floor)",
    "numpy": "vectorized table-lookup GF arithmetic (default workhorse)",
    "compiled": "numba-jitted bit-sliced GF kernels with per-field codegen",
}


@dataclass(frozen=True)
class BackendInfo:
    """Capability-matrix row for one registered batch backend."""

    name: str
    available: bool
    reason: str
    description: str


def backend_info(name: str) -> BackendInfo:
    """Probe one backend's availability (reason string included)."""
    if name not in BATCH_BACKENDS:
        raise ValueError(
            f"unknown RS backend {name!r}; registered: {BATCH_BACKENDS}"
        )
    if name == "compiled":
        mode, detail = kernel_mode()
        return BackendInfo(
            name="compiled",
            available=mode != "unavailable",
            reason=detail,
            description=_DESCRIPTIONS["compiled"],
        )
    return BackendInfo(
        name=name,
        available=True,
        reason="always available",
        description=_DESCRIPTIONS[name],
    )


def list_backends() -> Tuple[BackendInfo, ...]:
    """The full capability matrix, in registry order."""
    return tuple(backend_info(name) for name in BATCH_BACKENDS)


def create_backend(
    name: str,
    n: int,
    k: int,
    m: int = 8,
    fcr: int = 1,
    key_solver: str = "bm",
    scalar: Optional[RSCode] = None,
    counters: Optional[PerfCounters] = None,
) -> BatchRSCodec:
    """Construct a registered batch backend for ``RS(n, k)`` over GF(2^m).

    Raises :class:`BackendUnavailableError` (reason string attached) when
    the backend cannot run here — selection is loud, never a silent
    substitution.
    """
    if name in ("numpy", "batch"):
        return BatchRSCodec(
            n, k, m=m, fcr=fcr, key_solver=key_solver,
            scalar=scalar, counters=counters,
        )
    if name == "scalar":
        from .scalar import ScalarRSCodec

        return ScalarRSCodec(
            n, k, m=m, fcr=fcr, key_solver=key_solver,
            scalar=scalar, counters=counters,
        )
    if name == "compiled":
        mode, detail = kernel_mode()
        if mode == "unavailable":
            raise BackendUnavailableError("compiled", detail)
        from .compiled import CompiledRSCodec

        return CompiledRSCodec(
            n, k, m=m, fcr=fcr, key_solver=key_solver,
            scalar=scalar, counters=counters, kernels=mode,
        )
    raise ValueError(
        f"unknown RS backend {name!r}; registered: {BATCH_BACKENDS}"
    )


#: Once-per-process latch for the ``auto`` fallback warning (tests reset
#: it via monkeypatch to assert the warning fires).
_auto_fallback_warned = False


def auto_backend() -> str:
    """Resolve ``auto``: fastest available backend (compiled, else numpy).

    The fallback is announced — a ResilienceWarning once per process and
    an ``engine_auto_fallback`` trace event per resolution — because a
    quietly slower campaign is exactly the failure mode the registry
    exists to prevent.
    """
    global _auto_fallback_warned
    info = backend_info("compiled")
    if info.available:
        return "compiled"
    trace.event(
        "engine_auto_fallback",
        requested="auto",
        selected="numpy",
        reason=info.reason,
    )
    if not _auto_fallback_warned:
        _auto_fallback_warned = True
        import warnings

        from ...runtime.supervisor import ResilienceWarning

        warnings.warn(
            "--engine auto: compiled backend unavailable "
            f"({info.reason}); falling back to numpy. Results are "
            "identical; only throughput differs.",
            ResilienceWarning,
            stacklevel=2,
        )
    return "numpy"


def resolve_engine(engine: str) -> Tuple[str, Optional[str]]:
    """Map an engine name to ``(family, backend)``.

    ``family`` selects the execution path — ``"batch"`` (chunked
    vectorized Monte-Carlo) or ``"reference"`` (the legacy
    one-trial-at-a-time loop, kept for validation) — and ``backend`` is
    the registered batch backend to instantiate (``None`` for the
    reference family).

    Raises :class:`BackendUnavailableError` for ``--engine compiled``
    when the environment cannot run it, and :class:`ValueError` for
    unknown names.
    """
    if engine == "reference":
        return "reference", None
    if engine == "auto":
        return "batch", auto_backend()
    if engine in ("numpy", "batch"):
        return "batch", "numpy"
    if engine == "scalar":
        return "batch", "scalar"
    if engine == "compiled":
        info = backend_info("compiled")
        if not info.available:
            raise BackendUnavailableError("compiled", info.reason)
        return "batch", "compiled"
    raise ValueError(
        f"unknown engine {engine!r}; choose from {ENGINE_CHOICES}"
    )


def canonical_engine(engine: str) -> str:
    """Collapse an engine name to its result-relevant family.

    Campaign fingerprints record *what* was computed, not *how fast*:
    every batch backend produces bit-identical statistics (same chunking,
    same per-chunk RNG streams), so all of them — and ``auto`` — map to
    ``"batch"``.  The legacy ``reference`` loop draws a different RNG
    stream shape and keeps its historical fingerprint value
    ``"scalar"``, so pre-registry journals and cache entries stay valid.
    """
    if engine == "reference":
        return "scalar"
    if engine in ("auto", "compiled", "numpy", "scalar", "batch"):
        return "batch"
    raise ValueError(
        f"unknown engine {engine!r}; choose from {ENGINE_CHOICES}"
    )
