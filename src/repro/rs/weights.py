"""Weight distribution and mis-correction probability of RS codes.

Reed-Solomon codes are Maximum Distance Separable, so their full weight
distribution is known in closed form (MacWilliams/Sloane):

    A_0 = 1,   A_w = C(n, w) (q - 1) sum_{j=0}^{w-d} (-1)^j C(w-1, j) q^{w-d-j}

for ``w >= d = n - k + 1``.  From it follow the quantities behind the
paper's arbiter design (Section 3):

* **undetected-error probability** — a corrupted word that happens to be
  another codeword passes the syndrome check silently;
* **mis-correction probability** — a bounded-distance decoder corrects
  any word within Hamming distance ``t`` of *some* codeword; random
  damage beyond capability lands in a wrong decoding sphere with a
  probability governed by the sphere packing — the ``decoding_sphere_
  fraction`` here.  This is the event the duplex arbiter's flag
  comparison exists to catch, and the bit-level simulator's observed
  mis-correction rates are validated against it
  (``tests/test_rs_weights.py``).
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import List

from .codec import RSCode


def mds_weight_distribution(n: int, k: int, q: int) -> List[int]:
    """Number of codewords of each Hamming weight, ``A[0..n]``.

    Exact integer evaluation of the MDS weight formula; ``sum(A) = q^k``.
    """
    if not 0 < k < n:
        raise ValueError(f"need 0 < k < n, got n={n}, k={k}")
    if q < 2:
        raise ValueError("alphabet size must be >= 2")
    d = n - k + 1
    weights = [0] * (n + 1)
    weights[0] = 1
    for w in range(d, n + 1):
        total = 0
        for j in range(w - d + 1):
            term = math.comb(w - 1, j) * q ** (w - d - j)
            total += -term if j % 2 else term
        weights[w] = math.comb(n, w) * (q - 1) * total
    return weights


@lru_cache(maxsize=None)
def _weights_cached(n: int, k: int, q: int) -> tuple:
    return tuple(mds_weight_distribution(n, k, q))


def undetected_error_probability(
    n: int, k: int, q: int, symbol_error_rate: float
) -> float:
    """P(corrupted word is silently another codeword), no decoding.

    Under the q-ary symmetric channel with symbol error probability
    ``p``: ``P_ue = sum_w A_w (p/(q-1))^w (1-p)^{n-w}``.
    """
    p = symbol_error_rate
    if not 0.0 <= p <= 1.0:
        raise ValueError("symbol error rate must be in [0, 1]")
    weights = _weights_cached(n, k, q)
    if p == 0.0:
        return 0.0
    scale = p / (q - 1)
    return float(
        sum(
            a * scale**w * (1.0 - p) ** (n - w)
            for w, a in enumerate(weights)
            if w > 0 and a > 0
        )
    )


def decoding_sphere_fraction(n: int, k: int, q: int, t: int | None = None) -> float:
    """Fraction of the whole space inside some radius-``t`` decoding sphere.

    ``q^k * V_t / q^n`` with ``V_t = sum_{i<=t} C(n, i)(q-1)^i`` — for a
    bounded-distance decoder this is the probability that a *uniformly
    random* word decodes (to something); conditioned on the word being
    far from the transmitted codeword it approximates the mis-correction
    probability of heavy random damage.
    """
    if t is None:
        t = (n - k) // 2
    if t < 0:
        raise ValueError("t must be nonnegative")
    volume = sum(math.comb(n, i) * (q - 1) ** i for i in range(t + 1))
    return float(q**k * volume) / float(q**n)


def miscorrection_probability_beyond_capability(
    code: RSCode, num_errors: int
) -> float:
    """P(bounded-distance decode succeeds | ``num_errors`` random errors).

    For error patterns well beyond capability the received word is close
    to uniformly distributed over words at distance ``num_errors`` from
    the sent codeword, and the acceptance probability approaches the
    decoding-sphere fraction.  Exposed with the error count so callers
    can reason about the near-capability regime too (where the estimate
    is a lower-bias approximation).
    """
    if num_errors <= code.t:
        return 0.0  # within capability: always corrected, never *mis*
    return decoding_sphere_fraction(code.n, code.k, code.gf.order, code.t)


def expected_weight_enumerator_checks(n: int, k: int, q: int) -> dict:
    """Consistency facts about the distribution (used by tests/benches).

    Returns the total count (must be ``q^k``), the minimum distance
    (first nonzero weight, must be ``n - k + 1``) and the Singleton-bound
    slack (must be 0 — RS codes are MDS).
    """
    weights = _weights_cached(n, k, q)
    total = sum(weights)
    d_min = next(w for w in range(1, n + 1) if weights[w] > 0)
    return {
        "total_codewords": total,
        "expected_total": q**k,
        "min_distance": d_min,
        "singleton_slack": (n - k + 1) - d_min,
    }
