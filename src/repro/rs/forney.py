"""Chien search and the Forney error-magnitude algorithm.

Once the errata locator ``Psi(x)`` (errors times erasures) is known, the
errata *positions* are the codeword indices ``p`` with
``Psi(alpha^{-p}) = 0`` (Chien search) and the errata *magnitudes* follow
from Forney's formula

    Y_l = X_l^{1 - fcr} * Omega(X_l^{-1}) / Psi'(X_l^{-1})

with ``X_l = alpha^{p_l}`` and the evaluator
``Omega(x) = S(x) * Psi(x) mod x^{nsym}``.
"""

from __future__ import annotations

from typing import List, Sequence

from ..gf import GF2m, poly


def chien_search(gf: GF2m, locator: Sequence[int], n: int) -> List[int]:
    """Return codeword positions ``p < n`` where the locator has a root.

    A position ``p`` is an errata location iff ``alpha^{-p}`` is a root of
    the locator.  For shortened codes (``n < 2^m - 1``) only positions below
    ``n`` are meaningful; roots pointing outside the codeword indicate a
    decoding failure, which the caller detects by comparing the number of
    found positions against the locator degree.
    """
    positions = []
    for p in range(n):
        if poly.eval_at(gf, locator, gf.exp(-p)) == 0:
            positions.append(p)
    return positions


def error_evaluator(
    gf: GF2m, syndromes: Sequence[int], locator: Sequence[int]
) -> List[int]:
    """Compute ``Omega(x) = S(x) * Psi(x) mod x^{nsym}``."""
    nsym = len(syndromes)
    omega = poly.mul(gf, list(syndromes), locator)
    return poly.normalize((omega + [0] * nsym)[:nsym])


def forney_magnitudes(
    gf: GF2m,
    syndromes: Sequence[int],
    locator: Sequence[int],
    positions: Sequence[int],
    fcr: int = 1,
) -> List[int]:
    """Return the errata magnitude for each position in ``positions``.

    Raises ZeroDivisionError if the locator derivative vanishes at a root,
    which indicates an inconsistent locator (treated as decoding failure by
    the caller).
    """
    omega = error_evaluator(gf, syndromes, locator)
    dpsi = poly.derivative(gf, locator)
    magnitudes = []
    for p in positions:
        x_inv = gf.exp(-p)
        num = poly.eval_at(gf, omega, x_inv)
        den = poly.eval_at(gf, dpsi, x_inv)
        if den == 0:
            raise ZeroDivisionError(
                f"locator derivative vanishes at position {p}; "
                "inconsistent errata locator"
            )
        mag = gf.div(num, den)
        if fcr != 1:
            mag = gf.mul(mag, gf.pow(gf.exp(p), 1 - fcr))
        magnitudes.append(mag)
    return magnitudes
