"""repro — Reed-Solomon coded fault-tolerant memory analysis.

A full reproduction of *"On the Analysis of Reed Solomon Coding for
Resilience to Transient/Permanent Faults in Highly Reliable Memories"*
(Schiano, Ottavi, Lombardi, Pontarelli, Salsano — DATE 2005): the simplex
and duplex memory-system Markov models, a from-scratch RS(n, k)
errors-and-erasures codec over GF(2^m), transient CTMC solvers replacing
the NASA SURE tool, closed-form deep-tail solutions, a bit-level
fault-injection simulator with the paper's arbiter, and a benchmark
harness regenerating every figure and table of the evaluation.

Quick start::

    from repro import duplex_model, ber_curve

    model = duplex_model(18, 16, seu_per_bit_day=1.7e-5,
                         scrub_period_seconds=3600)
    print(ber_curve(model, [12, 24, 48]).final)   # BER after 2 days

See ``examples/`` for full walkthroughs and ``benchmarks/`` for the
figure-by-figure reproduction.
"""

from . import analysis, gf, markov, memory, obs, reliability, rs, runtime, simulator
from .gf import GF2m
from .markov import CTMC, build_chain
from .memory import (
    BERCurve,
    DuplexMarkovModel,
    FaultRates,
    SimplexMarkovModel,
    ber_curve,
    duplex_model,
    simplex_model,
)
from .rs import RSCode, RSDecodingError
from .simulator import DuplexSystem, SimplexSystem

__version__ = "1.0.0"

__all__ = [
    "GF2m",
    "RSCode",
    "RSDecodingError",
    "CTMC",
    "build_chain",
    "FaultRates",
    "SimplexMarkovModel",
    "DuplexMarkovModel",
    "simplex_model",
    "duplex_model",
    "BERCurve",
    "ber_curve",
    "SimplexSystem",
    "DuplexSystem",
    "gf",
    "rs",
    "markov",
    "memory",
    "simulator",
    "reliability",
    "analysis",
    "runtime",
    "obs",
    "__version__",
]
