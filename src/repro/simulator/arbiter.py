"""The duplex arbiter decision procedure (paper Section 3).

The arbiter receives the two module words, recovers erasures by masking
(taking the symbol from the healthy replica wherever exactly one side is
erased), decodes each word separately — setting a *flag* when a decoder
performed a correction — and then compares:

* no flag set → either word is output (no error present);
* words equal, ≥1 flag set → the correction was right, output either;
* words differ, exactly one flag set → the flagged word was
  mis-corrected; output the word with the reset flag;
* words differ, both flags set → the arbiter cannot discriminate a
  correction from a mis-correction and produces **no output**.

Detected decoding failures (the decoder reports uncorrectable rather than
producing a word) are handled in the natural way the paper leaves
implicit: if exactly one word decodes, it is output; if neither does,
there is no output.

The arbiter itself is assumed fault-free (hard core), as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple

from ..rs import RSCode, RSDecodingError
from .word import MemoryWord


class ArbiterDecision(Enum):
    """How the arbiter arrived at (or refused) an output."""

    NO_ERROR = "no_error"              # no flag set
    AGREED_CORRECTION = "agreed"       # words equal, >=1 flag
    FLAG_DISCRIMINATED = "flag"        # words differ, one flag set
    SINGLE_DECODABLE = "single"        # only one word decoded at all
    NO_OUTPUT = "no_output"            # cannot discriminate / both failed


@dataclass(frozen=True)
class ArbiterResult:
    """Outcome of one duplex read through the arbiter."""

    decision: ArbiterDecision
    data: Optional[List[int]]          # k output symbols, None if no output
    flags: Tuple[bool, bool]           # per-word correction flags
    decoded: Tuple[bool, bool]         # per-word decode success
    masked_erasures: int               # single-sided erasures masked (Y + b)
    shared_erasures: int               # double-sided erasures passed on (X)

    @property
    def produced_output(self) -> bool:
        return self.data is not None


def recover_erasures(
    word1: MemoryWord, word2: MemoryWord
) -> Tuple[List[int], List[int], List[int], int]:
    """Erasure-recovery stage: mask single-sided erasures.

    Returns the two masked symbol vectors, the positions erased on *both*
    sides (which remain erasures for the decoders), and the count of
    positions masked.
    """
    if word1.n != word2.n:
        raise ValueError("replica length mismatch")
    s1 = word1.read()
    s2 = word2.read()
    shared: List[int] = []
    masked = 0
    for p in range(word1.n):
        e1 = word1.is_erased(p)
        e2 = word2.is_erased(p)
        if e1 and e2:
            shared.append(p)
        elif e1:
            s1[p] = s2[p]
            masked += 1
        elif e2:
            s2[p] = s1[p]
            masked += 1
    return s1, s2, shared, masked


def arbitrate(code: RSCode, word1: MemoryWord, word2: MemoryWord) -> ArbiterResult:
    """Run the full Section 3 decision procedure on one stored pair."""
    s1, s2, shared, masked = recover_erasures(word1, word2)

    def try_decode(symbols: List[int]):
        try:
            return code.decode(symbols, erasure_positions=shared)
        except RSDecodingError:
            return None

    return decide_from_decodes(
        try_decode(s1), try_decode(s2), masked=masked, shared=len(shared)
    )


def decide_from_decodes(
    r1, r2, masked: int = 0, shared: int = 0
) -> ArbiterResult:
    """The Section 3 decision table, applied to two decode outcomes.

    ``r1``/``r2`` are the per-word :class:`~repro.rs.codec.DecodeResult`
    objects, or ``None`` where that word was detectably uncorrectable.
    Split out of :func:`arbitrate` so the batch Monte-Carlo engine can
    decode both replicas through :class:`~repro.rs.batch.BatchRSCodec`
    and still run *this exact* decision procedure per trial.
    """
    decoded = (r1 is not None, r2 is not None)
    flags = (
        bool(r1.corrected) if r1 is not None else False,
        bool(r2.corrected) if r2 is not None else False,
    )

    if r1 is None and r2 is None:
        decision, data = ArbiterDecision.NO_OUTPUT, None
    elif r1 is None or r2 is None:
        winner = r1 if r1 is not None else r2
        decision, data = ArbiterDecision.SINGLE_DECODABLE, winner.data
    elif not flags[0] and not flags[1]:
        decision, data = ArbiterDecision.NO_ERROR, r1.data
    elif r1.data == r2.data:
        decision, data = ArbiterDecision.AGREED_CORRECTION, r1.data
    elif flags[0] != flags[1]:
        # exactly one flag: the un-flagged word is trusted
        winner = r2 if flags[0] else r1
        decision, data = ArbiterDecision.FLAG_DISCRIMINATED, winner.data
    else:
        decision, data = ArbiterDecision.NO_OUTPUT, None

    return ArbiterResult(
        decision=decision,
        data=data,
        flags=flags,
        decoded=decoded,
        masked_erasures=masked,
        shared_erasures=shared,
    )
