"""Monte-Carlo estimation harnesses.

Two independent fault-injection validators:

* :func:`gillespie_fail_probability` — stochastic simulation (SSA) of a
  memory model's *own* transition rule.  Converges to the CTMC transient
  solution by construction, so it validates the analytical solvers.
* :func:`simulate_fail_probability` — bit-level fault injection through
  the real codec and arbiter (:mod:`repro.simulator.systems`).  Validates
  that the paper's Markov abstraction (erasures-as-located faults, flags,
  masking, capability conditions) tracks "physical" behaviour, including
  effects the chains idealize away (mis-corrections, benign stuck-ats,
  repeated SEUs on one symbol).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..memory.base import FAIL, MemoryMarkovModel
from ..rs import RSCode
from .faults import (
    merge_event_streams,
    sample_permanent_events,
    sample_seu_events,
    scrub_schedule,
)
from .systems import DuplexSystem, ReadOutcome, SimplexSystem


@dataclass(frozen=True)
class FailureEstimate:
    """A Monte-Carlo failure-probability estimate with a Wilson interval."""

    probability: float
    trials: int
    failures: int
    ci_low: float
    ci_high: float
    outcome_counts: Optional[Dict[str, int]] = None

    def consistent_with(self, p: float) -> bool:
        """True if ``p`` lies inside the 95% confidence interval."""
        return self.ci_low <= p <= self.ci_high


def wilson_interval(failures: int, trials: int, z: float = 1.96) -> tuple[float, float]:
    """95% (by default) Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    p_hat = failures / trials
    denom = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return max(0.0, centre - half), min(1.0, centre + half)


# --------------------------------------------------------------------------
# SSA on the Markov model itself
# --------------------------------------------------------------------------


def gillespie_fail_probability(
    model: MemoryMarkovModel,
    t_end: float,
    trials: int,
    rng: Optional[np.random.Generator] = None,
) -> FailureEstimate:
    """Estimate ``P_Fail(t_end)`` by direct SSA on the model's transitions.

    Each trial walks the chain with exponential holding times until
    ``t_end`` or absorption into FAIL.  The estimate converges to the
    transient CTMC solution, making this an end-to-end check of the
    chain construction *and* the numerical solvers.
    """
    if rng is None:
        rng = np.random.default_rng()
    failures = 0
    for _ in range(trials):
        state = model.initial_state()
        t = 0.0
        while True:
            moves = list(model.transitions(state))
            total = sum(rate for _s, rate in moves)
            if total <= 0.0:
                break  # absorbing
            t += rng.exponential(1.0 / total)
            if t >= t_end:
                break
            pick = rng.uniform(0.0, total)
            acc = 0.0
            for nxt, rate in moves:
                acc += rate
                if pick <= acc:
                    state = nxt
                    break
        if state == FAIL:
            failures += 1
    low, high = wilson_interval(failures, trials)
    return FailureEstimate(failures / trials, trials, failures, low, high)


# --------------------------------------------------------------------------
# bit-level fault injection through the codec
# --------------------------------------------------------------------------


def simulate_read_outcome(
    arrangement: str,
    code: RSCode,
    t_end: float,
    seu_per_bit: float,
    erasure_per_symbol: float,
    rng: np.random.Generator,
    scrub_period: float | None = None,
    scrub_exponential: bool = False,
) -> ReadOutcome:
    """One fault-injection trial: inject events over ``[0, t_end]``, then read.

    ``arrangement`` is ``"simplex"`` or ``"duplex"``.  Rates share the time
    unit of ``t_end`` and ``scrub_period``.
    """
    if arrangement == "simplex":
        system: SimplexSystem | DuplexSystem = SimplexSystem(code, rng=rng)
        n_modules = 1
    elif arrangement == "duplex":
        system = DuplexSystem(code, rng=rng)
        n_modules = 2
    else:
        raise ValueError(f"unknown arrangement {arrangement!r}")

    streams = []
    for module in range(n_modules):
        streams.append(
            sample_seu_events(rng, seu_per_bit, code.n, code.m, t_end, module)
        )
        streams.append(
            sample_permanent_events(
                rng, erasure_per_symbol, code.n, code.m, t_end, module
            )
        )
    streams.append(
        scrub_schedule(t_end, scrub_period, rng=rng, exponential=scrub_exponential)
    )
    for event in merge_event_streams(*streams):
        system.apply_event(event)
    return system.read()


def simulate_fail_probability(
    arrangement: str,
    code: RSCode,
    t_end: float,
    seu_per_bit: float,
    erasure_per_symbol: float,
    trials: int,
    rng: Optional[np.random.Generator] = None,
    scrub_period: float | None = None,
    scrub_exponential: bool = False,
) -> FailureEstimate:
    """Monte-Carlo failure probability through the real codec and arbiter."""
    if rng is None:
        rng = np.random.default_rng()
    counts = {outcome.value: 0 for outcome in ReadOutcome}
    failures = 0
    for _ in range(trials):
        outcome = simulate_read_outcome(
            arrangement,
            code,
            t_end,
            seu_per_bit,
            erasure_per_symbol,
            rng,
            scrub_period=scrub_period,
            scrub_exponential=scrub_exponential,
        )
        counts[outcome.value] += 1
        if outcome.is_failure:
            failures += 1
    low, high = wilson_interval(failures, trials)
    return FailureEstimate(
        failures / trials, trials, failures, low, high, outcome_counts=counts
    )


MonteCarloRunner = Callable[..., FailureEstimate]
